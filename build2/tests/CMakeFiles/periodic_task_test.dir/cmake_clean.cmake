file(REMOVE_RECURSE
  "CMakeFiles/periodic_task_test.dir/periodic_task_test.cpp.o"
  "CMakeFiles/periodic_task_test.dir/periodic_task_test.cpp.o.d"
  "periodic_task_test"
  "periodic_task_test.pdb"
  "periodic_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
