# Empty dependencies file for periodic_task_test.
# This may be replaced when dependencies are built.
