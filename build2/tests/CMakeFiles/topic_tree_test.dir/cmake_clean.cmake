file(REMOVE_RECURSE
  "CMakeFiles/topic_tree_test.dir/topic_tree_test.cpp.o"
  "CMakeFiles/topic_tree_test.dir/topic_tree_test.cpp.o.d"
  "topic_tree_test"
  "topic_tree_test.pdb"
  "topic_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
