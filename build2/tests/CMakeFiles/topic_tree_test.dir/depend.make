# Empty dependencies file for topic_tree_test.
# This may be replaced when dependencies are built.
