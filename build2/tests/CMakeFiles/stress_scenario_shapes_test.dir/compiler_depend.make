# Empty compiler generated dependencies file for stress_scenario_shapes_test.
# This may be replaced when dependencies are built.
