file(REMOVE_RECURSE
  "CMakeFiles/stress_scenario_shapes_test.dir/stress_scenario_shapes_test.cpp.o"
  "CMakeFiles/stress_scenario_shapes_test.dir/stress_scenario_shapes_test.cpp.o.d"
  "stress_scenario_shapes_test"
  "stress_scenario_shapes_test.pdb"
  "stress_scenario_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_scenario_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
