# Empty dependencies file for neighborhood_table_test.
# This may be replaced when dependencies are built.
