file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_table_test.dir/neighborhood_table_test.cpp.o"
  "CMakeFiles/neighborhood_table_test.dir/neighborhood_table_test.cpp.o.d"
  "neighborhood_table_test"
  "neighborhood_table_test.pdb"
  "neighborhood_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
