file(REMOVE_RECURSE
  "CMakeFiles/golden_trace_test.dir/golden_trace_test.cpp.o"
  "CMakeFiles/golden_trace_test.dir/golden_trace_test.cpp.o.d"
  "golden_trace_test"
  "golden_trace_test.pdb"
  "golden_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
