file(REMOVE_RECURSE
  "CMakeFiles/city_bench_shapes_test.dir/city_bench_shapes_test.cpp.o"
  "CMakeFiles/city_bench_shapes_test.dir/city_bench_shapes_test.cpp.o.d"
  "city_bench_shapes_test"
  "city_bench_shapes_test.pdb"
  "city_bench_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_bench_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
