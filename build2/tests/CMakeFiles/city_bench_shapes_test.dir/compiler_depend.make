# Empty compiler generated dependencies file for city_bench_shapes_test.
# This may be replaced when dependencies are built.
