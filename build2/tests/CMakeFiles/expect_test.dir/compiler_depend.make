# Empty compiler generated dependencies file for expect_test.
# This may be replaced when dependencies are built.
