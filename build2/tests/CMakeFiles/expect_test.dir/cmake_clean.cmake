file(REMOVE_RECURSE
  "CMakeFiles/expect_test.dir/expect_test.cpp.o"
  "CMakeFiles/expect_test.dir/expect_test.cpp.o.d"
  "expect_test"
  "expect_test.pdb"
  "expect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
