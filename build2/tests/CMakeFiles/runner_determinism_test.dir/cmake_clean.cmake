file(REMOVE_RECURSE
  "CMakeFiles/runner_determinism_test.dir/runner_determinism_test.cpp.o"
  "CMakeFiles/runner_determinism_test.dir/runner_determinism_test.cpp.o.d"
  "runner_determinism_test"
  "runner_determinism_test.pdb"
  "runner_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
