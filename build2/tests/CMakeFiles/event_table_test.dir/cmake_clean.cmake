file(REMOVE_RECURSE
  "CMakeFiles/event_table_test.dir/event_table_test.cpp.o"
  "CMakeFiles/event_table_test.dir/event_table_test.cpp.o.d"
  "event_table_test"
  "event_table_test.pdb"
  "event_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
