# Empty dependencies file for event_table_test.
# This may be replaced when dependencies are built.
