file(REMOVE_RECURSE
  "CMakeFiles/validity_probe_test.dir/validity_probe_test.cpp.o"
  "CMakeFiles/validity_probe_test.dir/validity_probe_test.cpp.o.d"
  "validity_probe_test"
  "validity_probe_test.pdb"
  "validity_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
