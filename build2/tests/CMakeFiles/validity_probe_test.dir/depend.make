# Empty dependencies file for validity_probe_test.
# This may be replaced when dependencies are built.
