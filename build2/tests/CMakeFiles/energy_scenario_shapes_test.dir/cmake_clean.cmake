file(REMOVE_RECURSE
  "CMakeFiles/energy_scenario_shapes_test.dir/energy_scenario_shapes_test.cpp.o"
  "CMakeFiles/energy_scenario_shapes_test.dir/energy_scenario_shapes_test.cpp.o.d"
  "energy_scenario_shapes_test"
  "energy_scenario_shapes_test.pdb"
  "energy_scenario_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_scenario_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
