# Empty dependencies file for energy_scenario_shapes_test.
# This may be replaced when dependencies are built.
