# Empty compiler generated dependencies file for mobility_statistics_test.
# This may be replaced when dependencies are built.
