file(REMOVE_RECURSE
  "CMakeFiles/mobility_statistics_test.dir/mobility_statistics_test.cpp.o"
  "CMakeFiles/mobility_statistics_test.dir/mobility_statistics_test.cpp.o.d"
  "mobility_statistics_test"
  "mobility_statistics_test.pdb"
  "mobility_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
