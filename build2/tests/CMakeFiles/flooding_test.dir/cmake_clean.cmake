file(REMOVE_RECURSE
  "CMakeFiles/flooding_test.dir/flooding_test.cpp.o"
  "CMakeFiles/flooding_test.dir/flooding_test.cpp.o.d"
  "flooding_test"
  "flooding_test.pdb"
  "flooding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
