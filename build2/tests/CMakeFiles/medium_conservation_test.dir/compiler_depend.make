# Empty compiler generated dependencies file for medium_conservation_test.
# This may be replaced when dependencies are built.
