file(REMOVE_RECURSE
  "CMakeFiles/medium_conservation_test.dir/medium_conservation_test.cpp.o"
  "CMakeFiles/medium_conservation_test.dir/medium_conservation_test.cpp.o.d"
  "medium_conservation_test"
  "medium_conservation_test.pdb"
  "medium_conservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medium_conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
