# Empty dependencies file for medium_test.
# This may be replaced when dependencies are built.
