file(REMOVE_RECURSE
  "CMakeFiles/medium_test.dir/medium_test.cpp.o"
  "CMakeFiles/medium_test.dir/medium_test.cpp.o.d"
  "medium_test"
  "medium_test.pdb"
  "medium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
