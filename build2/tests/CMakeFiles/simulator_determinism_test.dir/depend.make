# Empty dependencies file for simulator_determinism_test.
# This may be replaced when dependencies are built.
