file(REMOVE_RECURSE
  "CMakeFiles/simulator_determinism_test.dir/simulator_determinism_test.cpp.o"
  "CMakeFiles/simulator_determinism_test.dir/simulator_determinism_test.cpp.o.d"
  "simulator_determinism_test"
  "simulator_determinism_test.pdb"
  "simulator_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
