# Empty dependencies file for frugal_node_test.
# This may be replaced when dependencies are built.
