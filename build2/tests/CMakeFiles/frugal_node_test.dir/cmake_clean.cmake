file(REMOVE_RECURSE
  "CMakeFiles/frugal_node_test.dir/frugal_node_test.cpp.o"
  "CMakeFiles/frugal_node_test.dir/frugal_node_test.cpp.o.d"
  "frugal_node_test"
  "frugal_node_test.pdb"
  "frugal_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frugal_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
