# Empty compiler generated dependencies file for frugal_runner.
# This may be replaced when dependencies are built.
