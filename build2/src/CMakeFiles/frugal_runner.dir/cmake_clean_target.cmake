file(REMOVE_RECURSE
  "libfrugal_runner.a"
)
