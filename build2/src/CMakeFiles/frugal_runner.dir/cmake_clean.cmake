file(REMOVE_RECURSE
  "CMakeFiles/frugal_runner.dir/runner/bench_main.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/bench_main.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/pool.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/pool.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/registry.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/registry.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/scenario.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/scenario.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/scenarios.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/scenarios.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/shard.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/shard.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/sink.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/sink.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/sweep.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/sweep.cpp.o.d"
  "CMakeFiles/frugal_runner.dir/runner/worlds.cpp.o"
  "CMakeFiles/frugal_runner.dir/runner/worlds.cpp.o.d"
  "libfrugal_runner.a"
  "libfrugal_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frugal_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
