
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/event_table.cpp" "src/CMakeFiles/frugal_core.dir/core/event_table.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/event_table.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/frugal_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/flooding.cpp" "src/CMakeFiles/frugal_core.dir/core/flooding.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/flooding.cpp.o.d"
  "/root/repo/src/core/frugal_node.cpp" "src/CMakeFiles/frugal_core.dir/core/frugal_node.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/frugal_node.cpp.o.d"
  "/root/repo/src/core/neighborhood_table.cpp" "src/CMakeFiles/frugal_core.dir/core/neighborhood_table.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/neighborhood_table.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/CMakeFiles/frugal_core.dir/core/wire.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/core/wire.cpp.o.d"
  "/root/repo/src/energy/energy.cpp" "src/CMakeFiles/frugal_core.dir/energy/energy.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/energy/energy.cpp.o.d"
  "/root/repo/src/mobility/city_section.cpp" "src/CMakeFiles/frugal_core.dir/mobility/city_section.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/mobility/city_section.cpp.o.d"
  "/root/repo/src/mobility/street_graph.cpp" "src/CMakeFiles/frugal_core.dir/mobility/street_graph.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/mobility/street_graph.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/CMakeFiles/frugal_core.dir/net/medium.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/net/medium.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/frugal_core.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/frugal_core.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/frugal_core.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/stats/table.cpp.o.d"
  "/root/repo/src/topics/topic.cpp" "src/CMakeFiles/frugal_core.dir/topics/topic.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/topics/topic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/frugal_core.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/frugal_core.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/util/env.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/frugal_core.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/frugal_core.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/frugal_core.dir/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
