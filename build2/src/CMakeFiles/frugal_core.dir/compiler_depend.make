# Empty compiler generated dependencies file for frugal_core.
# This may be replaced when dependencies are built.
