file(REMOVE_RECURSE
  "libfrugal_core.a"
)
