# Empty compiler generated dependencies file for campus_news.
# This may be replaced when dependencies are built.
