file(REMOVE_RECURSE
  "CMakeFiles/campus_news.dir/campus_news.cpp.o"
  "CMakeFiles/campus_news.dir/campus_news.cpp.o.d"
  "campus_news"
  "campus_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
