file(REMOVE_RECURSE
  "CMakeFiles/car_park.dir/car_park.cpp.o"
  "CMakeFiles/car_park.dir/car_park.cpp.o.d"
  "car_park"
  "car_park.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_park.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
