# Empty dependencies file for car_park.
# This may be replaced when dependencies are built.
