file(REMOVE_RECURSE
  "CMakeFiles/bench_topic_fanout.dir/bench_topic_fanout.cpp.o"
  "CMakeFiles/bench_topic_fanout.dir/bench_topic_fanout.cpp.o.d"
  "bench_topic_fanout"
  "bench_topic_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topic_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
