# Empty dependencies file for bench_topic_fanout.
# This may be replaced when dependencies are built.
