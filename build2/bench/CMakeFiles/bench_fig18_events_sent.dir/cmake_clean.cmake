file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_events_sent.dir/bench_fig18_events_sent.cpp.o"
  "CMakeFiles/bench_fig18_events_sent.dir/bench_fig18_events_sent.cpp.o.d"
  "bench_fig18_events_sent"
  "bench_fig18_events_sent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_events_sent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
