# Empty compiler generated dependencies file for bench_fig18_events_sent.
# This may be replaced when dependencies are built.
