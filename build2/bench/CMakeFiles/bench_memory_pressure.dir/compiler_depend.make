# Empty compiler generated dependencies file for bench_memory_pressure.
# This may be replaced when dependencies are built.
