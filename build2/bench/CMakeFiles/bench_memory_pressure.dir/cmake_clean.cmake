file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_pressure.dir/bench_memory_pressure.cpp.o"
  "CMakeFiles/bench_memory_pressure.dir/bench_memory_pressure.cpp.o.d"
  "bench_memory_pressure"
  "bench_memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
