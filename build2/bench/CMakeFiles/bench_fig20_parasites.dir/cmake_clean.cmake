file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_parasites.dir/bench_fig20_parasites.cpp.o"
  "CMakeFiles/bench_fig20_parasites.dir/bench_fig20_parasites.cpp.o.d"
  "bench_fig20_parasites"
  "bench_fig20_parasites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_parasites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
