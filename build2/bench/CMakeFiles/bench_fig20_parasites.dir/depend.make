# Empty dependencies file for bench_fig20_parasites.
# This may be replaced when dependencies are built.
