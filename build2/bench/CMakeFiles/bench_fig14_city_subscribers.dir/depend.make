# Empty dependencies file for bench_fig14_city_subscribers.
# This may be replaced when dependencies are built.
