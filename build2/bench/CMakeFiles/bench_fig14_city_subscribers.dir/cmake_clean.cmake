file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_city_subscribers.dir/bench_fig14_city_subscribers.cpp.o"
  "CMakeFiles/bench_fig14_city_subscribers.dir/bench_fig14_city_subscribers.cpp.o.d"
  "bench_fig14_city_subscribers"
  "bench_fig14_city_subscribers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_city_subscribers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
