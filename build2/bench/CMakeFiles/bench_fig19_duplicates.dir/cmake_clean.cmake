file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_duplicates.dir/bench_fig19_duplicates.cpp.o"
  "CMakeFiles/bench_fig19_duplicates.dir/bench_fig19_duplicates.cpp.o.d"
  "bench_fig19_duplicates"
  "bench_fig19_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
