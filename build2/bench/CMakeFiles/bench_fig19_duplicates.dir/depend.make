# Empty dependencies file for bench_fig19_duplicates.
# This may be replaced when dependencies are built.
