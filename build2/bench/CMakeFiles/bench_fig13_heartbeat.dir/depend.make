# Empty dependencies file for bench_fig13_heartbeat.
# This may be replaced when dependencies are built.
