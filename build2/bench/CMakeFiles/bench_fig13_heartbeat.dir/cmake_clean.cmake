file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_heartbeat.dir/bench_fig13_heartbeat.cpp.o"
  "CMakeFiles/bench_fig13_heartbeat.dir/bench_fig13_heartbeat.cpp.o.d"
  "bench_fig13_heartbeat"
  "bench_fig13_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
