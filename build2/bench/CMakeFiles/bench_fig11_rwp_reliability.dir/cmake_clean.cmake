file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_rwp_reliability.dir/bench_fig11_rwp_reliability.cpp.o"
  "CMakeFiles/bench_fig11_rwp_reliability.dir/bench_fig11_rwp_reliability.cpp.o.d"
  "bench_fig11_rwp_reliability"
  "bench_fig11_rwp_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_rwp_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
