# Empty compiler generated dependencies file for bench_fig11_rwp_reliability.
# This may be replaced when dependencies are built.
