# Empty dependencies file for bench_fig17_bandwidth.
# This may be replaced when dependencies are built.
