file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_heterogeneous.dir/bench_fig12_heterogeneous.cpp.o"
  "CMakeFiles/bench_fig12_heterogeneous.dir/bench_fig12_heterogeneous.cpp.o.d"
  "bench_fig12_heterogeneous"
  "bench_fig12_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
