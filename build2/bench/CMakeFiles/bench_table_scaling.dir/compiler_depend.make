# Empty compiler generated dependencies file for bench_table_scaling.
# This may be replaced when dependencies are built.
