file(REMOVE_RECURSE
  "CMakeFiles/bench_table_scaling.dir/bench_table_scaling.cpp.o"
  "CMakeFiles/bench_table_scaling.dir/bench_table_scaling.cpp.o.d"
  "bench_table_scaling"
  "bench_table_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
