# Empty compiler generated dependencies file for bench_adversarial_mobility.
# This may be replaced when dependencies are built.
