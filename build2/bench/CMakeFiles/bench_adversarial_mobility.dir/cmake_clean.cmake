file(REMOVE_RECURSE
  "CMakeFiles/bench_adversarial_mobility.dir/bench_adversarial_mobility.cpp.o"
  "CMakeFiles/bench_adversarial_mobility.dir/bench_adversarial_mobility.cpp.o.d"
  "bench_adversarial_mobility"
  "bench_adversarial_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
