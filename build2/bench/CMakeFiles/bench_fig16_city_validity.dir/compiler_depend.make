# Empty compiler generated dependencies file for bench_fig16_city_validity.
# This may be replaced when dependencies are built.
