file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_city_validity.dir/bench_fig16_city_validity.cpp.o"
  "CMakeFiles/bench_fig16_city_validity.dir/bench_fig16_city_validity.cpp.o.d"
  "bench_fig16_city_validity"
  "bench_fig16_city_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_city_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
