file(REMOVE_RECURSE
  "CMakeFiles/bench_churn_city.dir/bench_churn_city.cpp.o"
  "CMakeFiles/bench_churn_city.dir/bench_churn_city.cpp.o.d"
  "bench_churn_city"
  "bench_churn_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_churn_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
