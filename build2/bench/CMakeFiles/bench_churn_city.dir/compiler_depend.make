# Empty compiler generated dependencies file for bench_churn_city.
# This may be replaced when dependencies are built.
