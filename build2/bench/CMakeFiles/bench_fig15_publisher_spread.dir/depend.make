# Empty dependencies file for bench_fig15_publisher_spread.
# This may be replaced when dependencies are built.
