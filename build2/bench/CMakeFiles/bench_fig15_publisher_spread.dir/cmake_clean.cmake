file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_publisher_spread.dir/bench_fig15_publisher_spread.cpp.o"
  "CMakeFiles/bench_fig15_publisher_spread.dir/bench_fig15_publisher_spread.cpp.o.d"
  "bench_fig15_publisher_spread"
  "bench_fig15_publisher_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_publisher_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
