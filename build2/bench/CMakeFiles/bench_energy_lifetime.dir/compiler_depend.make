# Empty compiler generated dependencies file for bench_energy_lifetime.
# This may be replaced when dependencies are built.
