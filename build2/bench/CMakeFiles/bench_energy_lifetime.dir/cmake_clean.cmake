file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_lifetime.dir/bench_energy_lifetime.cpp.o"
  "CMakeFiles/bench_energy_lifetime.dir/bench_energy_lifetime.cpp.o.d"
  "bench_energy_lifetime"
  "bench_energy_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
