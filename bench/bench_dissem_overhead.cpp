// Overhead and bounded-memory proof for the causal dissemination tracer.
//
// Runs one long publish stream (FRUGAL_BENCH_EVENTS events, default 20k)
// three times over the same dense static world:
//   off      — no tracer attached (the baseline every run pays),
//   on       — unbounded tracer: full per-event DAG records retained,
//   bounded  — tracer in bounded mode: records folded + freed at retirement.
// Reports wall-clock per configuration and peak RSS after each phase to
// BENCH_dissem_overhead.json (CI uploads it), and asserts the memory story
// structurally:
//   - the three runs are observably identical (the tracer is a pure
//     observer: reliability and delivered counts match bit-for-bit),
//   - bounded and unbounded fold identical stats,
//   - bounded mode retains no records and its live-event ring peaks at the
//     validity/spacing cap — a function of the window, NOT the event count.
// RSS is reported rather than thresholded (allocator noise differs across
// boxes); the structural checks are the real assertions. Phases run in
// off -> bounded -> on order so ru_maxrss's monotone peak exposes the
// unbounded mode's extra retention last.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <sys/resource.h>

#include "core/experiment.hpp"
#include "telemetry/causal.hpp"
#include "util/env.hpp"

using namespace frugal;

namespace {

[[nodiscard]] long max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

struct Phase {
  const char* name;
  double wall_s = 0.0;
  long rss_after_kb = 0;
  std::size_t delivered = 0;
  double reliability = 0.0;
};

core::ExperimentConfig base_config(std::uint32_t event_count) {
  // Same dense static world as bench_telemetry_rss: no mobility cost, every
  // frame lands, so wall time goes into the frame/annotation streams the
  // tracer consumes; the event table churns at its bounded steady state.
  core::ExperimentConfig config;
  config.node_count = 12;
  config.interest_fraction = 1.0;
  config.mobility = core::StaticSetup{800.0, 800.0};
  config.medium.range_m = 1200.0;
  config.warmup = SimDuration::from_seconds(5);
  config.event_validity = SimDuration::from_seconds(2);
  config.publish_spacing = SimDuration::from_seconds(0.02);
  config.event_count = event_count;
  config.event_bytes = 64;
  config.frugal.event_table_capacity = 128;
  config.seed = 7;
  return config;
}

core::RunResult run_phase(Phase& phase, const core::ExperimentConfig& config) {
  // detlint: wall-clock-ok(bench timing provenance, never in canonical output)
  const auto start = std::chrono::steady_clock::now();
  core::RunResult result = core::run_experiment(config);
  // detlint: wall-clock-ok(bench timing provenance, never in canonical output)
  const auto end = std::chrono::steady_clock::now();
  phase.wall_s = std::chrono::duration<double>(end - start).count();
  phase.rss_after_kb = max_rss_kb();
  phase.delivered = result.delivered_count();
  phase.reliability = result.reliability();
  return result;
}

}  // namespace

int main() {
  const auto event_count =
      static_cast<std::uint32_t>(env_int("FRUGAL_BENCH_EVENTS", 20'000));
  const core::ExperimentConfig config = base_config(event_count);

  Phase off{"off"};
  Phase bounded{"bounded"};
  Phase on{"on"};

  (void)run_phase(off, config);

  telemetry::TracerConfig bounded_tracer_config;
  bounded_tracer_config.bounded = true;
  telemetry::DisseminationTracer bounded_tracer{bounded_tracer_config};
  core::ExperimentConfig bounded_config = config;
  bounded_config.dissem_tracer = &bounded_tracer;
  (void)run_phase(bounded, bounded_config);

  telemetry::DisseminationTracer unbounded_tracer;
  core::ExperimentConfig on_config = config;
  on_config.dissem_tracer = &unbounded_tracer;
  (void)run_phase(on, on_config);

  // validity/spacing events can be live at once, +2 for the event published
  // exactly at the retirement boundary and transient overshoot (same cap as
  // the telemetry hub's ring; see bench_telemetry_rss).
  const std::size_t live_cap =
      static_cast<std::size_t>(config.event_validity.seconds() /
                               config.publish_spacing.seconds()) +
      2;

  const Phase* phases[] = {&off, &bounded, &on};
  for (const Phase* phase : phases) {
    std::printf("%-8s wall %8.3f s   rss-after %8.1f MiB   delivered %zu   "
                "reliability %.4f\n",
                phase->name, phase->wall_s,
                static_cast<double>(phase->rss_after_kb) / 1024.0,
                phase->delivered, phase->reliability);
  }
  std::printf("live-event peak   bounded %zu, unbounded %zu (cap %zu)\n",
              bounded_tracer.live_event_high_water(),
              unbounded_tracer.live_event_high_water(), live_cap);
  std::printf("records retained  bounded %zu, unbounded %zu\n",
              bounded_tracer.records().size(),
              unbounded_tracer.records().size());

  std::FILE* json = std::fopen("BENCH_dissem_overhead.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"bench\":\"dissem_overhead\",\"events\":%u",
                 event_count);
    for (const Phase* phase : phases) {
      std::fprintf(json,
                   ",\"%s\":{\"wall_s\":%.6f,\"rss_after_kb\":%ld,"
                   "\"delivered\":%zu,\"reliability\":%.6f}",
                   phase->name, phase->wall_s, phase->rss_after_kb,
                   phase->delivered, phase->reliability);
    }
    std::fprintf(json,
                 ",\"live_peak_bounded\":%zu,\"live_peak_unbounded\":%zu,"
                 "\"live_cap\":%zu,\"records_bounded\":%zu,"
                 "\"records_unbounded\":%zu}\n",
                 bounded_tracer.live_event_high_water(),
                 unbounded_tracer.live_event_high_water(), live_cap,
                 bounded_tracer.records().size(),
                 unbounded_tracer.records().size());
    std::fclose(json);
  }

  bool ok = true;
  // Pure observer: all three runs saw the same simulation.
  if (on.delivered != off.delivered || bounded.delivered != off.delivered ||
      on.reliability != off.reliability ||
      bounded.reliability != off.reliability) {
    std::fprintf(stderr,
                 "FAIL: tracer perturbed the run (delivered %zu/%zu/%zu, "
                 "reliability %.6f/%.6f/%.6f)\n",
                 off.delivered, bounded.delivered, on.delivered,
                 off.reliability, bounded.reliability, on.reliability);
    ok = false;
  }
  // Bounded == unbounded stats, record retention only in unbounded mode.
  const telemetry::DisseminationStats& bs = bounded_tracer.stats();
  const telemetry::DisseminationStats& us = unbounded_tracer.stats();
  if (bs.events != us.events || bs.eligible != us.eligible ||
      bs.delivered != us.delivered || bs.receptions != us.receptions ||
      bs.hops_total != us.hops_total || bs.hops_count != us.hops_count) {
    std::fprintf(stderr, "FAIL: bounded and unbounded stats disagree\n");
    ok = false;
  }
  if (!bounded_tracer.records().empty()) {
    std::fprintf(stderr, "FAIL: bounded tracer retained %zu records\n",
                 bounded_tracer.records().size());
    ok = false;
  }
  if (unbounded_tracer.records().size() != event_count) {
    std::fprintf(stderr, "FAIL: unbounded tracer retired %zu of %u events\n",
                 unbounded_tracer.records().size(), event_count);
    ok = false;
  }
  if (bounded_tracer.live_event_high_water() > live_cap) {
    std::fprintf(stderr,
                 "FAIL: live-event deque peaked at %zu > cap %zu — tracer "
                 "memory scales with event count, not window\n",
                 bounded_tracer.live_event_high_water(), live_cap);
    ok = false;
  }
  if (off.delivered == 0) {
    std::fprintf(stderr, "FAIL: nothing was delivered\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
