// Figure 17: bandwidth used per process (bytes sent during the 180 s
// dissemination window, including heartbeats and id lists) as a function of
// the number of events to publish and the subscriber fraction, for the
// frugal algorithm and the flooding baselines.

#include "frugality.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 17", "bandwidth per process vs events x subscribers");
  run_frugality_figure("Fig 17 bandwidth", "bytes sent/process",
                       [](const core::RunResult& result) {
                         return result.mean_bytes_sent_per_node();
                       });
  std::printf(
      "\nExpected shape (paper): the frugal algorithm uses the least "
      "bandwidth everywhere except when total event bytes < ~1.5 kB and "
      "interest <= 20%% (interests-aware flooding wins that corner); "
      "neighbors'-interests flooding is the most expensive (> 1 MB).\n");
  return 0;
}
