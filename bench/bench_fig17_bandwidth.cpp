// Figure 17: bandwidth used per process (bytes sent during the 180 s
// dissemination window) as a function of the number of events to publish
// and the subscriber fraction, frugal vs the flooding baselines.
//
// Thin wrapper: the whole experiment is the registered "fig17_bandwidth"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig17_bandwidth");
}
