// Figure 16: probability of event reception as a function of the event
// validity period (25-150 s), city section model, 100% subscribers,
// heartbeat upper bound 1 s. One run per (publisher, seed) at validity 150 s
// yields the whole axis from the recorded delivery times.

#include <vector>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 16", "reliability vs event validity period (city section)");

  const std::vector<double> validities{25, 50, 75, 100, 125, 150};
  std::vector<stats::Summary> by_validity(validities.size());

  for (int seed = 1; seed <= seed_count(); ++seed) {
    for (NodeId publisher = 0; publisher < 15; ++publisher) {
      auto config =
          city_world(/*interest=*/1.0, static_cast<std::uint64_t>(seed));
      config.publisher = publisher;
      const auto result = core::run_experiment(config);
      for (std::size_t i = 0; i < validities.size(); ++i) {
        by_validity[i].add(result.reliability_within(
            SimDuration::from_seconds(validities[i])));
      }
    }
  }

  stats::Table table{"Fig 16 reliability vs validity",
                     {"validity[s]", "reliability", "ci95"}};
  for (std::size_t i = 0; i < validities.size(); ++i) {
    table.add_numeric_row({validities[i], by_validity[i].mean(),
                           by_validity[i].ci95_half_width()},
                          3);
  }
  table.emit();

  std::printf(
      "\nExpected shape (paper: 11 / 27 / 44 / 52 / 69 / 77 %%): reliability "
      "grows steeply and roughly linearly with validity — processes meet at "
      "hot spots, so long-lived events profit from later encounters.\n");
  return 0;
}
