// Figure 16: probability of event reception as a function of the event
// validity period (25-150 s), city section model, 100% subscribers,
// heartbeat upper bound 1 s.
//
// Thin wrapper: the whole experiment is the registered "fig16_city_validity"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig16_city_validity");
}
