// Figure 18: number of events sent per process as a function of the number
// of events to publish and the subscriber fraction.

#include "frugality.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 18", "events sent per process vs events x subscribers");
  run_frugality_figure("Fig 18 events sent", "event copies sent/process",
                       [](const core::RunResult& result) {
                         return result.mean_events_sent_per_node();
                       });
  std::printf(
      "\nExpected shape (paper): the frugal algorithm sends 50-100x fewer "
      "event copies than the flooding alternatives (which retransmit every "
      "second for the whole validity period).\n");
  return 0;
}
