// Figure 18: number of events sent per process as a function of the number
// of events to publish and the subscriber fraction.
//
// Thin wrapper: the whole experiment is the registered "fig18_events_sent"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig18_events_sent");
}
