// Figure 12: probability of event reception as a function of the validity
// period and the number of subscribers, in a heterogeneous mobile network
// where every process draws its own constant speed from U[1, 40] mps.
//
// Thin wrapper: the whole experiment is the registered "fig12_heterogeneous"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig12_heterogeneous");
}
