// Figure 12: probability of event reception as a function of the validity
// period and the number of subscribers, in a heterogeneous mobile network
// where every process draws its own constant speed from U[1, 40] mps.

#include <vector>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 12",
         "reliability vs validity x interest, speeds U[1,40] mps (RWP)");

  const std::vector<double> interests =
      full_sweep() ? std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                         0.9, 1.0}
                   : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> validities =
      full_sweep()
          ? std::vector<double>{20, 40, 60, 80, 100, 120, 140, 160, 180}
          : std::vector<double>{40, 80, 120, 180};

  std::vector<std::string> columns{"interest[%]"};
  for (const double v : validities) {
    columns.push_back("rel@" + stats::format_double(v, 0) + "s");
  }
  stats::Table table{"Fig 12 reliability, heterogeneous 1-40 mps", columns};

  for (const double interest : interests) {
    std::vector<stats::Summary> by_validity(validities.size());
    for (int seed = 1; seed <= seed_count(); ++seed) {
      const auto result = core::run_experiment(
          rwp_world(1.0, 40.0, interest, static_cast<std::uint64_t>(seed)));
      for (std::size_t i = 0; i < validities.size(); ++i) {
        by_validity[i].add(result.reliability_within(
            SimDuration::from_seconds(validities[i])));
      }
    }
    std::vector<double> row{interest * 100};
    for (const auto& summary : by_validity) row.push_back(summary.mean());
    table.add_numeric_row(row, 3);
  }
  table.emit();

  std::printf(
      "\nExpected shape (paper): low interest => low reliability; from ~60%% "
      "interest a 120 s validity already reaches everyone — overall "
      "reliability tracks the network's average speed (~20 mps), not "
      "individual speeds.\n");
  return 0;
}
