// Adversarial flash-crowd mobility (beyond the paper's figures): every
// process converges on one rally point, dwells, then disperses; events are
// published before, during and after the density spike.
//
// Thin wrapper: the whole experiment is the registered
// "adversarial_mobility" scenario (src/runner/scenarios.cpp).
// FRUGAL_SHARD=i/N turns this binary into one shard of a multi-machine
// sweep (see EXPERIMENTS.md).

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("adversarial_mobility");
}
