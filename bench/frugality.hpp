// Shared sweep for the frugality comparison figures (Figs. 17-20): the
// frugal algorithm vs the three flooding variants, over the number of events
// to publish (1-20) and the subscriber fraction (20-100%), in the random
// waypoint model at 10 mps with 400-byte events and 180 s of measurement
// (paper §5.2 "Frugality").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common.hpp"

namespace frugal::bench {

struct FrugalitySweep {
  std::vector<int> event_counts;
  std::vector<double> interests;
  std::vector<core::Protocol> protocols;
  std::size_t node_count = 150;
  double area_side_m = 5000.0;
  int seeds = 3;
};

/// Default sweep: half the paper's node count over half the area (identical
/// density, ~4x faster — flooding at 20 events saturates the channel and
/// dominates wall-clock). FRUGAL_FULL=1 restores the paper's 150 nodes over
/// 25 km^2 and the full parameter grid.
[[nodiscard]] inline FrugalitySweep default_frugality_sweep() {
  FrugalitySweep sweep;
  sweep.event_counts = full_sweep() ? std::vector<int>{1, 2, 4, 8, 12, 16, 20}
                                    : std::vector<int>{1, 5, 10, 20};
  sweep.interests = full_sweep()
                        ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                        : std::vector<double>{0.2, 0.6, 1.0};
  sweep.protocols = {
      core::Protocol::kFrugal,
      core::Protocol::kFloodSimple,
      core::Protocol::kFloodInterestAware,
      core::Protocol::kFloodNeighborInterest,
  };
  if (!full_sweep()) {
    sweep.node_count = 75;
    sweep.area_side_m = 3536.0;  // 12.5 km^2: same node density as the paper
  }
  sweep.seeds = seed_count(full_sweep() ? 3 : 2);
  return sweep;
}

/// Runs the sweep and emits one table per protocol with rows
/// (events, interest, metric). `extract` maps a finished run to the figure's
/// y-value (per-process mean).
inline void run_frugality_figure(
    const char* figure_title, const char* metric_column,
    const std::function<double(const core::RunResult&)>& extract) {
  const FrugalitySweep sweep = default_frugality_sweep();

  for (const core::Protocol protocol : sweep.protocols) {
    std::vector<std::string> columns{"events"};
    for (const double interest : sweep.interests) {
      columns.push_back("at_" + stats::format_double(interest * 100, 0) +
                        "pct");
    }
    stats::Table table{std::string{figure_title} + " — " +
                           core::to_string(protocol) + " (" + metric_column +
                           ")",
                       columns};

    for (const int events : sweep.event_counts) {
      std::vector<double> row{static_cast<double>(events)};
      for (const double interest : sweep.interests) {
        stats::Summary summary;
        for (int seed = 1; seed <= sweep.seeds; ++seed) {
          auto config = rwp_world(10.0, 10.0, interest,
                                  static_cast<std::uint64_t>(seed));
          config.node_count = sweep.node_count;
          if (auto* rwp =
                  std::get_if<core::RandomWaypointSetup>(&config.mobility)) {
            rwp->config.width_m = sweep.area_side_m;
            rwp->config.height_m = sweep.area_side_m;
          }
          config.protocol = protocol;
          config.event_count = static_cast<std::uint32_t>(events);
          config.event_bytes = 400;
          config.publish_spacing = SimDuration::from_seconds(1.0);
          summary.add(extract(core::run_experiment(config)));
        }
        row.push_back(summary.mean());
      }
      table.add_numeric_row(row, 1);
    }
    table.emit();
  }
}

}  // namespace frugal::bench
