// Figure 13: probability of event reception as a function of the heartbeat
// upper bound period (1-5 s), city section model, 100% subscribers, validity
// 150 s. Every process publishes in turn; results are averaged over all
// publishers and seeds, as in the paper.

#include <vector>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 13", "reliability vs heartbeat upper bound (city section)");

  stats::Table table{"Fig 13 reliability vs heartbeat period",
                     {"hb_upper[s]", "reliability", "ci95"}};

  for (const double hb_upper : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats::Summary reliability;
    for (int seed = 1; seed <= seed_count(); ++seed) {
      for (NodeId publisher = 0; publisher < 15; ++publisher) {
        auto config =
            city_world(/*interest=*/1.0, static_cast<std::uint64_t>(seed));
        config.frugal.hb_upper = SimDuration::from_seconds(hb_upper);
        config.publisher = publisher;
        reliability.add(core::run_experiment(config).reliability());
      }
    }
    table.add_numeric_row(
        {hb_upper, reliability.mean(), reliability.ci95_half_width()}, 3);
  }
  table.emit();

  std::printf(
      "\nExpected shape (paper: 76.9 / 75.1 / 65.5 / 69.9 / 54.0 %%): "
      "reliability degrades as heartbeats slow from 1-2 s to 5 s (~20 pts "
      "lost), with a non-monotonic dip near 3 s attributed to heartbeat "
      "collisions.\n");
  return 0;
}
