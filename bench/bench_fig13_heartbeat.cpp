// Figure 13: probability of event reception as a function of the heartbeat
// upper bound period (1-5 s), city section model, 100% subscribers, validity
// 150 s. Every process publishes in turn; results are averaged over all
// publishers and seeds, as in the paper.
//
// Thin wrapper: the whole experiment is the registered "fig13_heartbeat"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig13_heartbeat");
}
