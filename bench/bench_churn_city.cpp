// Churn x subscribers on the city-section world (beyond the paper's
// figures): crash/recovery blackouts crossed with the subscriber fraction,
// publishing from a sample of processes (all 15 under FRUGAL_FULL).
//
// Thin wrapper: the whole experiment is the registered "churn_city"
// scenario (src/runner/scenarios.cpp). FRUGAL_SHARD=i/N turns this binary
// into one shard of a multi-machine sweep (see EXPERIMENTS.md).

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("churn_city");
}
