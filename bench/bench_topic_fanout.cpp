// Topic-tree fan-out workloads (beyond the paper's figures): reliability
// and cost swept against hierarchy depth, branching factor, Zipf-skewed
// leaf popularity and the broad-vs-narrow subscriber mix.
//
// Thin wrapper: the whole experiment is the registered "topic_fanout"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("topic_fanout");
}
