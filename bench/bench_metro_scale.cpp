// Metro-scale city world (10k+ processes): the scenario the medium's
// uniform-grid spatial index unlocks. Thin wrapper over the registered
// "metro_scale" scenario; see src/runner/scenarios.cpp and EXPERIMENTS.md.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("metro_scale");
}
