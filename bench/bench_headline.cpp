// Headline claims (paper abstract / s1): reliability, bandwidth savings,
// duplicate and parasite factors in the paper's own RWP setting.
//
// Thin wrapper: the whole experiment is the registered "headline"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("headline");
}
