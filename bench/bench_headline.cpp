// Headline claims (paper abstract / §1): one binary that checks the numbers
// the paper leads with, in the paper's own setting:
//
//  1. "an event with a validity period of 180 s is received by 95% of the
//     120 devices which move at 10 mps in an area of 25 km^2"
//     (120 subscribed devices = 80% of 150).
//  2. "for disseminating one event of 400 bytes ... we save between 300%
//     and 450% of the bandwidth" vs the flooding alternatives.
//  3. "each subscriber receives between 70 and 100 times less duplicates"
//  4. "and between 50 and 90 times less parasite events."

#include <cstdio>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Headline", "the abstract's numbers, in the paper's RWP setting");

  struct Accumulator {
    stats::Summary reliability;
    stats::Summary bytes;
    stats::Summary duplicates;
    stats::Summary parasites;
  };
  Accumulator frugal_acc;
  Accumulator interest_acc;
  Accumulator simple_acc;

  for (int seed = 1; seed <= seed_count(); ++seed) {
    auto config = rwp_world(10.0, 10.0, 0.8, static_cast<std::uint64_t>(seed));
    const auto run = [&](core::Protocol protocol, Accumulator& acc) {
      config.protocol = protocol;
      const auto result = core::run_experiment(config);
      acc.reliability.add(result.reliability());
      acc.bytes.add(result.mean_bytes_sent_per_node());
      acc.duplicates.add(result.mean_duplicates_per_node());
      acc.parasites.add(result.mean_parasites_per_node());
    };
    run(core::Protocol::kFrugal, frugal_acc);
    run(core::Protocol::kFloodInterestAware, interest_acc);
    run(core::Protocol::kFloodSimple, simple_acc);
  }

  stats::Table table{"Headline: 1 event, 400 B, 150 nodes, 10 mps, 80% subs",
                     {"metric", "frugal", "interests-aware", "simple",
                      "paper claim"}};
  table.add_row({"reliability @180s",
                 stats::format_double(frugal_acc.reliability.mean(), 3),
                 stats::format_double(interest_acc.reliability.mean(), 3),
                 stats::format_double(simple_acc.reliability.mean(), 3),
                 "0.95 (frugal)"});
  table.add_row({"bytes sent/process",
                 stats::format_double(frugal_acc.bytes.mean(), 0),
                 stats::format_double(interest_acc.bytes.mean(), 0),
                 stats::format_double(simple_acc.bytes.mean(), 0),
                 "3-4.5x saved"});
  table.add_row({"duplicates/process",
                 stats::format_double(frugal_acc.duplicates.mean(), 1),
                 stats::format_double(interest_acc.duplicates.mean(), 1),
                 stats::format_double(simple_acc.duplicates.mean(), 1),
                 "70-100x fewer"});
  table.add_row({"parasites/process",
                 stats::format_double(frugal_acc.parasites.mean(), 1),
                 stats::format_double(interest_acc.parasites.mean(), 1),
                 stats::format_double(simple_acc.parasites.mean(), 1),
                 "50-90x fewer"});
  table.emit();

  const double bandwidth_factor =
      interest_acc.bytes.mean() / std::max(frugal_acc.bytes.mean(), 1.0);
  const double duplicate_factor = interest_acc.duplicates.mean() /
                                  std::max(frugal_acc.duplicates.mean(), 0.01);
  const double parasite_factor = interest_acc.parasites.mean() /
                                 std::max(frugal_acc.parasites.mean(), 0.01);
  std::printf(
      "\nMeasured factors vs the best flooding alternative: bandwidth %.1fx, "
      "duplicates %.0fx, parasites %.0fx (paper: 3-4.5x / 70-100x / "
      "50-90x).\n",
      bandwidth_factor, duplicate_factor, parasite_factor);
  return 0;
}
