// Energy lifetime (beyond the paper's figures): radio power-state energy
// accounting with finite batteries — joules per delivered event, first
// battery death and survivors across battery capacity x beat period x
// protocol (frugal vs interests-aware flooding), with optional duty-cycle
// sleep on the --full grid.
//
// Thin wrapper: the whole experiment is the registered "energy_lifetime"
// scenario (src/runner/scenarios.cpp). FRUGAL_SHARD=i/N turns this binary
// into one shard of a multi-machine sweep (see EXPERIMENTS.md).

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("energy_lifetime");
}
