// Event-table memory pressure (beyond the paper's figures): capacity x
// publish-rate grids that keep far more valid events in flight than a
// process can store, driving Fig. 3's GC victim selection (Equation 1)
// under real load.
//
// Thin wrapper: the whole experiment is the registered "memory_pressure"
// scenario (src/runner/scenarios.cpp). FRUGAL_SHARD=i/N turns this binary
// into one shard of a multi-machine sweep (see EXPERIMENTS.md).

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("memory_pressure");
}
