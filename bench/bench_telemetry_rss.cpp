// Bounded-memory proof for the streaming telemetry engine.
//
// Runs one long publish stream (FRUGAL_BENCH_EVENTS events, default 50k; the
// million-event configuration documented in EXPERIMENTS.md is
// FRUGAL_BENCH_EVENTS=1000000) through a bounded-memory telemetry hub and
// checks the memory story end to end:
//   - no per-event or per-(node,event) records were materialized,
//   - the hub's live-event ring peaked at the validity/spacing cap — a
//     function of the probe window, NOT of the event count,
// and reports peak RSS so CI logs show the flat-memory behaviour. The
// structural checks are the real assertions; RSS itself is reported rather
// than thresholded (allocator noise differs across boxes).

#include <cstdio>
#include <cstdlib>

#include <sys/resource.h>

#include "core/experiment.hpp"
#include "sim/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"

using namespace frugal;

namespace {

[[nodiscard]] long max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

}  // namespace

int main() {
  const auto event_count =
      static_cast<std::uint32_t>(env_int("FRUGAL_BENCH_EVENTS", 50'000));

  // Dense static world: no mobility cost, every frame lands, so wall time
  // goes into the publish/delivery/telemetry streams this bench measures.
  // The event-table capacity is sized to the validity window (~100 live
  // events) so the protocol runs at its bounded steady state — tables churn
  // through capacity GC (exercising the eviction counters the telemetry
  // tracks) instead of accumulating thousands of expired entries that every
  // victim scan and index walk would have to crawl past.
  core::ExperimentConfig config;
  config.node_count = 12;
  config.interest_fraction = 1.0;
  config.mobility = core::StaticSetup{800.0, 800.0};
  config.medium.range_m = 1200.0;
  config.warmup = SimDuration::from_seconds(5);
  config.event_validity = SimDuration::from_seconds(2);
  config.publish_spacing = SimDuration::from_seconds(0.02);
  config.event_count = event_count;
  config.event_bytes = 64;
  config.frugal.event_table_capacity = 128;
  config.seed = 7;

  telemetry::TelemetryConfig telemetry_config;
  telemetry_config.bounded_memory = true;
  telemetry_config.probe_validities_s = {1.0};
  telemetry_config.window_s = 10.0;
  telemetry::RunTelemetry hub{telemetry_config};
  config.telemetry = &hub;
  sim::Profiler profiler;
  config.profiler = &profiler;

  const long rss_before_kb = max_rss_kb();
  const core::RunResult result = core::run_experiment(config);
  const long rss_after_kb = max_rss_kb();

  // validity/spacing events can be live at once, +1 for the event published
  // exactly at a probe deadline; retirement runs on the monotone stream
  // clock, so transient overshoot of one more is the hard ceiling.
  const std::size_t live_cap =
      static_cast<std::size_t>(config.event_validity.seconds() /
                               config.publish_spacing.seconds()) +
      2;

  std::printf("events            %u\n", event_count);
  std::printf("delivered         %zu\n", result.delivered_count());
  std::printf("reliability       %.4f\n", result.reliability());
  std::printf("live-event peak   %zu (cap %zu)\n",
              hub.live_event_high_water(), live_cap);
  std::printf("max RSS           %.1f MiB (%.1f before run)\n",
              static_cast<double>(rss_after_kb) / 1024.0,
              static_cast<double>(rss_before_kb) / 1024.0);
  for (const auto& [name, section] : profiler.sections()) {
    std::printf("profile           %-24s %10.3f ms  %12lld calls\n",
                name.c_str(), static_cast<double>(section.wall_ns) / 1e6,
                static_cast<long long>(section.count));
  }

  bool ok = true;
  if (!result.events.empty()) {
    std::fprintf(stderr, "FAIL: bounded run materialized %zu event records\n",
                 result.events.size());
    ok = false;
  }
  for (const core::NodeOutcome& node : result.nodes) {
    if (!node.delivered_at.empty()) {
      std::fprintf(stderr,
                   "FAIL: bounded run materialized delivered_at vectors\n");
      ok = false;
      break;
    }
  }
  if (!result.aggregates.has_value()) {
    std::fprintf(stderr, "FAIL: bounded run produced no aggregates\n");
    ok = false;
  }
  if (hub.live_event_high_water() > live_cap) {
    std::fprintf(stderr,
                 "FAIL: live-event ring peaked at %zu > cap %zu — memory "
                 "scales with event count, not window\n",
                 hub.live_event_high_water(), live_cap);
    ok = false;
  }
  if (result.delivered_count() == 0) {
    std::fprintf(stderr, "FAIL: nothing was delivered\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
