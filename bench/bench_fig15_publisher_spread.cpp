// Figure 15: difference between the best and the worst publisher --
// max-over-publishers minus min-over-publishers of reliability, for
// different subscriber fractions (city section).
//
// Thin wrapper: the whole experiment is the registered "fig15_publisher_spread"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig15_publisher_spread");
}
