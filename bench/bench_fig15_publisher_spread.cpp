// Figure 15: difference between the best and the worst publisher —
// max-over-publishers minus min-over-publishers of reliability, for
// different subscriber fractions (city section). The spread demonstrates
// how much the path taken by the original publisher matters.

#include <algorithm>
#include <vector>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 15", "reliability spread across publishers (city section)");

  stats::Table table{
      "Fig 15 publisher reliability spread",
      {"subscribers[%]", "max-min[pp]", "best[%]", "worst[%]"}};

  for (const double interest : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    // Average each publisher over seeds, then take the spread — the paper's
    // "difference between the minimum and maximum reliability between the
    // publishers".
    std::vector<stats::Summary> per_publisher(15);
    for (int seed = 1; seed <= seed_count(); ++seed) {
      for (NodeId publisher = 0; publisher < 15; ++publisher) {
        auto config = city_world(interest, static_cast<std::uint64_t>(seed));
        config.publisher = publisher;
        per_publisher[publisher].add(
            core::run_experiment(config).reliability());
      }
    }
    double best = 0.0;
    double worst = 1.0;
    for (const auto& summary : per_publisher) {
      best = std::max(best, summary.mean());
      worst = std::min(worst, summary.mean());
    }
    table.add_numeric_row(
        {interest * 100, (best - worst) * 100, best * 100, worst * 100}, 1);
  }
  table.emit();

  std::printf(
      "\nExpected shape (paper: 40.9 / 44.7 / 47.9 / 53.9 / 60.0 pp): a "
      "large gap between the luckiest and unluckiest publisher at every "
      "subscriber fraction, growing with the fraction.\n");
  return 0;
}
