// Medium receiver-resolution scaling: uniform-grid spatial index vs the
// brute-force O(n) scan it replaced.
//
// Constant-density random-waypoint worlds (so per-node neighbourhoods stay
// comparable as n grows) with a fixed per-node broadcast rate: wall time per
// world is ~O(n) on the indexed path and ~O(n^2) on the brute-force path.
// Both paths run the identical workload and must finish with identical
// aggregate traffic counters — the bench doubles as an end-to-end
// equivalence check at sizes the unit tests don't reach.
//
// Prints a table and writes BENCH_medium_scaling.json (CI perf-trajectory
// artifact; directory overridable via FRUGAL_BENCH_DIR).
//
// Environment knobs:
//   FRUGAL_BENCH_NODES  comma-free max node count (default 4000)
//   FRUGAL_BENCH_DIR    output directory for the JSON artifact (default .)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"
#include "stats/table.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace {

using namespace frugal;

class NullSink final : public net::MediumClient {
 public:
  void on_frame(const net::Frame&) override {}
};

struct RunTotals {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collided = 0;
  std::uint64_t missed_busy = 0;
  double wall_s = 0;
};

/// One complete world: n nodes, ~5 broadcasts per node over a 10 s window,
/// area scaled to keep ~10 neighbours per node at 120 m range.
RunTotals run_world(std::size_t nodes, bool use_index, std::uint64_t seed) {
  mobility::RandomWaypointConfig mob_config;
  const double side = 65.0 * std::sqrt(static_cast<double>(nodes));
  mob_config.width_m = side;
  mob_config.height_m = side;
  mob_config.speed_min_mps = 1.0;
  mob_config.speed_max_mps = 10.0;
  mob_config.pause = SimDuration::from_seconds(0.5);
  mobility::RandomWaypoint mobility{mob_config, nodes, Rng{seed * 77 + 1}};

  sim::Scheduler scheduler;
  net::MediumConfig config;
  config.range_m = 120.0;
  config.rate_bps = 1e6;
  config.max_jitter = SimDuration::from_ms(3);
  config.use_spatial_index = use_index;
  net::Medium medium{scheduler, mobility, config, Rng{seed ^ 0xBEEF}};

  std::vector<NullSink> sinks(nodes);
  for (NodeId id = 0; id < nodes; ++id) medium.attach(id, &sinks[id]);

  Rng traffic{seed * 13 + 5};
  const std::size_t broadcasts = nodes * 5;
  for (std::size_t i = 0; i < broadcasts; ++i) {
    const auto sender = static_cast<NodeId>(traffic.uniform_u64(nodes));
    const SimTime at = SimTime::from_seconds(traffic.uniform(0, 10.0));
    scheduler.schedule_at(at,
                          [&medium, sender] { medium.broadcast(sender, 125, 0); });
  }

  // detlint: wall-clock-ok(bench harness wall-time; never fed back into sim)
  const auto start = std::chrono::steady_clock::now();
  scheduler.run_until(SimTime::from_seconds(15.0));
  scheduler.run_all();
  // detlint: wall-clock-ok(bench harness wall-time measurement)
  const auto end = std::chrono::steady_clock::now();

  RunTotals totals;
  totals.wall_s = std::chrono::duration<double>(end - start).count();
  for (NodeId id = 0; id < nodes; ++id) {
    const net::TrafficCounters& c = medium.counters(id);
    totals.sent += c.frames_sent;
    totals.delivered += c.frames_delivered;
    totals.collided += c.frames_collided;
    totals.missed_busy += c.frames_missed_busy;
  }
  return totals;
}

}  // namespace

int main() {
  const auto max_nodes =
      static_cast<std::size_t>(frugal::env_int("FRUGAL_BENCH_NODES", 4000));
  std::vector<std::size_t> counts;
  for (std::size_t n = 250; n <= max_nodes; n *= 2) counts.push_back(n);

  stats::Table table{
      "Medium receiver resolution: spatial index vs brute-force scan",
      {"nodes", "brute[s]", "indexed[s]", "speedup", "frames", "identical"}};

  std::string json = "[\n";
  bool mismatch = false;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::size_t n = counts[i];
    const RunTotals brute = run_world(n, /*use_index=*/false, 42);
    const RunTotals indexed = run_world(n, /*use_index=*/true, 42);
    const bool identical = brute.sent == indexed.sent &&
                           brute.delivered == indexed.delivered &&
                           brute.collided == indexed.collided &&
                           brute.missed_busy == indexed.missed_busy;
    mismatch |= !identical;
    table.add_row({std::to_string(n),
                   stats::format_double(brute.wall_s, 3),
                   stats::format_double(indexed.wall_s, 3),
                   stats::format_double(brute.wall_s /
                                            std::max(indexed.wall_s, 1e-9),
                                        1),
                   std::to_string(indexed.delivered),
                   identical ? "yes" : "NO"});
    json += "  {\"nodes\": " + std::to_string(n) +
            ", \"brute_wall_s\": " + stats::format_double(brute.wall_s, 4) +
            ", \"indexed_wall_s\": " +
            stats::format_double(indexed.wall_s, 4) +
            ", \"frames_delivered\": " + std::to_string(indexed.delivered) +
            ", \"counters_identical\": " + (identical ? "true" : "false") +
            "}" + (i + 1 < counts.size() ? "," : "") + "\n";
  }
  json += "]\n";
  table.emit();

  const std::string dir =
      frugal::env_string("FRUGAL_BENCH_DIR").value_or(".");
  const std::string path = dir + "/BENCH_medium_scaling.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  if (mismatch) {
    std::fprintf(stderr,
                 "FAIL: indexed and brute-force counters diverged\n");
    return 1;
  }
  return 0;
}
