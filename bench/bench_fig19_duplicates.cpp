// Figure 19: number of duplicate events received per process as a function
// of the number of events to publish and the subscriber fraction.
//
// Thin wrapper: the whole experiment is the registered "fig19_duplicates"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig19_duplicates");
}
