// Figure 19: number of duplicate events received per process as a function
// of the number of events to publish and the subscriber fraction.

#include "frugality.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 19", "duplicates received per process vs events x subscribers");
  run_frugality_figure("Fig 19 duplicates", "duplicates received/process",
                       [](const core::RunResult& result) {
                         return result.mean_duplicates_per_node();
                       });
  std::printf(
      "\nExpected shape (paper): frugal beats interests-aware flooding by "
      "50-80x and the other variants by 80-700x; in the worst case a frugal "
      "subscriber sees an event ~4 times in 180 s.\n");
  return 0;
}
