// Figure 14: probability of event reception as a function of the number of
// subscribers (20-100%), city section model, heartbeat upper bound 1 s,
// validity 150 s. Every process publishes in turn.
//
// Thin wrapper: the whole experiment is the registered "fig14_city_subscribers"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig14_city_subscribers");
}
