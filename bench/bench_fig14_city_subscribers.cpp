// Figure 14: probability of event reception as a function of the number of
// subscribers (20-100%), city section model, heartbeat upper bound 1 s,
// validity 150 s. Every process publishes in turn (including processes that
// did not subscribe, when interest < 100%).

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 14", "reliability vs subscribers (city section)");

  stats::Table table{"Fig 14 reliability vs subscribers",
                     {"subscribers[%]", "reliability", "ci95"}};

  for (const double interest : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    stats::Summary reliability;
    for (int seed = 1; seed <= seed_count(); ++seed) {
      for (NodeId publisher = 0; publisher < 15; ++publisher) {
        auto config = city_world(interest, static_cast<std::uint64_t>(seed));
        config.publisher = publisher;
        reliability.add(core::run_experiment(config).reliability());
      }
    }
    table.add_numeric_row(
        {interest * 100, reliability.mean(), reliability.ci95_half_width()},
        3);
  }
  table.emit();

  std::printf(
      "\nExpected shape (paper: 58.1 / 59.7 / 62.5 / 68.6 / 76.9 %%): "
      "reliability grows slowly with the subscriber fraction, and even 20%% "
      "subscribers reach ~60%% — constrained paths make encounters far more "
      "likely than in the random waypoint model.\n");
  return 0;
}
