// Event-table covering-query scaling: ids_matching() on the persistent
// topic index vs the flat O(events x subscriptions) scan it replaced.
//
// Builds a 10k-event table over a depth-4 hierarchy (branching 10: 10k
// leaves) and times ids_matching() for narrow (one depth-2 subtree), mixed
// (four depth-2/3 subscriptions) and broad (root) interest sets, against a
// baseline that replicates the pre-index implementation: scan every stored
// event, test interests.covers(topic), sort. Plain executable (no
// google-benchmark dependency) so the comparison always builds; the CI
// bench smoke runs it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event_table.hpp"

namespace {

using namespace frugal;
using core::Event;
using core::EventId;
using core::EventIdHash;
using core::EventTable;
using topics::SubscriptionSet;
using topics::Topic;

/// The flat scan EventTable::ids_matching used before the topic index:
/// iterate the whole unordered_map, covers() per event, sort at the end.
std::vector<EventId> flat_scan(
    const std::unordered_map<EventId, Event, EventIdHash>& events,
    const SubscriptionSet& interests, SimTime now) {
  std::vector<EventId> out;
  // detlint: unordered-iter-ok(pre-index baseline; result sorted below)
  for (const auto& [id, event] : events) {
    if (event.valid_at(now) && interests.covers(event.topic)) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double time_us(int reps, const auto& fn) {
  // One warm-up call, then the mean over `reps` timed calls.
  fn();
  // detlint: wall-clock-ok(bench harness measures wall time only)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  // detlint: wall-clock-ok(bench harness wall-time measurement)
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() / reps;
}

}  // namespace

int main() {
  constexpr std::size_t kEvents = 10000;
  constexpr int kDepth = 4;
  constexpr int kBranching = 10;  // 10^4 leaves: one event per leaf

  EventTable table{kEvents};
  std::unordered_map<EventId, Event, EventIdHash> replica;  // baseline store
  std::uint32_t seq = 0;
  for (const Topic& leaf : frugal::topics::complete_tree_level(
           Topic::parse(".t"), kBranching, kDepth)) {
    Event e;
    e.id = EventId{1, seq++};
    e.topic = leaf;
    e.validity = SimDuration::from_seconds(180);
    replica.emplace(e.id, e);
    table.insert(std::move(e), SimTime::zero());
  }
  const SimTime now = SimTime::from_seconds(1);

  struct Case {
    const char* label;
    SubscriptionSet interests;
  };
  std::vector<Case> cases;
  cases.push_back({"narrow (1 sub, depth-2 subtree: 100 events)",
                   SubscriptionSet{{Topic::parse(".t.b3.b7")}}});
  cases.push_back({"mixed (4 subs, depth 2-3: ~220 events)",
                   SubscriptionSet{{Topic::parse(".t.b0.b0"),
                                    Topic::parse(".t.b4.b2"),
                                    Topic::parse(".t.b9.b9.b1"),
                                    Topic::parse(".t.b5.b5.b5")}}});
  cases.push_back({"broad (root: all 10000 events)",
                   SubscriptionSet{{Topic{}}}});

  std::printf("ids_matching on %zu events, depth-%d hierarchy\n",
              table.size(), kDepth);
  std::printf("%-45s %12s %12s %9s\n", "interest set", "indexed[us]",
              "flat[us]", "speedup");
  for (const Case& c : cases) {
    const auto indexed = table.ids_matching(c.interests, now);
    const auto flat = flat_scan(replica, c.interests, now);
    if (indexed != flat) {
      std::printf("MISMATCH for %s: indexed %zu ids, flat %zu ids\n",
                  c.label, indexed.size(), flat.size());
      return 1;
    }
    const int reps = 200;
    const double indexed_us = time_us(
        reps, [&] { return table.ids_matching(c.interests, now).size(); });
    const double flat_us = time_us(
        reps, [&] { return flat_scan(replica, c.interests, now).size(); });
    std::printf("%-45s %12.1f %12.1f %8.1fx\n", c.label, indexed_us, flat_us,
                flat_us / indexed_us);
  }
  return 0;
}
