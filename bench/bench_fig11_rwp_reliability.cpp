// Figure 11: probability of event reception as a function of the validity
// period, the speed of the processes and the number of subscribers (20% vs
// 80%), in the random waypoint model (150 processes, 25 km^2).
//
// One simulated run per (speed, interest, seed) is enough for the whole
// validity axis: reliability at probe validity v is the fraction of
// subscribers whose delivery time is within v of publication, which is
// exactly what a shorter-validity run would measure (single event, ample
// memory; see DESIGN.md).

#include <vector>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 11",
         "reliability vs validity x speed, 20% and 80% subscribers (RWP)");

  const std::vector<double> speeds =
      full_sweep() ? std::vector<double>{0, 1, 5, 10, 20, 30, 40}
                   : std::vector<double>{0, 1, 10, 20, 40};
  const std::vector<double> validities =
      full_sweep()
          ? std::vector<double>{20, 40, 60, 80, 100, 120, 140, 160, 180}
          : std::vector<double>{20, 60, 100, 140, 180};

  for (const double interest : {0.2, 0.8}) {
    std::vector<std::string> columns{"speed[mps]"};
    for (const double v : validities) {
      columns.push_back("rel@" + stats::format_double(v, 0) + "s");
    }
    stats::Table table{
        "Fig 11 reliability, " + stats::format_double(interest * 100, 0) +
            "pct subscribers",
        columns};

    for (const double speed : speeds) {
      std::vector<stats::Summary> by_validity(validities.size());
      for (int seed = 1; seed <= seed_count(); ++seed) {
        const auto result = core::run_experiment(
            rwp_world(speed, speed, interest, static_cast<std::uint64_t>(seed)));
        for (std::size_t i = 0; i < validities.size(); ++i) {
          by_validity[i].add(result.reliability_within(
              SimDuration::from_seconds(validities[i])));
        }
      }
      std::vector<double> row{speed};
      for (const auto& summary : by_validity) row.push_back(summary.mean());
      table.add_numeric_row(row, 3);
    }
    table.emit();
  }
  std::printf(
      "\nExpected shape (paper): reliability rises with validity and with "
      "speed; the 20%% surface stays low (30 subscribers over 25 km^2 is too "
      "sparse) while 80%% reaches ~0.95 at 10 mps x 180 s.\n");
  return 0;
}
