// Figure 11: probability of event reception as a function of the validity
// period, the speed of the processes and the number of subscribers (20% vs
// 80%), in the random waypoint model (150 processes, 25 km^2).
//
// Thin wrapper: the whole experiment is the registered "fig11_rwp_reliability"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig11_rwp_reliability");
}
