// Shared setup for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure of the paper's §5. The paper
// averaged every point over 30 seeded runs; that is expensive, so the seed
// count defaults low and scales with FRUGAL_SEEDS (set FRUGAL_SEEDS=30 for
// paper-strength averaging). FRUGAL_FULL=1 selects the paper's full parameter
// grids instead of the coarser default sweeps. FRUGAL_CSV_DIR=<dir> writes
// every emitted table as CSV.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/env.hpp"

namespace frugal::bench {

[[nodiscard]] inline int seed_count(int fallback = 3) {
  return static_cast<int>(env_int("FRUGAL_SEEDS", fallback));
}

[[nodiscard]] inline bool full_sweep() {
  return env_bool("FRUGAL_FULL", false);
}

/// The paper's random-waypoint world: 150 processes over 25 km^2, 802.11b
/// basic-rate radio (442 m two-ray range), heartbeat upper bound 1 s, 600 s
/// of warm-up before the publication (§5.1).
[[nodiscard]] inline core::ExperimentConfig rwp_world(double speed_min_mps,
                                                      double speed_max_mps,
                                                      double interest,
                                                      std::uint64_t seed) {
  core::ExperimentConfig config;
  config.node_count = 150;
  config.interest_fraction = interest;
  if (speed_max_mps <= 0.0) {
    config.mobility = core::StaticSetup{5000.0, 5000.0};
  } else {
    core::RandomWaypointSetup rwp;
    rwp.config.width_m = 5000.0;
    rwp.config.height_m = 5000.0;
    rwp.config.speed_min_mps = speed_min_mps;
    rwp.config.speed_max_mps = speed_max_mps;
    rwp.config.pause = SimDuration::from_seconds(1.0);  // paper §5.1
    rwp.config.per_node_constant_speed = speed_min_mps != speed_max_mps;
    config.mobility = rwp;
  }
  config.medium.range_m = 442.0;  // 1 Mbps sensitivity -93 dB (two-ray)
  config.medium.rate_bps = 1e6;
  config.frugal.hb_upper = SimDuration::from_seconds(1.0);
  config.warmup = SimDuration::from_seconds(600.0);
  config.event_validity = SimDuration::from_seconds(180.0);
  config.seed = seed;
  return config;
}

/// The paper's city-section world: 15 processes on a 1200 x 900 m campus
/// street grid, 44 m radio range, speed limits 8-13 mps (§5.1).
[[nodiscard]] inline core::ExperimentConfig city_world(double interest,
                                                       std::uint64_t seed) {
  core::ExperimentConfig config;
  config.node_count = 15;
  config.interest_fraction = interest;
  core::CitySetup city;  // defaults already match the paper's campus
  config.mobility = city;
  config.medium.range_m = 44.0;  // city reception sensitivity -65 dB
  config.medium.rate_bps = 1e6;
  config.frugal.hb_upper = SimDuration::from_seconds(1.0);
  // No explicit warm-up in the paper's city runs; a short one lets the
  // processes leave their starting intersections.
  config.warmup = SimDuration::from_seconds(30.0);
  config.event_validity = SimDuration::from_seconds(150.0);
  config.seed = seed;
  return config;
}

/// Prints the standard harness banner.
inline void banner(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf("# seeds per point: %d%s (FRUGAL_SEEDS to change)\n",
              seed_count(), full_sweep() ? ", full paper grid" : "");
}

}  // namespace frugal::bench
