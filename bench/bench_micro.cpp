// Micro-benchmarks (google-benchmark) for the hot paths of the simulator and
// the protocol data structures: scheduler throughput, topic matching, event
// table GC, codec round trips, and medium broadcast fan-out.

#include <benchmark/benchmark.h>

#include "core/event_table.hpp"
#include "core/neighborhood_table.hpp"
#include "core/wire.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"
#include "topics/subscription_set.hpp"

namespace {

using namespace frugal;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (int i = 0; i < state.range(0); ++i) {
      scheduler.schedule_at(SimTime::from_us(i), [] {});
    }
    scheduler.run_all();
    benchmark::DoNotOptimize(scheduler.executed_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    std::vector<sim::TaskHandle> handles;
    for (int i = 0; i < state.range(0); ++i) {
      handles.push_back(scheduler.schedule_at(SimTime::from_us(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    scheduler.run_all();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10000);

void BM_TopicCovers(benchmark::State& state) {
  const auto broad = topics::Topic::parse(".a.b");
  const auto deep = topics::Topic::parse(".a.b.c.d.e.f.g.h");
  for (auto _ : state) {
    benchmark::DoNotOptimize(broad.covers(deep));
    benchmark::DoNotOptimize(deep.covers(broad));
  }
}
BENCHMARK(BM_TopicCovers);

void BM_SubscriptionOverlap(benchmark::State& state) {
  topics::SubscriptionSet a;
  topics::SubscriptionSet b;
  for (int i = 0; i < state.range(0); ++i) {
    a.add(topics::Topic::parse(".a.t" + std::to_string(i)));
    b.add(topics::Topic::parse(".b.t" + std::to_string(i)));
  }
  b.add(topics::Topic::parse(".a.t0.deep"));  // single overlap, worst case
  for (auto _ : state) benchmark::DoNotOptimize(a.overlaps(b));
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_SubscriptionOverlap)->Arg(4)->Arg(16);

void BM_EventTableInsertWithGc(benchmark::State& state) {
  using namespace frugal::core;
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventTable table{capacity};
    for (std::uint32_t i = 0; i < 2 * capacity; ++i) {
      Event e;
      e.id = EventId{1, i};
      e.topic = topics::Topic::parse(".t");
      e.validity = SimDuration::from_seconds(60 + i % 120);
      table.insert(std::move(e), SimTime::from_us(i));
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_EventTableInsertWithGc)->Arg(64)->Arg(1024);

void BM_EventTableIdsMatching(benchmark::State& state) {
  using namespace frugal::core;
  // A populated depth-3 hierarchy; the query interest covers one depth-1
  // subtree (1/8 of the events) — the dissemination loops' typical shape.
  const auto events = static_cast<std::uint32_t>(state.range(0));
  EventTable table{events};
  const auto leaves = topics::complete_tree_level(
      topics::Topic::parse(".t"), /*branching=*/8, /*depth=*/3);
  for (std::uint32_t i = 0; i < events; ++i) {
    Event e;
    e.id = EventId{1, i};
    e.topic = leaves[i % leaves.size()];
    e.validity = SimDuration::from_seconds(180);
    table.insert(std::move(e), SimTime::zero());
  }
  topics::SubscriptionSet interests;
  interests.add(topics::Topic::parse(".t.b3"));
  const SimTime now = SimTime::from_seconds(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.ids_matching(interests, now).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventTableIdsMatching)->Arg(1024)->Arg(10240);

void BM_NeighborhoodRecordEvent(benchmark::State& state) {
  using namespace frugal::core;
  NeighborhoodTable table;
  topics::SubscriptionSet subs;
  subs.add(topics::Topic::parse(".a"));
  for (NodeId n = 0; n < 32; ++n) {
    table.upsert(n, subs, std::nullopt, SimTime::zero());
  }
  std::uint32_t seq = 0;
  for (auto _ : state) {
    table.record_event(seq % 32, core::EventId{1, seq % 4096});
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborhoodRecordEvent);

void BM_CodecRoundTrip(benchmark::State& state) {
  using namespace frugal::core;
  EventBundle bundle;
  bundle.sender = 1;
  for (std::uint32_t i = 0; i < 8; ++i) {
    Event e;
    e.id = EventId{1, i};
    e.topic = topics::Topic::parse(".news.local.traffic");
    e.validity = SimDuration::from_seconds(180);
    e.payload = std::string(64, 'x');
    bundle.events.push_back(std::move(e));
  }
  bundle.presumed_receivers = {2, 3, 4, 5};
  const Message message{bundle};
  for (auto _ : state) {
    const auto bytes = encode(message);
    auto decoded = decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_MediumBroadcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  struct Null final : net::MediumClient {
    void on_frame(const net::Frame&) override {}
  };
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler scheduler;
    mobility::RandomWaypointConfig rwp_config;
    rwp_config.width_m = 1000;
    rwp_config.height_m = 1000;
    rwp_config.speed_min_mps = 1;
    rwp_config.speed_max_mps = 1;
    mobility::RandomWaypoint mobility{rwp_config, n, Rng{1}};
    net::MediumConfig medium_config;
    medium_config.range_m = 300;
    net::Medium medium{scheduler, mobility, medium_config, Rng{2}};
    std::vector<Null> clients(n);
    for (NodeId id = 0; id < n; ++id) medium.attach(id, &clients[id]);
    state.ResumeTiming();

    for (NodeId id = 0; id < n; ++id) medium.broadcast(id, 400, 0);
    scheduler.run_all();
    benchmark::DoNotOptimize(medium.counters(0).frames_sent);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MediumBroadcastFanout)->Arg(50)->Arg(150);

}  // namespace

BENCHMARK_MAIN();
