// Ablation study: which of the frugal algorithm's mechanisms buys what,
// on the paper's frugality workload.
//
// Thin wrapper: the whole experiment is the registered "ablations"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("ablations");
}
