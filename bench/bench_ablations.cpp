// Ablation study: which of the frugal algorithm's mechanisms buys what.
//
// Four configurations on the paper's frugality workload (RWP @ 10 mps, 80%
// subscribers, 5 events of 400 B, validity 180 s):
//   full          — the complete algorithm
//   no-backoff    — dissemination fires immediately (no overhearing window)
//   no-id-exchange— neighbors never advertise held event ids
//   fixed-hb      — heartbeat period pinned to hb_upper (no speed adaptation)
//
// Reported per configuration: reliability, bytes sent, event copies sent and
// duplicates per process. The back-off and the id exchange are the paper's
// two duplicate-suppression mechanisms; removing either should keep
// reliability but cost duplicates/bandwidth.

#include <cstdio>

#include "common.hpp"

using namespace frugal;
using namespace frugal::bench;

namespace {

struct Ablation {
  const char* name;
  void (*apply)(core::FrugalConfig&);
  double churn_per_min = 0.0;  ///< crash/recovery injection (radio blackout)
};

}  // namespace

int main() {
  banner("Ablations", "frugal mechanisms on the frugality workload");

  const Ablation ablations[] = {
      {"full", [](core::FrugalConfig&) {}},
      {"no-backoff",
       [](core::FrugalConfig& config) { config.use_backoff = false; }},
      {"no-id-exchange",
       [](core::FrugalConfig& config) { config.exchange_event_ids = false; }},
      {"fixed-hb",
       [](core::FrugalConfig& config) { config.adaptive_heartbeat = false; }},
      {"tiny-event-table",
       [](core::FrugalConfig& config) { config.event_table_capacity = 2; }},
      {"churn-1/min", [](core::FrugalConfig&) {}, 1.0},
      {"churn-6/min", [](core::FrugalConfig&) {}, 6.0},
      // GC-policy comparison under the same severe memory pressure: does
      // Equation 1 beat naive eviction orders?
      {"gc-eq1-cap4",
       [](core::FrugalConfig& config) { config.event_table_capacity = 4; }},
      {"gc-fifo-cap4",
       [](core::FrugalConfig& config) {
         config.event_table_capacity = 4;
         config.gc_policy = core::GcPolicy::kFifo;
       }},
      {"gc-mostfwd-cap4",
       [](core::FrugalConfig& config) {
         config.event_table_capacity = 4;
         config.gc_policy = core::GcPolicy::kMostForwarded;
       }},
  };

  stats::Table table{"Ablation study (RWP 10 mps, 80% interest, 5 events)",
                     {"config", "reliability", "bytes/proc", "copies/proc",
                      "dup/proc", "parasites/proc"}};

  for (const Ablation& ablation : ablations) {
    stats::Summary reliability;
    stats::Summary bytes;
    stats::Summary copies;
    stats::Summary duplicates;
    stats::Summary parasites;
    for (int seed = 1; seed <= seed_count(); ++seed) {
      auto config =
          rwp_world(10.0, 10.0, 0.8, static_cast<std::uint64_t>(seed));
      config.event_count = 5;
      config.publish_spacing = SimDuration::from_seconds(1.0);
      config.churn.crashes_per_node_per_minute = ablation.churn_per_min;
      ablation.apply(config.frugal);
      const auto result = core::run_experiment(config);
      reliability.add(result.reliability());
      bytes.add(result.mean_bytes_sent_per_node());
      copies.add(result.mean_events_sent_per_node());
      duplicates.add(result.mean_duplicates_per_node());
      parasites.add(result.mean_parasites_per_node());
    }
    table.add_row({ablation.name,
                   stats::format_double(reliability.mean(), 3),
                   stats::format_double(bytes.mean(), 0),
                   stats::format_double(copies.mean(), 1),
                   stats::format_double(duplicates.mean(), 1),
                   stats::format_double(parasites.mean(), 1)});
  }
  table.emit();

  std::printf(
      "\nReading guide: no-backoff and no-id-exchange should preserve "
      "reliability while inflating duplicates and bandwidth; fixed-hb "
      "matters only when speeds vary; tiny-event-table shows Equation 1 "
      "keeping dissemination alive under severe memory pressure; the churn "
      "rows inject Poisson radio blackouts (5-30 s) per process.\n");
  return 0;
}
