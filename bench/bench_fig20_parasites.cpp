// Figure 20: number of parasite events (events of topics the process did not
// subscribe to) received per process, as a function of the number of events
// to publish and the subscriber fraction.

#include "frugality.hpp"

using namespace frugal;
using namespace frugal::bench;

int main() {
  banner("Figure 20", "parasite events received per process");
  run_frugality_figure("Fig 20 parasites", "parasites received/process",
                       [](const core::RunResult& result) {
                         return result.mean_parasites_per_node();
                       });
  std::printf(
      "\nExpected shape (paper): parasites peak around 60%% subscribers "
      "(many broadcasts x many uninterested processes) and vanish at 100%%; "
      "frugal outperforms the shown alternatives by 20-50x and simple "
      "flooding by up to 800x.\n");
  return 0;
}
