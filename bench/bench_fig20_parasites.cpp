// Figure 20: number of parasite events (events of topics the process did
// not subscribe to) received per process.
//
// Thin wrapper: the whole experiment is the registered "fig20_parasites"
// scenario (src/runner/scenarios.cpp); the sweep runner parallelizes it
// over FRUGAL_JOBS workers. experiment_cli runs the same scenario with
// custom grids/formats.

#include "runner/bench_main.hpp"

int main() {
  return frugal::runner::figure_bench_main("fig20_parasites");
}
