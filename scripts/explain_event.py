#!/usr/bin/env python3
"""Explain one event's dissemination — or one delivery failure — causally.

Reads the causal dissemination trace (`experiment_cli --dissem-trace
out.jsonl`, schema in EXPERIMENTS.md) and answers, for one published event:

  * `--event P:S` alone: the event's propagation summary — who published it,
    how far it spread, and the terminal-outcome partition over its eligible
    subscribers (delivered / expired-in-table / gc-evicted / marooned /
    died-with-node).
  * `--event P:S --node N`: subscriber N's complete causal story. For a
    delivery, the hop-by-hop relay chain from the publisher to N plus the
    advert / retrieve-request exchange and the four-segment latency
    decomposition. For a failure, the precise reason: every frame offer N
    ever received for this event and what became of it (collided,
    missed-busy, missed-asleep, missed-down), or the proof that nothing was
    ever offered (marooned), ending with the terminal outcome.

Stdlib only. Exit status: 0 on a successful explanation, 2 on usage errors
(unknown event, node not eligible, malformed trace).

Usage:
    explain_event.py TRACE.jsonl --event PUBLISHER:SEQ [--node N]
    explain_event.py TRACE.jsonl --list
"""

from __future__ import annotations

import argparse
import json
import sys

# Phases whose frames carry full events (the rest are id-list exchanges).
CARRYING_PHASES = {"publish", "event-push", "flood-forward", "gossip-forward"}

OUTCOME_ORDER = [
    "delivered", "died-with-node", "marooned", "gc-evicted",
    "expired-in-table",
]


def die(message):
    sys.exit(f"explain_event.py: {message}")


def load_trace(path):
    """-> (header dict, [event record, ...]); loud on schema violations."""
    header = None
    records = []
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as error:
        die(f"cannot read {path}: {error}")
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            die(f"{path}:{line_no}: bad JSON: {error}")
        if row.get("artifact") == "dissem-trace":
            if header is not None:
                die(f"{path}:{line_no}: second dissem-trace header")
            header = row
            continue
        if "event" not in row or "subscribers" not in row:
            die(f"{path}:{line_no}: not a dissem-trace record (is this a "
                f"--timeseries or sink file?)")
        if header is None:
            die(f"{path}:{line_no}: record before the dissem-trace header")
        records.append(row)
    if header is None:
        die(f"{path}: no dissem-trace header found")
    return header, records


def event_key(record):
    return (record["event"]["publisher"], record["event"]["seq"])


def parse_event_id(text):
    parts = text.split(":")
    if len(parts) != 2:
        die(f"--event wants PUBLISHER:SEQ, got \"{text}\"")
    try:
        return (int(parts[0]), int(parts[1]))
    except ValueError:
        die(f"--event wants two integers, got \"{text}\"")


def fmt_time(seconds):
    return f"t={seconds:.6f}s"


def first_carry_edge(record, node):
    """The intact event-carrying reception that gave `node` the event."""
    for edge in record["edges"]:
        if (edge["to"] == node and edge["outcome"] == "delivered"
                and edge["phase"] in CARRYING_PHASES):
            return edge
    return None


def relay_chain(record, node):
    """Hop chain publisher -> ... -> node via first intact receptions.

    Stops at the publisher (hop depth 0 by definition — a redundant copy
    pushed BACK to the publisher must not extend the chain past it).
    """
    publisher = record["event"]["publisher"]
    chain = []
    cursor = node
    seen = set()
    while cursor != publisher and cursor not in seen:
        seen.add(cursor)
        edge = first_carry_edge(record, cursor)
        if edge is None:
            break  # annotation gap (should not happen in a full trace)
        chain.append(edge)
        cursor = edge["from"]
    chain.reverse()
    return chain


def describe_edge(edge):
    return (f"frame {edge['frame']}"
            f" [{edge['phase']}] {edge['from']} -> {edge['to']}, "
            f"sent {fmt_time(edge['sent_s'])}, "
            f"{edge['outcome']} at {fmt_time(edge['at_s'])}")


def outcome_counts(record):
    counts = {name: 0 for name in OUTCOME_ORDER}
    for sub in record["subscribers"]:
        counts[sub["outcome"]] += 1
    return counts


def explain_summary(record):
    publisher, seq = event_key(record)
    print(f"event {publisher}:{seq}")
    print(f"  published by process {publisher} at "
          f"{fmt_time(record['published_at_s'])}, "
          f"validity {record['validity_s']:.1f}s "
          f"(expiry {fmt_time(record['published_at_s'] + record['validity_s'])})")
    counts = outcome_counts(record)
    eligible = len(record["subscribers"])
    print(f"  eligible subscribers: {eligible}")
    for name in OUTCOME_ORDER:
        if counts[name]:
            print(f"    {name:<17} {counts[name]}")
    print(f"  frame offers referencing the event: {len(record['edges'])} "
          f"(intact event-carrying receptions: {record['receptions']})")
    if record.get("first_carry_s") is not None:
        print(f"  first intact copy beyond the publisher at "
              f"{fmt_time(record['first_carry_s'])}")
    failed = [s for s in record["subscribers"] if s["outcome"] != "delivered"]
    if failed:
        nodes = ", ".join(str(s["node"]) for s in failed[:20])
        suffix = ", ..." if len(failed) > 20 else ""
        print(f"  undelivered subscribers: {nodes}{suffix}")
        print(f"  (re-run with --node N for any of them to see why)")


def explain_delivery(record, sub):
    node = sub["node"]
    print(f"  outcome: DELIVERED at {fmt_time(sub['at_s'])} "
          f"after {sub['hops']} hop(s)")
    chain = relay_chain(record, node)
    if chain:
        print("  relay chain (first intact copy per hop):")
        for hop, edge in enumerate(chain, start=1):
            print(f"    hop {hop}: {describe_edge(edge)}")
    else:
        print("  publisher self-delivery (hop 0): the publishing process "
              "is itself a subscriber")

    # The control-plane exchange in front of the delivering push, if any —
    # only milestones that PRECEDE the delivery (a node reached by a direct
    # broadcast hears adverts afterwards too; those explain nothing).
    advert = next((e for e in record["edges"]
                   if e["to"] == node and e["outcome"] == "delivered"
                   and e["phase"] == "advert"
                   and e["at_s"] <= sub["at_s"]), None)
    if advert is not None:
        print(f"  first advert heard: {describe_edge(advert)}")
        request = next((e for e in record["edges"]
                        if e["from"] == node
                        and e["phase"] in ("advert", "retrieve-request")
                        and advert["at_s"] <= e["sent_s"] <= sub["at_s"]),
                       None)
        if request is not None:
            print(f"  retrieve request:   {describe_edge(request)}")


def explain_failure(record, sub):
    node = sub["node"]
    outcome = sub["outcome"]
    offers = [e for e in record["edges"] if e["to"] == node]
    print(f"  outcome: NOT delivered — {outcome} "
          f"(decided at expiry, {fmt_time(sub['at_s'])})")
    if outcome == "died-with-node":
        print("  reason: the process's radio was down (crashed or battery "
              "dead) when the event's validity expired.")
    elif outcome == "marooned":
        print("  reason: no frame referencing this event was EVER offered "
              "to this process — it was never within range of a carrier "
              "while one was transmitting.")
    elif outcome == "gc-evicted":
        print("  reason: the process heard of the event, but the event was "
              "evicted from an event table by GC (Equation 1 memory "
              "pressure) along the dissemination path before a copy could "
              "be pushed.")
    elif outcome == "expired-in-table":
        print("  reason: the process heard of the event but the validity "
              "period ran out before a retrieve completed.")
    if offers:
        print(f"  every offer to process {node} ({len(offers)} total):")
        for edge in offers:
            print(f"    {describe_edge(edge)}")
    else:
        print(f"  (no frame referencing the event was offered to process "
              f"{node})")


def explain_node(record, node):
    sub = next((s for s in record["subscribers"] if s["node"] == node), None)
    publisher, seq = event_key(record)
    if sub is None:
        die(f"process {node} is not an eligible subscriber of event "
            f"{publisher}:{seq} (eligible: "
            f"{[s['node'] for s in record['subscribers']]})")
    print(f"event {publisher}:{seq}, subscriber {node}")
    print(f"  published at {fmt_time(record['published_at_s'])}, "
          f"validity {record['validity_s']:.1f}s")
    if sub["outcome"] == "delivered":
        explain_delivery(record, sub)
    else:
        explain_failure(record, sub)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="dissem-trace JSONL file")
    parser.add_argument("--event", help="event id as PUBLISHER:SEQ")
    parser.add_argument("--node", type=int,
                        help="explain this subscriber's outcome")
    parser.add_argument("--list", action="store_true",
                        help="list every event in the trace and exit")
    args = parser.parse_args()

    _header, records = load_trace(args.trace)
    if args.list:
        for record in records:
            publisher, seq = event_key(record)
            counts = outcome_counts(record)
            delivered = counts["delivered"]
            print(f"{publisher}:{seq}  published "
                  f"{fmt_time(record['published_at_s'])}  "
                  f"{delivered}/{len(record['subscribers'])} delivered")
        return
    if args.event is None:
        die("need --event PUBLISHER:SEQ (or --list)")
    wanted = parse_event_id(args.event)
    record = next((r for r in records if event_key(r) == wanted), None)
    if record is None:
        known = ", ".join(f"{p}:{s}" for p, s in
                          (event_key(r) for r in records[:20]))
        die(f"event {wanted[0]}:{wanted[1]} is not in the trace "
            f"(events: {known}{', ...' if len(records) > 20 else ''})")
    if args.node is None:
        explain_summary(record)
    else:
        explain_node(record, args.node)


if __name__ == "__main__":
    main()
