#!/usr/bin/env python3
"""Regenerate sweep figures from the metrics sink's JSONL output.

Reads the canonical JSONL the runner emits (`experiment_cli --format jsonl`,
one JSON object per grid point: scenario, axes, seeds, per-metric
mean/ci95/min/max) and renders one chart per (scenario, metric): the numeric
axis with the most distinct values becomes the x axis, every combination of
the remaining axes becomes one series.

Also understands the telemetry time-series artifact (`experiment_cli
--timeseries out.jsonl`): a header line `{"artifact":"timeseries",...}`
followed by one row per tumbling window. Those render with simulated time on
the x axis, one chart per series field, null cells skipped.

Also understands the causal dissemination trace (`experiment_cli
--dissem-trace out.jsonl`): a header line `{"artifact":"dissem-trace",...}`
followed by one record per published event's propagation DAG. Those render
as a hop-count histogram (deliveries per hop depth, chart name
`hops_histogram`) and a per-phase latency stack (each event's mean delivery
latency split into the publish->carry / carry->advert / advert->request /
request->deliver segments, chart name `phase_latency_stack`).

A file must hold exactly ONE artifact kind — sweep rows, a time-series run,
or a dissemination trace; mixing kinds in one file is a hard error (rows of
different artifacts share no context, so silently merging them would plot
garbage). One invocation may freely mix *files* of all kinds.

Rendering prefers matplotlib (PNG) when it is importable; otherwise a
dependency-free built-in SVG writer is used, so the script runs anywhere the
repo builds — CI uploads the result either way.

Usage:
    plot_figures.py PATH [PATH...] [--out-dir DIR] [--metrics a,b,...]

PATH is a .jsonl file or a directory scanned for *.jsonl. --metrics
restricts rendering to the named metrics (comma-separated, exact names;
time-series fields count as metrics), so multi-metric scenarios don't
explode the figures artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MATPLOTLIB = True
except ImportError:  # dependency-free fallback below
    HAVE_MATPLOTLIB = False

PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
    "#bbbbbb", "#222222",
]


# Series fields of a time-series row, in artifact order.
TIMESERIES_FIELDS = [
    "reliability", "latency_p50_s", "latency_p95_s", "latency_p99_s",
    "deliveries_per_s", "frames_per_s", "gc_per_s", "live_nodes",
    "joules_per_s",
]

# Latency-decomposition segments of a dissem-trace record, in causal order.
DISSEM_SEGMENTS = [
    "publish_to_carry", "carry_to_advert", "advert_to_request",
    "request_to_deliver",
]

# Chart names the dissemination trace renders to (usable with --metrics).
DISSEM_CHARTS = ["hops_histogram", "phase_latency_stack"]


def row_kind(row):
    """Classifies one JSONL row: ("sweep"|"timeseries"|"dissem", is_header)."""
    if row.get("artifact") == "timeseries":
        return "timeseries", True
    if row.get("artifact") == "dissem-trace":
        return "dissem", True
    if "scenario" in row and "metrics" in row:
        return "sweep", False
    if "t_s" in row:
        return "timeseries", False
    if "event" in row and "subscribers" in row:
        return "dissem", False
    return None, False


def load_rows(paths):
    """Parses every JSONL line of the given files/directories.

    -> (sweep_rows, timeseries_runs, dissem_runs) where the run lists hold
    (file stem, header dict, [row dict, ...]) tuples. Each *file* must be
    entirely one artifact kind; mixing kinds in one file is a hard error.
    """
    sweep_rows = []
    timeseries_runs = []
    dissem_runs = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.glob("*.jsonl")) if path.is_dir() else [path]
        for file in files:
            file_kind = None  # fixed by the first row
            header = None
            run_rows = []
            for line_no, line in enumerate(
                    file.read_text().splitlines(), start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    sys.exit(f"{file}:{line_no}: bad JSON: {error}")
                kind, is_header = row_kind(row)
                if kind is None:
                    sys.exit(f"{file}:{line_no}: neither a sink row, a "
                             f"time-series row nor a dissem-trace record")
                if file_kind is not None and kind != file_kind:
                    sys.exit(
                        f"{file}:{line_no}: mixed artifacts — this file "
                        f"holds both {file_kind} and {kind} rows; write "
                        f"them to separate files")
                if kind == "sweep":
                    file_kind = "sweep"
                    sweep_rows.append(row)
                elif is_header:
                    if header is not None:
                        sys.exit(f"{file}:{line_no}: second {kind} header "
                                 f"in one file")
                    file_kind = kind
                    header = row
                else:
                    if header is None:
                        sys.exit(f"{file}:{line_no}: {kind} row before its "
                                 f"header line")
                    run_rows.append(row)
            if file_kind == "timeseries":
                timeseries_runs.append((file.stem, header, run_rows))
            elif file_kind == "dissem":
                dissem_runs.append((file.stem, header, run_rows))
    return sweep_rows, timeseries_runs, dissem_runs


def pick_x_axis(rows):
    """The numeric axis with the most distinct values; None when no axis
    varies (single-point sweeps)."""
    counts = {}
    for row in rows:
        for name, value in row.get("axes", {}).items():
            if isinstance(value, (int, float)):
                counts.setdefault(name, set()).add(value)
    varying = {name: len(vals) for name, vals in counts.items()
               if len(vals) > 1}
    if not varying:
        return None
    return max(varying, key=lambda name: (varying[name], name))


def series_label(axes, x_axis):
    parts = [f"{name}={value}" for name, value in sorted(axes.items())
             if name != x_axis]
    return ", ".join(parts) if parts else "all"


def chart_data(rows, x_axis, metric):
    """-> {series label: [(x, mean, ci95), ...] sorted by x}."""
    series = {}
    for index, row in enumerate(rows):
        if metric not in row["metrics"]:
            continue
        x = row["axes"].get(x_axis, index) if x_axis else index
        if not isinstance(x, (int, float)):
            continue
        entry = row["metrics"][metric]
        series.setdefault(series_label(row["axes"], x_axis), []).append(
            (x, entry["mean"], entry.get("ci95", 0.0)))
    for points in series.values():
        points.sort()
    return series


def with_ext(out_path, ext):
    """Append `ext` to the file NAME — Path.with_suffix would treat
    everything after the last dot of a dotted stem (fig11.dissem__hops)
    as a suffix and silently collapse distinct charts onto one file."""
    return out_path.parent / (out_path.name + ext)


def render_matplotlib(title, x_label, y_label, series, out_path):
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for color, (label, points) in zip(
            PALETTE * (1 + len(series) // len(PALETTE)), sorted(series.items())):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        errs = [p[2] for p in points]
        ax.errorbar(xs, ys, yerr=errs if any(errs) else None, label=label,
                    color=color, marker="o", markersize=3, capsize=2)
    ax.set_title(title)
    ax.set_xlabel(x_label)
    ax.set_ylabel(y_label)
    if len(series) > 1:
        ax.legend(fontsize=7)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(with_ext(out_path, ".png"), dpi=120)
    plt.close(fig)
    return with_ext(out_path, ".png")


def render_svg(title, x_label, y_label, series, out_path):
    """Minimal line chart: stdlib only, enough to eyeball a sweep."""
    width, height = 720, 460
    left, right, top, bottom = 70, 20, 40, 60
    plot_w, plot_h = width - left - right, height - top - bottom

    points = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    y_lo = min(y_lo, 0.0)

    def sx(x):
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y):
        return top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    def esc(text):
        return (str(text).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="13">{esc(title)}</text>',
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="black"/>',
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + plot_h}" '
        f'stroke="black"/>',
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle">'
        f'{esc(x_label)}</text>',
        f'<text x="14" y="{height / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2})">{esc(y_label)}</text>',
    ]
    for tick in range(5):
        y_val = y_lo + (y_hi - y_lo) * tick / 4
        x_val = x_lo + (x_hi - x_lo) * tick / 4
        parts.append(
            f'<text x="{left - 6}" y="{sy(y_val) + 4}" text-anchor="end">'
            f'{y_val:.3g}</text>')
        parts.append(
            f'<text x="{sx(x_val)}" y="{top + plot_h + 16}" '
            f'text-anchor="middle">{x_val:.3g}</text>')
        parts.append(
            f'<line x1="{left}" y1="{sy(y_val)}" x2="{left + plot_w}" '
            f'y2="{sy(y_val)}" stroke="#dddddd"/>')

    for index, (label, pts) in enumerate(sorted(series.items())):
        color = PALETTE[index % len(PALETTE)]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y, _ in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        for x, y, _ in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5" '
                         f'fill="{color}"/>')
        if len(series) > 1:
            ly = top + 14 * index
            parts.append(f'<rect x="{left + plot_w - 150}" y="{ly - 8}" '
                         f'width="10" height="10" fill="{color}"/>')
            parts.append(f'<text x="{left + plot_w - 136}" y="{ly + 1}">'
                         f'{esc(label)}</text>')
    parts.append("</svg>")
    out = with_ext(out_path, ".svg")
    out.write_text("\n".join(parts))
    return out


def render_stacked_bars_matplotlib(title, x_label, y_label, xs, layers,
                                   out_path):
    fig, ax = plt.subplots(figsize=(7, 4.5))
    positions = range(len(xs))
    bottom = [0.0] * len(xs)
    for color, (label, values) in zip(
            PALETTE * (1 + len(layers) // len(PALETTE)), layers):
        ax.bar(positions, values, bottom=bottom, label=label, color=color)
        bottom = [b + v for b, v in zip(bottom, values)]
    ax.set_title(title)
    ax.set_xlabel(x_label)
    ax.set_ylabel(y_label)
    ax.set_xticks(list(positions))
    ax.set_xticklabels([str(x) for x in xs], fontsize=7,
                       rotation=90 if len(xs) > 24 else 0)
    if len(layers) > 1:
        ax.legend(fontsize=7)
    ax.grid(True, axis="y", alpha=0.3)
    fig.tight_layout()
    fig.savefig(with_ext(out_path, ".png"), dpi=120)
    plt.close(fig)
    return with_ext(out_path, ".png")


def render_stacked_bars_svg(title, x_label, y_label, xs, layers, out_path):
    """Stacked bar chart, stdlib only (the histogram is one layer)."""
    width, height = 720, 460
    left, right, top, bottom = 70, 20, 40, 60
    plot_w, plot_h = width - left - right, height - top - bottom

    totals = [sum(values[i] for _, values in layers) for i in range(len(xs))]
    y_hi = max(totals) if totals else 1.0
    if y_hi <= 0:
        y_hi = 1.0

    def esc(text):
        return (str(text).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="13">{esc(title)}</text>',
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="black"/>',
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + plot_h}" '
        f'stroke="black"/>',
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle">'
        f'{esc(x_label)}</text>',
        f'<text x="14" y="{height / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2})">{esc(y_label)}</text>',
    ]
    for tick in range(5):
        y_val = y_hi * tick / 4
        y_px = top + plot_h - plot_h * tick / 4
        parts.append(f'<text x="{left - 6}" y="{y_px + 4}" '
                     f'text-anchor="end">{y_val:.3g}</text>')
        parts.append(f'<line x1="{left}" y1="{y_px}" x2="{left + plot_w}" '
                     f'y2="{y_px}" stroke="#dddddd"/>')

    slot = plot_w / max(len(xs), 1)
    bar_w = max(slot * 0.7, 1.0)
    label_step = max(1, len(xs) // 24)
    for i, x in enumerate(xs):
        x_px = left + slot * i + (slot - bar_w) / 2
        y_cursor = top + plot_h
        for layer_index, (_, values) in enumerate(layers):
            bar_h = plot_h * values[i] / y_hi
            y_cursor -= bar_h
            color = PALETTE[layer_index % len(PALETTE)]
            parts.append(f'<rect x="{x_px:.1f}" y="{y_cursor:.1f}" '
                         f'width="{bar_w:.1f}" height="{bar_h:.1f}" '
                         f'fill="{color}"/>')
        if i % label_step == 0:
            parts.append(f'<text x="{x_px + bar_w / 2:.1f}" '
                         f'y="{top + plot_h + 16}" text-anchor="middle">'
                         f'{esc(x)}</text>')
    if len(layers) > 1:
        for index, (label, _) in enumerate(layers):
            ly = top + 14 * index
            color = PALETTE[index % len(PALETTE)]
            parts.append(f'<rect x="{left + plot_w - 150}" y="{ly - 8}" '
                         f'width="10" height="10" fill="{color}"/>')
            parts.append(f'<text x="{left + plot_w - 136}" y="{ly + 1}">'
                         f'{esc(label)}</text>')
    parts.append("</svg>")
    out = with_ext(out_path, ".svg")
    out.write_text("\n".join(parts))
    return out


def render_dissem_run(stem, rows, wanted, out_dir):
    """Charts for one dissemination trace: hop histogram + phase stacks."""
    written = []
    render = (render_stacked_bars_matplotlib if HAVE_MATPLOTLIB
              else render_stacked_bars_svg)

    if not wanted or "hops_histogram" in wanted:
        histogram = {}
        for row in rows:
            for sub in row["subscribers"]:
                if sub["outcome"] == "delivered":
                    histogram[sub["hops"]] = histogram.get(sub["hops"], 0) + 1
        if histogram:
            hops = sorted(histogram)
            written.append(render(
                f"{stem}: deliveries by hop depth", "hops to deliver",
                "deliveries", hops,
                [("deliveries", [histogram[h] for h in hops])],
                out_dir / f"{stem}__hops_histogram"))

    if not wanted or "phase_latency_stack" in wanted:
        xs = []
        layers = [(segment, []) for segment in DISSEM_SEGMENTS]
        for index, row in enumerate(rows):
            deliveries = row.get("deliveries", 0)
            segments = row.get("segments_us")
            if not deliveries or segments is None:
                continue
            xs.append(index)
            for segment, values in layers:
                values.append(segments[segment] / 1e6 / deliveries)
        if xs:
            written.append(render(
                f"{stem}: mean delivery latency by phase", "event",
                "seconds per delivery", xs, layers,
                out_dir / f"{stem}__phase_latency_stack"))
    return written


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help=".jsonl file(s) or directories to scan")
    parser.add_argument("--out-dir", default="figures",
                        help="where the rendered charts land")
    parser.add_argument("--metrics", default="",
                        help="only render these metrics "
                             "(comma-separated exact names)")
    args = parser.parse_args()
    wanted = {name for name in args.metrics.split(",") if name}

    rows, timeseries_runs, dissem_runs = load_rows(args.paths)
    if not rows and not timeseries_runs and not dissem_runs:
        sys.exit("no JSONL rows found")
    if wanted:
        known = {name for row in rows for name in row["metrics"]}
        if timeseries_runs:
            known |= set(TIMESERIES_FIELDS)
        if dissem_runs:
            known |= set(DISSEM_CHARTS)
        unknown = sorted(wanted - known)
        if unknown:
            sys.exit(f"--metrics names no metric in the input: {unknown} "
                     f"(known: {sorted(known)})")
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    by_scenario = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)

    written = []
    for stem, _header, ev_rows in dissem_runs:
        written.extend(render_dissem_run(stem, ev_rows, wanted, out_dir))

    for stem, header, ts_rows in timeseries_runs:
        window_s = header.get("window_s", "?")
        for field in TIMESERIES_FIELDS:
            if wanted and field not in wanted:
                continue
            points = [(row["t_s"], row[field], 0.0) for row in ts_rows
                      if isinstance(row.get(field), (int, float))]
            if not points:
                continue  # e.g. joules_per_s on a run without energy
            render = render_matplotlib if HAVE_MATPLOTLIB else render_svg
            written.append(render(
                f"{stem}: {field} ({window_s} s windows)",
                "simulated time (s)", field, {stem: points},
                out_dir / f"{stem}__{field}"))

    for scenario, scenario_rows in sorted(by_scenario.items()):
        x_axis = pick_x_axis(scenario_rows)
        metrics = sorted({name for row in scenario_rows
                          for name in row["metrics"]
                          if not wanted or name in wanted})
        for metric in metrics:
            series = chart_data(scenario_rows, x_axis, metric)
            series = {label: pts for label, pts in series.items() if pts}
            if not series:
                continue
            safe_metric = metric.replace("@", "_at_").replace("/", "_")
            out_path = out_dir / f"{scenario}__{safe_metric}"
            render = render_matplotlib if HAVE_MATPLOTLIB else render_svg
            written.append(render(f"{scenario}: {metric}",
                                  x_axis or "grid point", metric, series,
                                  out_path))
    if not written:
        sys.exit("no charts rendered (no plottable metrics)")
    backend = "matplotlib" if HAVE_MATPLOTLIB else "built-in svg"
    print(f"wrote {len(written)} figure(s) via {backend}:")
    for path in written:
        print(f"  {path}")


if __name__ == "__main__":
    main()
