#!/usr/bin/env python3
"""Regenerate sweep figures from the metrics sink's JSONL output.

Reads the canonical JSONL the runner emits (`experiment_cli --format jsonl`,
one JSON object per grid point: scenario, axes, seeds, per-metric
mean/ci95/min/max) and renders one chart per (scenario, metric): the numeric
axis with the most distinct values becomes the x axis, every combination of
the remaining axes becomes one series.

Also understands the telemetry time-series artifact (`experiment_cli
--timeseries out.jsonl`): a header line `{"artifact":"timeseries",...}`
followed by one row per tumbling window. Those render with simulated time on
the x axis, one chart per series field, null cells skipped. A file may hold
sweep rows OR a time-series run, never both — mixed files are a hard error
(a time-series row has no scenario/axes context, so silently merging the two
would plot garbage). One invocation may freely mix *files* of both kinds.

Rendering prefers matplotlib (PNG) when it is importable; otherwise a
dependency-free built-in SVG writer is used, so the script runs anywhere the
repo builds — CI uploads the result either way.

Usage:
    plot_figures.py PATH [PATH...] [--out-dir DIR] [--metrics a,b,...]

PATH is a .jsonl file or a directory scanned for *.jsonl. --metrics
restricts rendering to the named metrics (comma-separated, exact names;
time-series fields count as metrics), so multi-metric scenarios don't
explode the figures artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MATPLOTLIB = True
except ImportError:  # dependency-free fallback below
    HAVE_MATPLOTLIB = False

PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
    "#bbbbbb", "#222222",
]


# Series fields of a time-series row, in artifact order.
TIMESERIES_FIELDS = [
    "reliability", "latency_p50_s", "latency_p95_s", "latency_p99_s",
    "deliveries_per_s", "frames_per_s", "gc_per_s", "live_nodes",
    "joules_per_s",
]


def load_rows(paths):
    """Parses every JSONL line of the given files/directories.

    -> (sweep_rows, timeseries_runs) where timeseries_runs is a list of
    (file stem, header dict, [row dict, ...]). Each *file* must be entirely
    one artifact kind; mixing sweep rows and time-series rows in one file is
    a hard error.
    """
    sweep_rows = []
    timeseries_runs = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.glob("*.jsonl")) if path.is_dir() else [path]
        for file in files:
            file_kind = None  # "sweep" | "timeseries", fixed by first row
            header = None
            ts_rows = []
            for line_no, line in enumerate(
                    file.read_text().splitlines(), start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    sys.exit(f"{file}:{line_no}: bad JSON: {error}")
                is_sweep = "scenario" in row and "metrics" in row
                is_ts = row.get("artifact") == "timeseries" or "t_s" in row
                if (is_sweep and file_kind == "timeseries") or (
                        is_ts and file_kind == "sweep"):
                    sys.exit(
                        f"{file}:{line_no}: mixed artifacts — this file "
                        f"holds both sweep rows and time-series rows; write "
                        f"them to separate files")
                if is_sweep:
                    file_kind = "sweep"
                    sweep_rows.append(row)
                elif row.get("artifact") == "timeseries":
                    if file_kind == "timeseries":
                        sys.exit(f"{file}:{line_no}: second time-series "
                                 f"header in one file")
                    file_kind = "timeseries"
                    header = row
                elif "t_s" in row:
                    if file_kind != "timeseries":
                        sys.exit(f"{file}:{line_no}: time-series row "
                                 f"before its header line")
                    ts_rows.append(row)
                else:
                    sys.exit(f"{file}:{line_no}: neither a sink row nor a "
                             f"time-series row")
            if file_kind == "timeseries":
                timeseries_runs.append((file.stem, header, ts_rows))
    return sweep_rows, timeseries_runs


def pick_x_axis(rows):
    """The numeric axis with the most distinct values; None when no axis
    varies (single-point sweeps)."""
    counts = {}
    for row in rows:
        for name, value in row.get("axes", {}).items():
            if isinstance(value, (int, float)):
                counts.setdefault(name, set()).add(value)
    varying = {name: len(vals) for name, vals in counts.items()
               if len(vals) > 1}
    if not varying:
        return None
    return max(varying, key=lambda name: (varying[name], name))


def series_label(axes, x_axis):
    parts = [f"{name}={value}" for name, value in sorted(axes.items())
             if name != x_axis]
    return ", ".join(parts) if parts else "all"


def chart_data(rows, x_axis, metric):
    """-> {series label: [(x, mean, ci95), ...] sorted by x}."""
    series = {}
    for index, row in enumerate(rows):
        if metric not in row["metrics"]:
            continue
        x = row["axes"].get(x_axis, index) if x_axis else index
        if not isinstance(x, (int, float)):
            continue
        entry = row["metrics"][metric]
        series.setdefault(series_label(row["axes"], x_axis), []).append(
            (x, entry["mean"], entry.get("ci95", 0.0)))
    for points in series.values():
        points.sort()
    return series


def render_matplotlib(title, x_label, y_label, series, out_path):
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for color, (label, points) in zip(
            PALETTE * (1 + len(series) // len(PALETTE)), sorted(series.items())):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        errs = [p[2] for p in points]
        ax.errorbar(xs, ys, yerr=errs if any(errs) else None, label=label,
                    color=color, marker="o", markersize=3, capsize=2)
    ax.set_title(title)
    ax.set_xlabel(x_label)
    ax.set_ylabel(y_label)
    if len(series) > 1:
        ax.legend(fontsize=7)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path.with_suffix(".png"), dpi=120)
    plt.close(fig)
    return out_path.with_suffix(".png")


def render_svg(title, x_label, y_label, series, out_path):
    """Minimal line chart: stdlib only, enough to eyeball a sweep."""
    width, height = 720, 460
    left, right, top, bottom = 70, 20, 40, 60
    plot_w, plot_h = width - left - right, height - top - bottom

    points = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    y_lo = min(y_lo, 0.0)

    def sx(x):
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y):
        return top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    def esc(text):
        return (str(text).replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="13">{esc(title)}</text>',
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="black"/>',
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + plot_h}" '
        f'stroke="black"/>',
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle">'
        f'{esc(x_label)}</text>',
        f'<text x="14" y="{height / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2})">{esc(y_label)}</text>',
    ]
    for tick in range(5):
        y_val = y_lo + (y_hi - y_lo) * tick / 4
        x_val = x_lo + (x_hi - x_lo) * tick / 4
        parts.append(
            f'<text x="{left - 6}" y="{sy(y_val) + 4}" text-anchor="end">'
            f'{y_val:.3g}</text>')
        parts.append(
            f'<text x="{sx(x_val)}" y="{top + plot_h + 16}" '
            f'text-anchor="middle">{x_val:.3g}</text>')
        parts.append(
            f'<line x1="{left}" y1="{sy(y_val)}" x2="{left + plot_w}" '
            f'y2="{sy(y_val)}" stroke="#dddddd"/>')

    for index, (label, pts) in enumerate(sorted(series.items())):
        color = PALETTE[index % len(PALETTE)]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y, _ in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        for x, y, _ in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5" '
                         f'fill="{color}"/>')
        if len(series) > 1:
            ly = top + 14 * index
            parts.append(f'<rect x="{left + plot_w - 150}" y="{ly - 8}" '
                         f'width="10" height="10" fill="{color}"/>')
            parts.append(f'<text x="{left + plot_w - 136}" y="{ly + 1}">'
                         f'{esc(label)}</text>')
    parts.append("</svg>")
    out = out_path.with_suffix(".svg")
    out.write_text("\n".join(parts))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help=".jsonl file(s) or directories to scan")
    parser.add_argument("--out-dir", default="figures",
                        help="where the rendered charts land")
    parser.add_argument("--metrics", default="",
                        help="only render these metrics "
                             "(comma-separated exact names)")
    args = parser.parse_args()
    wanted = {name for name in args.metrics.split(",") if name}

    rows, timeseries_runs = load_rows(args.paths)
    if not rows and not timeseries_runs:
        sys.exit("no JSONL rows found")
    if wanted:
        known = {name for row in rows for name in row["metrics"]}
        if timeseries_runs:
            known |= set(TIMESERIES_FIELDS)
        unknown = sorted(wanted - known)
        if unknown:
            sys.exit(f"--metrics names no metric in the input: {unknown} "
                     f"(known: {sorted(known)})")
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    by_scenario = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)

    written = []
    for stem, header, ts_rows in timeseries_runs:
        window_s = header.get("window_s", "?")
        for field in TIMESERIES_FIELDS:
            if wanted and field not in wanted:
                continue
            points = [(row["t_s"], row[field], 0.0) for row in ts_rows
                      if isinstance(row.get(field), (int, float))]
            if not points:
                continue  # e.g. joules_per_s on a run without energy
            render = render_matplotlib if HAVE_MATPLOTLIB else render_svg
            written.append(render(
                f"{stem}: {field} ({window_s} s windows)",
                "simulated time (s)", field, {stem: points},
                out_dir / f"{stem}__{field}"))

    for scenario, scenario_rows in sorted(by_scenario.items()):
        x_axis = pick_x_axis(scenario_rows)
        metrics = sorted({name for row in scenario_rows
                          for name in row["metrics"]
                          if not wanted or name in wanted})
        for metric in metrics:
            series = chart_data(scenario_rows, x_axis, metric)
            series = {label: pts for label, pts in series.items() if pts}
            if not series:
                continue
            safe_metric = metric.replace("@", "_at_").replace("/", "_")
            out_path = out_dir / f"{scenario}__{safe_metric}"
            render = render_matplotlib if HAVE_MATPLOTLIB else render_svg
            written.append(render(f"{scenario}: {metric}",
                                  x_axis or "grid point", metric, series,
                                  out_path))
    if not written:
        sys.exit("no charts rendered (no plottable metrics)")
    backend = "matplotlib" if HAVE_MATPLOTLIB else "built-in svg"
    print(f"wrote {len(written)} figure(s) via {backend}:")
    for path in written:
        print(f"  {path}")


if __name__ == "__main__":
    main()
