#!/usr/bin/env python3
"""Merge sweep shard artifacts collected from several machines.

Each shard artifact is the JSONL file an `experiment_cli --shard i/N` run
(or a bench wrapper under `FRUGAL_SHARD=i/N`) printed: a self-describing
header line followed by one line of raw metric values per job. This script
validates that a set of such files forms one complete, consistent shard set
(same scenario/grid/seeds/seed base, indices 0..N-1 exactly once, job
ranges tiling the whole sweep) and then delegates the actual merge to
`experiment_cli --merge`, whose serial aggregation makes the output
byte-identical to a single-box run. The canonical floating-point math
stays in one implementation; this wrapper only does the file wrangling a
multi-machine workflow needs.

Usage:
    scripts/merge_shards.py shards/*.jsonl --format csv > merged.csv
    scripts/merge_shards.py shards/*.jsonl --check-only
    scripts/merge_shards.py shards/*.jsonl --cli ./build/examples/experiment_cli
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

DEFAULT_CLI = os.path.join("build", "examples", "experiment_cli")


def read_header(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        body = [line.strip() for line in handle if line.strip()]
    try:
        header = json.loads(first)
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not a shard artifact ({error})")
    if header.get("frugal_shard_artifact") != 1:
        raise SystemExit(f"{path}: missing frugal_shard_artifact header")
    try:
        begin = header["jobs"]["begin"]
        expected = header["jobs"]["end"] - begin
        metric_count = len(header["metrics"])
    except (KeyError, TypeError):
        raise SystemExit(f"{path}: malformed shard header")
    if len(body) != expected:
        raise SystemExit(
            f"{path}: truncated shard artifact — header promises "
            f"{expected} job line(s), found {len(body)}"
        )
    # Each job line must be intact too: a kill-mid-write leaves the last
    # line cut in half, which a pure line count would miss.
    for offset, line in enumerate(body):
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            raise SystemExit(
                f"{path}:{offset + 2}: truncated or corrupt job line"
            )
        if (row.get("job") != begin + offset
                or len(row.get("values", [])) != metric_count):
            raise SystemExit(f"{path}:{offset + 2}: malformed job line")
    return header


def sweep_identity(header: dict) -> tuple:
    """Everything that must agree across shards of one sweep."""
    return (
        header["scenario"],
        header["shard"]["count"],
        header["jobs"]["total"],
        header["seeds"],
        header["seed_base"],
        json.dumps(header["axes"], sort_keys=True),
        tuple(header["metrics"]),
    )


def validate(paths: list[str]) -> dict:
    if len(paths) != len(set(paths)):
        raise SystemExit(f"duplicate shard artifact paths: {sorted(paths)}")
    headers = {path: read_header(path) for path in paths}
    identities = {sweep_identity(h) for h in headers.values()}
    if len(identities) != 1:
        detail = "\n".join(
            f"  {path}: scenario={h['scenario']} shard="
            f"{h['shard']['index']}/{h['shard']['count']} "
            f"seeds={h['seeds']} seed_base={h['seed_base']}"
            for path, h in sorted(headers.items())
        )
        raise SystemExit(
            "shard artifacts describe different sweeps "
            f"(grids, seeds or seed bases differ):\n{detail}"
        )

    sample = next(iter(headers.values()))
    count = sample["shard"]["count"]
    indices = sorted(h["shard"]["index"] for h in headers.values())
    if len(paths) != count or indices != list(range(count)):
        raise SystemExit(
            f"incomplete shard set for {sample['scenario']}: "
            f"want indices 0..{count - 1} exactly once, got {indices} "
            f"from {len(paths)} file(s)"
        )

    total = sample["jobs"]["total"]
    ranges = sorted(
        (h["jobs"]["begin"], h["jobs"]["end"]) for h in headers.values()
    )
    cursor = 0
    for begin, end in ranges:
        if begin != cursor or end < begin:
            raise SystemExit(
                f"shard job ranges do not tile [0, {total}): {ranges}"
            )
        cursor = end
    if cursor != total:
        raise SystemExit(
            f"shard job ranges do not tile [0, {total}): {ranges}"
        )
    return sample


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate and merge sweep shard artifacts."
    )
    parser.add_argument("shards", nargs="+", help="shard artifact files")
    parser.add_argument(
        "--cli",
        default=DEFAULT_CLI,
        help=f"experiment_cli binary (default: {DEFAULT_CLI})",
    )
    parser.add_argument(
        "--format",
        choices=["table", "csv", "jsonl"],
        default="csv",
        help="output format passed to --merge (default: csv)",
    )
    parser.add_argument(
        "--csv-dir", default="", help="also write the long CSV there"
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="validate the shard set without invoking the binary",
    )
    args = parser.parse_args()

    sample = validate(args.shards)
    print(
        f"# shard set ok: {sample['scenario']}, "
        f"{sample['shard']['count']} shard(s), "
        f"{sample['jobs']['total']} job(s), seeds={sample['seeds']}",
        file=sys.stderr,
    )
    if args.check_only:
        return 0

    if not os.path.exists(args.cli):
        raise SystemExit(
            f"experiment_cli not found at {args.cli} (build it, or pass --cli)"
        )
    command = [args.cli]
    for path in args.shards:
        command += ["--merge", path]
    command += ["--format", args.format]
    if args.csv_dir:
        command += ["--csv-dir", args.csv_dir]
    return subprocess.call(command)


if __name__ == "__main__":
    sys.exit(main())
