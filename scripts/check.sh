#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full ctest
# suite. This is the exact command sequence CI and the roadmap gate on.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment:
#   FRUGAL_SANITIZE=1        configure with -DFRUGAL_SANITIZE=ON (ASan+UBSan)
#   FRUGAL_SANITIZE=thread   configure with -DFRUGAL_SANITIZE=thread (TSan)
#   FRUGAL_SMOKE=1           additionally run a 1-seed bench_headline smoke
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

configure_args=()
case "${FRUGAL_SANITIZE:-0}" in
  0) ;;
  1) configure_args+=(-DFRUGAL_SANITIZE=ON) ;;
  *) configure_args+=(-DFRUGAL_SANITIZE="${FRUGAL_SANITIZE}") ;;
esac

cmake -B "$build_dir" -S . "${configure_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")

if [[ "${FRUGAL_SMOKE:-0}" == "1" ]]; then
  echo "== bench smoke (FRUGAL_SEEDS=1 bench_headline) =="
  FRUGAL_SEEDS=1 "$build_dir/bench/bench_headline"
fi

echo "check.sh: all green"
