#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full ctest
# suite. This is the exact command sequence CI and the roadmap gate on.
#
# Usage: scripts/check.sh [--lint] [build-dir]
#
#   --lint   additionally run the determinism guardrails: detlint over the
#            tree plus its fixture self-tests, and — when a clang-tidy
#            binary is on PATH (it is in CI's lint job; it need not be
#            installed locally) — the clang-tidy baseline over
#            compile_commands.json.
#
# Environment:
#   FRUGAL_SANITIZE=1        configure with -DFRUGAL_SANITIZE=ON (ASan+UBSan)
#   FRUGAL_SANITIZE=thread   configure with -DFRUGAL_SANITIZE=thread (TSan)
#   FRUGAL_SMOKE=1           additionally run a 1-seed bench_headline smoke
set -euo pipefail

cd "$(dirname "$0")/.."

run_lint=0
args=()
for arg in "$@"; do
  case "$arg" in
    --lint) run_lint=1 ;;
    *) args+=("$arg") ;;
  esac
done
build_dir="${args[0]:-build}"

configure_args=()
case "${FRUGAL_SANITIZE:-0}" in
  0) ;;
  1) configure_args+=(-DFRUGAL_SANITIZE=ON) ;;
  *) configure_args+=(-DFRUGAL_SANITIZE="${FRUGAL_SANITIZE}") ;;
esac

cmake -B "$build_dir" -S . "${configure_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")

if [[ "$run_lint" == "1" ]]; then
  echo "== detlint self-tests =="
  python3 tools/detlint/test_detlint.py
  echo "== detlint (tree) =="
  python3 tools/detlint/detlint.py
  if command -v run-clang-tidy > /dev/null; then
    echo "== clang-tidy baseline =="
    run-clang-tidy -quiet -p "$build_dir" \
      "$(pwd)/(src|tests|bench|examples)/.*\.cpp$"
  else
    echo "== clang-tidy not on PATH; skipped (CI's lint job runs it) =="
  fi
fi

if [[ "${FRUGAL_SMOKE:-0}" == "1" ]]; then
  echo "== bench smoke (FRUGAL_SEEDS=1 bench_headline) =="
  FRUGAL_SEEDS=1 "$build_dir/bench/bench_headline"
fi

echo "check.sh: all green"
