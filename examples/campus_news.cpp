// Campus news dissemination: the paper's city-section evaluation as a
// library-level application. 15 devices move on the EPFL-like campus grid;
// a hierarchy of news topics (.campus > .campus.events > .campus.events.ic,
// .campus.food) is served by a publisher that roams like everyone else.
//
// This example also demonstrates:
//   - dynamic (un)subscription while the system runs,
//   - a device crash and recovery (Medium::set_up),
//   - comparing frugal delivery against what a simple flooder would cost
//     (run with --flooding to see the same scenario flooded).
//
// Run:  ./campus_news [--flooding]

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/flooding.hpp"
#include "core/frugal_node.hpp"
#include "mobility/city_section.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/topic.hpp"

using namespace frugal;
using namespace frugal::time_literals;

int main(int argc, char** argv) {
  const bool flooding = argc > 1 && std::strcmp(argv[1], "--flooding") == 0;
  sim::Simulator simulator{7};

  mobility::CampusGridConfig grid_config;  // 1200 x 900 m, paper's campus
  Rng grid_rng = simulator.stream("grid");
  const mobility::StreetGraph graph =
      mobility::make_campus_grid(grid_config, grid_rng);
  mobility::CitySection mobility{graph, mobility::CitySectionConfig{}, 15,
                                 simulator.stream("mobility")};

  net::MediumConfig radio;
  radio.range_m = 44.0;  // the paper's city radio range
  net::Medium medium{simulator.scheduler(), mobility, radio,
                     simulator.stream("mac")};

  std::vector<std::unique_ptr<core::ProtocolNode>> devices;
  for (NodeId id = 0; id < 15; ++id) {
    if (flooding) {
      core::FloodingConfig config;
      config.variant = core::FloodingVariant::kSimple;
      devices.push_back(std::make_unique<core::FloodingNode>(
          id, simulator.scheduler(), medium, config));
    } else {
      core::FrugalConfig config;
      config.hb_upper = 1_sec;
      auto speed_provider = [&mobility, id, &simulator] {
        return mobility.speed(id, simulator.now());
      };
      devices.push_back(std::make_unique<core::FrugalNode>(
          id, simulator.scheduler(), medium, config, speed_provider));
    }
  }

  const auto campus = topics::Topic::parse(".campus");
  const auto events = topics::Topic::parse(".campus.events");
  const auto ic_events = topics::Topic::parse(".campus.events.ic");
  const auto food = topics::Topic::parse(".campus.food");

  // Interests: 0-4 want everything, 5-9 only events, 10-12 only IC events,
  // 13-14 only food.
  for (NodeId id = 0; id <= 4; ++id) devices[id]->subscribe(campus);
  for (NodeId id = 5; id <= 9; ++id) devices[id]->subscribe(events);
  for (NodeId id = 10; id <= 12; ++id) devices[id]->subscribe(ic_events);
  for (NodeId id = 13; id <= 14; ++id) devices[id]->subscribe(food);

  std::vector<int> received(15, 0);
  for (NodeId id = 0; id < 15; ++id) {
    devices[id]->set_delivery_callback(
        [&received, id](const core::Event& event, SimTime at) {
          ++received[id];
          std::printf("  [%6.1fs] device %2u <- %-24s \"%s\"\n", at.seconds(),
                      id, event.topic.to_string().c_str(),
                      event.payload.c_str());
        });
  }

  const auto publish = [&](NodeId who, const topics::Topic& topic,
                           const char* text, SimDuration validity) {
    core::Event event;
    event.topic = topic;
    event.validity = validity;
    event.payload = text;
    devices[who]->publish(event);
    std::printf("[%6.1fs] device %2u publishes on %s: \"%s\"\n",
                simulator.now().seconds(), who, topic.to_string().c_str(),
                text);
  };

  simulator.scheduler().schedule_at(SimTime::from_seconds(30), [&] {
    publish(0, ic_events, "distributed systems seminar 14:00", 150_sec);
  });
  simulator.scheduler().schedule_at(SimTime::from_seconds(60), [&] {
    publish(13, food, "pizza margherita at the Esplanade", 120_sec);
  });
  // Device 7 crashes at 70 s and recovers at 130 s: it must still pick up
  // valid news afterwards from whoever it meets.
  simulator.scheduler().schedule_at(SimTime::from_seconds(70), [&] {
    std::printf("[%6.1fs] device 7 crashes\n", simulator.now().seconds());
    medium.set_up(7, false);
  });
  simulator.scheduler().schedule_at(SimTime::from_seconds(90), [&] {
    publish(5, events, "jazz concert on the lawn 18:00", 150_sec);
  });
  simulator.scheduler().schedule_at(SimTime::from_seconds(130), [&] {
    std::printf("[%6.1fs] device 7 recovers\n", simulator.now().seconds());
    medium.set_up(7, true);
  });
  // Device 14 develops an interest in events mid-run.
  simulator.scheduler().schedule_at(SimTime::from_seconds(140), [&] {
    std::printf("[%6.1fs] device 14 subscribes to .campus.events\n",
                simulator.now().seconds());
    devices[14]->subscribe(events);
  });

  simulator.run_until(SimTime::from_seconds(300));

  std::printf("\n%s run summary:\n", flooding ? "Flooding" : "Frugal");
  std::uint64_t bytes = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t parasites = 0;
  int deliveries = 0;
  for (NodeId id = 0; id < 15; ++id) {
    bytes += medium.counters(id).bytes_sent;
    duplicates += devices[id]->metrics().duplicates;
    parasites += devices[id]->metrics().parasites;
    deliveries += received[id];
  }
  std::printf(
      "  deliveries: %d   bytes sent (all devices): %llu   duplicates: %llu"
      "   parasites: %llu\n",
      deliveries, static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(parasites));
  std::printf("  (compare: run %s)\n",
              flooding ? "without --flooding for the frugal protocol"
                       : "with --flooding for simple flooding");
  return deliveries > 0 ? 0 : 1;
}
