// Car-park application (paper §2, footnote 1 and [7]): cars leaving a car
// park publish the freed spot on a topic per car park; driving cars
// subscribed to the car parks near their destination learn about free spots
// from cars they pass on the road — no infrastructure, no routing.
//
// Setup: a 2 x 2 km city-section street grid with three car parks at fixed
// corners. 20 cars drive around; cars 0-2 idle at the car parks and publish
// a freed spot every ~30 s with a 120 s validity (a spot claim goes stale
// quickly). Every other car subscribes to the car parks on its shopping
// list and we log which cars learn about which spots, and how stale the
// information was on arrival.
//
// Run:  ./car_park [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/frugal_node.hpp"
#include "mobility/city_section.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/topic.hpp"

using namespace frugal;
using namespace frugal::time_literals;

namespace {

/// Mobility wrapper: the first `fixed` nodes sit at car-park gates, the rest
/// drive on the street grid.
class ParkedAndDriving final : public mobility::MobilityModel {
 public:
  ParkedAndDriving(std::vector<Vec2> gates, const mobility::StreetGraph& graph,
                   std::size_t drivers, Rng rng)
      : gates_{std::move(gates)},
        driving_{graph, mobility::CitySectionConfig{}, drivers, rng} {}

  [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
    if (node < gates_.size()) return gates_[node];
    return driving_.position(static_cast<NodeId>(node - gates_.size()), t);
  }
  [[nodiscard]] double speed(NodeId node, SimTime t) override {
    if (node < gates_.size()) return 0.0;
    return driving_.speed(static_cast<NodeId>(node - gates_.size()), t);
  }
  [[nodiscard]] std::size_t node_count() const override {
    return gates_.size() + driving_.node_count();
  }
  [[nodiscard]] double max_speed_mps() const override {
    return driving_.max_speed_mps();  // parked nodes never move
  }

 private:
  std::vector<Vec2> gates_;
  mobility::CitySection driving_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  sim::Simulator simulator{seed};

  // A 2 x 2 km street grid; three car parks on distinct corners.
  mobility::CampusGridConfig grid_config;
  grid_config.width_m = 2000;
  grid_config.height_m = 2000;
  grid_config.columns = 6;
  grid_config.rows = 6;
  Rng grid_rng = simulator.stream("grid");
  const mobility::StreetGraph graph =
      mobility::make_campus_grid(grid_config, grid_rng);

  const std::vector<Vec2> gates{{0, 0}, {2000, 0}, {1000, 2000}};
  constexpr std::size_t kGates = 3;
  constexpr std::size_t kDrivers = 17;
  ParkedAndDriving mobility{gates, graph, kDrivers,
                            simulator.stream("mobility")};

  net::MediumConfig radio;
  radio.range_m = 200.0;  // urban 802.11 between cars
  net::Medium medium{simulator.scheduler(), mobility, radio,
                     simulator.stream("mac")};

  core::FrugalConfig protocol;
  protocol.hb_upper = SimDuration::from_seconds(1.0);

  std::vector<std::unique_ptr<core::FrugalNode>> cars;
  for (NodeId id = 0; id < kGates + kDrivers; ++id) {
    auto speed_provider = [&mobility, id, &simulator] {
      return mobility.speed(id, simulator.now());
    };
    cars.push_back(std::make_unique<core::FrugalNode>(
        id, simulator.scheduler(), medium, protocol, speed_provider));
  }

  const topics::Topic parks = topics::Topic::parse(".parking");
  const topics::Topic park_topic[kGates] = {
      topics::Topic::parse(".parking.north"),
      topics::Topic::parse(".parking.east"),
      topics::Topic::parse(".parking.center"),
  };

  // Drivers subscribe: a third wants a specific car park, a third wants any.
  Rng interests = simulator.stream("interests");
  for (NodeId id = kGates; id < kGates + kDrivers; ++id) {
    const auto dice = interests.uniform_u64(3);
    if (dice == 0) {
      cars[id]->subscribe(park_topic[interests.uniform_u64(kGates)]);
    } else if (dice == 1) {
      cars[id]->subscribe(parks);  // any car park (super-topic)
    }  // else: not shopping today — will only overhear (parasites)
    cars[id]->set_delivery_callback([id](const core::Event& event,
                                         SimTime at) {
      const double age = (at - event.published_at).seconds();
      std::printf("  [%7.1fs] car %2u learned \"%s\" (%s, %4.1fs old)\n",
                  at.seconds(), id, event.payload.c_str(),
                  event.topic.to_string().c_str(), age);
    });
  }

  // Car parks publish a freed spot roughly every 30 s (gate nodes stand in
  // for the departing cars of the paper's application).
  Rng spots = simulator.stream("spots");
  for (std::size_t g = 0; g < kGates; ++g) {
    const char* names[kGates] = {"north", "east", "center"};
    for (int k = 0; k < 6; ++k) {
      const SimTime at = SimTime::from_seconds(
          20.0 + 30.0 * k + spots.uniform(0.0, 10.0));
      simulator.scheduler().schedule_at(at, [&, g, k, names] {
        core::Event event;
        event.topic = park_topic[g];
        event.validity = 120_sec;
        event.payload = std::string{"spot "} + std::to_string(100 + k) +
                        " free at " + names[g];
        cars[g]->publish(event);
        std::printf("[%7.1fs] %s car park frees a spot\n",
                    simulator.now().seconds(), names[g]);
      });
    }
  }

  simulator.run_until(SimTime::from_seconds(260));

  std::printf("\nPer-car summary (deliveries / duplicates / parasites):\n");
  std::size_t total_deliveries = 0;
  for (NodeId id = kGates; id < kGates + kDrivers; ++id) {
    const auto& m = cars[id]->metrics();
    total_deliveries += m.deliveries.size();
    std::printf("  car %2u: %2zu / %2llu / %2llu\n", id, m.deliveries.size(),
                static_cast<unsigned long long>(m.duplicates),
                static_cast<unsigned long long>(m.parasites));
  }
  std::printf("total spot notifications delivered: %zu\n", total_deliveries);
  return total_deliveries > 0 ? 0 : 1;
}
