// Quickstart: the paper's Figure 1 scenario, on a simulated wireless medium.
//
// Three processes and a three-level topic hierarchy (.conf ⊃ .conf.mw ⊃
// .conf.mw.demo): p1 subscribes to .conf.mw, p2 to .conf.mw.demo and p3 to
// .conf. p1 publishes an event on .conf.mw, p2 publishes two on
// .conf.mw.demo. The nodes start out of range, then meet pairwise exactly as
// in the paper's parts I-III, and the frugal protocol hands every process
// the events it is entitled to — without any routing layer.
//
// Run:  ./quickstart

#include <cstdio>

#include "core/frugal_node.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/topic.hpp"

using namespace frugal;
using namespace frugal::time_literals;

int main() {
  sim::Simulator simulator{/*seed=*/42};

  // Three devices, initially far apart (range is 100 m).
  mobility::StaticMobility mobility{{
      {0.0, 0.0},      // p1
      {1000.0, 0.0},   // p2
      {5000.0, 0.0},   // p3
  }};
  net::MediumConfig radio;
  radio.range_m = 100.0;
  net::Medium medium{simulator.scheduler(), mobility, radio,
                     simulator.stream("mac")};

  core::FrugalConfig config;
  config.hb_upper = SimDuration::from_seconds(1.0);

  core::FrugalNode p1{0, simulator.scheduler(), medium, config, nullptr};
  core::FrugalNode p2{1, simulator.scheduler(), medium, config, nullptr};
  core::FrugalNode p3{2, simulator.scheduler(), medium, config, nullptr};

  const auto conf = topics::Topic::parse(".conf");
  const auto mw = topics::Topic::parse(".conf.mw");
  const auto demo = topics::Topic::parse(".conf.mw.demo");

  p1.subscribe(mw);
  p2.subscribe(demo);
  p3.subscribe(conf);

  const auto announce = [](const char* who) {
    return [who](const core::Event& event, SimTime at) {
      std::printf("  [%8.3fs] %s delivered event %u/%u on %s: \"%s\"\n",
                  at.seconds(), who, event.id.publisher, event.id.seq,
                  event.topic.to_string().c_str(), event.payload.c_str());
    };
  };
  p1.set_delivery_callback(announce("p1"));
  p2.set_delivery_callback(announce("p2"));
  p3.set_delivery_callback(announce("p3"));

  // Initial knowledge: p1 holds one event on .conf.mw, p2 holds two on
  // .conf.mw.demo (published while everyone is out of range).
  const auto publish = [](core::FrugalNode& node, const topics::Topic& topic,
                          const char* text) {
    core::Event event;
    event.topic = topic;
    event.validity = 600_sec;
    event.payload = text;
    node.publish(event);
  };
  std::printf("t=0: publications while out of range\n");
  publish(p1, mw, "keynote moved to 9am");
  publish(p2, demo, "demo session in room B");
  publish(p2, demo, "bring your own badge");

  // Part I: p1 and p2 become neighbors -> p2's demo events flow to p1
  // (.conf.mw covers .conf.mw.demo).
  simulator.run_for(5_sec);
  std::printf("t=5s: p2 moves next to p1 (part I)\n");
  mobility.move_node(1, {50.0, 0.0});
  simulator.run_for(10_sec);

  // Part II: p3 joins -> it misses all three events; p1 (3 events to send)
  // picks a shorter back-off than p2 (2 events).
  std::printf("t=15s: p3 joins the neighborhood (part II)\n");
  mobility.move_node(2, {25.0, 0.0});
  simulator.run_for(10_sec);

  // Part III: p1 leaves; p2 and p3 already know they share everything, so
  // the channel stays quiet.
  std::printf("t=25s: p1 moves away (part III)\n");
  mobility.move_node(0, {5000.0, 0.0});
  simulator.run_for(10_sec);

  std::printf("\nFinal state:\n");
  const auto report = [&](const char* who, const core::FrugalNode& node) {
    const auto& m = node.metrics();
    std::printf(
        "  %s: %zu events in table, %zu delivered, %llu duplicates, "
        "%llu parasites, %llu event copies sent\n",
        who, node.events().size(), m.deliveries.size(),
        static_cast<unsigned long long>(m.duplicates),
        static_cast<unsigned long long>(m.parasites),
        static_cast<unsigned long long>(m.events_sent));
  };
  report("p1", p1);
  report("p2", p2);
  report("p3", p3);

  const bool ok = p1.metrics().deliveries.size() == 3 &&  // own + 2 demo
                  p2.metrics().deliveries.size() == 2 &&  // its own two
                  p3.metrics().deliveries.size() == 3;    // everything
  std::printf("\n%s\n", ok ? "SUCCESS: every process got exactly the events "
                             "it subscribed to."
                           : "UNEXPECTED delivery counts (see above).");
  return ok ? 0 : 1;
}
