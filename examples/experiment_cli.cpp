// Orchestration CLI for the scenario registry: list scenarios, run any of
// them with custom grids, worker counts and output formats — the shell
// front-end of the src/runner/ subsystem.
//
// Usage:
//   experiment_cli --list
//   experiment_cli --scenario NAME [--jobs N] [--seeds N] [--seed-base N]
//                  [--full] [--grid axis=v1,v2,...]...
//                  [--format table|csv|jsonl] [--csv-dir DIR]
//                  [--shard i/N]
//   experiment_cli --merge FILE [--merge FILE]...
//                  [--format table|csv|jsonl] [--csv-dir DIR]
//
// Examples:
//   experiment_cli --list
//   experiment_cli --scenario fig11_rwp_reliability --jobs 8 --format csv
//   experiment_cli --scenario fig13_heartbeat --grid hb_upper_s=1,5 --seeds 2
//   experiment_cli --scenario high_density --grid nodes=600 --format jsonl
//   experiment_cli --scenario fig17_bandwidth --full --shard 0/4 > s0.jsonl
//   experiment_cli --merge s0.jsonl --merge s1.jsonl ... --format csv
//
// The aggregated output is byte-identical whatever --jobs says: jobs are
// pure functions of their (grid point, seed) coordinates and aggregation
// runs serially in canonical grid order. --shard runs one deterministic
// slice of that job order and prints a self-describing partial artifact;
// --merge recombines a complete shard set (any order, any machines) into
// output byte-identical to the single-box run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "protocol/registry.hpp"
#include "runner/pool.hpp"
#include "runner/registry.hpp"
#include "runner/shard.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

using namespace frugal;
using namespace frugal::runner;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --list\n"
      "       %s --protocols\n"
      "       %s --describe-json [--scenario NAME]\n"
      "       %s --scenario NAME [--jobs N] [--seeds N] [--seed-base N]\n"
      "          [--full] [--grid axis=v1,v2,...]...\n"
      "          [--format table|csv|jsonl] [--csv-dir DIR]\n"
      "          [--telemetry] [--profile] [--window S]\n"
      "          [--timeseries FILE] [--perfetto FILE] [--manifest FILE]\n"
      "          [--dissem-trace FILE] [--dissem-bounded]\n"
      "       %s --scenario NAME [sweep flags as above] --shard i/N\n"
      "       %s --merge FILE [--merge FILE]...\n"
      "          [--format table|csv|jsonl] [--csv-dir DIR]\n"
      "\n"
      "--describe-json prints the machine-readable scenario/axis/metric\n"
      "listing (all scenarios, or just --scenario NAME).\n"
      "--telemetry streams every run through the bounded-memory telemetry\n"
      "hub — output stays byte-identical to the default path.\n"
      "--timeseries / --perfetto write windowed time-series JSONL / a\n"
      "Chrome trace for the run; both need a single-job sweep (one grid\n"
      "point, one seed — use --grid and --seeds 1).\n"
      "--dissem-trace writes the causal dissemination trace (JSONL, one\n"
      "record per published event's propagation DAG — see EXPERIMENTS.md\n"
      "and scripts/explain_event.py); same single-job rule. With\n"
      "--perfetto, per-event flow arrows are stitched onto the trace.\n"
      "--dissem-bounded retires each event's DAG at validity expiry for\n"
      "flat memory on long runs (identical stats and JSONL rows).\n"
      "--profile prints per-subsystem self-profiling; --manifest writes a\n"
      "run-manifest JSON (provenance + profile) after the sweep.\n"
      "--shard runs slice i of N of the job grid and prints the partial\n"
      "artifact (JSONL) to stdout — it takes no --format/--csv-dir;\n"
      "--merge recombines a complete shard set into output byte-identical\n"
      "to the unsharded run and takes no sweep-shaping flags (the\n"
      "artifacts fix the grid, seeds and seed base).\n"
      "--protocols lists every registered dissemination protocol with its\n"
      "declared knobs; label-valued axes (e.g. the protocol axis) accept\n"
      "those names in --grid: --grid protocol=frugal,gossip.\n"
      "Defaults honour FRUGAL_JOBS, FRUGAL_SEEDS, FRUGAL_FULL and\n"
      "FRUGAL_CSV_DIR; flags win over the environment.\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

void list_scenarios() {
  std::printf("%-24s %-10s %s\n", "name", "figure", "description");
  for (const ScenarioSpec* spec : all_scenarios()) {
    std::fputs(describe(*spec).c_str(), stdout);
  }
}

/// Strict positive-integer flag parsing: rejects junk instead of letting
/// atoi silently turn "--seeds abc" into "use the default".
int parse_positive_int(const char* text, const char* flag,
                       const char* argv0) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0 || value > 1'000'000) {
    std::fprintf(stderr, "%s wants a positive integer, got \"%s\"\n", flag,
                 text);
    usage(argv0);
  }
  return static_cast<int>(value);
}

/// Strict positive-double flag parsing (--window).
double parse_positive_double(const char* text, const char* flag,
                             const char* argv0) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value > 0) || value > 1e9) {
    std::fprintf(stderr, "%s wants a positive number, got \"%s\"\n", flag,
                 text);
    usage(argv0);
  }
  return value;
}

/// One --grid override before resolution: numeric tokens land in
/// axis.values directly; label tokens (e.g. protocol names) are kept
/// verbatim and resolved against the scenario's axis parser once the spec
/// is known.
struct GridOverride {
  Axis axis;
  /// Parallel to axis.values; non-empty entries are unresolved labels.
  std::vector<std::string> labels;
};

/// Parses "axis=v1,v2,..." — values may be numbers or axis labels.
GridOverride parse_grid_override(const char* text, const char* argv0) {
  const char* equals = std::strchr(text, '=');
  if (equals == nullptr || equals == text || equals[1] == '\0') {
    std::fprintf(stderr, "bad --grid \"%s\" (want axis=v1,v2,...)\n", text);
    usage(argv0);
  }
  GridOverride override_;
  override_.axis.name.assign(text, static_cast<std::size_t>(equals - text));
  const char* cursor = equals + 1;
  while (*cursor != '\0') {
    const char* comma = std::strchr(cursor, ',');
    const std::string token =
        comma != nullptr ? std::string(cursor, comma) : std::string(cursor);
    if (token.empty()) {
      std::fprintf(stderr, "bad --grid value in \"%s\"\n", text);
      usage(argv0);
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() + token.size()) {
      override_.axis.values.push_back(value);
      override_.labels.emplace_back();
    } else {
      override_.axis.values.push_back(0.0);  // resolved against the spec
      override_.labels.push_back(token);
    }
    cursor = comma != nullptr ? comma + 1 : cursor + token.size();
  }
  if (override_.axis.values.empty()) {
    std::fprintf(stderr, "empty --grid \"%s\"\n", text);
    usage(argv0);
  }
  return override_;
}

/// JSON string literal (quotes included) for manifest fields the user
/// controls, e.g. artifact paths.
std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "cannot read shard artifact \"%s\"\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  SweepOptions options;
  options.full = env_bool("FRUGAL_FULL", false);
  Format format = Format::kTable;
  std::string csv_dir = env_string("FRUGAL_CSV_DIR").value_or("");
  bool list_requested = false;
  bool protocols_requested = false;
  bool describe_json_requested = false;
  bool shard_requested = false;
  bool sweep_flags_used = false;   // --merge takes no sweep-shaping flags
  bool output_flags_used = false;  // --shard takes no output-shaping flags
  std::string manifest_path;
  std::vector<std::string> merge_paths;
  std::vector<GridOverride> grid_overrides;

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (is("--list")) {
      list_requested = true;
    } else if (is("--protocols")) {
      protocols_requested = true;
    } else if (is("--describe-json")) {
      describe_json_requested = true;
    } else if (is("--telemetry")) {
      options.telemetry = true;
      sweep_flags_used = true;
    } else if (is("--profile")) {
      options.profile = true;
      sweep_flags_used = true;
    } else if (is("--window")) {
      options.window_s = parse_positive_double(value(), "--window", argv[0]);
      sweep_flags_used = true;
    } else if (is("--timeseries")) {
      options.timeseries_path = value();
      sweep_flags_used = true;
    } else if (is("--perfetto")) {
      options.perfetto_path = value();
      sweep_flags_used = true;
    } else if (is("--dissem-trace")) {
      options.dissem_trace_path = value();
      sweep_flags_used = true;
    } else if (is("--dissem-bounded")) {
      options.dissem_bounded = true;
      sweep_flags_used = true;
    } else if (is("--manifest")) {
      manifest_path = value();
      output_flags_used = true;
    } else if (is("--scenario")) {
      scenario_name = value();
    } else if (is("--jobs")) {
      options.jobs = parse_positive_int(value(), "--jobs", argv[0]);
      sweep_flags_used = true;
    } else if (is("--seeds")) {
      options.seeds = parse_positive_int(value(), "--seeds", argv[0]);
      sweep_flags_used = true;
    } else if (is("--seed-base")) {
      options.seed_base = static_cast<std::uint64_t>(
          parse_positive_int(value(), "--seed-base", argv[0]));
      sweep_flags_used = true;
    } else if (is("--full")) {
      options.full = true;
      sweep_flags_used = true;
    } else if (is("--grid")) {
      grid_overrides.push_back(parse_grid_override(value(), argv[0]));
      sweep_flags_used = true;
    } else if (is("--shard")) {
      const char* text = value();
      const std::optional<ShardSpec> shard = try_parse_shard_spec(text);
      if (!shard.has_value()) {
        std::fprintf(stderr, "bad --shard \"%s\" (want i/N with 0 <= i < N)\n",
                     text);
        usage(argv[0]);
      }
      options.shard = *shard;
      shard_requested = true;
    } else if (is("--merge")) {
      merge_paths.emplace_back(value());
    } else if (is("--format")) {
      const std::string text = value();
      if (text != "table" && text != "csv" && text != "jsonl") usage(argv[0]);
      format = parse_format(text);
      output_flags_used = true;
    } else if (is("--csv-dir")) {
      csv_dir = value();
      output_flags_used = true;
    } else if (is("--help") || is("-h")) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag \"%s\"\n", argv[i]);
      usage(argv[0]);
    }
  }

  if (list_requested) {
    list_scenarios();
    return 0;
  }

  if (protocols_requested) {
    std::fputs(frugal::protocol::describe_protocols().c_str(), stdout);
    return 0;
  }

  if (describe_json_requested) {
    // Pure metadata: combining it with run-shaping flags would silently
    // ignore them, so reject everything but an optional --scenario filter.
    if (shard_requested || !merge_paths.empty() || sweep_flags_used ||
        output_flags_used) {
      std::fprintf(stderr, "--describe-json takes only --scenario NAME\n");
      usage(argv[0]);
    }
    if (scenario_name.empty()) {
      std::fputs(scenarios_json().c_str(), stdout);
      return 0;
    }
    const ScenarioSpec* spec = find_scenario(scenario_name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario \"%s\" (see --list)\n",
                   scenario_name.c_str());
      return 2;
    }
    std::printf("%s\n", describe_json(*spec).c_str());
    return 0;
  }

  if (!merge_paths.empty()) {
    // The artifacts fix the sweep (grid, seeds, seed base); flags that try
    // to reshape it would be silently ignored, so reject them.
    if (!scenario_name.empty() || shard_requested || sweep_flags_used) {
      std::fprintf(stderr,
                   "--merge takes no --scenario/--shard/sweep flags\n");
      usage(argv[0]);
    }
    std::vector<ShardArtifact> artifacts;
    artifacts.reserve(merge_paths.size());
    for (const std::string& path : merge_paths) {
      artifacts.push_back(parse_shard(read_file_or_die(path)));
    }
    const ScenarioSpec* spec = find_scenario(artifacts.front().scenario);
    if (spec == nullptr) {
      std::fprintf(stderr, "shard artifacts name unknown scenario \"%s\"\n",
                   artifacts.front().scenario.c_str());
      return 2;
    }
    emit(merge_shards(*spec, std::move(artifacts)), format, csv_dir);
    return 0;
  }

  if (scenario_name.empty()) usage(argv[0]);

  const ScenarioSpec* spec = find_scenario(scenario_name);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "unknown scenario \"%s\" (see --list)\n",
                 scenario_name.c_str());
    return 2;
  }
  for (GridOverride& override_ : grid_overrides) {
    const Axis* spec_axis = nullptr;
    for (const Axis& axis : spec->axes) {
      if (axis.name == override_.axis.name) spec_axis = &axis;
    }
    if (spec_axis == nullptr) {
      std::fprintf(stderr, "scenario %s has no axis \"%s\"\n",
                   spec->name.c_str(), override_.axis.name.c_str());
      return 2;
    }
    // Resolve label tokens (e.g. protocol names) through the axis's parser;
    // a label nobody registered is a hard error, not a silent fallback.
    for (std::size_t v = 0; v < override_.labels.size(); ++v) {
      if (override_.labels[v].empty()) continue;
      if (!spec_axis->parse) {
        std::fprintf(stderr,
                     "axis \"%s\" takes numeric values, got \"%s\"\n",
                     spec_axis->name.c_str(), override_.labels[v].c_str());
        return 2;
      }
      const std::optional<double> resolved =
          spec_axis->parse(override_.labels[v]);
      if (!resolved.has_value()) {
        std::fprintf(stderr, "unknown value \"%s\" for axis \"%s\"\n",
                     override_.labels[v].c_str(), spec_axis->name.c_str());
        if (spec_axis->name == "protocol") {
          std::fprintf(stderr, "registered protocols:\n%s",
                       frugal::protocol::describe_protocols().c_str());
        }
        return 2;
      }
      override_.axis.values[v] = *resolved;
    }
    options.overrides.push_back(std::move(override_.axis));
  }

  if (shard_requested) {
    // Time-series / Perfetto / dissem-trace artifacts describe one
    // simulation; a shard slice is not one simulation. (--telemetry is
    // fine: shards stream through the hub and the merge stays
    // byte-identical.)
    if (!options.timeseries_path.empty() || !options.perfetto_path.empty() ||
        !options.dissem_trace_path.empty()) {
      std::fprintf(stderr,
                   "--timeseries/--perfetto/--dissem-trace need a single-job "
                   "run, not a --shard slice\n");
      usage(argv[0]);
    }
    // The partial artifact is the whole output — machine-to-machine
    // interchange, so no table chrome on stdout, and flags that shape
    // normal output would be silently ignored: reject them.
    if (output_flags_used) {
      std::fprintf(stderr,
                   "--shard prints the partial artifact; --format/--csv-dir "
                   "apply to full runs and --merge\n");
      usage(argv[0]);
    }
    if (!csv_dir.empty()) {  // ambient FRUGAL_CSV_DIR: warn, don't reject
      std::fprintf(stderr,
                   "# note: FRUGAL_CSV_DIR is ignored in --shard mode\n");
    }
    std::fputs(serialize_shard(run_sweep_shard(*spec, options)).c_str(),
               stdout);
    return 0;
  }

  if (!options.timeseries_path.empty() || !options.perfetto_path.empty() ||
      !options.dissem_trace_path.empty()) {
    // Friendlier than the runner's abort: these artifacts describe one
    // simulation, so the resolved sweep must be exactly one job.
    const SweepPlan plan = plan_sweep(*spec, options);
    if (plan.job_count != 1) {
      std::fprintf(stderr,
                   "--timeseries/--perfetto/--dissem-trace describe one "
                   "simulation but this sweep has %zu jobs; narrow it with "
                   "--grid and --seeds 1\n",
                   plan.job_count);
      return 2;
    }
  }

  if (format == Format::kTable) {
    std::printf("# %s — %s\n", spec->name.c_str(), spec->description.c_str());
    std::printf("# %d worker(s)\n", resolve_jobs(options.jobs));
  }
  const SweepResult sweep = run_sweep(*spec, options);
  emit(sweep, format, csv_dir);

  if (!manifest_path.empty()) {
    std::ofstream out{manifest_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "cannot write manifest \"%s\"\n",
                   manifest_path.c_str());
      return 2;
    }
    char wall[64];
    std::snprintf(wall, sizeof wall, "%.3f", sweep.wall_seconds);
    out << "{\"scenario\":" << json_string(spec->name)
        << ",\"seeds\":" << sweep.seeds << ",\"jobs\":" << sweep.jobs
        << ",\"runs\":" << sweep.job_count << ",\"wall_seconds\":" << wall
        << ",\"telemetry\":" << (options.telemetry ? "true" : "false")
        << ",\"timeseries\":" << json_string(options.timeseries_path)
        << ",\"perfetto\":" << json_string(options.perfetto_path)
        << ",\"dissem_trace\":" << json_string(options.dissem_trace_path)
        << ",\"profile\":" << profile_json(sweep.profile) << "}\n";
    if (format == Format::kTable) {
      std::printf("# manifest written to %s\n", manifest_path.c_str());
    }
  }
  return 0;
}
