// Command-line experiment driver: run any single configuration of the
// paper's evaluation from the shell and print the full metric set, without
// writing C++. Useful for exploring the parameter space beyond the figures.
//
// Usage:
//   experiment_cli [--protocol frugal|simple|interest|neighbor]
//                  [--mobility rwp|city|static] [--nodes N] [--interest F]
//                  [--speed MPS] [--speed-max MPS] [--events N]
//                  [--validity S] [--warmup S] [--range M] [--hb-upper S]
//                  [--churn CRASHES_PER_MIN] [--seeds N] [--seed BASE]
//                  [--publisher ID] [--latency]
//
// Example — the paper's headline point (95% at 10 mps, 180 s, 80%):
//   experiment_cli --mobility rwp --nodes 150 --interest 0.8 --speed 10

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace frugal;
using namespace frugal::core;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--protocol frugal|simple|interest|neighbor] "
               "[--mobility rwp|city|static]\n"
               "  [--nodes N] [--interest F] [--speed MPS] [--speed-max MPS]\n"
               "  [--events N] [--validity S] [--warmup S] [--range M]\n"
               "  [--hb-upper S] [--churn PER_MIN] [--seeds N] [--seed BASE]\n"
               "  [--publisher ID] [--latency]\n",
               argv0);
  std::exit(2);
}

double parse_double(const char* text) { return std::strtod(text, nullptr); }

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.node_count = 150;
  config.interest_fraction = 0.8;
  std::string mobility_kind = "rwp";
  double speed = 10.0;
  double speed_max = -1.0;
  int seeds = 3;
  std::uint64_t seed_base = 1;
  bool show_latency = false;

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (is("--protocol")) {
      const std::string p = value();
      if (p == "frugal") {
        config.protocol = Protocol::kFrugal;
      } else if (p == "simple") {
        config.protocol = Protocol::kFloodSimple;
      } else if (p == "interest") {
        config.protocol = Protocol::kFloodInterestAware;
      } else if (p == "neighbor") {
        config.protocol = Protocol::kFloodNeighborInterest;
      } else {
        usage(argv[0]);
      }
    } else if (is("--mobility")) {
      mobility_kind = value();
    } else if (is("--nodes")) {
      config.node_count = static_cast<std::size_t>(std::atoll(value()));
    } else if (is("--interest")) {
      config.interest_fraction = parse_double(value());
    } else if (is("--speed")) {
      speed = parse_double(value());
    } else if (is("--speed-max")) {
      speed_max = parse_double(value());
    } else if (is("--events")) {
      config.event_count = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (is("--validity")) {
      config.event_validity = SimDuration::from_seconds(parse_double(value()));
    } else if (is("--warmup")) {
      config.warmup = SimDuration::from_seconds(parse_double(value()));
    } else if (is("--range")) {
      config.medium.range_m = parse_double(value());
    } else if (is("--hb-upper")) {
      config.frugal.hb_upper = SimDuration::from_seconds(parse_double(value()));
    } else if (is("--churn")) {
      config.churn.crashes_per_node_per_minute = parse_double(value());
    } else if (is("--seeds")) {
      seeds = std::atoi(value());
    } else if (is("--seed")) {
      seed_base = std::strtoull(value(), nullptr, 10);
    } else if (is("--publisher")) {
      config.publisher = static_cast<NodeId>(std::atoi(value()));
    } else if (is("--latency")) {
      show_latency = true;
    } else {
      usage(argv[0]);
    }
  }

  if (mobility_kind == "rwp") {
    RandomWaypointSetup rwp;
    rwp.config.speed_min_mps = speed;
    rwp.config.speed_max_mps = speed_max > 0 ? speed_max : speed;
    rwp.config.per_node_constant_speed = speed_max > 0;
    config.mobility = rwp;
  } else if (mobility_kind == "city") {
    config.mobility = CitySetup{};
    if (config.node_count == 150) config.node_count = 15;
    config.medium.range_m = 44.0;
    config.warmup = SimDuration::from_seconds(30);
  } else if (mobility_kind == "static") {
    config.mobility = StaticSetup{};
  } else {
    usage(argv[0]);
  }

  std::printf(
      "protocol=%s mobility=%s nodes=%zu interest=%.2f events=%u "
      "validity=%.0fs seeds=%d\n",
      to_string(config.protocol), mobility_kind.c_str(), config.node_count,
      config.interest_fraction, config.event_count,
      config.event_validity.seconds(), seeds);

  stats::Summary reliability;
  stats::Summary bytes;
  stats::Summary copies;
  stats::Summary duplicates;
  stats::Summary parasites;
  stats::Summary latency;
  stats::Histogram latency_histogram{1.0, 200};

  for (int s = 0; s < seeds; ++s) {
    config.seed = seed_base + static_cast<std::uint64_t>(s);
    const RunResult result = run_experiment(config);
    reliability.add(result.reliability());
    bytes.add(result.mean_bytes_sent_per_node());
    copies.add(result.mean_events_sent_per_node());
    duplicates.add(result.mean_duplicates_per_node());
    parasites.add(result.mean_parasites_per_node());
    latency.add(result.mean_delivery_latency_s());
    for (const double l : result.delivery_latencies_s()) {
      latency_histogram.add(l);
    }
  }

  std::printf("reliability      %.3f +- %.3f\n", reliability.mean(),
              reliability.ci95_half_width());
  std::printf("bytes/process    %.0f\n", bytes.mean());
  std::printf("copies/process   %.1f\n", copies.mean());
  std::printf("dups/process     %.1f\n", duplicates.mean());
  std::printf("parasites/proc   %.1f\n", parasites.mean());
  std::printf("mean latency     %.2f s\n", latency.mean());
  if (show_latency) {
    std::printf("latency          %s\n", latency_histogram.summary().c_str());
  }
  return 0;
}
