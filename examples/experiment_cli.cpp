// Orchestration CLI for the scenario registry: list scenarios, run any of
// them with custom grids, worker counts and output formats — the shell
// front-end of the src/runner/ subsystem.
//
// Usage:
//   experiment_cli --list
//   experiment_cli --scenario NAME [--jobs N] [--seeds N] [--seed-base N]
//                  [--full] [--grid axis=v1,v2,...]...
//                  [--format table|csv|jsonl] [--csv-dir DIR]
//
// Examples:
//   experiment_cli --list
//   experiment_cli --scenario fig11_rwp_reliability --jobs 8 --format csv
//   experiment_cli --scenario fig13_heartbeat --grid hb_upper_s=1,5 --seeds 2
//   experiment_cli --scenario high_density --grid nodes=600 --format jsonl
//
// The aggregated output is byte-identical whatever --jobs says: jobs are
// pure functions of their (grid point, seed) coordinates and aggregation
// runs serially in canonical grid order.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/pool.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

using namespace frugal;
using namespace frugal::runner;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --list\n"
      "       %s --scenario NAME [--jobs N] [--seeds N] [--seed-base N]\n"
      "          [--full] [--grid axis=v1,v2,...]...\n"
      "          [--format table|csv|jsonl] [--csv-dir DIR]\n"
      "\n"
      "Defaults honour FRUGAL_JOBS, FRUGAL_SEEDS, FRUGAL_FULL and\n"
      "FRUGAL_CSV_DIR; flags win over the environment.\n",
      argv0, argv0);
  std::exit(2);
}

void list_scenarios() {
  std::printf("%-24s %-10s %s\n", "name", "figure", "description");
  for (const ScenarioSpec* spec : all_scenarios()) {
    std::printf("%-24s %-10s %s\n", spec->name.c_str(),
                spec->figure.empty() ? "-" : spec->figure.c_str(),
                spec->description.c_str());
    std::string axes = "  axes: ";
    for (std::size_t a = 0; a < spec->axes.size(); ++a) {
      if (a > 0) axes += ", ";
      axes += spec->axes[a].name;
      axes += '[';
      axes += std::to_string(spec->axes[a].values.size());
      if (!spec->axes[a].full_values.empty()) {
        axes += '/';
        axes += std::to_string(spec->axes[a].full_values.size());
      }
      axes += ']';
      if (spec->axes[a].aggregate) axes += "(agg)";
    }
    std::printf("%s; metrics: %zu; default seeds: %d\n", axes.c_str(),
                spec->metrics.size(), spec->default_seeds);
  }
}

/// Strict positive-integer flag parsing: rejects junk instead of letting
/// atoi silently turn "--seeds abc" into "use the default".
int parse_positive_int(const char* text, const char* flag,
                       const char* argv0) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0 || value > 1'000'000) {
    std::fprintf(stderr, "%s wants a positive integer, got \"%s\"\n", flag,
                 text);
    usage(argv0);
  }
  return static_cast<int>(value);
}

/// Parses "axis=v1,v2,..." into an override Axis.
Axis parse_grid_override(const char* text, const char* argv0) {
  const char* equals = std::strchr(text, '=');
  if (equals == nullptr || equals == text || equals[1] == '\0') {
    std::fprintf(stderr, "bad --grid \"%s\" (want axis=v1,v2,...)\n", text);
    usage(argv0);
  }
  Axis axis;
  axis.name.assign(text, static_cast<std::size_t>(equals - text));
  const char* cursor = equals + 1;
  while (*cursor != '\0') {
    char* end = nullptr;
    const double value = std::strtod(cursor, &end);
    if (end == cursor) {
      std::fprintf(stderr, "bad --grid value in \"%s\"\n", text);
      usage(argv0);
    }
    axis.values.push_back(value);
    cursor = end;
    if (*cursor == ',') ++cursor;
  }
  if (axis.values.empty()) {
    std::fprintf(stderr, "empty --grid \"%s\"\n", text);
    usage(argv0);
  }
  return axis;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  SweepOptions options;
  options.full = env_bool("FRUGAL_FULL", false);
  Format format = Format::kTable;
  std::string csv_dir = env_string("FRUGAL_CSV_DIR").value_or("");
  bool list_requested = false;

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (is("--list")) {
      list_requested = true;
    } else if (is("--scenario")) {
      scenario_name = value();
    } else if (is("--jobs")) {
      options.jobs = parse_positive_int(value(), "--jobs", argv[0]);
    } else if (is("--seeds")) {
      options.seeds = parse_positive_int(value(), "--seeds", argv[0]);
    } else if (is("--seed-base")) {
      options.seed_base = static_cast<std::uint64_t>(
          parse_positive_int(value(), "--seed-base", argv[0]));
    } else if (is("--full")) {
      options.full = true;
    } else if (is("--grid")) {
      options.overrides.push_back(parse_grid_override(value(), argv[0]));
    } else if (is("--format")) {
      const std::string text = value();
      if (text != "table" && text != "csv" && text != "jsonl") usage(argv[0]);
      format = parse_format(text);
    } else if (is("--csv-dir")) {
      csv_dir = value();
    } else if (is("--help") || is("-h")) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag \"%s\"\n", argv[i]);
      usage(argv[0]);
    }
  }

  if (list_requested) {
    list_scenarios();
    return 0;
  }
  if (scenario_name.empty()) usage(argv[0]);

  const ScenarioSpec* spec = find_scenario(scenario_name);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "unknown scenario \"%s\" (see --list)\n",
                 scenario_name.c_str());
    return 2;
  }
  for (const Axis& override_axis : options.overrides) {
    bool found = false;
    for (const Axis& axis : spec->axes) found |= axis.name == override_axis.name;
    if (!found) {
      std::fprintf(stderr, "scenario %s has no axis \"%s\"\n",
                   spec->name.c_str(), override_axis.name.c_str());
      return 2;
    }
  }

  if (format == Format::kTable) {
    std::printf("# %s — %s\n", spec->name.c_str(), spec->description.c_str());
    std::printf("# %d worker(s)\n", resolve_jobs(options.jobs));
  }
  const SweepResult sweep = run_sweep(*spec, options);
  emit(sweep, format, csv_dir);
  return 0;
}
