
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/bench_main.cpp" "src/CMakeFiles/frugal_runner.dir/runner/bench_main.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/bench_main.cpp.o.d"
  "/root/repo/src/runner/pool.cpp" "src/CMakeFiles/frugal_runner.dir/runner/pool.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/pool.cpp.o.d"
  "/root/repo/src/runner/registry.cpp" "src/CMakeFiles/frugal_runner.dir/runner/registry.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/registry.cpp.o.d"
  "/root/repo/src/runner/scenario.cpp" "src/CMakeFiles/frugal_runner.dir/runner/scenario.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/scenario.cpp.o.d"
  "/root/repo/src/runner/scenarios.cpp" "src/CMakeFiles/frugal_runner.dir/runner/scenarios.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/scenarios.cpp.o.d"
  "/root/repo/src/runner/shard.cpp" "src/CMakeFiles/frugal_runner.dir/runner/shard.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/shard.cpp.o.d"
  "/root/repo/src/runner/sink.cpp" "src/CMakeFiles/frugal_runner.dir/runner/sink.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/sink.cpp.o.d"
  "/root/repo/src/runner/sweep.cpp" "src/CMakeFiles/frugal_runner.dir/runner/sweep.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/sweep.cpp.o.d"
  "/root/repo/src/runner/worlds.cpp" "src/CMakeFiles/frugal_runner.dir/runner/worlds.cpp.o" "gcc" "src/CMakeFiles/frugal_runner.dir/runner/worlds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build3/src/CMakeFiles/frugal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
