#include "core/neighborhood_table.hpp"

#include <gtest/gtest.h>

namespace frugal::core {
namespace {

using topics::SubscriptionSet;
using topics::Topic;

SubscriptionSet subs(const char* topic) {
  SubscriptionSet set;
  set.add(Topic::parse(topic));
  return set;
}

TEST(NeighborhoodTableTest, UpsertInserts) {
  NeighborhoodTable table;
  EXPECT_TRUE(table.upsert(7, subs(".a"), 5.0, SimTime::zero()));
  EXPECT_TRUE(table.contains(7));
  EXPECT_EQ(table.size(), 1u);
  const NeighborEntry* entry = table.find(7);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->id, 7u);
  EXPECT_TRUE(entry->subscriptions.covers(Topic::parse(".a.b")));
  EXPECT_EQ(entry->speed_mps, 5.0);
}

TEST(NeighborhoodTableTest, UpsertRefreshesKeepingKnownEvents) {
  NeighborhoodTable table;
  table.upsert(7, subs(".a"), 5.0, SimTime::zero());
  table.record_event(7, EventId{1, 1});
  table.upsert(7, subs(".b"), 9.0, SimTime::from_seconds(3));
  const NeighborEntry* entry = table.find(7);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->subscriptions.covers(Topic::parse(".b")));
  EXPECT_EQ(entry->speed_mps, 9.0);
  EXPECT_EQ(entry->store_time, SimTime::from_seconds(3));
  EXPECT_TRUE(table.neighbor_knows(7, EventId{1, 1}));
}

TEST(NeighborhoodTableTest, CapacityBoundsNewEntries) {
  NeighborhoodTable table{2};
  EXPECT_TRUE(table.upsert(1, subs(".a"), {}, SimTime::zero()));
  EXPECT_TRUE(table.upsert(2, subs(".a"), {}, SimTime::zero()));
  EXPECT_FALSE(table.upsert(3, subs(".a"), {}, SimTime::zero()));
  EXPECT_EQ(table.size(), 2u);
  // Refreshing an existing entry still works at capacity.
  EXPECT_TRUE(table.upsert(1, subs(".b"), {}, SimTime::from_seconds(1)));
}

TEST(NeighborhoodTableTest, RecordEventUnknownNeighborIsNoop) {
  NeighborhoodTable table;
  table.record_event(42, EventId{1, 1});
  EXPECT_FALSE(table.neighbor_knows(42, EventId{1, 1}));
  EXPECT_EQ(table.size(), 0u);
}

TEST(NeighborhoodTableTest, NeighborKnows) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  EXPECT_FALSE(table.neighbor_knows(1, EventId{2, 2}));
  table.record_event(1, EventId{2, 2});
  EXPECT_TRUE(table.neighbor_knows(1, EventId{2, 2}));
  EXPECT_FALSE(table.neighbor_knows(1, EventId{2, 3}));
}

TEST(NeighborhoodTableTest, TouchRefreshesStoreTime) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  table.touch(1, SimTime::from_seconds(9));
  EXPECT_EQ(table.find(1)->store_time, SimTime::from_seconds(9));
  table.touch(2, SimTime::from_seconds(9));  // unknown: no-op
  EXPECT_EQ(table.size(), 1u);
}

TEST(NeighborhoodTableTest, CollectRemovesStaleEntries) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  table.upsert(2, subs(".a"), {}, SimTime::from_seconds(8));
  const auto removed =
      table.collect(SimTime::from_seconds(10), SimDuration::from_seconds(5));
  EXPECT_EQ(removed, 1u);
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(2));
}

TEST(NeighborhoodTableTest, CollectBoundaryIsInclusive) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::from_seconds(5));
  // store_time + max_age == now: not yet stale (strictly older required).
  EXPECT_EQ(table.collect(SimTime::from_seconds(10),
                          SimDuration::from_seconds(5)),
            0u);
  EXPECT_EQ(table.collect(SimTime::from_seconds(10) + SimDuration::from_us(1),
                          SimDuration::from_seconds(5)),
            1u);
}

TEST(NeighborhoodTableTest, CollectPrunesExpiredKnownEvents) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::from_seconds(10));
  table.record_event(1, EventId{2, 1}, SimTime::from_seconds(4));  // expired
  table.record_event(1, EventId{2, 2}, SimTime::from_seconds(20));  // valid
  table.record_event(1, EventId{2, 3});  // expiry unknown: kept forever
  table.collect(SimTime::from_seconds(10), SimDuration::from_seconds(60));
  EXPECT_FALSE(table.neighbor_knows(1, EventId{2, 1}));
  EXPECT_TRUE(table.neighbor_knows(1, EventId{2, 2}));
  EXPECT_TRUE(table.neighbor_knows(1, EventId{2, 3}));
}

TEST(NeighborhoodTableTest, ExactExpiryUpgradesUnknown) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::from_seconds(10));
  table.record_event(1, EventId{2, 1});  // advert id, expiry unknown
  table.record_event(1, EventId{2, 1}, SimTime::from_seconds(15));  // exact
  table.collect(SimTime::from_seconds(20), SimDuration::from_seconds(60));
  EXPECT_FALSE(table.neighbor_knows(1, EventId{2, 1}));
}

TEST(NeighborhoodTableTest, PruneBoundaryMatchesValidity) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  table.record_event(1, EventId{2, 1}, SimTime::from_seconds(10));
  // expiry == now: the event is no longer valid (valid_at requires
  // expiry > now), so the recording is dead and goes.
  table.collect(SimTime::from_seconds(10), SimDuration::from_seconds(60));
  EXPECT_FALSE(table.neighbor_knows(1, EventId{2, 1}));
}

TEST(NeighborhoodTableTest, AverageSpeedOverReportingNeighbors) {
  NeighborhoodTable table;
  EXPECT_FALSE(table.average_speed().has_value());
  table.upsert(1, subs(".a"), 10.0, SimTime::zero());
  table.upsert(2, subs(".a"), std::nullopt, SimTime::zero());
  table.upsert(3, subs(".a"), 20.0, SimTime::zero());
  const auto average = table.average_speed();
  ASSERT_TRUE(average.has_value());
  EXPECT_DOUBLE_EQ(*average, 15.0);
}

TEST(NeighborhoodTableTest, AverageSpeedNulloptWhenNoneReport) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), std::nullopt, SimTime::zero());
  EXPECT_FALSE(table.average_speed().has_value());
}

TEST(NeighborhoodTableTest, EntriesSortedById) {
  NeighborhoodTable table;
  table.upsert(9, subs(".a"), {}, SimTime::zero());
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  table.upsert(5, subs(".a"), {}, SimTime::zero());
  const auto entries = table.entries_by_id();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->id, 1u);
  EXPECT_EQ(entries[1]->id, 5u);
  EXPECT_EQ(entries[2]->id, 9u);
  EXPECT_EQ(table.neighbor_ids(), (std::vector<NodeId>{1, 5, 9}));
}

TEST(NeighborhoodTableTest, RemoveAndClear) {
  NeighborhoodTable table;
  table.upsert(1, subs(".a"), {}, SimTime::zero());
  table.upsert(2, subs(".a"), {}, SimTime::zero());
  table.remove(1);
  EXPECT_FALSE(table.contains(1));
  table.clear();
  EXPECT_TRUE(table.empty());
}

}  // namespace
}  // namespace frugal::core
