#include "core/frugal_node.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"

namespace frugal::core {
namespace {

using namespace frugal::time_literals;
using topics::Topic;

/// A small wireless world of FrugalNodes on a static topology.
struct World {
  explicit World(std::vector<Vec2> positions, FrugalConfig config = fast())
      : mobility{std::move(positions)},
        medium{scheduler, mobility, radio(), Rng{7}} {
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      nodes.push_back(std::make_unique<FrugalNode>(id, scheduler, medium,
                                                   config, nullptr));
    }
  }

  static FrugalConfig fast() {
    FrugalConfig config;
    config.hb_upper = SimDuration::from_seconds(1.0);
    return config;
  }

  static net::MediumConfig radio() {
    net::MediumConfig config;
    config.range_m = 100.0;
    config.max_jitter = SimDuration::from_ms(2);
    return config;
  }

  FrugalNode& node(NodeId id) { return *nodes[id]; }

  void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

  Event make_event(const char* topic, double validity_s = 300.0) {
    Event e;
    e.topic = Topic::parse(topic);
    e.validity = SimDuration::from_seconds(validity_s);
    return e;
  }

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  net::Medium medium;
  std::vector<std::unique_ptr<FrugalNode>> nodes;
};

// -- subscription lifecycle (Fig. 5) -----------------------------------------

TEST(FrugalNodeTest, SubscribeStartsTasks) {
  World w{{{0, 0}}};
  EXPECT_FALSE(w.node(0).heartbeat_running());
  w.node(0).subscribe(Topic::parse(".a"));
  EXPECT_TRUE(w.node(0).heartbeat_running());
}

TEST(FrugalNodeTest, UnsubscribeLastTopicStopsTasks) {
  World w{{{0, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(0).subscribe(Topic::parse(".b"));
  w.node(0).unsubscribe(Topic::parse(".a"));
  EXPECT_TRUE(w.node(0).heartbeat_running());
  w.node(0).unsubscribe(Topic::parse(".b"));
  EXPECT_FALSE(w.node(0).heartbeat_running());
}

TEST(FrugalNodeTest, ResubscribeAfterFullUnsubscribeRestartsMachinery) {
  // Regression: a process that unsubscribes its last topic and later
  // subscribes again must come back fully — heartbeats, neighborhood GC and
  // the retrieve path all restart, so events published after the
  // re-subscription reach it.
  World w{{{0, 0}, {50, 0}}};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(1).unsubscribe(Topic::parse(".a"));
  EXPECT_FALSE(w.node(1).heartbeat_running());
  w.run_for(3_sec);  // fully quiesced while unsubscribed
  w.node(1).subscribe(Topic::parse(".a"));
  EXPECT_TRUE(w.node(1).heartbeat_running());
  w.run_for(3_sec);  // let the revived heartbeats rebuild the neighborhood
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, DuplicateSubscribeIsIdempotent) {
  // Subscriptions are a set: subscribing the same topic twice needs no
  // matching second unsubscribe, and one unsubscribe winds the tasks down.
  World w{{{0, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(0).subscribe(Topic::parse(".a"));
  EXPECT_TRUE(w.node(0).heartbeat_running());
  w.node(0).unsubscribe(Topic::parse(".a"));
  EXPECT_FALSE(w.node(0).heartbeat_running());
}

TEST(FrugalNodeTest, SpuriousUnsubscribeLeavesPublisherMachineryArmed) {
  // Regression: unsubscribing a topic that was never subscribed used to
  // fall through into the empty-subscriptions teardown and cancel a pure
  // publisher's armed back-off — silently killing its dissemination.
  World w{{{0, 0}, {50, 0}}};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  for (int step = 0; step < 300 && !w.node(0).backoff_pending(); ++step) {
    w.run_for(10_ms);
  }
  ASSERT_TRUE(w.node(0).backoff_pending());
  w.node(0).unsubscribe(Topic::parse(".never.subscribed"));
  EXPECT_TRUE(w.node(0).backoff_pending());
  w.run_for(10_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, UnsubscribeCancelsPendingRetrieve) {
  // Regression: with id exchange off, a freshly admitted neighbor arms the
  // deferred RETRIEVEEVENTSTOSEND. Unsubscribing the last topic must cancel
  // it — a fully-unsubscribed process may not broadcast bundles later.
  FrugalConfig config = World::fast();
  config.exchange_event_ids = false;
  World w{{{0, 0}, {50, 0}}, config};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  // Step until node 0 admits node 1 and defers the retrieve.
  for (int step = 0; step < 300 && !w.node(0).retrieve_pending(); ++step) {
    w.run_for(10_ms);
  }
  ASSERT_TRUE(w.node(0).retrieve_pending());
  w.node(0).unsubscribe(Topic::parse(".a"));
  EXPECT_FALSE(w.node(0).retrieve_pending());
  EXPECT_FALSE(w.node(0).backoff_pending());
  w.run_for(10_sec);
  EXPECT_EQ(w.node(0).metrics().events_sent, 0u);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
}

TEST(FrugalNodeTest, UnsubscribeCancelsArmedBackoff) {
  // Regression: an armed back-off timer survived full unsubscription and
  // still sent the bundle when it expired.
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  // The id exchange triggers retrieve; catch the 0.5 s back-off window.
  for (int step = 0; step < 300 && !w.node(0).backoff_pending(); ++step) {
    w.run_for(10_ms);
  }
  ASSERT_TRUE(w.node(0).backoff_pending());
  w.node(0).unsubscribe(Topic::parse(".a"));
  EXPECT_FALSE(w.node(0).backoff_pending());
  EXPECT_FALSE(w.node(0).retrieve_pending());
  EXPECT_FALSE(w.node(0).heartbeat_running());
  w.run_for(10_sec);
  EXPECT_EQ(w.node(0).metrics().events_sent, 0u);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
}

TEST(FrugalNodeTest, RejectedNewcomerDoesNotDisturbPendingSend) {
  // Under memory pressure the GC rejects an incoming event that is the
  // strictly worst candidate (expired on arrival). Such an event is
  // delivered but not stored — and its receipt must NOT cancel an armed
  // back-off: repeated receipts of a rejected event would otherwise defer a
  // pending transmission indefinitely.
  FrugalConfig config = World::fast();
  config.event_table_capacity = 1;
  World w{{{0, 0}, {500, 0}, {60, 0}}, config};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  // Node 2 never subscribes; it only sources crafted bundles.
  const auto inject = [&](EventId id, const char* topic, SimTime published,
                          double validity_s) {
    Event e;
    e.id = id;
    e.topic = Topic::parse(topic);
    e.published_at = published;
    e.validity = SimDuration::from_seconds(validity_s);
    EventBundle bundle;
    bundle.sender = 2;
    bundle.events = {std::move(e)};
    const Message message{std::move(bundle)};
    w.medium.broadcast(2, wire_size(message),
                       std::make_shared<const Message>(message));
  };

  // Node 0 (in range of node 2) stores event A; node 1 is still far away.
  inject(EventId{2, 5}, ".a.x", SimTime::zero(), 300.0);
  w.run_for(1_sec);
  ASSERT_TRUE(w.node(0).events().contains(EventId{2, 5}));
  ASSERT_FALSE(w.node(1).events().contains(EventId{2, 5}));

  // Node 1 arrives lacking A: node 0 arms the back-off to send it.
  w.mobility.move_node(1, {50, 0});
  for (int step = 0; step < 500 && !w.node(0).backoff_pending(); ++step) {
    w.run_for(10_ms);
  }
  ASSERT_TRUE(w.node(0).backoff_pending());

  // Event B was published at t=0 with a 1 s validity: expired on arrival,
  // it loses victim selection against the valid stored A — delivered, not
  // stored, back-off untouched.
  inject(EventId{1, 0}, ".a.y", SimTime::zero(), 1.0);
  w.run_for(50_ms);
  EXPECT_TRUE(w.node(0).backoff_pending());
  EXPECT_EQ(w.node(0).metrics().deliveries.count(EventId{1, 0}), 1u);
  EXPECT_TRUE(w.node(0).events().contains(EventId{2, 5}));
  EXPECT_FALSE(w.node(0).events().contains(EventId{1, 0}));

  // The pending send still goes through: node 1 receives A.
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.count(EventId{2, 5}), 1u);
}

TEST(FrugalNodeTest, HeartbeatsAreSentPeriodically) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.run_for(10_sec);
  // ~10 heartbeats of 50 bytes each (plus the initial phase offset).
  const auto& counters = w.medium.counters(0);
  EXPECT_GE(counters.frames_sent, 9u);
  EXPECT_LE(counters.frames_sent, 12u);
  EXPECT_EQ(counters.bytes_sent, counters.frames_sent * kHeartbeatWireBytes);
}

// -- neighborhood detection (Fig. 6) ------------------------------------------

TEST(FrugalNodeTest, MatchingSubscriptionsBuildNeighborhood) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a.b"));  // overlaps via hierarchy
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(0).neighborhood().contains(1));
  EXPECT_TRUE(w.node(1).neighborhood().contains(0));
}

TEST(FrugalNodeTest, DisjointInterestsAreNotNeighbors) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".b"));
  w.run_for(5_sec);
  EXPECT_FALSE(w.node(0).neighborhood().contains(1));
  EXPECT_FALSE(w.node(1).neighborhood().contains(0));
}

TEST(FrugalNodeTest, OutOfRangeNodesAreNotNeighbors) {
  World w{{{0, 0}, {500, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(5_sec);
  EXPECT_FALSE(w.node(0).neighborhood().contains(1));
}

TEST(FrugalNodeTest, NeighborhoodGcEvictsDepartedNeighbor) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);
  ASSERT_TRUE(w.node(0).neighborhood().contains(1));
  w.mobility.move_node(1, {5000, 0});
  // NGCDelay = 1 s * 2.5; give it a few periods.
  w.run_for(10_sec);
  EXPECT_FALSE(w.node(0).neighborhood().contains(1));
}

// -- dissemination (Figs. 7 and 9) --------------------------------------------

TEST(FrugalNodeTest, PublishReachesInterestedNeighbor) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);  // let them meet
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(2_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  EXPECT_EQ(w.node(0).metrics().deliveries.size(), 1u);  // own delivery
}

TEST(FrugalNodeTest, PublishBeforeMeetingIsDeliveredOnEncounter) {
  World w{{{0, 0}, {500, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(2_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
  w.mobility.move_node(1, {50, 0});
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, ParasiteEventsAreDroppedNotStored) {
  World w{{{0, 0}, {50, 0}, {60, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(2).subscribe(Topic::parse(".zzz"));  // will only overhear
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(2).metrics().deliveries.empty());
  EXPECT_EQ(w.node(2).events().size(), 0u);
  EXPECT_GE(w.node(2).metrics().parasites, 1u);
}

TEST(FrugalNodeTest, SubtopicEventReachesSupertopicSubscriber) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".conf.mw.demo"));
  w.node(1).subscribe(Topic::parse(".conf"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".conf.mw.demo"));
  w.run_for(3_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, SupertopicSubscriberDoesNotLeakToSibling) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".conf.mw"));
  w.node(1).subscribe(Topic::parse(".conf.icse"));  // sibling branch
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".conf.mw.x"));
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
}

TEST(FrugalNodeTest, StoredEventTransfersViaIdExchange) {
  // Node 0 holds an event; node 1 arrives later -> the id exchange detects
  // the gap and the event flows (paper Fig. 1, part I).
  World w{{{0, 0}, {500, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(10_sec);
  w.mobility.move_node(1, {50, 0});
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  // And node 0 now believes node 1 knows the event.
  EXPECT_TRUE(w.node(0).neighborhood().neighbor_knows(1, EventId{0, 0}));
}

TEST(FrugalNodeTest, NoRetransmissionWhenEveryoneKnows) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  const std::uint64_t sent_after_dissemination =
      w.node(0).metrics().events_sent + w.node(1).metrics().events_sent;
  w.run_for(30_sec);
  const std::uint64_t sent_later =
      w.node(0).metrics().events_sent + w.node(1).metrics().events_sent;
  EXPECT_EQ(sent_later, sent_after_dissemination)
      << "events kept being retransmitted although all neighbors know them";
}

TEST(FrugalNodeTest, ExpiredEventIsNotDisseminated) {
  World w{{{0, 0}, {500, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x", /*validity_s=*/5.0));
  w.run_for(10_sec);  // validity lapses while apart
  w.mobility.move_node(1, {50, 0});
  w.run_for(10_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
}

TEST(FrugalNodeTest, DeliveryCallbackFires) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  int calls = 0;
  Event seen;
  w.node(1).set_delivery_callback([&](const Event& e, SimTime) {
    ++calls;
    seen = e;
  });
  w.run_for(3_sec);
  Event e = w.make_event(".a.x");
  e.payload = "hello";
  w.node(0).publish(e);
  w.run_for(3_sec);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.payload, "hello");
  EXPECT_EQ(seen.id, (EventId{0, 0}));
}

TEST(FrugalNodeTest, PurePublisherDisseminatesWithoutSubscribing) {
  World w{{{0, 0}, {50, 0}}};
  // Node 0 publishes on .a but subscribes to nothing.
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, RelayAcrossPartition) {
  // 0 -- 1 in range; 2 out of range of 0 but reachable by 1 later: the
  // event must hop 0 -> 1 -> 2 although 0 and 2 never meet (store & forward).
  World w{{{0, 0}, {80, 0}, {1000, 0}}};
  for (NodeId id = 0; id < 3; ++id) {
    w.node(id).subscribe(Topic::parse(".a"));
  }
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  ASSERT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  w.mobility.move_node(1, {950, 0});  // now neighbor of 2 only
  w.run_for(6_sec);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 1u);
}

TEST(FrugalNodeTest, BackoffShorterWithMoreEvents) {
  FrugalConfig config = World::fast();
  World w{{{0, 0}}, config};
  // BODelay = HBDelay / (HB2BO * n): strictly decreasing in n.
  // (Validated through the config surface; the delay computation is pure.)
  const SimDuration one = config.hb_upper / (config.hb2bo * 1.0);
  const SimDuration five = config.hb_upper / (config.hb2bo * 5.0);
  EXPECT_LT(five, one);
  EXPECT_EQ(one, SimDuration::from_ms(500));
  EXPECT_EQ(five, SimDuration::from_ms(100));
}

TEST(FrugalNodeTest, DuplicateReceptionsAreCountedNotRedelivered) {
  // Two senders both hold the event and a common fresh receiver: at most one
  // delivery, extras counted as duplicates.
  World w{{{0, 0}, {60, 0}, {30, 50}}};
  for (NodeId id = 0; id < 3; ++id) w.node(id).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(30_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 1u);
}

// -- adaptive heartbeat (Fig. 8) ----------------------------------------------

TEST(FrugalNodeTest, HeartbeatDelayClampedToUpperBound) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);
  // Static neighbors advertise no speed (speed provider is null), so the
  // delay stays at the clamped default = hb_upper.
  EXPECT_EQ(w.node(0).hb_delay(), World::fast().hb_upper);
  EXPECT_EQ(w.node(0).ngc_delay(), World::fast().hb_upper * 2.5);
}

TEST(FrugalNodeTest, AdaptiveHeartbeatUsesAdvertisedSpeed) {
  // Speed providers make heartbeats carry speed; x / avgSpeed with x=40 and
  // speed 80 -> 0.5 s, within [lower, upper] -> adopted.
  sim::Scheduler scheduler;
  mobility::StaticMobility mobility{{{0, 0}, {50, 0}}};
  net::Medium medium{scheduler, mobility, World::radio(), Rng{7}};
  FrugalConfig config = World::fast();
  config.hb_upper = SimDuration::from_seconds(1.0);
  config.hb_lower = SimDuration::from_ms(100);
  FrugalNode fast_node{0, scheduler, medium, config, [] { return 80.0; }};
  FrugalNode observer{1, scheduler, medium, config, [] { return 80.0; }};
  fast_node.subscribe(Topic::parse(".a"));
  observer.subscribe(Topic::parse(".a"));
  scheduler.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(observer.hb_delay(), SimDuration::from_ms(500));
  EXPECT_EQ(observer.ngc_delay(), SimDuration::from_ms(1250));
}

TEST(FrugalNodeTest, NonAdaptiveAblationPinsDelay) {
  sim::Scheduler scheduler;
  mobility::StaticMobility mobility{{{0, 0}, {50, 0}}};
  net::Medium medium{scheduler, mobility, World::radio(), Rng{7}};
  FrugalConfig config = World::fast();
  config.adaptive_heartbeat = false;
  FrugalNode a{0, scheduler, medium, config, [] { return 80.0; }};
  FrugalNode b{1, scheduler, medium, config, [] { return 80.0; }};
  a.subscribe(Topic::parse(".a"));
  b.subscribe(Topic::parse(".a"));
  scheduler.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(a.hb_delay(), config.hb_upper);
}

// -- garbage collection under memory pressure ---------------------------------

TEST(FrugalNodeTest, EventTableRespectsCapacity) {
  FrugalConfig config = World::fast();
  config.event_table_capacity = 3;
  World w{{{0, 0}}, config};
  w.node(0).subscribe(Topic::parse(".a"));
  for (int i = 0; i < 10; ++i) {
    w.node(0).publish(w.make_event(".a.x"));
    w.run_for(100_ms);
  }
  EXPECT_EQ(w.node(0).events().size(), 3u);
  EXPECT_EQ(w.node(0).metrics().deliveries.size(), 10u);
}

// -- wire-level robustness ----------------------------------------------------

TEST(FrugalNodeTest, IgnoresForeignPayloads) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  // A non-protocol frame on the same channel must be ignored, not crash.
  w.medium.broadcast(1, 32, std::string{"alien traffic"});
  w.run_for(2_sec);
  EXPECT_TRUE(w.node(0).metrics().deliveries.empty());
}

}  // namespace
}  // namespace frugal::core
