#include "core/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace frugal::core {
namespace {

using topics::SubscriptionSet;
using topics::Topic;

Event sample_event(NodeId publisher = 3, std::uint32_t seq = 7) {
  Event e;
  e.id = EventId{publisher, seq};
  e.topic = Topic::parse(".news.local");
  e.published_at = SimTime::from_seconds(12.5);
  e.validity = SimDuration::from_seconds(180);
  e.wire_bytes = 400;
  e.payload = "parking spot at level 2";
  return e;
}

// -- wire size accounting ----------------------------------------------------

TEST(WireSizeTest, HeartbeatIsPaperConstant) {
  Heartbeat hb;
  hb.sender = 1;
  hb.subscriptions.add(Topic::parse(".a"));
  hb.subscriptions.add(Topic::parse(".b.c"));
  hb.speed_mps = 12.0;
  EXPECT_EQ(wire_size(hb), kHeartbeatWireBytes);
  EXPECT_EQ(kHeartbeatWireBytes, 50u);  // paper §5.2
}

TEST(WireSizeTest, EventIdListScalesWithIds) {
  EventIdList list;
  list.sender = 1;
  EXPECT_EQ(wire_size(list), kMessageHeaderBytes);
  list.ids.push_back(EventId{1, 1});
  EXPECT_EQ(wire_size(list), kMessageHeaderBytes + kEventIdWireBytes);
  list.ids.push_back(EventId{1, 2});
  EXPECT_EQ(wire_size(list), kMessageHeaderBytes + 2 * kEventIdWireBytes);
  EXPECT_EQ(kEventIdWireBytes, 16u);  // 128-bit ids, paper §5.2
}

TEST(WireSizeTest, EventBundleUsesEventWireBytes) {
  EventBundle bundle;
  bundle.sender = 2;
  bundle.events.push_back(sample_event());
  bundle.presumed_receivers = {4, 5, 6};
  EXPECT_EQ(wire_size(bundle),
            kMessageHeaderBytes + 400 + 3 * kNeighborIdWireBytes);
}

TEST(WireSizeTest, MessageVariantDispatch) {
  Heartbeat hb;
  EXPECT_EQ(wire_size(Message{hb}), kHeartbeatWireBytes);
}

// -- codec round trips -------------------------------------------------------

TEST(CodecTest, HeartbeatRoundTrip) {
  Heartbeat hb;
  hb.sender = 17;
  hb.subscriptions.add(Topic::parse(".conf.mw"));
  hb.subscriptions.add(Topic::parse(".news"));
  hb.speed_mps = 8.25;

  const auto decoded = decode(encode(Message{hb}));
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<Heartbeat>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sender, 17u);
  EXPECT_EQ(out->subscriptions, hb.subscriptions);
  ASSERT_TRUE(out->speed_mps.has_value());
  EXPECT_DOUBLE_EQ(*out->speed_mps, 8.25);
}

TEST(CodecTest, HeartbeatWithoutSpeed) {
  Heartbeat hb;
  hb.sender = 1;
  hb.subscriptions.add(Topic::parse(".x"));
  const auto decoded = decode(encode(Message{hb}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(std::get<Heartbeat>(*decoded).speed_mps.has_value());
}

TEST(CodecTest, EventIdListRoundTrip) {
  EventIdList list;
  list.sender = 9;
  list.ids = {EventId{1, 2}, EventId{3, 4}, EventId{0xFFFFFFFE, 0xFFFFFFFF}};
  const auto decoded = decode(encode(Message{list}));
  ASSERT_TRUE(decoded.has_value());
  const auto& out = std::get<EventIdList>(*decoded);
  EXPECT_EQ(out.sender, 9u);
  EXPECT_EQ(out.ids, list.ids);
}

TEST(CodecTest, EventBundleRoundTrip) {
  EventBundle bundle;
  bundle.sender = 5;
  bundle.events = {sample_event(1, 1), sample_event(2, 9)};
  bundle.presumed_receivers = {7, 8};
  const auto decoded = decode(encode(Message{bundle}));
  ASSERT_TRUE(decoded.has_value());
  const auto& out = std::get<EventBundle>(*decoded);
  EXPECT_EQ(out.sender, 5u);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].id, (EventId{1, 1}));
  EXPECT_EQ(out.events[1].id, (EventId{2, 9}));
  EXPECT_EQ(out.events[0].topic, Topic::parse(".news.local"));
  EXPECT_EQ(out.events[0].published_at, SimTime::from_seconds(12.5));
  EXPECT_EQ(out.events[0].validity, SimDuration::from_seconds(180));
  EXPECT_EQ(out.events[0].wire_bytes, 400u);
  EXPECT_EQ(out.events[0].payload, "parking spot at level 2");
  EXPECT_EQ(out.presumed_receivers, (std::vector<NodeId>{7, 8}));
}

TEST(CodecTest, EmptyBundleRoundTrip) {
  EventBundle bundle;
  bundle.sender = 0;
  const auto decoded = decode(encode(Message{bundle}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<EventBundle>(*decoded).events.empty());
}

TEST(CodecTest, RootTopicRoundTrip) {
  Event e = sample_event();
  e.topic = Topic{};
  EventBundle bundle;
  bundle.sender = 1;
  bundle.events = {e};
  const auto decoded = decode(encode(Message{bundle}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<EventBundle>(*decoded).events[0].topic.is_root());
}

// -- malformed input ---------------------------------------------------------

TEST(CodecTest, EmptyInputRejected) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(CodecTest, UnknownTagRejected) {
  EXPECT_FALSE(decode({std::byte{0xEE}}).has_value());
}

TEST(CodecTest, TruncationAlwaysRejected) {
  EventBundle bundle;
  bundle.sender = 5;
  bundle.events = {sample_event()};
  bundle.presumed_receivers = {1, 2, 3};
  const auto bytes = encode(Message{bundle});
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::byte> prefix(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(decode(prefix).has_value()) << "prefix length " << n;
  }
}

TEST(CodecTest, TrailingGarbageRejected) {
  Heartbeat hb;
  hb.sender = 1;
  auto bytes = encode(Message{hb});
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecTest, AbsurdLengthDoesNotAllocate) {
  // Tag + sender + claimed 2^32-1 ids, then nothing: must fail cleanly.
  std::vector<std::byte> bytes;
  bytes.push_back(std::byte{2});  // EventIdList
  for (int i = 0; i < 4; ++i) bytes.push_back(std::byte{0});  // sender
  for (int i = 0; i < 4; ++i) bytes.push_back(std::byte{0xFF});  // count
  EXPECT_FALSE(decode(bytes).has_value());
}

// Fuzz-ish property: random byte strings never crash the decoder, and decoded
// messages re-encode to the identical bytes (canonical form).
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrash) {
  Rng rng{GetParam()};
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng.uniform_u64(64);
    std::vector<std::byte> bytes(n);
    for (auto& b : bytes) b = static_cast<std::byte>(rng.uniform_u64(256));
    const auto decoded = decode(bytes);
    if (decoded.has_value()) {
      EXPECT_EQ(encode(*decoded), bytes);  // canonical round trip
    }
  }
}

TEST_P(CodecFuzz, BitFlipsNeverCrash) {
  EventBundle bundle;
  bundle.sender = 5;
  bundle.events = {sample_event()};
  const auto original = encode(Message{bundle});
  Rng rng{GetParam() ^ 0xF00DULL};
  for (int iter = 0; iter < 200; ++iter) {
    auto bytes = original;
    const std::size_t pos = rng.uniform_u64(bytes.size());
    bytes[pos] ^= static_cast<std::byte>(1u << rng.uniform_u64(8));
    (void)decode(bytes);  // must not crash; value correctness not required
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace frugal::core
