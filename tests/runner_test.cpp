// Unit tests for the experiment-orchestration subsystem: grid expansion,
// registry invariants, worker pool, sweep aggregation and the sink formats.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "minijson.hpp"

#include "runner/pool.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "runner/worlds.hpp"

namespace frugal::runner {
namespace {

// ---------------------------------------------------------------------------
// Grid expansion.

TEST(GridExpansion, CanonicalOrderLastAxisFastest) {
  std::vector<Axis> axes(2);
  axes[0].name = "a";
  axes[0].values = {1, 2};
  axes[1].name = "b";
  axes[1].values = {10, 20, 30};

  const std::vector<ParamPoint> grid = expand_grid(axes, /*full=*/false);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].values, (std::vector<double>{1, 10}));
  EXPECT_EQ(grid[1].values, (std::vector<double>{1, 20}));
  EXPECT_EQ(grid[2].values, (std::vector<double>{1, 30}));
  EXPECT_EQ(grid[3].values, (std::vector<double>{2, 10}));
  EXPECT_EQ(grid[5].values, (std::vector<double>{2, 30}));
  EXPECT_EQ(grid[4].get("b"), 20);
  EXPECT_EQ(grid[4].get("a"), 2);
}

TEST(GridExpansion, FullGridSelectsFullValues) {
  std::vector<Axis> axes(1);
  axes[0].name = "a";
  axes[0].values = {1};
  axes[0].full_values = {1, 2, 3};
  EXPECT_EQ(expand_grid(axes, false).size(), 1u);
  EXPECT_EQ(expand_grid(axes, true).size(), 3u);
}

TEST(GridExpansion, OverridesReplaceValuesInBothModes) {
  std::vector<Axis> axes(1);
  axes[0].name = "a";
  axes[0].values = {1};
  axes[0].full_values = {1, 2, 3};

  Axis override_axis;
  override_axis.name = "a";
  override_axis.values = {7, 8};
  const std::vector<Axis> overridden =
      apply_overrides(axes, {override_axis});
  EXPECT_EQ(expand_grid(overridden, false).size(), 2u);
  EXPECT_EQ(expand_grid(overridden, true).size(), 2u);
  EXPECT_EQ(overridden[0].values, (std::vector<double>{7, 8}));
}

TEST(ParamPointTest, GetOrFallsBack) {
  ParamPoint point;
  point.names = {"x"};
  point.values = {4};
  EXPECT_EQ(point.get_or("x", 9), 4);
  EXPECT_EQ(point.get_or("y", 9), 9);
}

// ---------------------------------------------------------------------------
// Worker pool.

TEST(Pool, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 8,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Pool, SingleJobRunsInline) {
  int calls = 0;
  parallel_for(5, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(Pool, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(64, 4,
                            [](std::size_t i) {
                              if (i == 13) {
                                throw std::runtime_error{"boom"};
                              }
                            }),
               std::runtime_error);
}

TEST(Pool, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_GE(resolve_jobs(0), 1);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(RegistryTest, AllBuiltinFiguresRegistered) {
  const char* expected[] = {
      "fig11_rwp_reliability", "fig12_heterogeneous",   "fig13_heartbeat",
      "fig14_city_subscribers", "fig15_publisher_spread",
      "fig16_city_validity",   "fig17_bandwidth",       "fig18_events_sent",
      "fig19_duplicates",      "fig20_parasites",       "headline",
      "ablations",             "multi_publisher",       "high_density",
      "sparse_partition",      "topic_fanout",          "churn_city",
      "adversarial_mobility",  "memory_pressure",       "energy_lifetime",
  };
  for (const char* name : expected) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(RegistryTest, ListingIsSortedAndSpecsAreWellFormed) {
  const std::vector<const ScenarioSpec*> specs = all_scenarios();
  ASSERT_GE(specs.size(), 15u);
  std::string previous;
  for (const ScenarioSpec* spec : specs) {
    EXPECT_LT(previous, spec->name);
    previous = spec->name;
    EXPECT_NE(spec->make_config, nullptr) << spec->name;
    EXPECT_FALSE(spec->metrics.empty()) << spec->name;
    EXPECT_GT(spec->default_seeds, 0) << spec->name;
    std::set<std::string> axis_names;
    for (const Axis& axis : spec->axes) {
      EXPECT_TRUE(axis_names.insert(axis.name).second)
          << spec->name << " duplicate axis " << axis.name;
      EXPECT_FALSE(axis.values.empty()) << spec->name << "/" << axis.name;
    }
    for (const MetricSpec& metric : spec->metrics) {
      EXPECT_NE(metric.extract, nullptr) << spec->name << "/" << metric.name;
    }
    // Every config factory must work on every default grid point.
    for (const ParamPoint& point : expand_grid(spec->axes, false)) {
      const core::ExperimentConfig config = spec->make_config(point, 1);
      EXPECT_GT(config.node_count, 0u) << spec->name;
    }
  }
}

TEST(RegistryTest, DescribeListsAxesValuesAndMetricNames) {
  // --list's per-scenario block: new families are discoverable without
  // reading scenarios.cpp.
  const ScenarioSpec* spec = find_scenario("energy_lifetime");
  ASSERT_NE(spec, nullptr);
  const std::string text = describe(*spec);
  EXPECT_NE(text.find("energy_lifetime"), std::string::npos);
  // Axis values are spelled out, through the axis formatter where set...
  EXPECT_NE(text.find("protocol = {frugal, interests-aware-flooding, "
                      "battery-adaptive-frugal, speed-adaptive-frugal, "
                      "gossip}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("battery_j = {300, 450, 800}"), std::string::npos)
      << text;
  // ...including the paper-strength grid where it differs.
  EXPECT_NE(text.find("(full: {200, 250, 300, 350, 400, 450, 500, 650, "
                      "800})"),
            std::string::npos)
      << text;
  // Metric names and seed defaults are listed.
  EXPECT_NE(text.find("joules_per_delivered_event"), std::string::npos);
  EXPECT_NE(text.find("first_death_s"), std::string::npos);
  EXPECT_NE(text.find("survivor_fraction"), std::string::npos);
  EXPECT_NE(text.find("seeds: 2"), std::string::npos) << text;
}

TEST(RegistryTest, DescribeMarksAggregateAxes) {
  const ScenarioSpec* spec = find_scenario("fig13_heartbeat");
  ASSERT_NE(spec, nullptr);
  const std::string text = describe(*spec);
  EXPECT_NE(text.find("hb_upper_s = {1, 2, 3, 4, 5}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("(aggregate)"), std::string::npos) << text;
  EXPECT_NE(text.find("metrics: reliability"), std::string::npos) << text;
}

TEST(RegistryTest, RuntimeRegistrationAndStablePointers) {
  ScenarioSpec spec;
  spec.name = "runner_test_dynamic";
  spec.description = "registered at runtime by runner_test";
  spec.make_config = [](const ParamPoint&, std::uint64_t seed) {
    return city_world(1.0, seed);
  };
  spec.metrics = {{"reliability", 3,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.reliability();
                   }}};
  Registry::instance().add(std::move(spec));
  const ScenarioSpec* found = find_scenario("runner_test_dynamic");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, find_scenario("runner_test_dynamic"));
}

// ---------------------------------------------------------------------------
// Sweep + sink on a fast scenario.

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.title = "tiny";
  Axis protocol;
  protocol.name = "protocol";
  protocol.values = {0, 1};
  protocol.format = [](double value) {
    return std::string{value == 0 ? "frugal" : "simple-flooding"};
  };
  Axis publisher;
  publisher.name = "publisher";
  publisher.values = {0, 1, 2};
  publisher.aggregate = true;
  spec.axes = {protocol, publisher};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config;
    config.node_count = 8;
    config.interest_fraction = 1.0;
    config.mobility = core::StaticSetup{400.0, 400.0};
    config.medium.range_m = 200.0;
    config.warmup = SimDuration::from_seconds(2);
    config.event_validity = SimDuration::from_seconds(10);
    config.protocol =
        point.get("protocol") == 0 ? "frugal" : "simple-flooding";
    config.publisher = static_cast<NodeId>(point.get("publisher"));
    config.seed = seed;
    return config;
  };
  spec.metrics = {{"reliability", 3,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.reliability();
                   }},
                  {"bytes", 0,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.mean_bytes_sent_per_node();
                   }}};
  return spec;
}

TEST(Sweep, AggregateAxisCollapsesIntoOutputRows) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  const SweepResult sweep = run_sweep(spec, options);

  // 2 protocols x 3 publishers x 2 seeds executed...
  EXPECT_EQ(sweep.job_count, 12u);
  // ...but only the protocol axis survives into output rows.
  ASSERT_EQ(sweep.axes.size(), 1u);
  EXPECT_EQ(sweep.axes[0].name, "protocol");
  ASSERT_EQ(sweep.points.size(), 2u);
  for (const PointResult& row : sweep.points) {
    ASSERT_EQ(row.metrics.size(), 2u);
    // publishers x seeds samples folded into each summary.
    EXPECT_EQ(row.metrics[0].count(), 6u);
  }
}

TEST(Sweep, MatchesDirectRunExperiment) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 4;
  options.seeds = 1;
  const SweepResult sweep = run_sweep(spec, options);

  // Recompute the frugal row by hand: publishers 0..2, seed job_seed(1, 0).
  stats::Summary expected;
  for (double publisher : {0.0, 1.0, 2.0}) {
    ParamPoint point;
    point.names = {"protocol", "publisher"};
    point.values = {0.0, publisher};
    const core::RunResult result =
        core::run_experiment(spec.make_config(point, job_seed(1, 0)));
    expected.add(result.reliability());
  }
  EXPECT_DOUBLE_EQ(sweep.points[0].metrics[0].mean(), expected.mean());
}

TEST(Sweep, SeedsControlSampleCountAndSeedBaseShiftsResults) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions two_seeds;
  two_seeds.jobs = 2;
  two_seeds.seeds = 2;
  const SweepResult sweep = run_sweep(spec, two_seeds);
  EXPECT_EQ(sweep.seeds, 2);
  EXPECT_EQ(sweep.points[0].metrics[0].count(), 6u);

  SweepOptions shifted = two_seeds;
  shifted.seed_base = 1000;
  const SweepResult other = run_sweep(spec, shifted);
  // Different seeds -> different byte stream (overwhelmingly likely).
  EXPECT_NE(sweep_csv(sweep), sweep_csv(other));
}

TEST(Sink, CsvShapeAndHeader) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  options.seeds = 1;
  const SweepResult sweep = run_sweep(spec, options);
  const std::string csv = sweep_csv(sweep);

  EXPECT_EQ(csv.rfind("scenario,protocol,metric,seeds,mean,ci95,min,max\n",
                      0),
            0u);
  // header + 2 output rows x 2 metrics.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_NE(csv.find("tiny,frugal,reliability,3,"), std::string::npos);
  EXPECT_NE(csv.find("tiny,simple-flooding,bytes,3,"), std::string::npos);
}

TEST(Sink, JsonlUsesAxisFormatterAndMetricNames) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  options.seeds = 1;
  const SweepResult sweep = run_sweep(spec, options);
  const std::string jsonl = sweep_jsonl(sweep);

  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"protocol\":\"frugal\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"reliability\":{\"mean\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"n\":3"), std::string::npos);
}

TEST(Sink, TableHasAxisAndMetricColumns) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  options.seeds = 1;
  const SweepResult sweep = run_sweep(spec, options);
  const stats::Table table = sweep_table(sweep);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Sink, ParseFormatRoundTrips) {
  EXPECT_EQ(parse_format("table"), Format::kTable);
  EXPECT_EQ(parse_format("csv"), Format::kCsv);
  EXPECT_EQ(parse_format("jsonl"), Format::kJsonl);
}

TEST(Sink, CanonicalOutputIgnoresExecutionProvenance) {
  // wall_seconds, jobs and merged_from describe how a sweep was executed,
  // not what it computed: csv/jsonl/table must be bytewise invariant under
  // all of them, or sharded/merged artifacts could never cmp-match a
  // single-box run.
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  options.seeds = 1;
  const SweepResult sweep = run_sweep(spec, options);

  SweepResult tweaked = sweep;
  tweaked.jobs = 1999;
  tweaked.wall_seconds = 123456.75;
  tweaked.merged_from = 42;
  EXPECT_EQ(sweep_csv(sweep), sweep_csv(tweaked));
  EXPECT_EQ(sweep_jsonl(sweep), sweep_jsonl(tweaked));
  EXPECT_EQ(sweep_table(sweep).to_string(), sweep_table(tweaked).to_string());
}

// ---------------------------------------------------------------------------
// Hoisted worlds.

TEST(Worlds, RwpWorldMatchesPaperSetup) {
  const core::ExperimentConfig config = rwp_world(10.0, 10.0, 0.8, 7);
  EXPECT_EQ(config.node_count, 150u);
  EXPECT_DOUBLE_EQ(config.interest_fraction, 0.8);
  EXPECT_DOUBLE_EQ(config.medium.range_m, 442.0);
  EXPECT_DOUBLE_EQ(config.warmup.seconds(), 600.0);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_TRUE(
      std::holds_alternative<core::RandomWaypointSetup>(config.mobility));
}

TEST(Worlds, ZeroSpeedSelectsStaticPlacement) {
  const core::ExperimentConfig config = rwp_world(0.0, 0.0, 0.8, 1);
  EXPECT_TRUE(std::holds_alternative<core::StaticSetup>(config.mobility));
}

TEST(Worlds, ScaledWorldKeepsDensityKnobs) {
  const core::ExperimentConfig config =
      rwp_world_scaled(10.0, 0.6, 75, 3536.0, 3);
  EXPECT_EQ(config.node_count, 75u);
  const auto& rwp = std::get<core::RandomWaypointSetup>(config.mobility);
  EXPECT_DOUBLE_EQ(rwp.config.width_m, 3536.0);
  EXPECT_DOUBLE_EQ(rwp.config.height_m, 3536.0);
}

TEST(Worlds, CityWorldMatchesPaperSetup) {
  const core::ExperimentConfig config = city_world(0.4, 5);
  EXPECT_EQ(config.node_count, 15u);
  EXPECT_DOUBLE_EQ(config.medium.range_m, 44.0);
  EXPECT_DOUBLE_EQ(config.event_validity.seconds(), 150.0);
  EXPECT_TRUE(std::holds_alternative<core::CitySetup>(config.mobility));
}

// ---------------------------------------------------------------------------
// Multi-publisher core extension.

TEST(MultiPublisher, RoundRobinAssignsDistinctPublishers) {
  core::ExperimentConfig config;
  config.node_count = 12;
  config.interest_fraction = 1.0;
  config.mobility = core::StaticSetup{300.0, 300.0};
  config.medium.range_m = 500.0;
  config.warmup = SimDuration::from_seconds(2);
  config.event_validity = SimDuration::from_seconds(10);
  config.event_count = 6;
  config.publisher_count = 3;
  config.seed = 21;

  const core::RunResult result = core::run_experiment(config);
  ASSERT_EQ(result.publishers.size(), 3u);
  EXPECT_EQ(result.publisher, result.publishers[0]);
  ASSERT_EQ(result.events.size(), 6u);
  for (std::size_t e = 0; e < result.events.size(); ++e) {
    EXPECT_EQ(result.events[e].id.publisher, result.publishers[e % 3])
        << "event " << e;
    EXPECT_EQ(result.events[e].id.seq, e / 3) << "event " << e;
  }
  // Dense static world, everyone subscribed: the workload should deliver.
  EXPECT_GT(result.reliability(), 0.9);
}

TEST(MultiPublisher, SinglePublisherBehavesExactlyAsBefore) {
  core::ExperimentConfig config;
  config.node_count = 10;
  config.interest_fraction = 0.8;
  config.mobility = core::StaticSetup{500.0, 500.0};
  config.medium.range_m = 300.0;
  config.warmup = SimDuration::from_seconds(2);
  config.event_validity = SimDuration::from_seconds(10);
  config.event_count = 3;
  config.seed = 33;

  core::ExperimentConfig multi = config;
  multi.publisher_count = 1;  // explicit, same as default
  const core::RunResult a = core::run_experiment(config);
  const core::RunResult b = core::run_experiment(multi);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t e = 0; e < a.events.size(); ++e) {
    EXPECT_EQ(a.events[e].id.publisher, b.events[e].id.publisher);
    EXPECT_EQ(a.events[e].published_at.us(), b.events[e].published_at.us());
  }
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
}

// ---------------------------------------------------------------------------
// Machine-readable scenario listing (--describe-json).

TEST(DescribeJson, SingleScenarioParsesWithExpectedShape) {
  const ScenarioSpec* spec = find_scenario("fig11_rwp_reliability");
  ASSERT_NE(spec, nullptr);

  const minijson::Value doc = minijson::parse(describe_json(*spec));
  EXPECT_EQ(doc.at("name").as_string(), "fig11_rwp_reliability");
  EXPECT_EQ(doc.at("figure").as_string(), "Figure 11");
  EXPECT_FALSE(doc.at("description").as_string().empty());
  EXPECT_EQ(doc.at("default_seeds").as_number(),
            static_cast<double>(spec->default_seeds));

  const minijson::Array& axes = doc.at("axes").as_array();
  ASSERT_EQ(axes.size(), spec->axes.size());
  for (std::size_t a = 0; a < axes.size(); ++a) {
    EXPECT_EQ(axes[a].at("name").as_string(), spec->axes[a].name);
    const minijson::Array& values = axes[a].at("values").as_array();
    ASSERT_EQ(values.size(), spec->axes[a].values.size());
    for (std::size_t v = 0; v < values.size(); ++v) {
      EXPECT_EQ(values[v].as_number(), spec->axes[a].values[v]);
    }
    EXPECT_EQ(axes[a].at("full_values").as_array().size(),
              spec->axes[a].full_values.size());
  }

  const minijson::Array& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), spec->metrics.size());
  bool saw_probe = false;
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    EXPECT_EQ(metrics[m].at("name").as_string(), spec->metrics[m].name);
    EXPECT_EQ(metrics[m].at("precision").as_number(),
              static_cast<double>(spec->metrics[m].precision));
    // The reliability probes carry their validity so telemetry-backed
    // tooling knows which validities a bounded run can answer.
    if (metrics[m].has("probe_validity_s")) {
      saw_probe = true;
      ASSERT_TRUE(spec->metrics[m].probe_validity_s.has_value());
      EXPECT_EQ(metrics[m].at("probe_validity_s").as_number(),
                *spec->metrics[m].probe_validity_s);
    }
  }
  EXPECT_TRUE(saw_probe);  // fig11 reports rel@Ns probes
}

TEST(DescribeJson, ProtocolAxisCarriesFormattedLabels) {
  const ScenarioSpec* spec = find_scenario("energy_lifetime");
  ASSERT_NE(spec, nullptr);
  const minijson::Value doc = minijson::parse(describe_json(*spec));
  bool saw_labels = false;
  for (const minijson::Value& axis : doc.at("axes").as_array()) {
    if (axis.at("name").as_string() != "protocol") continue;
    const minijson::Array& labels = axis.at("labels").as_array();
    ASSERT_EQ(labels.size(), axis.at("values").as_array().size());
    EXPECT_EQ(labels[0].as_string(), "frugal");
    saw_labels = true;
  }
  EXPECT_TRUE(saw_labels);
}

TEST(DescribeJson, FullListingCoversEveryScenarioSorted) {
  const minijson::Value doc = minijson::parse(scenarios_json());
  const minijson::Array& listed = doc.as_array();
  const std::vector<const ScenarioSpec*> specs = all_scenarios();
  ASSERT_EQ(listed.size(), specs.size());
  std::string previous;
  for (std::size_t i = 0; i < listed.size(); ++i) {
    const std::string& name = listed[i].at("name").as_string();
    EXPECT_EQ(name, specs[i]->name);
    EXPECT_LT(previous, name);  // sorted, so stable for consumers
    previous = name;
  }
}

}  // namespace
}  // namespace frugal::runner
