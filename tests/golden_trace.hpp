// Deterministic scenario-regression helper.
//
// A golden scenario is a small seeded experiment whose complete observable
// outcome (publish/delivery trace plus per-node counters) is serialized to a
// canonical text form and compared byte-for-byte against a checked-in file
// under tests/golden/. Any change to the simulator, the radio model, the
// mobility models or the protocols that alters even one delivery timestamp
// fails the diff — locking in determinism before performance work begins.
//
// Regenerate after an intentional behaviour change with
//   FRUGAL_REGEN_GOLDEN=1 ./build/tests/golden_trace_test
// and review the diff of tests/golden/ like any other code change.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "trace/trace.hpp"

namespace frugal::testing {

struct GoldenScenario {
  std::string name;  ///< golden file is tests/golden/<name>.trace
  core::ExperimentConfig config;
};

/// The canonical serialization: one header line, then the run's full
/// publish/delivery/churn trace in time order, then one summary line per
/// node. Only integer fields (microsecond ticks, byte counts) appear, so
/// the text is bit-stable across platforms as long as the simulation is.
[[nodiscard]] inline std::string serialize_trace(
    const core::ExperimentConfig& config, const core::RunResult& result,
    const trace::TraceRecorder& recorder) {
  std::string out;
  char line[160];

  const auto append = [&out, &line](auto... args) {
    std::snprintf(line, sizeof(line), args...);
    out += line;
  };

  append("scenario protocol=%s nodes=%zu seed=%" PRIu64 "\n",
         config.protocol.c_str(), config.node_count, config.seed);
  append("publisher %u\n", result.publisher);
  for (const trace::TraceRecord& record : recorder.records()) {
    if (record.event.has_value()) {
      append("%s node=%u event=%u.%u at_us=%" PRId64 "\n",
             trace::to_string(record.kind), record.node,
             record.event->publisher, record.event->seq, record.at.us());
    } else {
      append("%s node=%u at_us=%" PRId64 "\n", trace::to_string(record.kind),
             record.node, record.at.us());
    }
  }
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const core::NodeOutcome& node = result.nodes[n];
    append("node %zu sub=%d sent_frames=%" PRIu64 " sent_bytes=%" PRIu64
           " events_sent=%" PRIu64 " dup=%" PRIu64 " parasite=%" PRIu64 "\n",
           n, node.subscribed ? 1 : 0, node.traffic.frames_sent,
           node.traffic.bytes_sent, node.events_sent, node.duplicates,
           node.parasites);
  }
  return out;
}

/// Runs the scenario and returns its canonical trace.
[[nodiscard]] inline std::string replay_trace(const GoldenScenario& scenario) {
  trace::TraceRecorder recorder;
  core::ExperimentConfig config = scenario.config;
  config.trace = &recorder;
  const core::RunResult result = core::run_experiment(config);
  return serialize_trace(config, result, recorder);
}

/// The regression corpus: frugal vs. flooding over static, random-waypoint
/// and city-section mobility. Small worlds keep the whole suite fast while
/// still exercising radio contention, mobility and protocol timers.
[[nodiscard]] inline std::vector<GoldenScenario> golden_scenarios() {
  using core::ExperimentConfig;

  const auto base = [](std::uint64_t seed) {
    ExperimentConfig config;
    config.node_count = 16;
    config.interest_fraction = 0.75;
    config.warmup = SimDuration::from_seconds(20);
    config.event_validity = SimDuration::from_seconds(40);
    config.event_count = 2;
    config.seed = seed;
    return config;
  };

  const auto with_static = [&base](std::uint64_t seed) {
    ExperimentConfig config = base(seed);
    config.mobility = core::StaticSetup{1200.0, 1200.0};
    return config;
  };
  const auto with_rwp = [&base](std::uint64_t seed) {
    ExperimentConfig config = base(seed);
    core::RandomWaypointSetup rwp;
    rwp.config.width_m = 1200.0;
    rwp.config.height_m = 1200.0;
    rwp.config.speed_min_mps = 5.0;
    rwp.config.speed_max_mps = 15.0;
    config.mobility = rwp;
    return config;
  };
  const auto with_city = [&base](std::uint64_t seed) {
    ExperimentConfig config = base(seed);
    config.node_count = 10;
    config.mobility = core::CitySetup{};
    config.medium.range_m = 60.0;
    return config;
  };

  std::vector<GoldenScenario> scenarios;
  const auto add = [&scenarios](std::string name, ExperimentConfig config,
                                std::string protocol) {
    config.protocol = std::move(protocol);
    scenarios.push_back({std::move(name), config});
  };

  add("frugal_static", with_static(11), "frugal");
  add("flooding_static", with_static(11), "simple-flooding");
  add("frugal_rwp", with_rwp(23), "frugal");
  add("flooding_rwp", with_rwp(23), "simple-flooding");
  add("flooding_interest_rwp", with_rwp(23), "interests-aware-flooding");
  add("flooding_neighbor_rwp", with_rwp(23), "neighbors-interests-flooding");
  add("frugal_city", with_city(37), "frugal");
  add("flooding_city", with_city(37), "simple-flooding");

  // Churn locks in the crash/recovery timeline as well (kNodeDown/kNodeUp
  // records appear in the trace).
  ExperimentConfig churn = with_rwp(51);
  churn.churn.crashes_per_node_per_minute = 2.0;
  add("frugal_rwp_churn", churn, "frugal");
  add("flooding_rwp_churn", churn, "simple-flooding");
  return scenarios;
}

}  // namespace frugal::testing
