// Cross-cutting determinism and robustness tests: the whole stack must be a
// pure function of (config, seed), and must stay well-behaved at extreme
// parameter values.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace frugal::core {
namespace {

ExperimentConfig tiny(std::uint64_t seed) {
  ExperimentConfig config;
  config.node_count = 20;
  config.interest_fraction = 1.0;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 900;
  rwp.config.height_m = 900;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  config.mobility = rwp;
  config.warmup = SimDuration::from_seconds(15);
  config.event_validity = SimDuration::from_seconds(45);
  config.seed = seed;
  return config;
}

/// Full-state fingerprint of a run (everything an assertion could see).
std::uint64_t fingerprint(const RunResult& result) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  mix(result.publisher);
  for (const NodeOutcome& node : result.nodes) {
    mix(node.subscribed ? 1 : 0);
    mix(node.traffic.bytes_sent);
    mix(node.traffic.frames_sent);
    mix(node.traffic.frames_delivered);
    mix(node.traffic.frames_collided);
    mix(node.events_sent);
    mix(node.duplicates);
    mix(node.parasites);
    for (const auto& at : node.delivered_at) {
      mix(at.has_value() ? static_cast<std::uint64_t>(at->us()) : ~0ULL);
    }
  }
  return h;
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, FrugalRunsAreBitIdentical) {
  const RunResult a = run_experiment(tiny(GetParam()));
  const RunResult b = run_experiment(tiny(GetParam()));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST_P(DeterminismSweep, FloodingRunsAreBitIdentical) {
  ExperimentConfig config = tiny(GetParam());
  config.protocol = "simple-flooding";
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST_P(DeterminismSweep, CityRunsAreBitIdentical) {
  ExperimentConfig config = tiny(GetParam());
  config.node_count = 10;
  config.mobility = CitySetup{};
  config.medium.range_m = 60;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 7, 42, 1000003));

TEST(ExtremeParamsTest, SingleNodeWorld) {
  ExperimentConfig config = tiny(1);
  config.node_count = 1;
  config.interest_fraction = 1.0;
  const RunResult result = run_experiment(config);
  // The lone publisher delivers to itself: reliability 1 by definition.
  EXPECT_DOUBLE_EQ(result.reliability(), 1.0);
  EXPECT_EQ(result.subscriber_count(), 1u);
}

TEST(ExtremeParamsTest, TwoNodesOutOfRange) {
  ExperimentConfig config = tiny(1);
  config.node_count = 2;
  config.mobility = StaticSetup{100000, 100000};
  const RunResult result = run_experiment(config);
  EXPECT_DOUBLE_EQ(result.reliability(), 0.5);  // publisher only
}

TEST(ExtremeParamsTest, VeryShortValidity) {
  ExperimentConfig config = tiny(2);
  config.event_validity = SimDuration::from_seconds(0.05);
  const RunResult result = run_experiment(config);
  // Too short to cross even one hop reliably, but never negative/NaN.
  EXPECT_GE(result.reliability(), 0.0);
  EXPECT_LE(result.reliability(), 1.0);
}

TEST(ExtremeParamsTest, VeryLongValidity) {
  ExperimentConfig config = tiny(3);
  config.event_validity = SimDuration::from_seconds(3600);
  const RunResult result = run_experiment(config);
  EXPECT_DOUBLE_EQ(result.reliability(), 1.0);
}

TEST(ExtremeParamsTest, ManyEventsSmallTable) {
  ExperimentConfig config = tiny(4);
  config.event_count = 30;
  config.publish_spacing = SimDuration::from_seconds(0.2);
  config.frugal.event_table_capacity = 4;  // heavy GC pressure
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.reliability(), 0.0);
  EXPECT_LE(result.reliability(), 1.0);
}

TEST(ExtremeParamsTest, HugeEventBytes) {
  ExperimentConfig config = tiny(5);
  config.event_bytes = 100000;  // 100 kB: ~0.8 s air time at 1 Mbps
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.reliability(), 0.3);
}

TEST(ExtremeParamsTest, CollisionFreeRadioIsAtLeastAsReliable) {
  ExperimentConfig with = tiny(6);
  ExperimentConfig without = tiny(6);
  without.medium.enable_collisions = false;
  const double reliability_with = run_experiment(with).reliability();
  const double reliability_without = run_experiment(without).reliability();
  EXPECT_GE(reliability_without + 1e-9, reliability_with);
}

TEST(ExtremeParamsTest, TinyRadioRangeIsolatesEveryone) {
  ExperimentConfig config = tiny(7);
  config.medium.range_m = 0.5;
  const RunResult result = run_experiment(config);
  EXPECT_LT(result.reliability(), 0.2);
}

TEST(ExtremeParamsTest, SeedZeroWorks) {
  const RunResult result = run_experiment(tiny(0));
  EXPECT_GE(result.reliability(), 0.0);
}

}  // namespace
}  // namespace frugal::core
