// Unit tests for the protocol plug-in registry: built-in registration order
// and ordinal stability, name/ordinal lookup, knob declaration and listing,
// factory behaviour-parity with direct node construction, and the abort
// paths that keep a misspelled protocol name or knob key from silently
// running the wrong experiment. (Run-level byte-identity of registry-built
// protocols against the pre-registry traces is golden_trace_test's job.)

#include "protocol/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flooding.hpp"
#include "core/frugal_node.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"

namespace frugal::protocol {
namespace {

using core::Event;
using core::EventId;
using topics::Topic;

/// A two-process static world whose nodes come from any factory — registry
/// spec or direct construction — so runs are comparable bit for bit.
struct World {
  World()
      : mobility{{{0, 0}, {50, 0}}},
        medium{scheduler, mobility, radio(), Rng{7}} {}

  static net::MediumConfig radio() {
    net::MediumConfig config;
    config.range_m = 100.0;
    config.max_jitter = SimDuration::from_ms(2);
    return config;
  }

  BuildContext context() {
    return BuildContext{scheduler,
                        medium,
                        config,
                        nullptr,
                        nullptr,
                        [](std::string_view, std::uint64_t index) {
                          return Rng{0x9E3779B97F4A7C15ULL + index};
                        }};
  }

  void build(const ProtocolSpec& spec) {
    const BuildContext ctx = context();
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      nodes.push_back(spec.make_node(id, ctx));
    }
  }

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() + SimDuration::from_seconds(seconds));
  }

  static Event make_event(const char* topic) {
    Event e;
    e.topic = Topic::parse(topic);
    e.validity = SimDuration::from_seconds(60.0);
    return e;
  }

  sim::Scheduler scheduler;
  core::ExperimentConfig config;
  mobility::StaticMobility mobility;
  net::Medium medium;
  std::vector<std::unique_ptr<core::ProtocolNode>> nodes;
};

/// (delivery time, events node 0 sent) after a subscribe → publish → run
/// cycle: enough signal that two construction paths behaved identically.
struct RunSignature {
  std::vector<std::pair<SimTime, EventId>> deliveries;
  std::uint64_t events_sent = 0;

  bool operator==(const RunSignature&) const = default;
};

RunSignature exercise(World& w) {
  RunSignature signature;
  w.nodes[1]->set_delivery_callback(
      [&](const Event& event, SimTime at) {
        signature.deliveries.emplace_back(at, event.id);
      });
  w.nodes[1]->subscribe(Topic::parse(".a"));
  w.run_for(3.0);  // heartbeats build the neighborhood first
  w.nodes[0]->publish(World::make_event(".a.x"));
  w.run_for(5.0);
  signature.events_sent = w.nodes[0]->metrics().events_sent;
  return signature;
}

TEST(ProtocolRegistryTest, BuiltinsRegisterOnceInRetiredEnumOrder) {
  register_builtin_protocols();
  register_builtin_protocols();  // idempotent: no duplicate-name abort
  const std::vector<const ProtocolSpec*> all = all_protocols();
  ASSERT_GE(all.size(), 7u);
  const char* expected[] = {"frugal",
                            "simple-flooding",
                            "interests-aware-flooding",
                            "neighbors-interests-flooding",
                            "battery-adaptive-frugal",
                            "speed-adaptive-frugal",
                            "gossip"};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)]->name, expected[i]);
    EXPECT_EQ(all[static_cast<std::size_t>(i)]->ordinal, i);
    EXPECT_NE(all[static_cast<std::size_t>(i)]->make_node, nullptr);
    EXPECT_FALSE(all[static_cast<std::size_t>(i)]->description.empty());
  }
}

TEST(ProtocolRegistryTest, LookupByNameAndOrdinal) {
  ASSERT_NE(find_protocol("frugal"), nullptr);
  EXPECT_EQ(find_protocol("frugal")->ordinal, 0);
  EXPECT_EQ(find_protocol("no-such-protocol"), nullptr);
  ASSERT_NE(protocol_by_ordinal(3), nullptr);
  EXPECT_EQ(protocol_by_ordinal(3)->name, "neighbors-interests-flooding");
  EXPECT_EQ(protocol_by_ordinal(-1), nullptr);
  EXPECT_EQ(protocol_by_ordinal(1000), nullptr);
  EXPECT_EQ(&require_protocol("gossip"), find_protocol("gossip"));
  // Lookups hand out stable pointers (deque-backed registry).
  EXPECT_EQ(find_protocol("frugal"), find_protocol("frugal"));
}

TEST(ProtocolRegistryTest, DescribeListsEveryProtocolAndItsKnobs) {
  const std::string text = describe_protocols();
  for (const ProtocolSpec* spec : all_protocols()) {
    EXPECT_NE(text.find(spec->name), std::string::npos) << spec->name;
    for (const ProtocolParam& param : spec->params) {
      EXPECT_NE(text.find(param.key), std::string::npos)
          << spec->name << "/" << param.key;
    }
  }
  EXPECT_NE(text.find("hb_stretch"), std::string::npos);
  EXPECT_NE(text.find("doze_below"), std::string::npos);
  EXPECT_NE(text.find("ref_speed_mps"), std::string::npos);
  EXPECT_NE(text.find("gossip_p"), std::string::npos);
}

TEST(ProtocolRegistryTest, EveryFactoryProducesANodeThatDisseminates) {
  // Two static processes in range: whatever the protocol, the published
  // event must reach the subscriber. (Gossip's initial broadcast is
  // unconditional, so even p < 1 delivers here.)
  for (const ProtocolSpec* spec : all_protocols()) {
    World w;
    w.build(*spec);
    ASSERT_EQ(w.nodes.size(), 2u) << spec->name;
    for (const auto& node : w.nodes) ASSERT_NE(node, nullptr) << spec->name;
    const RunSignature signature = exercise(w);
    EXPECT_EQ(signature.deliveries.size(), 1u) << spec->name;
    EXPECT_GE(signature.events_sent, 1u) << spec->name;
  }
}

TEST(ProtocolRegistryTest, RegistryFrugalMatchesDirectConstruction) {
  // Factory parity: the registered "frugal" module must reproduce the
  // pre-registry construction exactly — same world, same seeds, identical
  // delivery times and send counts.
  World from_registry;
  from_registry.build(require_protocol("frugal"));
  World direct;
  for (NodeId id = 0; id < direct.mobility.node_count(); ++id) {
    direct.nodes.push_back(std::make_unique<core::FrugalNode>(
        id, direct.scheduler, direct.medium, direct.config.frugal, nullptr));
  }
  EXPECT_EQ(exercise(from_registry), exercise(direct));
}

TEST(ProtocolRegistryTest, RegistryFloodingMatchesDirectConstruction) {
  World from_registry;
  from_registry.build(require_protocol("interests-aware-flooding"));
  World direct;
  core::FloodingConfig flooding = direct.config.flooding;
  flooding.variant = core::FloodingVariant::kInterestAware;
  for (NodeId id = 0; id < direct.mobility.node_count(); ++id) {
    direct.nodes.push_back(std::make_unique<core::FloodingNode>(
        id, direct.scheduler, direct.medium, flooding));
  }
  EXPECT_EQ(exercise(from_registry), exercise(direct));
}

TEST(ProtocolRegistryTest, AdaptiveVariantsDegradeToStaticFrugalWithoutSeams) {
  // With no charge or speed provider in the context, both adaptive modules
  // must behave exactly like static frugal — the providers are the only
  // thing separating them.
  World static_frugal;
  static_frugal.build(require_protocol("frugal"));
  const RunSignature baseline = exercise(static_frugal);
  for (const char* name : {"battery-adaptive-frugal", "speed-adaptive-frugal"}) {
    World w;
    w.build(require_protocol(name));
    EXPECT_EQ(exercise(w), baseline) << name;
  }
}

TEST(ProtocolRegistryTest, ParamOrReadsOverridesAndFallsBack) {
  core::ExperimentConfig config;
  EXPECT_EQ(param_or(config, "gossip_p", 0.3), 0.3);
  config.protocol_params["gossip_p"] = 0.9;
  EXPECT_EQ(param_or(config, "gossip_p", 0.3), 0.9);
}

TEST(ProtocolRegistryTest, ValidateParamsAcceptsDeclaredKeys) {
  core::ExperimentConfig config;
  config.protocol_params["hb_stretch"] = 2.0;
  config.protocol_params["doze_below"] = 0.5;
  validate_params(require_protocol("battery-adaptive-frugal"), config);
}

TEST(ProtocolRegistryDeathTest, RequireProtocolAbortsListingRegisteredNames) {
  EXPECT_DEATH(static_cast<void>(require_protocol("fruggal")),
               "unknown protocol \"fruggal\"; registered protocols:.*frugal");
}

TEST(ProtocolRegistryDeathTest, ValidateParamsAbortsOnUndeclaredKey) {
  core::ExperimentConfig config;
  config.protocol_params["doze_belwo"] = 0.5;  // typo'd knob
  EXPECT_DEATH(
      validate_params(require_protocol("battery-adaptive-frugal"), config),
      "declares no param \"doze_belwo\"");
}

TEST(ProtocolRegistryDeathTest, RunExperimentAbortsOnUnknownProtocolName) {
  core::ExperimentConfig config;
  config.protocol = "no-such-protocol";
  EXPECT_DEATH(static_cast<void>(core::run_experiment(config)),
               "unknown protocol \"no-such-protocol\"");
}

TEST(ProtocolRegistryDeathTest, DuplicateRegistrationAborts) {
  ProtocolSpec duplicate;
  duplicate.name = "frugal";
  duplicate.make_node = [](NodeId, const BuildContext&)
      -> std::unique_ptr<core::ProtocolNode> { return nullptr; };
  register_builtin_protocols();
  EXPECT_DEATH(ProtocolRegistry::instance().add(std::move(duplicate)),
               "duplicate protocol name");
}

}  // namespace
}  // namespace frugal::protocol
