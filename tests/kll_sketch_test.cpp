// Property tests for the KLL quantile sketch: rank error against exact
// quantiles on 1e5-sample random streams, exactness below the compaction
// threshold, determinism, and memory boundedness.

#include "stats/kll_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace frugal::stats {
namespace {

constexpr std::size_t kSamples = 100000;
constexpr double kMaxRankError = 0.01;  // satellite contract: <= 1%

/// Fraction of `sorted` at or below `value` — the empirical rank.
double rank_of(const std::vector<double>& sorted, double value) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

void expect_rank_error_bounded(const std::vector<double>& samples) {
  KllSketch sketch;
  for (const double v : samples) sketch.insert(v);
  ASSERT_EQ(sketch.count(), samples.size());

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  for (const double q :
       {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double estimate = sketch.quantile(q);
    const double rank = rank_of(sorted, estimate);
    EXPECT_LE(std::abs(rank - q), kMaxRankError)
        << "q=" << q << " estimate=" << estimate << " true rank=" << rank;
  }
}

TEST(KllSketchTest, RankErrorWithinOnePercentOnUniformStream) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng{seed};
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i) {
      samples.push_back(rng.uniform(0.0, 1000.0));
    }
    expect_rank_error_bounded(samples);
  }
}

TEST(KllSketchTest, RankErrorWithinOnePercentOnSkewedStream) {
  // Heavy-tailed latency-like distribution: exp(uniform) spans orders of
  // magnitude, the regime the latency-quantile operator actually sees.
  for (const std::uint64_t seed : {3u, 11u}) {
    Rng rng{seed};
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i) {
      samples.push_back(std::exp(rng.uniform(0.0, 10.0)));
    }
    expect_rank_error_bounded(samples);
  }
}

TEST(KllSketchTest, ExactBelowCompactionThreshold) {
  // While the stream fits in the base buffer no compaction has happened and
  // every quantile is exact.
  KllSketch sketch{64};
  for (int i = 1; i <= 50; ++i) sketch.insert(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 50.0);
}

TEST(KllSketchTest, DeterministicAcrossIdenticalStreams) {
  Rng rng_a{99};
  Rng rng_b{99};
  KllSketch a;
  KllSketch b;
  for (std::size_t i = 0; i < kSamples; ++i) {
    a.insert(rng_a.uniform());
    b.insert(rng_b.uniform());
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q));
  }
}

TEST(KllSketchTest, MemoryBoundedRegardlessOfStreamLength) {
  KllSketch sketch;
  Rng rng{5};
  std::size_t high_water = 0;
  for (std::size_t i = 0; i < 500000; ++i) {
    sketch.insert(rng.uniform());
    high_water = std::max(high_water, sketch.stored_items());
  }
  // Sum of the geometric capacity ladder: ~3k for k=256, nowhere near the
  // 5e5 stream length.
  EXPECT_LT(high_water, std::size_t{4000});
}

TEST(KllSketchTest, ClearResets) {
  KllSketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.insert(static_cast<double>(i));
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  sketch.insert(7.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 7.0);
}

}  // namespace
}  // namespace frugal::stats
