// Expected-shape tests for the energy subsystem's headline claims: flooding
// burns strictly more joules per delivered event than frugal at equal
// reliability, shrinking batteries produce monotonically earlier first
// deaths, and duty-cycled frugal trades a bounded reliability loss for a
// measurably longer network lifetime. The scenario-level test runs the
// registered energy_lifetime spec's own make_config so the asserted shape
// is the one the bench reports.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "energy/energy.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "runner/worlds.hpp"

namespace frugal::runner {
namespace {

/// A dense fig11-style grid: the paper's RWP world shrunk until every
/// protocol reaches its ceiling reliability, so frugal and flooding can be
/// compared at *equal* delivery counts.
core::ExperimentConfig dense_world(std::string protocol,
                                   std::uint64_t seed) {
  core::ExperimentConfig config = rwp_world_scaled(10.0, 0.8, 24, 1200.0,
                                                   seed);
  config.protocol = std::move(protocol);
  config.warmup = SimDuration::from_seconds(60.0);
  config.event_count = 4;
  config.event_validity = SimDuration::from_seconds(120.0);
  config.publish_spacing = SimDuration::from_seconds(1.0);
  config.energy = energy::EnergyConfig{};  // metering only
  return config;
}

TEST(EnergyShapes, FloodingBurnsStrictlyMoreJoulesPerEventThanFrugal) {
  // The frugality headline in joules. On a grid dense enough that both
  // protocols deliver everything, the delivered-event counts are equal —
  // so flooding's extra TX/RX airtime shows up directly as a strictly
  // higher joules-per-delivered-event.
  for (const std::uint64_t seed : {1u, 2u}) {
    const core::RunResult frugal =
        core::run_experiment(dense_world("frugal", seed));
    const core::RunResult flooding = core::run_experiment(
        dense_world("interests-aware-flooding", seed));
    ASSERT_GT(frugal.reliability(), 0.99) << "seed " << seed;
    ASSERT_GT(flooding.reliability(), 0.99) << "seed " << seed;
    EXPECT_GT(flooding.joules_per_delivered_event(),
              frugal.joules_per_delivered_event())
        << "seed " << seed;
    EXPECT_GT(flooding.mean_joules_per_node(), frugal.mean_joules_per_node())
        << "seed " << seed;
  }
}

TEST(EnergyShapes, ShrinkingBatteriesDieMonotonicallyEarlier) {
  const double idle_w = energy::RadioPowerProfile{}.idle_mw / 1000.0;
  double previous_death = 0.0;
  for (const double idle_seconds : {20.0, 40.0, 60.0}) {
    core::ExperimentConfig config =
        rwp_world_scaled(10.0, 0.8, 12, 1000.0, 5);
    config.warmup = SimDuration::from_seconds(30.0);
    config.event_count = 1;
    config.event_validity = SimDuration::from_seconds(60.0);
    energy::EnergyConfig energy;
    energy.battery_capacity_j = idle_w * idle_seconds;
    config.energy = energy;
    const core::RunResult result = core::run_experiment(config);
    // Every battery empties within the ~91 s horizon...
    EXPECT_EQ(result.depleted_fraction(), 1.0) << idle_seconds;
    // ...and a strictly larger battery dies strictly later.
    EXPECT_GT(result.first_depletion_s(), previous_death) << idle_seconds;
    // TX/RX can only shorten the idle-only bound.
    EXPECT_LE(result.first_depletion_s(), idle_seconds + 1e-9)
        << idle_seconds;
    previous_death = result.first_depletion_s();
  }
}

TEST(EnergyShapes, DutyCycleTradesBoundedReliabilityForLongerLifetime) {
  const auto run = [](double sleep_fraction) {
    core::ExperimentConfig config =
        rwp_world_scaled(10.0, 0.8, 16, 1000.0, 9);
    config.warmup = SimDuration::from_seconds(60.0);
    config.event_count = 2;
    config.event_validity = SimDuration::from_seconds(90.0);
    config.publish_spacing = SimDuration::from_seconds(1.0);
    energy::EnergyConfig energy;
    energy.battery_capacity_j = 80.0;  // ~95 idle seconds of a ~151 s run
    energy.sleep_fraction = sleep_fraction;
    energy.duty_period = config.frugal.hb_upper;  // between heartbeat rounds
    config.energy = energy;
    return core::run_experiment(config);
  };
  const core::RunResult awake = run(0.0);
  const core::RunResult dozing = run(0.5);
  // Always-on radios die mid-run; dozing at 50% roughly halves the draw.
  EXPECT_GT(awake.depleted_fraction(), 0.9);
  EXPECT_LT(dozing.depleted_fraction(), awake.depleted_fraction());
  EXPECT_GT(dozing.first_depletion_s(), awake.first_depletion_s() + 20.0);
  // The price is bounded: the dozing network still disseminates.
  EXPECT_GT(dozing.reliability(), 0.25);
}

/// Runs one energy_lifetime grid point through the spec's own make_config,
/// resolving the protocol by name through the axis parser — the same path
/// --grid labels take.
core::RunResult run_lifetime_point(const ScenarioSpec& spec,
                                   const char* protocol, double battery,
                                   int seed_index = 0) {
  // axes: protocol, battery_j, hb_upper_s, duty, battery_spread.
  ParamPoint point;
  for (const Axis& axis : spec.axes) point.names.push_back(axis.name);
  const std::optional<double> ordinal = spec.axes[0].parse(protocol);
  EXPECT_TRUE(ordinal.has_value()) << protocol;
  point.values = {*ordinal, battery, 1.0, 0.0, 0.0};
  return core::run_experiment(
      spec.make_config(point, job_seed(1, seed_index)));
}

TEST(EnergyShapes, EnergyLifetimeSpecContrastsProtocolsAtTightBatteries) {
  const ScenarioSpec* spec = find_scenario("energy_lifetime");
  ASSERT_NE(spec, nullptr);
  const auto run = [&](const char* protocol, double battery) {
    return run_lifetime_point(*spec, protocol, battery);
  };
  // Roomy batteries: everyone survives, the lifetime metric caps at the
  // horizon, and frugal still wins the joules-per-event headline.
  const core::RunResult frugal = run("frugal", 800.0);
  const core::RunResult flooding = run("interests-aware-flooding", 800.0);
  EXPECT_EQ(frugal.survivor_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(frugal.first_depletion_s(), frugal.run_end.seconds());
  EXPECT_GT(flooding.joules_per_delivered_event(),
            frugal.joules_per_delivered_event());
  // Tight batteries: the heavier flooding drain kills radios earlier.
  const core::RunResult frugal_tight = run("frugal", 350.0);
  const core::RunResult flooding_tight =
      run("interests-aware-flooding", 350.0);
  EXPECT_LE(flooding_tight.first_depletion_s(),
            frugal_tight.first_depletion_s());
  EXPECT_LT(frugal_tight.first_depletion_s(), frugal_tight.run_end.seconds());
}

TEST(EnergyShapes, BatteryAdaptiveFrugalWinsTheSurvivorFrontier) {
  // The adaptive variant's reason to exist: at the grid's tightest battery
  // the static frugal network idles itself to death before the measurement
  // horizon, while charge-aware heartbeat stretching plus low-charge dozing
  // carries radios across it — without giving back delivery.
  const ScenarioSpec* spec = find_scenario("energy_lifetime");
  ASSERT_NE(spec, nullptr);
  // Average over the spec's own default seed count — the comparison the
  // bench table reports, not one lucky draw.
  double fixed_survivors = 0.0, adaptive_survivors = 0.0;
  double fixed_death = 0.0, adaptive_death = 0.0;
  double fixed_reliability = 0.0, adaptive_reliability = 0.0;
  const int seeds = spec->default_seeds;
  ASSERT_GE(seeds, 2);
  for (int s = 0; s < seeds; ++s) {
    const core::RunResult fixed =
        run_lifetime_point(*spec, "frugal", 300.0, s);
    const core::RunResult adaptive =
        run_lifetime_point(*spec, "battery-adaptive-frugal", 300.0, s);
    fixed_survivors += fixed.survivor_fraction();
    adaptive_survivors += adaptive.survivor_fraction();
    fixed_death += fixed.first_depletion_s();
    adaptive_death += adaptive.first_depletion_s();
    fixed_reliability += fixed.reliability();
    adaptive_reliability += adaptive.reliability();
  }
  EXPECT_GT(adaptive_survivors / seeds, fixed_survivors / seeds);
  EXPECT_GT(adaptive_death / seeds, fixed_death / seeds + 60.0);
  EXPECT_GE(adaptive_reliability / seeds, fixed_reliability / seeds);
}

TEST(EnergyShapes, SpeedAdaptiveAndGossipVariantsRunTheSpecGrid) {
  // Sanity shape for the other two registry variants: both complete on the
  // spec's roomy-battery point and still disseminate. Speed-adaptive only
  // shortens heartbeats (more beacons, never fewer), so its delivery cannot
  // collapse relative to static frugal.
  const ScenarioSpec* spec = find_scenario("energy_lifetime");
  ASSERT_NE(spec, nullptr);
  const core::RunResult speedy =
      run_lifetime_point(*spec, "speed-adaptive-frugal", 800.0);
  EXPECT_EQ(speedy.survivor_fraction(), 1.0);
  EXPECT_GT(speedy.reliability(), 0.5);
  const core::RunResult gossip = run_lifetime_point(*spec, "gossip", 800.0);
  EXPECT_GT(gossip.mean_bytes_sent_per_node(), 0.0);
  EXPECT_GE(gossip.reliability(), 0.0);
}

}  // namespace
}  // namespace frugal::runner
