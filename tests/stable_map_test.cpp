// Unit tests for det::hash_map / det::hash_set (util/stable_map.hpp): the
// deterministic-by-construction containers the detlint unordered-iter rule
// points to. Point operations must behave like the std containers they
// wrap; the sorted accessors must produce ascending-key views regardless of
// insertion order or intervening erases (which perturb bucket layout).
#include "util/stable_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/event.hpp"

namespace frugal {
namespace {

TEST(StableHashMap, PointOperations) {
  det::hash_map<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  map[7] = "seven";
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(7));
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), "seven");
  EXPECT_EQ(map.at(7), "seven");

  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_FALSE(map.contains(7));
}

TEST(StableHashMap, TryEmplaceNeverOverwrites) {
  det::hash_map<int, std::string> map;
  const auto first = map.try_emplace(1, "one");
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(*first.value, "one");

  const auto second = map.try_emplace(1, "uno");
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(*second.value, "one");  // incumbent kept
  EXPECT_EQ(second.value, first.value);

  // emplace is an alias with identical semantics.
  EXPECT_FALSE(map.emplace(1, "eins").inserted);
  EXPECT_EQ(map.at(1), "one");
}

TEST(StableHashMap, SortedKeysAscendingRegardlessOfInsertionOrder) {
  det::hash_map<std::uint32_t, int> map;
  for (const std::uint32_t key : {9u, 2u, 40u, 0u, 17u}) {
    map[key] = static_cast<int>(key) * 10;
  }
  EXPECT_EQ(map.sorted_keys(),
            (std::vector<std::uint32_t>{0u, 2u, 9u, 17u, 40u}));
}

TEST(StableHashMap, ForEachSortedVisitsAscendingAndMutates) {
  det::hash_map<int, int> map;
  for (const int key : {5, 1, 3, 2, 4}) map[key] = 0;

  std::vector<int> visited;
  map.for_each_sorted([&](const int& key, int& value) {
    visited.push_back(key);
    value = key * key;  // mutable overload writes through
  });
  EXPECT_EQ(visited, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(map.at(4), 16);

  const auto& cmap = map;
  visited.clear();
  cmap.for_each_sorted(
      [&](const int&, const int& value) { visited.push_back(value); });
  EXPECT_EQ(visited, (std::vector<int>{1, 4, 9, 16, 25}));
}

TEST(StableHashMap, SortedViewStableUnderChurn) {
  // Erase/re-insert churn perturbs the unordered bucket layout; the sorted
  // view must not care.
  det::hash_map<int, int> map;
  for (int i = 0; i < 64; ++i) map[i] = i;
  for (int i = 0; i < 64; i += 2) map.erase(i);
  for (int i = 64; i < 96; ++i) map[i] = i;

  const std::vector<int> keys = map.sorted_keys();
  ASSERT_FALSE(keys.empty());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
}

TEST(StableHashMap, EraseIfReturnsCountAndKeepsSurvivors) {
  det::hash_map<int, int> map;
  for (int i = 0; i < 10; ++i) map[i] = i;
  const std::size_t removed =
      map.erase_if([](const auto& kv) { return kv.first % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(map.sorted_keys(), (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(StableHashMap, SetSemanticsEquality) {
  det::hash_map<int, int> a;
  det::hash_map<int, int> b;
  for (const int key : {1, 2, 3}) a[key] = key;
  for (const int key : {3, 1, 2}) b[key] = key;  // different insertion order
  EXPECT_EQ(a, b);
  b[4] = 4;
  EXPECT_FALSE(a == b);
}

TEST(StableHashMap, CustomHashKeys) {
  // The protocol tables key on EventId with EventIdHash — the exact shape
  // ported in core/.
  det::hash_map<core::EventId, int, core::EventIdHash> map;
  const core::EventId late{2, 1};
  const core::EventId early{1, 9};
  map[late] = 20;
  map[early] = 10;
  const std::vector<core::EventId> keys = map.sorted_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], early);  // publisher-major ordering via operator<=>
  EXPECT_EQ(keys[1], late);
}

TEST(StableHashSet, InsertReportsFreshness) {
  det::hash_set<int> set;
  EXPECT_TRUE(set.insert(3));
  EXPECT_FALSE(set.insert(3));
  EXPECT_TRUE(set.contains(3));
  EXPECT_EQ(set.size(), 1u);
}

TEST(StableHashSet, SortedValuesAndEraseIf) {
  det::hash_set<int> set;
  for (const int value : {8, 1, 6, 3}) set.insert(value);
  EXPECT_EQ(set.sorted_values(), (std::vector<int>{1, 3, 6, 8}));

  EXPECT_EQ(set.erase_if([](int value) { return value > 5; }), 2u);
  EXPECT_EQ(set.sorted_values(), (std::vector<int>{1, 3}));

  EXPECT_EQ(set.erase(1), 1u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace frugal
