#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mobility/city_section.hpp"
#include "mobility/converge.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_mobility.hpp"
#include "mobility/street_graph.hpp"

namespace frugal::mobility {
namespace {

using namespace frugal::time_literals;

// -- StaticMobility ----------------------------------------------------------

TEST(StaticMobilityTest, HoldsPositions) {
  StaticMobility m{{{1, 2}, {3, 4}}};
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_EQ(m.position(0, SimTime::zero()), (Vec2{1, 2}));
  EXPECT_EQ(m.position(1, SimTime::from_seconds(100)), (Vec2{3, 4}));
  EXPECT_EQ(m.speed(0, SimTime::zero()), 0.0);
}

TEST(StaticMobilityTest, MoveNodeTeleports) {
  StaticMobility m{{{0, 0}}};
  m.move_node(0, {10, 10});
  EXPECT_EQ(m.position(0, SimTime::zero()), (Vec2{10, 10}));
}

// -- WaypointTrace -----------------------------------------------------------

TEST(WaypointTraceTest, InterpolatesLinearly) {
  WaypointTrace trace{{{{SimTime::zero(), {0, 0}},
                        {SimTime::from_seconds(10), {100, 0}}}}};
  EXPECT_EQ(trace.position(0, SimTime::from_seconds(5)), (Vec2{50, 0}));
  EXPECT_DOUBLE_EQ(trace.speed(0, SimTime::from_seconds(5)), 10.0);
}

TEST(WaypointTraceTest, ClampsOutsideKnots) {
  WaypointTrace trace{{{{SimTime::from_seconds(1), {5, 5}},
                        {SimTime::from_seconds(2), {10, 5}}}}};
  EXPECT_EQ(trace.position(0, SimTime::zero()), (Vec2{5, 5}));
  EXPECT_EQ(trace.position(0, SimTime::from_seconds(50)), (Vec2{10, 5}));
  EXPECT_EQ(trace.speed(0, SimTime::from_seconds(50)), 0.0);
}

TEST(WaypointTraceTest, MultipleNodes) {
  WaypointTrace trace{{
      {{SimTime::zero(), {0, 0}}},
      {{SimTime::zero(), {1, 1}}},
  }};
  EXPECT_EQ(trace.node_count(), 2u);
  EXPECT_EQ(trace.position(1, SimTime::zero()), (Vec2{1, 1}));
}

// -- RandomWaypoint ----------------------------------------------------------

RandomWaypointConfig small_area() {
  RandomWaypointConfig config;
  config.width_m = 1000;
  config.height_m = 800;
  config.speed_min_mps = 2;
  config.speed_max_mps = 10;
  return config;
}

TEST(RandomWaypointTest, StaysInsideArea) {
  RandomWaypoint rwp{small_area(), 10, Rng{1}};
  for (NodeId node = 0; node < 10; ++node) {
    for (int s = 0; s <= 600; s += 7) {
      const Vec2 p = rwp.position(node, SimTime::from_seconds(s));
      ASSERT_GE(p.x, 0.0);
      ASSERT_LE(p.x, 1000.0);
      ASSERT_GE(p.y, 0.0);
      ASSERT_LE(p.y, 800.0);
    }
  }
}

TEST(RandomWaypointTest, DeterministicAcrossInstances) {
  RandomWaypoint a{small_area(), 5, Rng{7}};
  RandomWaypoint b{small_area(), 5, Rng{7}};
  for (NodeId node = 0; node < 5; ++node) {
    for (int s = 0; s < 100; s += 13) {
      EXPECT_EQ(a.position(node, SimTime::from_seconds(s)),
                b.position(node, SimTime::from_seconds(s)));
    }
  }
}

TEST(RandomWaypointTest, QueryOrderDoesNotMatter) {
  RandomWaypoint a{small_area(), 2, Rng{7}};
  RandomWaypoint b{small_area(), 2, Rng{7}};
  const Vec2 late_first = a.position(0, SimTime::from_seconds(500));
  (void)b.position(0, SimTime::from_seconds(1));
  (void)b.position(0, SimTime::from_seconds(250));
  EXPECT_EQ(b.position(0, SimTime::from_seconds(500)), late_first);
  // Backwards queries replay the cached trajectory.
  EXPECT_EQ(a.position(0, SimTime::from_seconds(1)),
            b.position(0, SimTime::from_seconds(1)));
}

TEST(RandomWaypointTest, SpeedWithinConfiguredRange) {
  RandomWaypoint rwp{small_area(), 8, Rng{3}};
  for (NodeId node = 0; node < 8; ++node) {
    for (int s = 0; s < 300; s += 11) {
      const double v = rwp.speed(node, SimTime::from_seconds(s));
      ASSERT_GE(v, 0.0);  // 0 during pauses
      ASSERT_LE(v, 10.0 + 1e-9);
    }
  }
}

TEST(RandomWaypointTest, ActuallyMoves) {
  RandomWaypoint rwp{small_area(), 4, Rng{5}};
  for (NodeId node = 0; node < 4; ++node) {
    const Vec2 a = rwp.position(node, SimTime::zero());
    const Vec2 b = rwp.position(node, SimTime::from_seconds(300));
    EXPECT_GT(distance(a, b) + 1.0, 1.0);  // defined
  }
  // At least one node must have moved a macroscopic distance.
  double max_moved = 0;
  for (NodeId node = 0; node < 4; ++node) {
    max_moved = std::max(
        max_moved, distance(rwp.position(node, SimTime::zero()),
                            rwp.position(node, SimTime::from_seconds(300))));
  }
  EXPECT_GT(max_moved, 50.0);
}

TEST(RandomWaypointTest, PerNodeConstantSpeedMode) {
  RandomWaypointConfig config = small_area();
  config.per_node_constant_speed = true;
  config.pause = SimDuration::zero();
  RandomWaypoint rwp{config, 6, Rng{11}};
  for (NodeId node = 0; node < 6; ++node) {
    std::set<long> speeds;
    for (int s = 1; s < 500; s += 17) {
      const double v = rwp.speed(node, SimTime::from_seconds(s));
      if (v > 0) speeds.insert(std::lround(v * 1e6));
    }
    EXPECT_LE(speeds.size(), 1u) << "node " << node;
  }
}

TEST(RandomWaypointTest, PausesAtWaypoints) {
  RandomWaypointConfig config = small_area();
  config.pause = SimDuration::from_seconds(5);
  RandomWaypoint rwp{config, 3, Rng{13}};
  // Speed is zero at time 0 (initial pause leg).
  for (NodeId node = 0; node < 3; ++node) {
    EXPECT_EQ(rwp.speed(node, SimTime::zero()), 0.0);
  }
}

// -- ConvergeDisperse --------------------------------------------------------

ConvergeConfig converge_config() {
  ConvergeConfig config;
  config.width_m = 3000.0;
  config.height_m = 3000.0;
  config.rally = {1500.0, 1500.0};
  config.rally_radius_m = 20.0;
  config.speed_mps = 10.0;
  config.converge_by = SimTime::from_seconds(100.0);
  config.disperse_at = SimTime::from_seconds(160.0);
  return config;
}

TEST(ConvergeDisperseTest, EveryNodeArrivesByConvergeTimeAndDwells) {
  ConvergeDisperse model{converge_config(), 20, Rng{3}};
  // Even nodes whose start is farther than speed * converge_by away must
  // be on the rally disc for the whole [converge_by, disperse_at] dwell.
  for (double t : {100.0, 130.0, 160.0}) {
    for (NodeId id = 0; id < 20; ++id) {
      EXPECT_LE(distance(model.position(id, SimTime::from_seconds(t)),
                         Vec2{1500.0, 1500.0}),
                20.0 + 1e-9)
          << "node " << id << " at t=" << t;
      EXPECT_EQ(model.speed(id, SimTime::from_seconds(130.0)), 0.0);
    }
  }
}

TEST(ConvergeDisperseTest, StartsSpreadAndDispersesToNewTargets) {
  ConvergeDisperse model{converge_config(), 20, Rng{3}};
  double spread_start = 0;
  double spread_late = 0;
  const SimTime late = SimTime::from_seconds(1000.0);  // parked by then
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      spread_start = std::max(
          spread_start, distance(model.position(a, SimTime::zero()),
                                 model.position(b, SimTime::zero())));
      spread_late = std::max(spread_late,
                             distance(model.position(a, late),
                                      model.position(b, late)));
    }
  }
  EXPECT_GT(spread_start, 500.0);
  EXPECT_GT(spread_late, 500.0);
}

TEST(ConvergeDisperseTest, DeterministicAcrossInstancesAndQueryOrder) {
  ConvergeDisperse a{converge_config(), 8, Rng{11}};
  ConvergeDisperse b{converge_config(), 8, Rng{11}};
  // Query b backwards in time first; positions must still agree exactly.
  for (int t = 300; t >= 0; t -= 30) {
    static_cast<void>(b.position(3, SimTime::from_seconds(t)));
  }
  for (int t = 0; t <= 300; t += 30) {
    for (NodeId id = 0; id < 8; ++id) {
      EXPECT_EQ(a.position(id, SimTime::from_seconds(t)),
                b.position(id, SimTime::from_seconds(t)));
    }
  }
}

TEST(ConvergeDisperseTest, TravelSpeedMatchesConfigOrBoost) {
  const ConvergeConfig config = converge_config();
  ConvergeDisperse model{config, 20, Rng{5}};
  for (NodeId id = 0; id < 20; ++id) {
    // Mid-convergence speed: the configured speed, or the boost a too-far
    // node needs to make the deadline; never slower than configured.
    const double in = model.speed(id, SimTime::from_seconds(99.0));
    if (in > 0) {
      EXPECT_GE(in, config.speed_mps - 1e-9);
    }
    // Dispersal always travels at the configured speed (or is parked).
    const double out = model.speed(id, SimTime::from_seconds(161.0));
    EXPECT_TRUE(out == 0.0 || out == config.speed_mps) << out;
  }
}

// -- StreetGraph -------------------------------------------------------------

StreetGraph two_by_two() {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  const auto b = g.add_intersection({100, 0});
  const auto c = g.add_intersection({0, 100});
  const auto d = g.add_intersection({100, 100});
  g.add_two_way(a, b, 10, 1);
  g.add_two_way(b, d, 10, 1);
  g.add_two_way(a, c, 10, 1);
  g.add_two_way(c, d, 10, 1);
  return g;
}

TEST(StreetGraphTest, BasicAccessors) {
  const StreetGraph g = two_by_two();
  EXPECT_EQ(g.intersection_count(), 4u);
  EXPECT_EQ(g.street_count(), 8u);  // 4 two-way roads
  EXPECT_EQ(g.position(1), (Vec2{100, 0}));
  EXPECT_DOUBLE_EQ(g.street_length(0), 100.0);
}

TEST(StreetGraphTest, StronglyConnected) {
  EXPECT_TRUE(two_by_two().strongly_connected());
}

TEST(StreetGraphTest, OneWayBreaksConnectivity) {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  const auto b = g.add_intersection({100, 0});
  g.add_street({a, b, 10, 1});  // no way back
  EXPECT_FALSE(g.strongly_connected());
}

TEST(StreetGraphTest, FastestRoutePrefersHigherSpeedLimit) {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  const auto b = g.add_intersection({100, 0});
  const auto top = g.add_intersection({50, 10});
  g.add_two_way(a, b, 5, 1);     // direct but slow: 100 m at 5 mps = 20 s
  g.add_two_way(a, top, 50, 1);  // detour at 50 mps: ~102 m total ~= 2 s
  g.add_two_way(top, b, 50, 1);
  const auto route = g.fastest_route(a, b);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(g.street(route[0]).to, top);
  EXPECT_EQ(g.street(route[1]).to, b);
}

TEST(StreetGraphTest, FastestRouteRespectsOneWay) {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  const auto b = g.add_intersection({100, 0});
  const auto c = g.add_intersection({50, 50});
  g.add_street({a, b, 10, 1});  // one-way a -> b
  g.add_two_way(b, c, 10, 1);
  g.add_two_way(c, a, 10, 1);
  const auto route = g.fastest_route(b, a);
  ASSERT_EQ(route.size(), 2u);  // must detour via c
  EXPECT_EQ(g.street(route[0]).to, c);
  EXPECT_EQ(g.street(route[1]).to, a);
}

TEST(StreetGraphTest, RouteToSelfIsEmpty) {
  const StreetGraph g = two_by_two();
  EXPECT_TRUE(g.fastest_route(2, 2).empty());
}

TEST(StreetGraphTest, UnreachableReturnsEmpty) {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  g.add_intersection({100, 0});  // isolated
  g.add_intersection({200, 0});
  const auto b = static_cast<IntersectionId>(1);
  EXPECT_TRUE(g.fastest_route(a, b).empty());
}

TEST(StreetGraphTest, IntersectionPopularity) {
  StreetGraph g;
  const auto a = g.add_intersection({0, 0});
  const auto b = g.add_intersection({100, 0});
  g.add_two_way(a, b, 10, 3);
  EXPECT_DOUBLE_EQ(g.intersection_popularity(a), 3.0);
}

TEST(CampusGridTest, GeneratesConnectedGrid) {
  CampusGridConfig config;
  Rng rng{21};
  const StreetGraph g = make_campus_grid(config, rng);
  EXPECT_EQ(g.intersection_count(),
            static_cast<std::size_t>(config.columns) * config.rows);
  EXPECT_TRUE(g.strongly_connected());
}

TEST(CampusGridTest, SpeedLimitsWithinBounds) {
  CampusGridConfig config;
  Rng rng{22};
  const StreetGraph g = make_campus_grid(config, rng);
  for (std::uint32_t e = 0; e < g.street_count(); ++e) {
    EXPECT_GE(g.street(e).speed_limit_mps, config.speed_min_mps);
    EXPECT_LE(g.street(e).speed_limit_mps, config.speed_max_mps);
  }
}

TEST(CampusGridTest, HasPopularMainRoads) {
  CampusGridConfig config;
  Rng rng{23};
  const StreetGraph g = make_campus_grid(config, rng);
  bool found_main = false;
  for (std::uint32_t e = 0; e < g.street_count(); ++e) {
    if (g.street(e).popularity == config.main_road_popularity) {
      found_main = true;
      break;
    }
  }
  EXPECT_TRUE(found_main);
}

TEST(CampusGridTest, CoversConfiguredArea) {
  CampusGridConfig config;
  Rng rng{24};
  const StreetGraph g = make_campus_grid(config, rng);
  double max_x = 0;
  double max_y = 0;
  for (IntersectionId i = 0;
       i < static_cast<IntersectionId>(g.intersection_count()); ++i) {
    max_x = std::max(max_x, g.position(i).x);
    max_y = std::max(max_y, g.position(i).y);
  }
  EXPECT_DOUBLE_EQ(max_x, config.width_m);
  EXPECT_DOUBLE_EQ(max_y, config.height_m);
}

// -- CitySection -------------------------------------------------------------

struct CityFixture {
  CityFixture() : graph{two_by_two()}, model{graph, config(), 6, Rng{31}} {}
  static CitySectionConfig config() {
    CitySectionConfig c;
    c.stop_probability = 0.5;
    return c;
  }
  StreetGraph graph;
  CitySection model;
};

TEST(CitySectionTest, PositionsStayOnStreetSegments) {
  CityFixture f;
  // In the 2x2 grid all streets are axis-aligned at x or y in {0, 100}.
  for (NodeId node = 0; node < 6; ++node) {
    for (int s = 0; s <= 400; s += 3) {
      const Vec2 p = f.model.position(node, SimTime::from_seconds(s));
      const bool on_vertical = std::abs(p.x - 0) < 1e-6 ||
                               std::abs(p.x - 100) < 1e-6;
      const bool on_horizontal = std::abs(p.y - 0) < 1e-6 ||
                                 std::abs(p.y - 100) < 1e-6;
      ASSERT_TRUE(on_vertical || on_horizontal)
          << "node " << node << " off-street at t=" << s << ": (" << p.x
          << ", " << p.y << ")";
    }
  }
}

TEST(CitySectionTest, SpeedIsStreetLimitOrZero) {
  CityFixture f;
  for (NodeId node = 0; node < 6; ++node) {
    for (int s = 0; s <= 300; s += 7) {
      const double v = f.model.speed(node, SimTime::from_seconds(s));
      ASSERT_TRUE(v == 0.0 || std::abs(v - 10.0) < 1e-9);
    }
  }
}

TEST(CitySectionTest, Deterministic) {
  CityFixture a;
  CityFixture b;
  for (NodeId node = 0; node < 6; ++node) {
    for (int s = 0; s < 200; s += 9) {
      EXPECT_EQ(a.model.position(node, SimTime::from_seconds(s)),
                b.model.position(node, SimTime::from_seconds(s)));
    }
  }
}

TEST(CitySectionTest, EventuallyTravels) {
  CityFixture f;
  double max_moved = 0;
  for (NodeId node = 0; node < 6; ++node) {
    const Vec2 start = f.model.position(node, SimTime::zero());
    for (int s = 0; s <= 600; s += 30) {
      max_moved = std::max(
          max_moved,
          distance(start, f.model.position(node, SimTime::from_seconds(s))));
    }
  }
  EXPECT_GT(max_moved, 50.0);
}

TEST(CitySectionTest, CampusScaleRun) {
  CampusGridConfig grid_config;
  Rng rng{41};
  StreetGraph graph = make_campus_grid(grid_config, rng);
  CitySection model{graph, CitySectionConfig{}, 15, Rng{42}};
  for (NodeId node = 0; node < 15; ++node) {
    const Vec2 p = model.position(node, SimTime::from_seconds(500));
    EXPECT_GE(p.x, -1e-6);
    EXPECT_LE(p.x, grid_config.width_m + 1e-6);
    EXPECT_GE(p.y, -1e-6);
    EXPECT_LE(p.y, grid_config.height_m + 1e-6);
    const double v = model.speed(node, SimTime::from_seconds(500));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, grid_config.speed_max_mps + 1e-9);
  }
}

}  // namespace
}  // namespace frugal::mobility
