#include "util/time.hpp"

#include <gtest/gtest.h>

namespace frugal {
namespace {

using namespace frugal::time_literals;

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.us(), 0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTimeTest, FactoryConversions) {
  EXPECT_EQ(SimTime::from_us(1500).us(), 1500);
  EXPECT_EQ(SimTime::from_ms(3).us(), 3000);
  EXPECT_EQ(SimTime::from_seconds(2.5).us(), 2'500'000);
}

TEST(SimTimeTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(12.25).seconds(), 12.25);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::from_us(1), SimTime::from_us(2));
  EXPECT_GT(SimTime::max(), SimTime::from_seconds(1e9));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
}

TEST(SimTimeTest, ArithmeticWithDurations) {
  const SimTime t = SimTime::from_seconds(10.0);
  EXPECT_EQ((t + 5_sec).us(), 15'000'000);
  EXPECT_EQ((t - 5_sec).us(), 5'000'000);
  EXPECT_EQ((t + 5_sec) - t, 5_sec);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::from_seconds(1.0);
  t += 500_ms;
  EXPECT_EQ(t.us(), 1'500'000);
  t -= 1500_ms;
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimDurationTest, Literals) {
  EXPECT_EQ((3_sec).us(), 3'000'000);
  EXPECT_EQ((250_ms).us(), 250'000);
  EXPECT_EQ((7_us).us(), 7);
}

TEST(SimDurationTest, Arithmetic) {
  EXPECT_EQ(2_sec + 500_ms, SimDuration::from_ms(2500));
  EXPECT_EQ(2_sec - 500_ms, SimDuration::from_ms(1500));
  EXPECT_EQ(2_sec * 3, 6_sec);
  EXPECT_EQ(3 * 2_sec, 6_sec);
  EXPECT_EQ(6_sec / 3, 2_sec);
}

TEST(SimDurationTest, ScalarDoubleArithmetic) {
  EXPECT_EQ(2_sec * 2.5, 5_sec);
  EXPECT_EQ(5_sec / 2.5, 2_sec);
}

TEST(SimDurationTest, NegativeDetection) {
  EXPECT_TRUE((1_sec - 2_sec).is_negative());
  EXPECT_FALSE((2_sec - 1_sec).is_negative());
  EXPECT_FALSE(SimDuration::zero().is_negative());
}

TEST(SimDurationTest, SecondsConversion) {
  EXPECT_DOUBLE_EQ((1500_ms).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration::from_seconds(-0.5).seconds(), -0.5);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(to_string(SimTime::from_seconds(1.5)), "1.500000s");
  EXPECT_EQ(to_string(SimDuration::from_ms(250)), "0.250000s");
}

TEST(SimTimeTest, TimeDifferenceIsDuration) {
  const SimTime a = SimTime::from_seconds(3);
  const SimTime b = SimTime::from_seconds(1);
  EXPECT_EQ(a - b, 2_sec);
  EXPECT_TRUE((b - a).is_negative());
}

}  // namespace
}  // namespace frugal
