#include "topics/topic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "topics/subscription_set.hpp"
#include "util/rng.hpp"

namespace frugal::topics {
namespace {

TEST(TopicTest, RootProperties) {
  const Topic root;
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.parent(), root);
  EXPECT_TRUE(root.segments().empty());
}

TEST(TopicTest, ParseWithAndWithoutLeadingDot) {
  EXPECT_EQ(Topic::parse("a.b"), Topic::parse(".a.b"));
  EXPECT_EQ(Topic::parse("."), Topic{});
}

TEST(TopicTest, ParseCanonicalForm) {
  EXPECT_EQ(Topic::parse("grenoble.conferences.middleware").to_string(),
            ".grenoble.conferences.middleware");
}

TEST(TopicTest, Validity) {
  EXPECT_TRUE(Topic::valid("."));
  EXPECT_TRUE(Topic::valid("a"));
  EXPECT_TRUE(Topic::valid(".a.b.c"));
  EXPECT_FALSE(Topic::valid(""));  // empty string is not the root spelling
  EXPECT_FALSE(Topic::valid("a..b"));
  EXPECT_FALSE(Topic::valid(".a."));
  EXPECT_FALSE(Topic::valid("a b"));
  EXPECT_FALSE(Topic::valid(".."));
}

TEST(TopicTest, Depth) {
  EXPECT_EQ(Topic::parse(".a").depth(), 1u);
  EXPECT_EQ(Topic::parse(".a.b").depth(), 2u);
  EXPECT_EQ(Topic::parse(".a.b.c").depth(), 3u);
}

TEST(TopicTest, ParentChain) {
  const Topic t = Topic::parse(".a.b.c");
  EXPECT_EQ(t.parent(), Topic::parse(".a.b"));
  EXPECT_EQ(t.parent().parent(), Topic::parse(".a"));
  EXPECT_EQ(t.parent().parent().parent(), Topic{});
}

TEST(TopicTest, Child) {
  EXPECT_EQ(Topic{}.child("a"), Topic::parse(".a"));
  EXPECT_EQ(Topic::parse(".a").child("b"), Topic::parse(".a.b"));
}

TEST(TopicTest, CoversSelf) {
  const Topic t = Topic::parse(".a.b");
  EXPECT_TRUE(t.covers(t));
}

TEST(TopicTest, CoversDescendants) {
  const Topic t = Topic::parse(".a.b");
  EXPECT_TRUE(t.covers(Topic::parse(".a.b.c")));
  EXPECT_TRUE(t.covers(Topic::parse(".a.b.c.d")));
}

TEST(TopicTest, DoesNotCoverAncestorsOrSiblings) {
  const Topic t = Topic::parse(".a.b");
  EXPECT_FALSE(t.covers(Topic::parse(".a")));
  EXPECT_FALSE(t.covers(Topic::parse(".a.c")));
  EXPECT_FALSE(t.covers(Topic{}));
}

TEST(TopicTest, CoversRequiresSegmentBoundary) {
  // ".a.b" must not cover ".a.bc" (prefix of the string, not of the path).
  EXPECT_FALSE(Topic::parse(".a.b").covers(Topic::parse(".a.bc")));
  EXPECT_FALSE(Topic::parse(".ab").covers(Topic::parse(".abc")));
}

TEST(TopicTest, RootCoversEverything) {
  const Topic root;
  EXPECT_TRUE(root.covers(root));
  EXPECT_TRUE(root.covers(Topic::parse(".x")));
  EXPECT_TRUE(root.covers(Topic::parse(".x.y.z")));
}

TEST(TopicTest, Segments) {
  const auto segs = Topic::parse(".alpha.beta.gamma").segments();
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], "alpha");
  EXPECT_EQ(segs[1], "beta");
  EXPECT_EQ(segs[2], "gamma");
}

TEST(TopicTest, OrderingIsDeterministic) {
  EXPECT_LT(Topic::parse(".a"), Topic::parse(".b"));
  EXPECT_EQ(Topic::parse(".a"), Topic::parse("a"));
}

// Property sweep: for every (ancestor, descendant) pair built from a chain,
// covers() holds exactly in the ancestor direction.
class TopicChainProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopicChainProperty, CoversIffAncestor) {
  const auto [i, j] = GetParam();
  Topic a;
  for (int k = 0; k < i; ++k) a = a.child("s" + std::to_string(k));
  Topic b;
  for (int k = 0; k < j; ++k) b = b.child("s" + std::to_string(k));
  EXPECT_EQ(a.covers(b), i <= j);
  EXPECT_EQ(b.covers(a), j <= i);
}

INSTANTIATE_TEST_SUITE_P(Depths, TopicChainProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

// -- SubscriptionSet ---------------------------------------------------------

TEST(SubscriptionSetTest, EmptyCoversNothing) {
  const SubscriptionSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.covers(Topic::parse(".a")));
  EXPECT_FALSE(set.covers(Topic{}));
}

TEST(SubscriptionSetTest, AddRemove) {
  SubscriptionSet set;
  set.add(Topic::parse(".a"));
  EXPECT_EQ(set.size(), 1u);
  set.add(Topic::parse(".a"));  // duplicate ignored
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.remove(Topic::parse(".a")));
  EXPECT_FALSE(set.remove(Topic::parse(".a")));
  EXPECT_TRUE(set.empty());
}

TEST(SubscriptionSetTest, CoversSubtopics) {
  SubscriptionSet set;
  set.add(Topic::parse(".conf"));
  EXPECT_TRUE(set.covers(Topic::parse(".conf")));
  EXPECT_TRUE(set.covers(Topic::parse(".conf.mw")));
  EXPECT_FALSE(set.covers(Topic::parse(".news")));
}

TEST(SubscriptionSetTest, RedundantSubscriptionSurvivesBroadRemoval) {
  SubscriptionSet set;
  set.add(Topic::parse(".a"));
  set.add(Topic::parse(".a.b"));  // redundant while .a is present
  EXPECT_TRUE(set.remove(Topic::parse(".a")));
  EXPECT_TRUE(set.covers(Topic::parse(".a.b.c")));
  EXPECT_FALSE(set.covers(Topic::parse(".a.x")));
}

TEST(SubscriptionSetTest, OverlapsIsSymmetricHierarchyAware) {
  // The paper's Figure 1: p1 -> .T0.T1, p2 -> .T0.T1.T2, p3 -> .T0.
  SubscriptionSet p1{{Topic::parse(".T0.T1")}};
  SubscriptionSet p2{{Topic::parse(".T0.T1.T2")}};
  SubscriptionSet p3{{Topic::parse(".T0")}};
  EXPECT_TRUE(p1.overlaps(p2));
  EXPECT_TRUE(p2.overlaps(p1));
  EXPECT_TRUE(p1.overlaps(p3));
  EXPECT_TRUE(p2.overlaps(p3));
}

TEST(SubscriptionSetTest, DisjointBranchesDoNotOverlap) {
  SubscriptionSet a{{Topic::parse(".x.y")}};
  SubscriptionSet b{{Topic::parse(".x.z")}};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
}

TEST(SubscriptionSetTest, EmptySetOverlapsNothing) {
  SubscriptionSet empty;
  SubscriptionSet a{{Topic::parse(".x")}};
  EXPECT_FALSE(empty.overlaps(a));
  EXPECT_FALSE(a.overlaps(empty));
  EXPECT_FALSE(empty.overlaps(empty));
}

TEST(SubscriptionSetTest, RootSubscriptionOverlapsEveryone) {
  SubscriptionSet root{{Topic{}}};
  SubscriptionSet a{{Topic::parse(".deep.branch.leaf")}};
  EXPECT_TRUE(root.overlaps(a));
  EXPECT_TRUE(a.overlaps(root));
}

TEST(SubscriptionSetTest, Equality) {
  SubscriptionSet a{{Topic::parse(".x"), Topic::parse(".y")}};
  SubscriptionSet b{{Topic::parse(".x"), Topic::parse(".y")}};
  SubscriptionSet c{{Topic::parse(".y"), Topic::parse(".x")}};
  EXPECT_EQ(a, b);
  // Order matters for equality (it is an ordered list, as in the paper's
  // heartbeat payload); semantic equivalence is not required here.
  EXPECT_FALSE(a == c);
}

TEST(TopicTest, CompleteTreeLevelEnumeratesLexicographically) {
  const Topic root = Topic::parse(".t");
  EXPECT_EQ(complete_tree_level(root, 3, 0), (std::vector<Topic>{root}));
  EXPECT_EQ(complete_tree_level(root, 2, 1),
            (std::vector<Topic>{Topic::parse(".t.b0"),
                                Topic::parse(".t.b1")}));
  const auto leaves = complete_tree_level(root, 3, 4);
  EXPECT_EQ(leaves.size(), 81u);  // 3^4
  EXPECT_EQ(leaves.front(), Topic::parse(".t.b0.b0.b0.b0"));
  EXPECT_EQ(leaves.back(), Topic::parse(".t.b2.b2.b2.b2"));
  EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end()));
  for (const Topic& leaf : leaves) {
    EXPECT_EQ(leaf.depth(), 5u);
    EXPECT_TRUE(root.covers(leaf));
  }
}

TEST(SubscriptionSetTest, SiblingPrefixIsNotAnAncestorInLargeSets) {
  // ".a.b" vs ".a.bc": the sorted-path index must respect the segment
  // boundary exactly like Topic::covers does. Grow the set past the linear
  // fallback so the indexed path is the one under test.
  SubscriptionSet set;
  set.add(Topic::parse(".a.b"));
  for (int i = 0; i < 10; ++i) {
    set.add(Topic::parse(".filler.t" + std::to_string(i)));
  }
  EXPECT_TRUE(set.covers(Topic::parse(".a.b.c")));
  EXPECT_FALSE(set.covers(Topic::parse(".a.bc")));
  SubscriptionSet sibling{{Topic::parse(".a.bc.d")}};
  EXPECT_FALSE(set.overlaps(sibling));
  SubscriptionSet nested{{Topic::parse(".a.b.deep.leaf")}};
  EXPECT_TRUE(set.overlaps(nested));
}

// Property: the sorted-path index used above the small-set threshold gives
// exactly the flat-scan semantics, for covers() and both overlap
// directions, across set sizes straddling the threshold.
class SubscriptionSetProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubscriptionSetProperty, IndexedMatchesBruteForce) {
  frugal::Rng rng{GetParam()};
  const char* segments[] = {"a", "b", "ab", "c"};
  const auto random_topic = [&](std::uint64_t max_depth) {
    Topic topic;
    const auto depth = rng.uniform_u64(max_depth + 1);
    for (std::uint64_t d = 0; d < depth; ++d) {
      topic = topic.child(segments[rng.uniform_u64(4)]);
    }
    return topic;
  };
  for (const std::size_t size_a : {2u, 7u, 9u, 24u}) {
    for (const std::size_t size_b : {1u, 8u, 20u}) {
      std::vector<Topic> list_a;
      std::vector<Topic> list_b;
      for (std::size_t i = 0; i < size_a; ++i) {
        list_a.push_back(random_topic(4));
      }
      for (std::size_t i = 0; i < size_b; ++i) {
        list_b.push_back(random_topic(4));
      }
      const SubscriptionSet a{list_a};
      const SubscriptionSet b{list_b};

      for (int probe = 0; probe < 20; ++probe) {
        const Topic topic = random_topic(5);
        const bool brute = std::any_of(
            list_a.begin(), list_a.end(),
            [&](const Topic& s) { return s.covers(topic); });
        ASSERT_EQ(a.covers(topic), brute)
            << "covers mismatch for " << topic.to_string();
      }

      bool brute_overlap = false;
      for (const Topic& ta : list_a) {
        for (const Topic& tb : list_b) {
          if (ta.covers(tb) || tb.covers(ta)) brute_overlap = true;
        }
      }
      ASSERT_EQ(a.overlaps(b), brute_overlap);
      ASSERT_EQ(b.overlaps(a), brute_overlap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubscriptionSetProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace frugal::topics
