#include "net/medium.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mobility/static_mobility.hpp"
#include "sim/scheduler.hpp"

namespace frugal::net {
namespace {

using namespace frugal::time_literals;

/// Records every frame it hears.
class Sink final : public MediumClient {
 public:
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
  std::vector<Frame> frames;
};

struct Fixture {
  explicit Fixture(std::vector<Vec2> positions, MediumConfig config = {})
      : mobility{std::move(positions)},
        medium{scheduler, mobility, config, Rng{99}} {
    sinks.resize(mobility.node_count());
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      medium.attach(id, &sinks[id]);
    }
  }

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  Medium medium;
  std::vector<Sink> sinks;
};

MediumConfig fast_config() {
  MediumConfig config;
  config.range_m = 100.0;
  config.max_jitter = SimDuration::from_us(100);
  return config;
}

TEST(MediumTest, DeliversWithinRange) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.broadcast(0, 100, std::string{"hello"});
  f.scheduler.run_until(SimTime::from_seconds(1));
  ASSERT_EQ(f.sinks[1].frames.size(), 1u);
  EXPECT_EQ(f.sinks[1].frames[0].sender, 0u);
  EXPECT_EQ(f.sinks[1].frames[0].size_bytes, 100u);
  EXPECT_EQ(std::any_cast<std::string>(f.sinks[1].frames[0].payload), "hello");
}

TEST(MediumTest, NoDeliveryBeyondRange) {
  Fixture f{{{0, 0}, {150, 0}}, fast_config()};
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[1].frames.empty());
}

TEST(MediumTest, SenderDoesNotHearItself) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[0].frames.empty());
}

TEST(MediumTest, BroadcastReachesAllNeighbors) {
  Fixture f{{{0, 0}, {50, 0}, {0, 50}, {500, 0}}, fast_config()};
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.sinks[1].frames.size(), 1u);
  EXPECT_EQ(f.sinks[2].frames.size(), 1u);
  EXPECT_TRUE(f.sinks[3].frames.empty());
}

TEST(MediumTest, CountsBytesAndFrames) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.broadcast(0, 128, 0);
  f.medium.broadcast(0, 72, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.medium.counters(0).frames_sent, 2u);
  EXPECT_EQ(f.medium.counters(0).bytes_sent, 200u);
  EXPECT_EQ(f.medium.counters(1).frames_delivered, 2u);
  EXPECT_EQ(f.medium.counters(1).bytes_delivered, 200u);
}

TEST(MediumTest, TransmissionTakesAirTime) {
  MediumConfig config = fast_config();
  config.rate_bps = 8000.0;  // 1000 bytes/s
  config.max_jitter = SimDuration::from_us(1);
  Fixture f{{{0, 0}, {50, 0}}, config};
  f.medium.broadcast(0, 500, 0);  // 0.5 s of air time
  f.scheduler.run_until(SimTime::from_ms(400));
  EXPECT_TRUE(f.sinks[1].frames.empty());  // still on the air
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.sinks[1].frames.size(), 1u);
}

TEST(MediumTest, DownNodeNeitherSendsNorReceives) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.set_up(1, false);
  EXPECT_FALSE(f.medium.is_up(1));
  f.medium.broadcast(0, 100, 0);
  f.medium.broadcast(1, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[1].frames.empty());
  EXPECT_TRUE(f.sinks[0].frames.empty());
  EXPECT_EQ(f.medium.counters(1).frames_sent, 0u);
}

TEST(MediumTest, RecoveredNodeReceivesAgain) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.set_up(1, false);
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  f.medium.set_up(1, true);
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(f.sinks[1].frames.size(), 1u);
}

TEST(MediumTest, BroadcastWhileDownCountsAsDropped) {
  // Regression: a broadcast issued from a down radio used to vanish without
  // touching any counter, violating the frames_sent + frames_dropped ==
  // issued contract the conservation suite audits.
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.set_up(0, false);
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.medium.counters(0).frames_sent, 0u);
  EXPECT_EQ(f.medium.counters(0).frames_dropped, 1u);
  EXPECT_TRUE(f.sinks[1].frames.empty());
}

TEST(MediumTest, CrashWhileQueuedDropsFrame) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.broadcast(0, 100, 0);
  f.medium.set_up(0, false);  // crashes before the jitter elapses
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[1].frames.empty());
  EXPECT_EQ(f.medium.counters(0).frames_sent, 0u);
}

TEST(MediumTest, OverlappingFramesCollideAtReceiver) {
  // Senders 0 and 2 are out of range of each other (hidden terminals) but
  // both reach node 1 -> their frames overlap at node 1 and both are lost.
  MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 8000.0;        // 1000 B/s -> 100 ms per 100 B frame
  config.max_jitter = SimDuration::from_us(10);
  Fixture f{{{0, 0}, {90, 0}, {180, 0}}, config};
  f.medium.broadcast(0, 100, 0);
  f.medium.broadcast(2, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[1].frames.empty());
  EXPECT_EQ(f.medium.counters(1).frames_collided, 2u);
}

TEST(MediumTest, CollisionsDisabledDeliversBoth) {
  MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 8000.0;
  config.max_jitter = SimDuration::from_us(10);
  config.enable_collisions = false;
  Fixture f{{{0, 0}, {90, 0}, {180, 0}}, config};
  f.medium.broadcast(0, 100, 0);
  f.medium.broadcast(2, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.sinks[1].frames.size(), 2u);
}

TEST(MediumTest, CarrierSenseSerializesNeighbors) {
  // Senders in range of each other defer instead of colliding.
  MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 8000.0;
  config.max_jitter = SimDuration::from_us(10);
  Fixture f{{{0, 0}, {50, 0}, {25, 40}}, config};
  f.medium.broadcast(0, 100, 0);
  f.medium.broadcast(1, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(2));
  // Node 2 hears both frames intact thanks to carrier sensing.
  EXPECT_EQ(f.sinks[2].frames.size(), 2u);
}

TEST(MediumTest, SequentialFramesFromOneSenderSerialize) {
  MediumConfig config = fast_config();
  config.rate_bps = 8000.0;
  Fixture f{{{0, 0}, {50, 0}}, config};
  for (int i = 0; i < 5; ++i) f.medium.broadcast(0, 100, i);
  f.scheduler.run_until(SimTime::from_seconds(5));
  ASSERT_EQ(f.sinks[1].frames.size(), 5u);
  EXPECT_EQ(f.medium.counters(0).frames_sent, 5u);
}

TEST(MediumTest, NodesInRange) {
  Fixture f{{{0, 0}, {50, 0}, {99, 0}, {101, 0}}, fast_config()};
  const auto neighbors = f.medium.nodes_in_range(0);
  EXPECT_EQ(neighbors, (std::vector<NodeId>{1, 2}));
}

TEST(MediumTest, NodesInRangeSkipsDownNodes) {
  Fixture f{{{0, 0}, {50, 0}, {60, 0}}, fast_config()};
  f.medium.set_up(1, false);
  const auto neighbors = f.medium.nodes_in_range(0);
  EXPECT_EQ(neighbors, (std::vector<NodeId>{2}));
}

TEST(MediumTest, NodesInRangeSkipsUnattachedNodes) {
  // Regression: nodes_in_range used to report unattached-but-up nodes the
  // delivery loop would then skip, so the advertised audience could never
  // receive. One predicate (up + attached) now covers both paths.
  sim::Scheduler scheduler;
  mobility::StaticMobility mobility{{{0, 0}, {50, 0}, {60, 0}}};
  Medium medium{scheduler, mobility, fast_config(), Rng{99}};
  Sink sink0;
  Sink sink2;
  medium.attach(0, &sink0);
  medium.attach(2, &sink2);  // node 1 is up but never attached
  EXPECT_EQ(medium.nodes_in_range(0), (std::vector<NodeId>{2}));
}

TEST(MediumTest, MobilityAffectsReachability) {
  Fixture f{{{0, 0}, {500, 0}}, fast_config()};
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.sinks[1].frames.empty());
  f.mobility.move_node(1, {50, 0});
  f.medium.broadcast(0, 100, 0);
  f.scheduler.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(f.sinks[1].frames.size(), 1u);
}

TEST(TwoRayRangeTest, MatchesPaperRanges) {
  // Paper §5.1: tx 15 dB; sensitivities -93/-89/-87/-83 dB correspond to
  // ranges 442/339/321/273 m. Our two-ray helper lands within ~10%.
  EXPECT_NEAR(two_ray_range(15.0, -93.0), 442.0, 45.0);
  EXPECT_NEAR(two_ray_range(15.0, -89.0), 339.0, 35.0);
  EXPECT_NEAR(two_ray_range(15.0, -87.0), 321.0, 33.0);
  EXPECT_NEAR(two_ray_range(15.0, -83.0), 273.0, 28.0);
}

TEST(TwoRayRangeTest, MonotoneInPowerAndSensitivity) {
  EXPECT_GT(two_ray_range(20.0, -93.0), two_ray_range(15.0, -93.0));
  EXPECT_GT(two_ray_range(15.0, -93.0), two_ray_range(15.0, -83.0));
}

TEST(TwoRayRangeTest, FourthPowerLaw) {
  // +40 dB link budget must exactly x10 the range under the d^4 law.
  const double r1 = two_ray_range(0.0, -60.0);
  const double r2 = two_ray_range(0.0, -100.0);
  EXPECT_NEAR(r2 / r1, 10.0, 1e-9);
}

class JitterSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(JitterSweep, DeliveryHappensWithinJitterPlusAirTime) {
  MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 1e6;
  config.max_jitter = SimDuration::from_us(GetParam());
  Fixture f{{{0, 0}, {50, 0}}, config};
  f.medium.broadcast(0, 125, 0);  // 1 ms at 1 Mbps
  const auto deadline =
      SimDuration::from_us(GetParam()) + SimDuration::from_ms(1);
  f.scheduler.run_until(SimTime::zero() + deadline);
  EXPECT_EQ(f.sinks[1].frames.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Jitters, JitterSweep,
                         ::testing::Values(1, 100, 1000, 5000, 20000));

}  // namespace
}  // namespace frugal::net
