// Death tests for the contract-checking macros: a violated contract must
// abort with a message naming the contract kind, the expression and the
// source location; a satisfied contract must be a no-op (including side
// effects of the condition, which is evaluated exactly once).

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace {

TEST(ExpectDeathTest, SatisfiedContractsAreNoOps) {
  FRUGAL_EXPECT(1 + 1 == 2);
  FRUGAL_ENSURE(true);
  FRUGAL_ASSERT(2 > 1);
}

TEST(ExpectDeathTest, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  FRUGAL_EXPECT(++calls > 0);
  EXPECT_EQ(calls, 1);
}

TEST(ExpectDeathTest, ExpectAbortsWithPreconditionMessage) {
  EXPECT_DEATH(FRUGAL_EXPECT(1 == 2),
               "precondition violation: \\(1 == 2\\) at .*expect_test\\.cpp");
}

TEST(ExpectDeathTest, EnsureAbortsWithPostconditionMessage) {
  EXPECT_DEATH(FRUGAL_ENSURE(false),
               "postcondition violation: \\(false\\) at .*expect_test\\.cpp");
}

TEST(ExpectDeathTest, AssertAbortsWithInvariantMessage) {
  EXPECT_DEATH(FRUGAL_ASSERT(2 < 1),
               "invariant violation: \\(2 < 1\\) at .*expect_test\\.cpp");
}

TEST(ExpectDeathTest, MessageNamesTheFailingExpression) {
  const int limit = 3;
  EXPECT_DEATH(FRUGAL_ASSERT(limit == 4), "limit == 4");
}

}  // namespace
