// Conservation properties of the broadcast medium's traffic accounting —
// the contract the energy model's airtime hook stands on. For random small
// worlds: every byte a receiver counts is attributable to a byte some
// sender counted, every reception the radio locked onto resolves exactly
// once (delivered, collided, or voided by a mid-frame power-down), every
// skipped reception is counted exactly once under its reason (down /
// transmitting / asleep), and every frame issued from an up radio ends up
// exactly once in frames_sent or frames_dropped (max_defers exhaustion, or
// a crash / battery death while the frame was queued).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace frugal::net {
namespace {

struct Segment {
  NodeId node;
  SimTime start;
  SimTime end;
};

/// Records every airtime segment the medium reports, plus the sender's
/// in-range audience at transmission start (the accountability baseline).
class RecordingListener final : public RadioActivityListener {
 public:
  explicit RecordingListener(const Medium& medium) : medium_{medium} {}

  void on_tx(NodeId sender, SimTime start, SimTime end) override {
    tx.push_back({sender, start, end});
    audience += medium_.nodes_in_range(sender).size();
  }
  void on_rx(NodeId receiver, SimTime start, SimTime end) override {
    rx.push_back({receiver, start, end});
  }
  void on_up_changed(NodeId, bool, SimTime) override {}
  void on_sleep_changed(NodeId, bool, SimTime) override {}

  std::vector<Segment> tx;
  std::vector<Segment> rx;
  std::size_t audience = 0;  ///< sum over tx of up in-range nodes

 private:
  const Medium& medium_;
};

class CountingSink final : public MediumClient {
 public:
  void on_frame(const Frame&) override { ++frames; }
  std::uint64_t frames = 0;
};

constexpr std::uint32_t kFrameBytes = 125;  // 1 ms at 1 Mbps

struct World {
  World(std::size_t node_count, double area_m, MediumConfig config,
        std::uint64_t seed, std::vector<NodeId> unattached = {})
      : mobility{random_positions(node_count, area_m, seed)},
        medium{scheduler, mobility, config, Rng{seed ^ 0xABCDu}},
        listener{medium} {
    sinks.resize(node_count);
    for (NodeId id = 0; id < node_count; ++id) {
      if (std::find(unattached.begin(), unattached.end(), id) !=
          unattached.end()) {
        continue;  // up, present, but no client: a radio nobody listens to
      }
      medium.attach(id, &sinks[id]);
    }
    medium.set_listener(&listener);
  }

  static std::vector<Vec2> random_positions(std::size_t count, double area_m,
                                            std::uint64_t seed) {
    Rng rng{seed};
    std::vector<Vec2> positions;
    positions.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      positions.push_back({rng.uniform(0, area_m), rng.uniform(0, area_m)});
    }
    return positions;
  }

  /// Issues `count` broadcasts from random senders at random times over
  /// `window_s` seconds and runs the world to quiescence. Returns the
  /// number of frames issued. By default senders that are down at issue
  /// time stay silent (the protocol layer checks is_up first); with
  /// `issue_while_down` they call broadcast anyway, exercising the
  /// issued-while-down => frames_dropped accounting path.
  std::size_t run_random_traffic(std::size_t count, double window_s,
                                 std::uint64_t seed,
                                 bool issue_while_down = false) {
    Rng rng{seed * 31 + 7};
    for (std::size_t i = 0; i < count; ++i) {
      const auto sender =
          static_cast<NodeId>(rng.uniform_u64(sinks.size()));
      const SimTime at = SimTime::from_seconds(rng.uniform(0, window_s));
      scheduler.schedule_at(at, [this, sender, issue_while_down] {
        if (!issue_while_down && !medium.is_up(sender)) return;
        ++issued;
        medium.broadcast(sender, kFrameBytes, 0);
      });
    }
    scheduler.run_until(SimTime::from_seconds(window_s + 30.0));
    scheduler.run_all();
    return issued;
  }
  std::size_t issued = 0;

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  Medium medium;
  RecordingListener listener;
  std::vector<CountingSink> sinks;
};

MediumConfig test_config() {
  MediumConfig config;
  config.range_m = 150.0;
  config.rate_bps = 1e6;
  config.max_jitter = SimDuration::from_ms(2);
  return config;
}

struct Totals {
  std::uint64_t sent = 0, bytes_sent = 0, delivered = 0, bytes_delivered = 0;
  std::uint64_t collided = 0, missed_busy = 0, missed_asleep = 0;
  std::uint64_t missed_down = 0, dropped = 0;
};

Totals totals_of(const Medium& medium) {
  Totals t;
  for (NodeId id = 0; id < medium.node_count(); ++id) {
    const TrafficCounters& c = medium.counters(id);
    t.sent += c.frames_sent;
    t.bytes_sent += c.bytes_sent;
    t.delivered += c.frames_delivered;
    t.bytes_delivered += c.bytes_delivered;
    t.collided += c.frames_collided;
    t.missed_busy += c.frames_missed_busy;
    t.missed_asleep += c.frames_missed_asleep;
    t.missed_down += c.frames_missed_down;
    t.dropped += c.frames_dropped;
  }
  return t;
}

void assert_conservation(World& world, std::size_t issued) {
  const Totals t = totals_of(world.medium);
  const RecordingListener& log = world.listener;

  // Every issued frame goes on air exactly once or is dropped exactly once.
  EXPECT_EQ(t.sent, log.tx.size());
  EXPECT_EQ(t.sent + t.dropped, issued);
  EXPECT_EQ(t.bytes_sent, kFrameBytes * t.sent);

  // Every reception the radios locked onto resolves exactly once: intact
  // (delivered to the client and counted in bytes), collided, or voided
  // by a power-down in mid-frame.
  EXPECT_EQ(t.delivered + t.collided + t.missed_down, log.rx.size());
  EXPECT_EQ(t.bytes_delivered, kFrameBytes * t.delivered);
  std::uint64_t client_frames = 0;
  for (const CountingSink& sink : world.sinks) client_frames += sink.frames;
  EXPECT_EQ(client_frames, t.delivered);

  // Accountability: each transmission's up in-range audience either locked
  // on (an rx segment) or was skipped for exactly one counted reason.
  EXPECT_EQ(log.audience, log.rx.size() + t.missed_busy + t.missed_asleep);

  // Attribution: every rx segment matches exactly one tx segment with the
  // same airtime, from a different node within radio range.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<NodeId>> on_air;
  for (const Segment& tx : log.tx) {
    on_air[{tx.start.us(), tx.end.us()}].push_back(tx.node);
  }
  const double range_sq = world.medium.config().range_m *
                          world.medium.config().range_m;
  for (const Segment& rx : log.rx) {
    const auto it = on_air.find({rx.start.us(), rx.end.us()});
    ASSERT_NE(it, on_air.end()) << "reception without a transmission";
    bool attributed = false;
    for (const NodeId sender : it->second) {
      if (sender == rx.node) continue;
      const double d_sq = distance_sq(
          world.mobility.position(sender, rx.start),
          world.mobility.position(rx.node, rx.start));
      attributed |= d_sq <= range_sq;
    }
    EXPECT_TRUE(attributed) << "reception attributable to no sender in range";
  }
}

class ConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationSweep, RandomWorldBalances) {
  World world{10, 400.0, test_config(), GetParam()};
  const std::size_t issued = world.run_random_traffic(60, 2.0, GetParam());
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
  // Dense random traffic on a 1 Mbps channel: overlaps actually happened,
  // so the exactly-once properties were exercised, not vacuous.
  EXPECT_GT(totals_of(world.medium).delivered, 0u);
}

TEST_P(ConservationSweep, BalancesWithDownAndSleepingRadios) {
  World world{12, 400.0, test_config(), GetParam() * 131 + 1};
  world.medium.set_up(2, false);
  world.medium.set_up(7, false);
  world.medium.set_sleeping(4, true);
  world.medium.set_sleeping(9, true);
  const std::size_t issued =
      world.run_random_traffic(80, 2.0, GetParam() * 17 + 3);
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
  const Totals t = totals_of(world.medium);
  // The sleeping radios really missed traffic, counted exactly once each.
  EXPECT_GT(t.missed_asleep, 0u);
  EXPECT_EQ(world.medium.counters(2).frames_delivered, 0u);
  EXPECT_EQ(world.medium.counters(7).frames_delivered, 0u);
}

TEST_P(ConservationSweep, IssuesWhileDownCountAsDropped) {
  // Regression: broadcast from a down radio used to return without touching
  // frames_dropped, so sent + dropped undercounted the issues. Nodes 1 and
  // 5 stay down the whole run and every issue is pushed at the medium.
  World world{10, 400.0, test_config(), GetParam() * 53 + 9};
  world.medium.set_up(1, false);
  world.medium.set_up(5, false);
  const std::size_t issued = world.run_random_traffic(
      60, 2.0, GetParam() + 99, /*issue_while_down=*/true);
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
  EXPECT_GT(totals_of(world.medium).dropped, 0u);
  EXPECT_EQ(world.medium.counters(1).frames_sent, 0u);
  EXPECT_EQ(world.medium.counters(5).frames_sent, 0u);
}

TEST_P(ConservationSweep, BalancesWithUnattachedNodes) {
  // Regression: nodes 3 and 8 are up but never attached a client. They used
  // to inflate every nearby sender's advertised audience while the delivery
  // loop skipped them, silently breaking audience == rx + missed_busy +
  // missed_asleep; the unified receiver predicate keeps them out of both.
  World world{12, 400.0, test_config(), GetParam() * 211 + 13,
              /*unattached=*/{3, 8}};
  const std::size_t issued =
      world.run_random_traffic(80, 2.0, GetParam() * 5 + 1);
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
  EXPECT_EQ(world.medium.counters(3).frames_delivered, 0u);
  EXPECT_EQ(world.medium.counters(8).frames_delivered, 0u);
}

TEST_P(ConservationSweep, SaturationDropsAreCountedExactlyOnce) {
  // A 8 kbps channel with bursty traffic: frames defer, some exhaust
  // max_defers. sent + dropped must still account for every issue.
  MediumConfig config = test_config();
  config.rate_bps = 8000.0;  // 125 ms per frame
  config.max_defers = 3;
  World world{8, 200.0, config, GetParam() * 7 + 11};
  const std::size_t issued =
      world.run_random_traffic(120, 1.0, GetParam() + 42);
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
  EXPECT_GT(totals_of(world.medium).dropped, 0u);
}

TEST_P(ConservationSweep, BalancesAcrossMidRunPowerFlips) {
  // Radios crash and recover in the middle of the traffic window on a slow
  // channel (125 ms frames), killing frames mid-air (missed_down) and
  // mid-queue (dropped); the identities must hold regardless.
  MediumConfig config = test_config();
  config.rate_bps = 8000.0;
  World world{12, 400.0, config, GetParam() * 977 + 5};
  world.scheduler.schedule_at(SimTime::from_seconds(0.5),
                              [&world] { world.medium.set_up(3, false); });
  world.scheduler.schedule_at(SimTime::from_seconds(1.2),
                              [&world] { world.medium.set_up(3, true); });
  world.scheduler.schedule_at(SimTime::from_seconds(0.9),
                              [&world] { world.medium.set_up(8, false); });
  const std::size_t issued =
      world.run_random_traffic(60, 2.0, GetParam() + 77);
  ASSERT_GT(issued, 0u);
  assert_conservation(world, issued);
}

TEST(MediumConservationDeterministic, MidRunDeathsCountExactlyOnce) {
  // Two nodes a meter apart on a slow channel, with deaths placed exactly:
  // one reception voided mid-air, one frame killed while queued.
  MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 8000.0;  // 125 B <=> 125 ms on air
  config.max_jitter = SimDuration::from_ms(2);
  World world{2, 1.0, config, 3};
  // Frame 1: on air within [1.0, 1.002], ends at >= 1.125; the receiver
  // powers down at 1.05 — guaranteed mid-frame.
  world.scheduler.schedule_at(SimTime::from_seconds(1.0), [&world] {
    ++world.issued;
    world.medium.broadcast(0, kFrameBytes, 0);
  });
  world.scheduler.schedule_at(SimTime::from_seconds(1.05),
                              [&world] { world.medium.set_up(1, false); });
  world.scheduler.schedule_at(SimTime::from_seconds(1.5),
                              [&world] { world.medium.set_up(1, true); });
  // Frame 2: issued at 2.0; the sender's radio dies in the same instant
  // (later in sequence order), before any jitter can elapse — the queued
  // frame must count as dropped, never as sent.
  world.scheduler.schedule_at(SimTime::from_seconds(2.0), [&world] {
    ++world.issued;
    world.medium.broadcast(0, kFrameBytes, 0);
  });
  world.scheduler.schedule_at(SimTime::from_seconds(2.0),
                              [&world] { world.medium.set_up(0, false); });
  world.scheduler.run_until(SimTime::from_seconds(5.0));
  world.scheduler.run_all();

  const Totals t = totals_of(world.medium);
  EXPECT_EQ(t.sent, 1u);
  EXPECT_EQ(t.dropped, 1u);
  EXPECT_EQ(t.missed_down, 1u);
  EXPECT_EQ(t.delivered, 0u);
  EXPECT_EQ(t.collided, 0u);
  assert_conservation(world, world.issued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace frugal::net
