// Causal-dissemination-trace equivalence and property tests.
//
// The load-bearing claim of telemetry/causal.hpp: the *streaming* tracer —
// which retires events on the fly, prunes stale frame annotations and keeps
// only bounded live state — produces exactly the per-event DAGs that a naive
// batch pass over the raw callback stream produces. A shim subclass records
// every FrameListener / PhaseAnnotator / experiment callback verbatim while
// forwarding to the real tracer, and an independent batch reconstruction
// over the captured stream is compared edge-for-edge, outcome-for-outcome
// against records().
//
// On top of the equality proof: outcome-partition totality (every eligible
// subscriber of every event gets exactly one terminal outcome), delivery
// cross-checks against RunResult's materialized delivery times, the exact
// segment-sum latency-decomposition invariant, bounded-mode stats identity,
// and energy / duty-cycle corpora exercising the died-with-node and
// missed-asleep paths the golden corpus alone would not reach.

#include "telemetry/causal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "energy/energy.hpp"
#include "golden_trace.hpp"

namespace frugal::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Raw-stream capture: a shim that logs every tracer input verbatim.

enum class RawKind : std::uint8_t {
  kAnnotate,
  kSent,
  kDropped,
  kDelivered,
  kCollided,
  kMissed,
  kUpChanged,
  kPublish,
  kDelivery,
  kGc,
  kEndRun,
};

struct RawEntry {
  RawKind kind = RawKind::kEndRun;
  std::uint64_t frame_id = 0;
  /// Sender for kAnnotate, receiver for frame fates, the flipped node for
  /// kUpChanged, the delivering/evicting node for kDelivery/kGc.
  NodeId node = kInvalidNode;
  bool up = false;
  net::FrameLossReason reason = net::FrameLossReason::kBusy;
  core::DisseminationPhase phase = core::DisseminationPhase::kPublish;
  std::vector<core::EventId> ids;
  core::Event event;  ///< kPublish / kDelivery payload
  SimTime t0;         ///< at / airtime start / run_end
  SimTime t1;         ///< airtime end (kSent only)
};

class CapturingTracer : public DisseminationTracer {
 public:
  using DisseminationTracer::DisseminationTracer;

  std::vector<RawEntry> log;

  void annotate(std::uint64_t frame_id, NodeId sender,
                core::DisseminationPhase phase,
                const std::vector<core::EventId>& ids) override {
    RawEntry entry;
    entry.kind = RawKind::kAnnotate;
    entry.frame_id = frame_id;
    entry.node = sender;
    entry.phase = phase;
    entry.ids = ids;
    log.push_back(std::move(entry));
    DisseminationTracer::annotate(frame_id, sender, phase, ids);
  }

  void on_frame_sent(const net::Frame& frame, SimTime start,
                     SimTime end) override {
    RawEntry entry;
    entry.kind = RawKind::kSent;
    entry.frame_id = frame.id;
    entry.t0 = start;
    entry.t1 = end;
    log.push_back(std::move(entry));
    DisseminationTracer::on_frame_sent(frame, start, end);
  }

  void on_frame_dropped(const net::Frame& frame, SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kDropped;
    entry.frame_id = frame.id;
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_frame_dropped(frame, at);
  }

  void on_frame_delivered(const net::Frame& frame, NodeId receiver,
                          SimTime end) override {
    RawEntry entry;
    entry.kind = RawKind::kDelivered;
    entry.frame_id = frame.id;
    entry.node = receiver;
    entry.t0 = end;
    log.push_back(std::move(entry));
    DisseminationTracer::on_frame_delivered(frame, receiver, end);
  }

  void on_frame_collided(const net::Frame& frame, NodeId receiver,
                         SimTime end) override {
    RawEntry entry;
    entry.kind = RawKind::kCollided;
    entry.frame_id = frame.id;
    entry.node = receiver;
    entry.t0 = end;
    log.push_back(std::move(entry));
    DisseminationTracer::on_frame_collided(frame, receiver, end);
  }

  void on_frame_missed(const net::Frame& frame, NodeId receiver,
                       net::FrameLossReason reason, SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kMissed;
    entry.frame_id = frame.id;
    entry.node = receiver;
    entry.reason = reason;
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_frame_missed(frame, receiver, reason, at);
  }

  void on_node_up_changed(NodeId node, bool up, SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kUpChanged;
    entry.node = node;
    entry.up = up;
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_node_up_changed(node, up, at);
  }

  void on_publish(const core::Event& event, SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kPublish;
    entry.event = event;
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_publish(event, at);
  }

  void on_delivery(NodeId node, const core::Event& event,
                   SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kDelivery;
    entry.node = node;
    entry.event = event;
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_delivery(node, event, at);
  }

  void on_gc_eviction(NodeId node, core::EventId victim, SimTime at) override {
    RawEntry entry;
    entry.kind = RawKind::kGc;
    entry.node = node;
    entry.ids.push_back(victim);
    entry.t0 = at;
    log.push_back(std::move(entry));
    DisseminationTracer::on_gc_eviction(node, victim, at);
  }

  void end_run(SimTime run_end) override {
    RawEntry entry;
    entry.kind = RawKind::kEndRun;
    entry.t0 = run_end;
    log.push_back(std::move(entry));
    DisseminationTracer::end_run(run_end);
  }
};

// ---------------------------------------------------------------------------
// Independent batch reconstruction over the captured stream. Deliberately
// naive: plain std::map state, no pruning, no bounded-memory tricks — the
// rules of causal.hpp re-stated from scratch so a bookkeeping bug in the
// streaming implementation (deque management, annotation pruning, retirement
// ordering) shows up as an equality failure here.

constexpr std::uint32_t kUnsetDepth = ~0u;

bool batch_carries_events(core::DisseminationPhase phase) {
  return phase == core::DisseminationPhase::kPublish ||
         phase == core::DisseminationPhase::kEventPush ||
         phase == core::DisseminationPhase::kFloodForward ||
         phase == core::DisseminationPhase::kGossipForward;
}

struct BatchNodeState {
  std::uint32_t depth = kUnsetDepth;
  SimTime acq;
  bool offered = false;
  bool advert_heard = false;
  SimTime advert_at;
  bool requested = false;
  SimTime request_at;
  bool delivered = false;
  SimTime delivered_at;
  std::uint32_t hops = 0;
};

struct BatchLive {
  EventRecord record;  ///< edges / counters accumulate straight into this
  std::vector<NodeId> eligible;
  std::map<NodeId, BatchNodeState> nodes;
  bool gc_evicted = false;
};

struct BatchFrame {
  NodeId sender = kInvalidNode;
  core::DisseminationPhase phase = core::DisseminationPhase::kPublish;
  std::vector<core::EventId> ids;
  bool sent = false;
  SimTime start;
  SimTime end;
};

struct BatchSlot {
  SimTime end = SimTime::from_us(-1);
  NodeId sender = kInvalidNode;
  std::vector<core::EventId> ids;
};

struct BatchOutput {
  std::vector<EventRecord> retired;
  std::uint64_t late_deliveries = 0;
};

/// Eligibility re-derived from the run's own collected outcome tables — an
/// input source independent of the tracer's begin_run binding.
std::vector<NodeId> eligible_from_result(const core::RunResult& result,
                                         const core::Event& event) {
  std::vector<NodeId> out;
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const core::NodeOutcome& node = result.nodes[n];
    if (node.subscribed && node.subscriptions.covers(event.topic)) {
      out.push_back(static_cast<NodeId>(n));
    }
  }
  return out;
}

BatchOutput reconstruct(const std::vector<RawEntry>& log,
                        const core::RunResult& result,
                        std::size_t node_count) {
  BatchOutput out;
  SimTime clock = SimTime::zero();
  std::map<core::EventId, BatchLive> live;
  std::deque<core::EventId> order;
  std::map<std::uint64_t, BatchFrame> frames;
  std::vector<bool> node_up(node_count, true);
  std::vector<BatchSlot> slots(node_count);

  const auto find_live = [&live](core::EventId id) -> BatchLive* {
    auto it = live.find(id);
    return it == live.end() ? nullptr : &it->second;
  };

  const auto retire = [&](SimTime now) {
    while (!order.empty()) {
      const core::EventId id = order.front();
      BatchLive* event = find_live(id);
      if (event == nullptr) {
        order.pop_front();
        continue;
      }
      const SimTime expiry =
          event->record.published_at + event->record.validity;
      if (expiry > now) break;
      order.pop_front();
      for (NodeId n : event->eligible) {
        SubscriberRecord row;
        row.node = n;
        row.at = expiry;
        auto it = event->nodes.find(n);
        const BatchNodeState* state =
            it == event->nodes.end() ? nullptr : &it->second;
        if (state != nullptr && state->delivered) {
          row.outcome = SubscriberOutcome::kDelivered;
          row.at = state->delivered_at;
          row.hops = state->hops;
        } else if (!node_up[n]) {
          row.outcome = SubscriberOutcome::kDiedWithNode;
        } else if (state == nullptr || !state->offered) {
          row.outcome = SubscriberOutcome::kMarooned;
        } else if (event->gc_evicted) {
          row.outcome = SubscriberOutcome::kGcEvicted;
        } else {
          row.outcome = SubscriberOutcome::kExpiredInTable;
        }
        event->record.subscribers.push_back(row);
      }
      out.retired.push_back(std::move(event->record));
      live.erase(id);
    }
  };

  const auto advance = [&](SimTime at) {
    if (at < clock) return;
    clock = at;
    retire(at);
  };

  const auto record_edge = [&](const BatchFrame& frame,
                               std::uint64_t frame_id, NodeId receiver,
                               EdgeOutcome outcome, SimTime at) {
    for (const core::EventId& id : frame.ids) {
      BatchLive* event = find_live(id);
      if (event == nullptr) continue;
      EdgeRecord edge;
      edge.frame_id = frame_id;
      edge.phase = frame.phase;
      edge.from = frame.sender;
      edge.to = receiver;
      edge.sent = frame.sent ? frame.start : at;
      edge.at = at;
      edge.outcome = outcome;
      event->record.edges.push_back(edge);
      event->nodes[receiver].offered = true;
    }
  };

  for (const RawEntry& entry : log) {
    switch (entry.kind) {
      case RawKind::kAnnotate: {
        BatchFrame frame;
        frame.sender = entry.node;
        frame.phase = entry.phase;
        frame.ids = entry.ids;
        frames.try_emplace(entry.frame_id, std::move(frame));
        break;
      }
      case RawKind::kSent: {
        advance(entry.t0);
        auto it = frames.find(entry.frame_id);
        if (it == frames.end()) break;
        BatchFrame& frame = it->second;
        frame.sent = true;
        frame.start = entry.t0;
        frame.end = entry.t1;
        if (frame.phase == core::DisseminationPhase::kAdvert ||
            frame.phase == core::DisseminationPhase::kRetrieveRequest) {
          for (const core::EventId& id : order) {
            BatchLive* event = find_live(id);
            if (event == nullptr) continue;
            auto node_it = event->nodes.find(frame.sender);
            if (node_it == event->nodes.end()) continue;
            BatchNodeState& state = node_it->second;
            if (!state.advert_heard || state.requested || state.delivered) {
              continue;
            }
            if (entry.t0 < state.advert_at) continue;
            state.requested = true;
            state.request_at = entry.t0;
          }
        }
        break;
      }
      case RawKind::kDropped: {
        advance(entry.t0);
        frames.erase(entry.frame_id);
        break;
      }
      case RawKind::kDelivered: {
        advance(entry.t0);
        auto it = frames.find(entry.frame_id);
        if (it == frames.end()) break;
        const BatchFrame& frame = it->second;
        record_edge(frame, entry.frame_id, entry.node, EdgeOutcome::kDelivered,
                    entry.t0);
        if (batch_carries_events(frame.phase)) {
          for (const core::EventId& id : frame.ids) {
            BatchLive* event = find_live(id);
            if (event == nullptr) continue;
            event->record.receptions += 1;
            if (!event->record.has_first_carry) {
              event->record.has_first_carry = true;
              event->record.first_carry = entry.t0;
            }
            BatchNodeState& state = event->nodes[entry.node];
            if (state.depth == kUnsetDepth) {
              auto carrier_it = event->nodes.find(frame.sender);
              const std::uint32_t carrier_depth =
                  carrier_it != event->nodes.end() &&
                          carrier_it->second.depth != kUnsetDepth
                      ? carrier_it->second.depth
                      : 0;
              state.depth = carrier_depth + 1;
              state.acq = entry.t0;
            }
          }
          if (entry.node < slots.size()) {
            BatchSlot& slot = slots[entry.node];
            slot.end = entry.t0;
            slot.sender = frame.sender;
            slot.ids = frame.ids;
          }
        } else {
          for (const core::EventId& id : frame.ids) {
            BatchLive* event = find_live(id);
            if (event == nullptr) continue;
            BatchNodeState& state = event->nodes[entry.node];
            if (!state.advert_heard) {
              state.advert_heard = true;
              state.advert_at = entry.t0;
            }
          }
        }
        break;
      }
      case RawKind::kCollided: {
        advance(entry.t0);
        auto it = frames.find(entry.frame_id);
        if (it == frames.end()) break;
        record_edge(it->second, entry.frame_id, entry.node,
                    EdgeOutcome::kCollided, entry.t0);
        break;
      }
      case RawKind::kMissed: {
        advance(entry.t0);
        auto it = frames.find(entry.frame_id);
        if (it == frames.end()) break;
        EdgeOutcome outcome = EdgeOutcome::kMissedDown;
        if (entry.reason == net::FrameLossReason::kBusy) {
          outcome = EdgeOutcome::kMissedBusy;
        } else if (entry.reason == net::FrameLossReason::kAsleep) {
          outcome = EdgeOutcome::kMissedAsleep;
        }
        record_edge(it->second, entry.frame_id, entry.node, outcome, entry.t0);
        break;
      }
      case RawKind::kUpChanged: {
        advance(entry.t0);
        if (entry.node < node_up.size()) node_up[entry.node] = entry.up;
        break;
      }
      case RawKind::kPublish: {
        advance(entry.t0);
        BatchLive event;
        event.record.id = entry.event.id;
        event.record.published_at = entry.t0;
        event.record.validity = entry.event.validity;
        event.eligible = eligible_from_result(result, entry.event);
        BatchNodeState& publisher = event.nodes[entry.event.id.publisher];
        publisher.depth = 0;
        publisher.acq = entry.t0;
        publisher.offered = true;
        const core::EventId id = entry.event.id;
        if (live.try_emplace(id, std::move(event)).second) {
          order.push_back(id);
        }
        break;
      }
      case RawKind::kDelivery: {
        advance(entry.t0);
        BatchLive* event = find_live(entry.event.id);
        if (event == nullptr) {
          out.late_deliveries += 1;
          break;
        }
        BatchNodeState& state = event->nodes[entry.node];
        if (state.delivered) break;
        state.delivered = true;
        state.delivered_at = entry.t0;
        state.hops = state.depth != kUnsetDepth ? state.depth : 0;
        event->record.deliveries += 1;
        const SimTime m0 = event->record.published_at;
        SimTime m1 = m0;
        const BatchSlot& slot =
            entry.node < slots.size() ? slots[entry.node] : BatchSlot{};
        if (slot.end == entry.t0 &&
            std::find(slot.ids.begin(), slot.ids.end(), entry.event.id) !=
                slot.ids.end()) {
          auto carrier_it = event->nodes.find(slot.sender);
          if (carrier_it != event->nodes.end() &&
              carrier_it->second.depth != kUnsetDepth) {
            m1 = std::clamp(carrier_it->second.acq, m0, entry.t0);
          }
        }
        SimTime m2 = m1;
        if (state.advert_heard && state.advert_at <= entry.t0) {
          m2 = std::max(m1, state.advert_at);
        }
        SimTime m3 = m2;
        if (state.requested && state.request_at <= entry.t0) {
          m3 = std::max(m2, state.request_at);
        }
        event->record.segment_us[kSegPublishToCarry] += (m1 - m0).us();
        event->record.segment_us[kSegCarryToAdvert] += (m2 - m1).us();
        event->record.segment_us[kSegAdvertToRequest] += (m3 - m2).us();
        event->record.segment_us[kSegRequestToDeliver] += (entry.t0 - m3).us();
        break;
      }
      case RawKind::kGc: {
        advance(entry.t0);
        BatchLive* event = find_live(entry.ids.front());
        if (event != nullptr) event->gc_evicted = true;
        break;
      }
      case RawKind::kEndRun: {
        advance(entry.t0);
        while (!order.empty()) {
          BatchLive* event = find_live(order.front());
          if (event == nullptr) {
            order.pop_front();
            continue;
          }
          const SimTime expiry =
              event->record.published_at + event->record.validity;
          retire(std::max(entry.t0, expiry));
        }
        return out;  // the streaming tracer ignores post-end callbacks
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Comparison helpers.

void expect_records_equal(const std::vector<EventRecord>& streamed,
                          const std::vector<EventRecord>& batch) {
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t r = 0; r < streamed.size(); ++r) {
    SCOPED_TRACE("record " + std::to_string(r));
    const EventRecord& a = streamed[r];
    const EventRecord& b = batch[r];
    EXPECT_EQ(a.id.publisher, b.id.publisher);
    EXPECT_EQ(a.id.seq, b.id.seq);
    EXPECT_EQ(a.published_at.us(), b.published_at.us());
    EXPECT_EQ(a.validity.us(), b.validity.us());
    EXPECT_EQ(a.receptions, b.receptions);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.has_first_carry, b.has_first_carry);
    if (a.has_first_carry && b.has_first_carry) {
      EXPECT_EQ(a.first_carry.us(), b.first_carry.us());
    }
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      EXPECT_EQ(a.segment_us[s], b.segment_us[s]) << "segment " << s;
    }
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
      SCOPED_TRACE("edge " + std::to_string(e));
      EXPECT_EQ(a.edges[e].frame_id, b.edges[e].frame_id);
      EXPECT_STREQ(to_string(a.edges[e].phase), to_string(b.edges[e].phase));
      EXPECT_EQ(a.edges[e].from, b.edges[e].from);
      EXPECT_EQ(a.edges[e].to, b.edges[e].to);
      EXPECT_EQ(a.edges[e].sent.us(), b.edges[e].sent.us());
      EXPECT_EQ(a.edges[e].at.us(), b.edges[e].at.us());
      EXPECT_STREQ(to_string(a.edges[e].outcome),
                   to_string(b.edges[e].outcome));
    }
    ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
    for (std::size_t n = 0; n < a.subscribers.size(); ++n) {
      SCOPED_TRACE("subscriber " + std::to_string(n));
      EXPECT_EQ(a.subscribers[n].node, b.subscribers[n].node);
      EXPECT_STREQ(to_string(a.subscribers[n].outcome),
                   to_string(b.subscribers[n].outcome));
      EXPECT_EQ(a.subscribers[n].at.us(), b.subscribers[n].at.us());
      EXPECT_EQ(a.subscribers[n].hops, b.subscribers[n].hops);
    }
  }
}

DisseminationStats derive_stats(const BatchOutput& batch) {
  DisseminationStats stats;
  for (const EventRecord& record : batch.retired) {
    stats.events += 1;
    stats.receptions += record.receptions;
    stats.delivered += record.deliveries;
    stats.eligible += record.subscribers.size();
    for (const SubscriberRecord& row : record.subscribers) {
      stats.outcomes[static_cast<std::size_t>(row.outcome)] += 1;
      if (row.outcome == SubscriberOutcome::kDelivered) {
        stats.hops_count += 1;
        stats.hops_total += row.hops;
      }
    }
    if (record.deliveries > 0) {
      stats.segment_count += record.deliveries;
      for (std::size_t s = 0; s < kSegmentCount; ++s) {
        stats.segment_us[s] += record.segment_us[s];
      }
    }
  }
  stats.late_deliveries = batch.late_deliveries;
  return stats;
}

void expect_core_stats_equal(const DisseminationStats& a,
                             const DisseminationStats& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.eligible, b.eligible);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.receptions, b.receptions);
  EXPECT_EQ(a.late_deliveries, b.late_deliveries);
  for (std::size_t o = 0; o < kSubscriberOutcomeCount; ++o) {
    EXPECT_EQ(a.outcomes[o], b.outcomes[o]) << "outcome " << o;
  }
  EXPECT_EQ(a.hops_count, b.hops_count);
  EXPECT_EQ(a.hops_total, b.hops_total);
  EXPECT_EQ(a.segment_count, b.segment_count);
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    EXPECT_EQ(a.segment_us[s], b.segment_us[s]) << "segment " << s;
  }
}

struct ScenarioOutcome {
  core::RunResult result;
  std::vector<EventRecord> streamed;
  DisseminationStats stats;
  std::size_t high_water = 0;
  BatchOutput batch;
};

/// Runs the scenario once with the capturing shim attached, reconstructs the
/// DAGs from the captured raw stream, and asserts streaming == batch plus
/// the structural properties. Out-parameter because ASSERT_* needs a void
/// function.
void verify_scenario(const std::string& name, core::ExperimentConfig config,
                     ScenarioOutcome& out) {
  SCOPED_TRACE(name);
  CapturingTracer tracer;
  config.dissem_tracer = &tracer;
  out.result = core::run_experiment(config);
  out.streamed = tracer.records();
  out.stats = tracer.stats();
  out.high_water = tracer.live_event_high_water();

  // The dissem aggregates travel into RunResult.
  ASSERT_TRUE(out.result.dissem.has_value());
  expect_core_stats_equal(*out.result.dissem, out.stats);

  // Streaming == batch, record for record.
  out.batch = reconstruct(tracer.log, out.result, config.node_count);
  expect_records_equal(out.streamed, out.batch.retired);

  // The folded run stats match a from-scratch fold over the batch records.
  const DisseminationStats derived = derive_stats(out.batch);
  expect_core_stats_equal(out.stats, derived);

  // KLL hop quantiles: monotone and inside the exact hop range.
  std::vector<std::uint32_t> hop_samples;
  for (const EventRecord& record : out.streamed) {
    for (const SubscriberRecord& row : record.subscribers) {
      if (row.outcome == SubscriberOutcome::kDelivered) {
        hop_samples.push_back(row.hops);
      }
    }
  }
  if (hop_samples.empty()) {
    EXPECT_EQ(out.stats.hops_count, 0u);
  } else {
    const auto [min_it, max_it] =
        std::minmax_element(hop_samples.begin(), hop_samples.end());
    EXPECT_LE(out.stats.hops_p50, out.stats.hops_p95);
    EXPECT_LE(out.stats.hops_p95, out.stats.hops_max);
    EXPECT_GE(out.stats.hops_p50, static_cast<double>(*min_it));
    EXPECT_LE(out.stats.hops_max, static_cast<double>(*max_it));
  }

  // Property: the terminal outcomes are a total partition — every eligible
  // subscriber appears exactly once, and the outcome histogram exhausts the
  // eligible count (per event and in the run stats).
  std::uint64_t eligible_total = 0;
  for (std::size_t r = 0; r < out.streamed.size(); ++r) {
    SCOPED_TRACE("partition of record " + std::to_string(r));
    const EventRecord& record = out.streamed[r];
    ASSERT_LT(r, out.result.events.size());
    EXPECT_EQ(record.id.publisher, out.result.events[r].id.publisher);
    EXPECT_EQ(record.id.seq, out.result.events[r].id.seq);

    core::Event event;
    event.topic = out.result.events[r].topic;
    const std::vector<NodeId> eligible =
        eligible_from_result(out.result, event);
    ASSERT_EQ(record.subscribers.size(), eligible.size());
    std::uint64_t histogram[kSubscriberOutcomeCount] = {0, 0, 0, 0, 0};
    for (std::size_t n = 0; n < eligible.size(); ++n) {
      EXPECT_EQ(record.subscribers[n].node, eligible[n]);
      histogram[static_cast<std::size_t>(record.subscribers[n].outcome)] += 1;
    }
    std::uint64_t sum = 0;
    for (const std::uint64_t count : histogram) sum += count;
    EXPECT_EQ(sum, record.subscribers.size());
    eligible_total += record.subscribers.size();
  }
  std::uint64_t outcome_sum = 0;
  for (const std::uint64_t count : out.stats.outcomes) outcome_sum += count;
  EXPECT_EQ(outcome_sum, out.stats.eligible);
  EXPECT_EQ(eligible_total, out.stats.eligible);

  // Property: the four latency segments of an event sum exactly to the sum
  // of its deliveries' latencies (integer microseconds, no rounding slack).
  // deliveries counts every fresh delivery; delivered subscriber rows cover
  // the eligible ones — equal on these flat-workload corpora, so the sums
  // must match exactly whenever they agree.
  for (const EventRecord& record : out.streamed) {
    std::int64_t segment_sum = 0;
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      segment_sum += record.segment_us[s];
    }
    std::int64_t latency_sum = 0;
    std::uint64_t delivered_rows = 0;
    for (const SubscriberRecord& row : record.subscribers) {
      if (row.outcome == SubscriberOutcome::kDelivered) {
        latency_sum += (row.at - record.published_at).us();
        delivered_rows += 1;
      }
    }
    if (record.deliveries == delivered_rows) {
      EXPECT_EQ(segment_sum, latency_sum);
    }
  }

  // Property: every delivery has a DAG path — a delivered subscriber other
  // than the publisher shows at least one intact event-carrying edge into it
  // no later than the delivery instant, and its hop depth is >= 1.
  for (const EventRecord& record : out.streamed) {
    for (const SubscriberRecord& row : record.subscribers) {
      if (row.outcome != SubscriberOutcome::kDelivered) continue;
      if (row.node == record.id.publisher) {
        EXPECT_EQ(row.hops, 0u);
        continue;
      }
      EXPECT_GE(row.hops, 1u);
      const bool has_carry_edge = std::any_of(
          record.edges.begin(), record.edges.end(),
          [&row](const EdgeRecord& edge) {
            return edge.to == row.node &&
                   edge.outcome == EdgeOutcome::kDelivered &&
                   batch_carries_events(edge.phase) && edge.at <= row.at;
          });
      EXPECT_TRUE(has_carry_edge)
          << "delivered subscriber " << row.node << " has no intact "
          << "event-carrying edge at or before its delivery";
    }
  }

  // Cross-check against the materialized delivery times the experiment
  // collected independently of the tracer.
  if (out.stats.late_deliveries == 0) {
    for (std::size_t r = 0; r < out.streamed.size(); ++r) {
      const EventRecord& record = out.streamed[r];
      for (const SubscriberRecord& row : record.subscribers) {
        ASSERT_LT(row.node, out.result.nodes.size());
        const auto& delivered_at = out.result.nodes[row.node].delivered_at;
        ASSERT_LT(r, delivered_at.size());
        if (row.outcome == SubscriberOutcome::kDelivered) {
          ASSERT_TRUE(delivered_at[r].has_value())
              << "tracer says delivered, run result disagrees (event " << r
              << ", node " << row.node << ")";
          EXPECT_EQ(row.at.us(), delivered_at[r]->us());
        } else {
          EXPECT_FALSE(delivered_at[r].has_value())
              << "run result says delivered, tracer disagrees (event " << r
              << ", node " << row.node << ")";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The tests.

TEST(CausalTraceTest, StreamingMatchesBatchOnGoldenCorpus) {
  std::uint64_t delivered_total = 0;
  std::uint64_t receptions_total = 0;
  for (const frugal::testing::GoldenScenario& scenario :
       frugal::testing::golden_scenarios()) {
    ScenarioOutcome outcome;
    verify_scenario(scenario.name, scenario.config, outcome);
    delivered_total += outcome.stats.delivered;
    receptions_total += outcome.stats.receptions;
    EXPECT_LE(outcome.high_water, scenario.config.event_count);
  }
  // The corpus as a whole disseminates: deliveries happen, and broadcast
  // redundancy means strictly more intact receptions than unique deliveries.
  EXPECT_GT(delivered_total, 0u);
  EXPECT_GT(receptions_total, delivered_total);
}

TEST(CausalTraceTest, BoundedModeFoldsIdenticalStatsWithoutRecords) {
  for (const frugal::testing::GoldenScenario& scenario :
       frugal::testing::golden_scenarios()) {
    SCOPED_TRACE(scenario.name);
    DisseminationTracer unbounded;
    core::ExperimentConfig config = scenario.config;
    config.dissem_tracer = &unbounded;
    (void)core::run_experiment(config);

    TracerConfig bounded_config;
    bounded_config.bounded = true;
    DisseminationTracer bounded(bounded_config);
    config.dissem_tracer = &bounded;
    (void)core::run_experiment(config);

    EXPECT_FALSE(unbounded.records().empty());
    EXPECT_TRUE(bounded.records().empty());
    expect_core_stats_equal(unbounded.stats(), bounded.stats());
    EXPECT_EQ(unbounded.stats().hops_p50, bounded.stats().hops_p50);
    EXPECT_EQ(unbounded.stats().hops_p95, bounded.stats().hops_p95);
    EXPECT_EQ(unbounded.stats().hops_max, bounded.stats().hops_max);
    EXPECT_EQ(unbounded.live_event_high_water(),
              bounded.live_event_high_water());
  }
}

// Energy deaths: half the fleet runs on batteries that empty before the
// first publication, so their radios are down for the whole dissemination —
// the died-with-node outcome must show up and the equality must hold through
// the radio-down edges.
TEST(CausalTraceTest, EnergyDepletionYieldsDiedWithNodeOutcomes) {
  core::ExperimentConfig config;
  config.node_count = 16;
  config.interest_fraction = 0.75;
  config.warmup = SimDuration::from_seconds(20);
  config.event_validity = SimDuration::from_seconds(40);
  config.event_count = 2;
  config.seed = 23;
  core::RandomWaypointSetup rwp;
  rwp.config.width_m = 1200.0;
  rwp.config.height_m = 1200.0;
  rwp.config.speed_min_mps = 5.0;
  rwp.config.speed_max_mps = 15.0;
  config.mobility = rwp;
  energy::EnergyConfig energy;
  // Odd nodes get ~12 J — idle draw alone empties that in ~14 s, before the
  // 20 s warm-up ends. Even nodes are unlimited so dissemination continues.
  energy.battery_capacity_per_node_j.assign(config.node_count, 0.0);
  for (std::size_t n = 1; n < config.node_count; n += 2) {
    energy.battery_capacity_per_node_j[n] = 12.0;
  }
  config.energy = energy;

  ScenarioOutcome outcome;
  verify_scenario("energy_depletion", config, outcome);
  const std::uint64_t died = outcome.stats.outcomes[static_cast<std::size_t>(
      SubscriberOutcome::kDiedWithNode)];
  EXPECT_GT(died, 0u);
}

// Duty cycling: power-save sleep makes receivers miss annotated frames, so
// missed-asleep edges appear in the DAGs and the equality must hold through
// the sleep schedule's loss pattern.
TEST(CausalTraceTest, DutyCycleYieldsMissedAsleepEdges) {
  core::ExperimentConfig config;
  config.node_count = 16;
  config.interest_fraction = 0.75;
  config.warmup = SimDuration::from_seconds(20);
  config.event_validity = SimDuration::from_seconds(40);
  config.event_count = 2;
  config.seed = 37;
  config.mobility = core::StaticSetup{1200.0, 1200.0};
  energy::EnergyConfig energy;
  energy.sleep_fraction = 0.4;
  energy.duty_period = SimDuration::from_seconds(1.0);
  config.energy = energy;

  ScenarioOutcome outcome;
  verify_scenario("duty_cycle", config, outcome);
  std::uint64_t missed_asleep = 0;
  for (const EventRecord& record : outcome.streamed) {
    for (const EdgeRecord& edge : record.edges) {
      if (edge.outcome == EdgeOutcome::kMissedAsleep) missed_asleep += 1;
    }
  }
  EXPECT_GT(missed_asleep, 0u);
}

}  // namespace
}  // namespace frugal::telemetry
