// The energy subsystem (src/energy): power-state integration math, battery
// depletion with exact crossings, the medium's radio-activity reports, and
// the run_experiment wiring — including the load-bearing guarantee that
// metering alone never perturbs protocol behaviour (the golden traces stay
// byte-identical with the model disabled, and delivery outcomes are
// unchanged with it enabled but unlimited).

#include "energy/energy.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "runner/worlds.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace frugal::energy {
namespace {

using namespace frugal::time_literals;

SimTime at_s(double s) { return SimTime::from_seconds(s); }

EnergyConfig metering_only() { return EnergyConfig{}; }

// ---------------------------------------------------------------------------
// EnergyModel integration math.

TEST(EnergyModelTest, IdleIntegrationIsExact) {
  EnergyModel model{1, metering_only()};
  model.advance(0, at_s(10.0));
  EXPECT_DOUBLE_EQ(model.spent_j(0),
                   model.draw_mw(RadioState::kIdle) / 1000.0 * 10.0);
  EXPECT_EQ(model.time_asleep(0), SimDuration::zero());
  EXPECT_FALSE(model.depleted(0));
}

TEST(EnergyModelTest, TxAndRxSegmentsChargedAtTheirDraws) {
  EnergyModel model{1, metering_only()};
  model.on_tx(0, at_s(1.0), at_s(3.0));   // 2 s TX
  model.on_rx(0, at_s(5.0), at_s(6.0));   // 1 s RX
  model.advance(0, at_s(10.0));
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kTx),
                   model.draw_mw(RadioState::kTx) / 1000.0 * 2.0);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kRx),
                   model.draw_mw(RadioState::kRx) / 1000.0 * 1.0);
  // The rest of the 10 s is idle: 10 - 2 - 1 = 7 s.
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kIdle),
                   model.draw_mw(RadioState::kIdle) / 1000.0 * 7.0);
}

TEST(EnergyModelTest, OverlappingReceptionsChargeTheUnionOnce) {
  // Two frames locking the radio over [1,3) and [2,4): the radio is in RX
  // for 3 s total, not 4.
  EnergyModel model{1, metering_only()};
  model.on_rx(0, at_s(1.0), at_s(3.0));
  model.on_rx(0, at_s(2.0), at_s(4.0));
  model.advance(0, at_s(4.0));
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kRx),
                   model.draw_mw(RadioState::kRx) / 1000.0 * 3.0);
}

TEST(EnergyModelTest, HalfDuplexTxBeatsRx) {
  // A transmitting radio cannot simultaneously pay RX: TX spans win.
  EnergyModel model{1, metering_only()};
  model.on_tx(0, at_s(1.0), at_s(3.0));
  model.on_rx(0, at_s(2.0), at_s(4.0));
  model.advance(0, at_s(4.0));
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kTx),
                   model.draw_mw(RadioState::kTx) / 1000.0 * 2.0);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kRx),
                   model.draw_mw(RadioState::kRx) / 1000.0 * 1.0);
}

TEST(EnergyModelTest, SleepAndOffDraws) {
  EnergyModel model{1, metering_only()};
  model.on_sleep_changed(0, true, at_s(2.0));   // idle [0,2), sleep [2,5)
  model.on_sleep_changed(0, false, at_s(5.0));
  model.on_up_changed(0, false, at_s(6.0));     // idle [5,6), off [6,10)
  model.advance(0, at_s(10.0));
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kSleep),
                   model.draw_mw(RadioState::kSleep) / 1000.0 * 3.0);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kIdle),
                   model.draw_mw(RadioState::kIdle) / 1000.0 * 3.0);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kOff), 0.0);
  EXPECT_EQ(model.time_asleep(0), 3_sec);
}

TEST(EnergyModelTest, DepletionCrossingIsExactAndCallbackFiresOnce) {
  EnergyConfig config;
  // Exactly 5 idle seconds of battery.
  config.battery_capacity_j = config.radio.idle_mw / 1000.0 * 5.0;
  EnergyModel model{1, config};
  std::vector<std::pair<NodeId, SimTime>> deaths;
  model.set_depletion_callback(
      [&](NodeId node, SimTime at) { deaths.emplace_back(node, at); });
  model.advance(0, at_s(20.0));
  ASSERT_TRUE(model.depleted(0));
  EXPECT_EQ(*model.depleted_at(0), at_s(5.0));
  // The empty battery draws nothing further and never re-fires.
  EXPECT_DOUBLE_EQ(model.spent_j(0), config.battery_capacity_j);
  model.advance(0, at_s(30.0));
  EXPECT_DOUBLE_EQ(model.spent_j(0), config.battery_capacity_j);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].first, 0u);
  EXPECT_EQ(deaths[0].second, at_s(5.0));
}

TEST(EnergyModelTest, SmallerBatteriesCrossStrictlyEarlier) {
  const double idle_w = RadioPowerProfile{}.idle_mw / 1000.0;
  std::optional<SimTime> previous;
  for (const double capacity : {idle_w * 2.0, idle_w * 4.0, idle_w * 8.0}) {
    EnergyConfig config;
    config.battery_capacity_j = capacity;
    EnergyModel model{1, config};
    model.advance(0, at_s(100.0));
    ASSERT_TRUE(model.depleted(0));
    if (previous.has_value()) {
      EXPECT_LT(*previous, *model.depleted_at(0));
    }
    previous = model.depleted_at(0);
  }
}

TEST(EnergyModelTest, PerNodeCapacitiesOverrideTheScalar) {
  const double idle_w = RadioPowerProfile{}.idle_mw / 1000.0;
  EnergyConfig config;
  config.battery_capacity_j = idle_w * 100.0;  // scalar is ignored when...
  config.battery_capacity_per_node_j = {idle_w * 2.0, idle_w * 8.0,
                                        0.0};  // ...the vector is set
  EnergyModel model{3, config};
  EXPECT_DOUBLE_EQ(model.capacity_j(0), idle_w * 2.0);
  EXPECT_DOUBLE_EQ(model.capacity_j(1), idle_w * 8.0);
  EXPECT_DOUBLE_EQ(model.capacity_j(2), 0.0);  // unlimited
  for (NodeId id = 0; id < 3; ++id) model.advance(id, at_s(100.0));
  // The smaller battery crosses strictly earlier; the unlimited node never.
  ASSERT_TRUE(model.depleted(0));
  ASSERT_TRUE(model.depleted(1));
  EXPECT_EQ(*model.depleted_at(0), at_s(2.0));
  EXPECT_EQ(*model.depleted_at(1), at_s(8.0));
  EXPECT_FALSE(model.depleted(2));
}

TEST(EnergyModelTest, ChargeFractionProjectsWithoutMutating) {
  const double idle_w = RadioPowerProfile{}.idle_mw / 1000.0;
  EnergyConfig config;
  config.battery_capacity_j = idle_w * 10.0;  // 10 idle seconds
  EnergyModel model{2, config};
  // Projection at a future time must not advance the ledger: the same
  // queries again — and the depletion schedule — are unchanged.
  EXPECT_DOUBLE_EQ(model.charge_fraction_at(0, at_s(5.0)), 0.5);
  EXPECT_DOUBLE_EQ(model.charge_fraction_at(0, at_s(5.0)), 0.5);
  EXPECT_DOUBLE_EQ(model.charge_fraction_at(0, at_s(20.0)), 0.0);  // clamped
  EXPECT_FALSE(model.depleted(0));
  model.advance(0, at_s(2.5));
  EXPECT_DOUBLE_EQ(model.charge_fraction_at(0, at_s(2.5)), 0.75);

  // Unlimited batteries always read full.
  EnergyModel unlimited{1, metering_only()};
  EXPECT_DOUBLE_EQ(unlimited.charge_fraction_at(0, at_s(1000.0)), 1.0);
}

TEST(EnergyModelTest, AnyFiniteBatteryReadsScalarAndVector) {
  EnergyConfig config;
  EXPECT_FALSE(any_finite_battery(config));
  config.battery_capacity_j = 5.0;
  EXPECT_TRUE(any_finite_battery(config));
  config.battery_capacity_per_node_j = {0.0, 0.0};  // vector wins: unlimited
  EXPECT_FALSE(any_finite_battery(config));
  config.battery_capacity_per_node_j = {0.0, 3.0};
  EXPECT_TRUE(any_finite_battery(config));
}

TEST(EnergyModelDeathTest, PerNodeCapacityVectorMustMatchNodeCount) {
  EnergyConfig config;
  config.battery_capacity_per_node_j = {1.0, 2.0};
  EXPECT_DEATH(static_cast<void>(EnergyModel(3, config)),
               "battery_capacity_per_node_j");
}

TEST(EnergyModelTest, DownRadioDrawsNothingAcrossChurn) {
  EnergyModel model{2, metering_only()};
  model.on_up_changed(0, false, at_s(0.0));
  model.advance_all(at_s(10.0));
  EXPECT_DOUBLE_EQ(model.spent_j(0), 0.0);
  EXPECT_GT(model.spent_j(1), 0.0);
}

// ---------------------------------------------------------------------------
// Medium integration: airtime reports and sleep semantics.

class CountingSink final : public net::MediumClient {
 public:
  void on_frame(const net::Frame&) override { ++frames; }
  std::uint64_t frames = 0;
};

struct Fixture {
  explicit Fixture(std::vector<Vec2> positions, net::MediumConfig config)
      : mobility{std::move(positions)},
        medium{scheduler, mobility, config, Rng{99}} {
    sinks.resize(mobility.node_count());
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      medium.attach(id, &sinks[id]);
    }
  }

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  net::Medium medium;
  std::vector<CountingSink> sinks;
};

net::MediumConfig fast_config() {
  net::MediumConfig config;
  config.range_m = 100.0;
  config.rate_bps = 1e6;  // 125 B <=> 1 ms on air
  config.max_jitter = SimDuration::from_us(100);
  return config;
}

TEST(EnergyMediumTest, BroadcastChargesTxAtSenderAndRxAtReceiver) {
  Fixture f{{{0, 0}, {50, 0}, {500, 0}}, fast_config()};
  EnergyModel model{3, metering_only()};
  f.medium.set_listener(&model);
  f.medium.broadcast(0, 125, 0);
  f.scheduler.run_until(at_s(1.0));
  model.advance_all(at_s(1.0));
  const double ms = 1e-3;
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(0, RadioState::kTx),
                   model.draw_mw(RadioState::kTx) / 1000.0 * ms);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(1, RadioState::kRx),
                   model.draw_mw(RadioState::kRx) / 1000.0 * ms);
  // Out of range: never locked on, no RX energy.
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(2, RadioState::kRx), 0.0);
}

TEST(EnergyMediumTest, SleepingRadioMissesFramesButStillTransmits) {
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  EnergyModel model{2, metering_only()};
  f.medium.set_listener(&model);
  f.medium.set_sleeping(1, true);
  f.medium.broadcast(0, 125, 0);   // lost on node 1's dozing radio
  f.medium.broadcast(1, 125, 0);   // PSM wake-to-send still goes out
  f.scheduler.run_until(at_s(1.0));
  EXPECT_EQ(f.sinks[1].frames, 0u);
  EXPECT_EQ(f.medium.counters(1).frames_missed_asleep, 1u);
  EXPECT_EQ(f.medium.counters(1).frames_sent, 1u);
  EXPECT_EQ(f.sinks[0].frames, 1u);
  model.advance_all(at_s(1.0));
  EXPECT_GT(model.spent_in_state_j(1, RadioState::kSleep), 0.0);
  EXPECT_GT(model.spent_in_state_j(1, RadioState::kTx), 0.0);
  EXPECT_DOUBLE_EQ(model.spent_in_state_j(1, RadioState::kRx), 0.0);
}

TEST(EnergyMediumTest, UndiscoveredDepletionIsSettledBeforeTransmitting) {
  // A battery that crossed its capacity while the node sat silent must be
  // discovered by before_tx: the very broadcast that would have been the
  // dead radio's next frame powers it down instead of going on air.
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  EnergyConfig config;
  config.battery_capacity_j =
      RadioPowerProfile{}.idle_mw / 1000.0;  // one idle second
  EnergyModel model{2, config};
  model.set_depletion_callback(
      [&f](NodeId id, SimTime) { f.medium.set_up(id, false); });
  f.medium.set_listener(&model);
  // No sampler runs here: only the medium's hooks can notice the crossing.
  f.scheduler.schedule_at(SimTime::from_seconds(5.0),
                          [&f] { f.medium.broadcast(0, 125, 0); });
  f.scheduler.run_until(SimTime::from_seconds(6.0));
  EXPECT_TRUE(model.depleted(0));
  EXPECT_EQ(*model.depleted_at(0), SimTime::from_seconds(1.0));
  EXPECT_FALSE(f.medium.is_up(0));
  EXPECT_EQ(f.medium.counters(0).frames_sent, 0u);
  EXPECT_EQ(f.medium.counters(0).frames_dropped, 1u);  // accounted, once
  EXPECT_EQ(f.sinks[1].frames, 0u);
}

TEST(EnergyMediumTest, RedundantSetSleepingAndSetUpDoNotNotify) {
  struct FlipCounter final : net::RadioActivityListener {
    void on_tx(NodeId, SimTime, SimTime) override {}
    void on_rx(NodeId, SimTime, SimTime) override {}
    void on_up_changed(NodeId, bool, SimTime) override { ++ups; }
    void on_sleep_changed(NodeId, bool, SimTime) override { ++sleeps; }
    int ups = 0;
    int sleeps = 0;
  } counter;
  Fixture f{{{0, 0}, {50, 0}}, fast_config()};
  f.medium.set_listener(&counter);
  f.medium.set_up(0, true);        // already up: no flip
  f.medium.set_sleeping(0, false); // already awake: no flip
  EXPECT_EQ(counter.ups, 0);
  EXPECT_EQ(counter.sleeps, 0);
  f.medium.set_up(0, false);
  f.medium.set_sleeping(1, true);
  EXPECT_EQ(counter.ups, 1);
  EXPECT_EQ(counter.sleeps, 1);
}

// ---------------------------------------------------------------------------
// run_experiment wiring.

core::ExperimentConfig small_world(std::uint64_t seed) {
  core::ExperimentConfig config =
      runner::rwp_world_scaled(10.0, 0.8, 16, 1000.0, seed);
  config.warmup = SimDuration::from_seconds(30.0);
  config.event_count = 2;
  config.event_validity = SimDuration::from_seconds(60.0);
  config.publish_spacing = SimDuration::from_seconds(1.0);
  return config;
}

TEST(EnergyExperimentTest, MeteringAloneDoesNotPerturbTheRun) {
  const core::ExperimentConfig plain = small_world(7);
  core::ExperimentConfig metered = plain;
  metered.energy = EnergyConfig{};  // unlimited battery, no duty cycle

  const core::RunResult a = core::run_experiment(plain);
  const core::RunResult b = core::run_experiment(metered);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
  for (std::size_t id = 0; id < a.nodes.size(); ++id) {
    EXPECT_EQ(a.nodes[id].delivered_at, b.nodes[id].delivered_at) << id;
    EXPECT_EQ(a.nodes[id].traffic.bytes_sent, b.nodes[id].traffic.bytes_sent)
        << id;
    // ...while the metered run actually accounted energy.
    EXPECT_EQ(a.nodes[id].energy_spent_j, 0.0);
    EXPECT_GT(b.nodes[id].energy_spent_j, 0.0);
    EXPECT_FALSE(b.nodes[id].died_of_depletion);
  }
  EXPECT_EQ(b.survivor_fraction(), 1.0);
  // Nobody died: the lifetime metric caps at the run horizon.
  EXPECT_DOUBLE_EQ(b.first_depletion_s(), b.run_end.seconds());
}

TEST(EnergyExperimentTest, TinyBatteryKillsEveryNodeDuringWarmup) {
  core::ExperimentConfig config = small_world(7);
  EnergyConfig energy;
  energy.battery_capacity_j = 10.0;  // ~12 idle seconds
  config.energy = energy;
  const core::RunResult result = core::run_experiment(config);
  EXPECT_EQ(result.depleted_fraction(), 1.0);
  // Only the publisher's local delivery (if it subscribes) can survive a
  // network that died before the first publication.
  EXPECT_LT(result.reliability(), 0.2);
  EXPECT_LT(result.first_depletion_s(), config.warmup.seconds());
  // The measurement window saw no spend (everyone was dead by then) but
  // the headline metric must charge the warm-up burn: a dead network is
  // expensive per delivery, never free.
  EXPECT_EQ(result.mean_joules_per_node(), 0.0);
  EXPECT_GT(result.joules_per_delivered_event(),
            energy.battery_capacity_j * 0.9);
  for (const core::NodeOutcome& node : result.nodes) {
    ASSERT_TRUE(node.depleted_at.has_value());
    // Exact crossing: at most capacity / idle-draw seconds (TX/RX only
    // shorten it), and radios cannot die before they have spent anything.
    EXPECT_GT(node.depleted_at->seconds(), 0.0);
    EXPECT_LE(node.depleted_at->seconds(),
              10.0 / (RadioPowerProfile{}.idle_mw / 1000.0) + 1e-9);
  }
}

TEST(EnergyExperimentTest, DutyCyclingAccruesSleepAndSavesEnergy) {
  core::ExperimentConfig awake_config = small_world(11);
  awake_config.energy = EnergyConfig{};
  core::ExperimentConfig duty_config = awake_config;
  EnergyConfig duty;
  duty.sleep_fraction = 0.5;
  duty_config.energy = duty;

  const core::RunResult awake = core::run_experiment(awake_config);
  const core::RunResult dozing = core::run_experiment(duty_config);
  EXPECT_EQ(awake.nodes[0].time_asleep_s, 0.0);
  double asleep_total = 0;
  for (const core::NodeOutcome& node : dozing.nodes) {
    asleep_total += node.time_asleep_s;
  }
  EXPECT_GT(asleep_total, 0.0);
  EXPECT_LT(dozing.mean_joules_per_node(), awake.mean_joules_per_node());
}

TEST(EnergyExperimentTest, PerStateBreakdownConservesWindowSpend) {
  // NodeOutcome splits the measurement-window joules by radio power state;
  // the four states must sum back to the total (the off state draws
  // nothing), and the run-level aggregates must see real TX/RX activity.
  core::ExperimentConfig config = small_world(13);
  EnergyConfig energy;
  energy.sleep_fraction = 0.25;  // make the sleep bucket non-trivial too
  energy.duty_period = config.frugal.hb_upper;
  config.energy = energy;
  const core::RunResult result = core::run_experiment(config);
  double tx_total = 0.0;
  for (const core::NodeOutcome& node : result.nodes) {
    const double sum = node.energy_tx_j + node.energy_rx_j +
                       node.energy_idle_j + node.energy_sleep_j;
    EXPECT_NEAR(sum, node.energy_spent_j, 1e-9 + 1e-12 * sum);
    EXPECT_GE(node.energy_tx_j, 0.0);
    EXPECT_GE(node.energy_rx_j, 0.0);
    EXPECT_GT(node.energy_idle_j, 0.0);  // nobody idles zero seconds
    EXPECT_GT(node.energy_sleep_j, 0.0);  // duty cycle puts everyone down
    tx_total += node.energy_tx_j;
  }
  EXPECT_GT(tx_total, 0.0);  // somebody transmitted during the window
}

TEST(EnergyExperimentTest, HeterogeneousBatteriesDieSmallestFirst) {
  // Per-node capacities: a fleet whose batteries ramp from tiny to roomy
  // must lose its small-battery processes first, and the tiny end must not
  // drag down nodes with room to spare.
  core::ExperimentConfig config = small_world(17);
  const double idle_w = RadioPowerProfile{}.idle_mw / 1000.0;
  EnergyConfig energy;
  energy.battery_capacity_per_node_j.resize(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    // 20 idle-seconds for node 0 ramping to 2000 for the last: the run is
    // ~91 s, so the small end dies mid-run and the large end survives.
    energy.battery_capacity_per_node_j[i] =
        idle_w * (20.0 + 2000.0 * static_cast<double>(i) /
                             static_cast<double>(config.node_count - 1));
  }
  config.energy = energy;
  const core::RunResult result = core::run_experiment(config);
  ASSERT_TRUE(result.nodes[0].depleted_at.has_value());
  EXPECT_GT(result.survivor_fraction(), 0.0);
  EXPECT_LT(result.survivor_fraction(), 1.0);
  // Depletion order follows capacity order: any depleted node died no
  // earlier than every smaller-capacity node before it.
  std::optional<SimTime> previous;
  for (const core::NodeOutcome& node : result.nodes) {
    if (!node.depleted_at.has_value()) break;
    if (previous.has_value()) {
      EXPECT_LE(*previous, *node.depleted_at);
    }
    previous = node.depleted_at;
  }
}

TEST(EnergyExperimentTest, ChurnRecoveryDoesNotResurrectDepletedNodes) {
  // Heavy churn keeps scheduling radio-up flips for nodes whose batteries
  // have meanwhile emptied. A down radio draws nothing, so not everyone
  // depletes — but whoever did must stay dark: nothing can be delivered to
  // a dead radio after its crossing plus the battery-sampling slack.
  core::ExperimentConfig config = small_world(3);
  config.churn.crashes_per_node_per_minute = 6.0;
  EnergyConfig energy;
  energy.battery_capacity_j = 20.0;  // ~24 awake seconds
  config.energy = energy;
  const core::RunResult result = core::run_experiment(config);
  ASSERT_GT(result.depleted_fraction(), 0.5);
  const double slack_s = energy.sample_period.seconds() + 1.0;
  for (const core::NodeOutcome& node : result.nodes) {
    if (!node.depleted_at.has_value()) continue;
    // The measurement-window spend is capped by the battery, never
    // recharged past it.
    EXPECT_LE(node.energy_spent_j, energy.battery_capacity_j + 1e-9);
    for (const auto& delivered : node.delivered_at) {
      if (delivered.has_value()) {
        EXPECT_LE(delivered->seconds(),
                  node.depleted_at->seconds() + slack_s);
      }
    }
  }
}

TEST(EnergyExperimentTest, TraceAlternatesNodeDownAndUpUnderChurnAndDeath) {
  // Churn crashes, depletion deaths and their interleavings must never
  // produce a double kNodeDown (or an up without a down) for any node:
  // both record paths are gated on the radio flip actually happening.
  core::ExperimentConfig config = small_world(3);
  config.churn.crashes_per_node_per_minute = 6.0;
  EnergyConfig energy;
  energy.battery_capacity_j = 20.0;
  config.energy = energy;
  trace::TraceRecorder trace;
  config.trace = &trace;
  const core::RunResult result = core::run_experiment(config);
  ASSERT_GT(result.depleted_fraction(), 0.5);
  std::vector<bool> down(config.node_count, false);
  for (const trace::TraceRecord& record : trace.records()) {
    if (record.kind == trace::TraceKind::kNodeDown) {
      EXPECT_FALSE(down[record.node]) << "double down, node " << record.node;
      down[record.node] = true;
    } else if (record.kind == trace::TraceKind::kNodeUp) {
      EXPECT_TRUE(down[record.node]) << "up without down, node "
                                     << record.node;
      down[record.node] = false;
    }
  }
}

}  // namespace
}  // namespace frugal::energy
