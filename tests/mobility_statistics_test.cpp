// Statistical properties of the mobility models. The paper's city-section
// findings hinge on *where* processes spend their time (popular roads create
// the meeting points that carry dissemination), and the random-waypoint
// findings on speed being what the config says it is. These tests measure
// those distributions over long horizons.

#include <gtest/gtest.h>

#include <array>

#include "mobility/city_section.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/street_graph.hpp"
#include "stats/summary.hpp"

namespace frugal::mobility {
namespace {

TEST(RwpStatistics, TimeAverageSpeedNearConfigured) {
  RandomWaypointConfig config;
  config.width_m = 2000;
  config.height_m = 2000;
  config.speed_min_mps = 10;
  config.speed_max_mps = 10;
  config.pause = SimDuration::from_seconds(1);
  RandomWaypoint model{config, 10, Rng{5}};

  stats::Summary moving_speed;
  for (NodeId node = 0; node < 10; ++node) {
    for (int t = 0; t < 2000; t += 3) {
      const double v = model.speed(node, SimTime::from_seconds(t));
      if (v > 0) moving_speed.add(v);
    }
  }
  // While moving, speed is exactly the configured 10 mps.
  EXPECT_NEAR(moving_speed.mean(), 10.0, 1e-9);
  // Pauses are short (1 s) relative to legs, so most samples are moving.
  EXPECT_GT(moving_speed.count(), 5000u);
}

TEST(RwpStatistics, CoversTheWholeArea) {
  RandomWaypointConfig config;
  config.width_m = 1000;
  config.height_m = 1000;
  config.speed_min_mps = 20;
  config.speed_max_mps = 20;
  RandomWaypoint model{config, 8, Rng{6}};

  // 4x4 occupancy grid over a long horizon: every cell gets visited.
  std::array<std::array<bool, 4>, 4> visited{};
  for (NodeId node = 0; node < 8; ++node) {
    for (int t = 0; t < 4000; t += 2) {
      const Vec2 p = model.position(node, SimTime::from_seconds(t));
      const auto cx = std::min<std::size_t>(3, static_cast<std::size_t>(p.x / 250.0));
      const auto cy = std::min<std::size_t>(3, static_cast<std::size_t>(p.y / 250.0));
      visited[cx][cy] = true;
    }
  }
  for (const auto& row : visited) {
    for (bool cell : row) EXPECT_TRUE(cell);
  }
}

TEST(RwpStatistics, HeterogeneousSpeedsSpanTheRange) {
  RandomWaypointConfig config;
  config.width_m = 2000;
  config.height_m = 2000;
  config.speed_min_mps = 1;
  config.speed_max_mps = 40;
  config.per_node_constant_speed = true;
  config.pause = SimDuration::zero();
  RandomWaypoint model{config, 40, Rng{7}};

  stats::Summary speeds;
  for (NodeId node = 0; node < 40; ++node) {
    speeds.add(model.speed(node, SimTime::from_seconds(10)));
  }
  // U[1, 40]: mean ~20.5, and the draws must actually spread.
  EXPECT_NEAR(speeds.mean(), 20.5, 6.0);
  EXPECT_LT(speeds.min(), 10.0);
  EXPECT_GT(speeds.max(), 30.0);
}

TEST(CityStatistics, PopularRoadsAttractMoreTime) {
  // Build a grid with one strongly popular main row; nodes must spend
  // disproportionate time near it — the hot-spot effect the paper credits
  // for city-section reliability.
  CampusGridConfig grid_config;
  grid_config.main_road_popularity = 10.0;
  Rng grid_rng{11};
  const StreetGraph graph = make_campus_grid(grid_config, grid_rng);

  // Find the popular horizontal row's y coordinate (any main-row street).
  double main_y = -1;
  for (std::uint32_t e = 0; e < graph.street_count(); ++e) {
    const Street& s = graph.street(e);
    const Vec2 a = graph.position(s.from);
    const Vec2 b = graph.position(s.to);
    if (s.popularity == grid_config.main_road_popularity && a.y == b.y) {
      main_y = a.y;
      break;
    }
  }
  ASSERT_GE(main_y, 0.0) << "no horizontal main road generated";

  CitySection model{graph, CitySectionConfig{}, 12, Rng{12}};
  const double row_spacing =
      grid_config.height_m / (grid_config.rows - 1);
  std::size_t near_main = 0;
  std::size_t total = 0;
  for (NodeId node = 0; node < 12; ++node) {
    for (int t = 100; t < 3000; t += 5) {
      const Vec2 p = model.position(node, SimTime::from_seconds(t));
      ++total;
      if (std::abs(p.y - main_y) < row_spacing / 2) ++near_main;
    }
  }
  // A uniform spread over 6 rows would put ~1/6 of samples in the band;
  // popularity weighting must pull clearly more than that.
  const double fraction =
      static_cast<double>(near_main) / static_cast<double>(total);
  EXPECT_GT(fraction, 1.0 / 6.0 + 0.05);
}

TEST(CityStatistics, SpeedsRespectStreetLimits) {
  CampusGridConfig grid_config;
  Rng grid_rng{13};
  const StreetGraph graph = make_campus_grid(grid_config, grid_rng);
  CitySection model{graph, CitySectionConfig{}, 10, Rng{14}};
  stats::Summary moving;
  for (NodeId node = 0; node < 10; ++node) {
    for (int t = 0; t < 1500; t += 4) {
      const double v = model.speed(node, SimTime::from_seconds(t));
      ASSERT_LE(v, grid_config.speed_max_mps + 1e-9);
      if (v > 0) {
        ASSERT_GE(v, grid_config.speed_min_mps - 1e-9);
        moving.add(v);
      }
    }
  }
  // Paper: "between 8 and 13 mps", average ~10 mps.
  EXPECT_NEAR(moving.mean(), 10.5, 1.5);
}

TEST(CityStatistics, NodesStopSometimes) {
  CampusGridConfig grid_config;
  Rng grid_rng{15};
  const StreetGraph graph = make_campus_grid(grid_config, grid_rng);
  CitySectionConfig move;
  move.stop_probability = 0.5;
  CitySection model{graph, move, 6, Rng{16}};
  std::size_t stopped = 0;
  std::size_t total = 0;
  for (NodeId node = 0; node < 6; ++node) {
    for (int t = 0; t < 1200; t += 3) {
      ++total;
      if (model.speed(node, SimTime::from_seconds(t)) == 0.0) ++stopped;
    }
  }
  const double fraction = static_cast<double>(stopped) / static_cast<double>(total);
  EXPECT_GT(fraction, 0.05);  // red lights and destination pauses exist
  EXPECT_LT(fraction, 0.80);  // but nodes are not parked forever
}

}  // namespace
}  // namespace frugal::mobility
