// Integration tests: full simulations through the experiment runner.
// These use scaled-down worlds (fewer nodes, smaller areas, shorter warmup)
// so the whole suite stays fast while still exercising the complete stack:
// scheduler + medium + mobility + protocol + metrics.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "protocol/registry.hpp"

namespace frugal::core {
namespace {

ExperimentConfig small_rwp(std::uint64_t seed = 1) {
  ExperimentConfig config;
  config.node_count = 40;
  config.interest_fraction = 0.8;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 1500;
  rwp.config.height_m = 1500;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  config.mobility = rwp;
  config.warmup = SimDuration::from_seconds(30);
  config.event_validity = SimDuration::from_seconds(60);
  config.seed = seed;
  return config;
}

ExperimentConfig small_city(std::uint64_t seed = 1) {
  ExperimentConfig config;
  config.node_count = 15;
  config.interest_fraction = 1.0;
  CitySetup city;
  config.mobility = city;
  net::MediumConfig medium;
  medium.range_m = 44.0;  // paper's city radio range
  config.medium = medium;
  config.warmup = SimDuration::from_seconds(10);
  config.event_validity = SimDuration::from_seconds(60);
  config.seed = seed;
  return config;
}

TEST(ExperimentTest, FlatWorkloadRecordsTopicsAndSubscriptions) {
  const RunResult result = run_experiment(small_rwp());
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].topic, topics::Topic::parse(".news.local"));
  for (const NodeOutcome& node : result.nodes) {
    EXPECT_EQ(node.subscriptions.empty(), !node.subscribed);
    if (node.subscribed) {
      EXPECT_TRUE(node.subscriptions.covers(result.events[0].topic));
    }
  }
}

TEST(ExperimentTest, TopicWorkloadDrawsHierarchicalInterests) {
  ExperimentConfig config = small_rwp();
  TopicHierarchyWorkload workload;
  workload.depth = 3;
  workload.branching = 3;
  workload.broad_fraction = 0.5;
  workload.subscriptions_per_node = 2;
  config.topic_workload = workload;
  config.event_count = 6;
  const RunResult result = run_experiment(config);

  ASSERT_EQ(result.events.size(), 6u);
  const topics::Topic root = topics::Topic::parse(".t");
  for (const PublishedEventRecord& event : result.events) {
    EXPECT_EQ(event.topic.depth(), 4u);  // ".t" + 3 hierarchy levels
    EXPECT_TRUE(root.covers(event.topic));
  }
  std::size_t broad = 0;
  std::size_t narrow = 0;
  for (const NodeOutcome& node : result.nodes) {
    if (!node.subscribed) {
      EXPECT_TRUE(node.subscriptions.empty());
      continue;
    }
    ASSERT_FALSE(node.subscriptions.empty());
    EXPECT_LE(node.subscriptions.size(), 2u);
    for (const topics::Topic& topic : node.subscriptions.topics()) {
      EXPECT_TRUE(root.covers(topic));
      if (topic.depth() == 2) {
        ++broad;
      } else {
        EXPECT_EQ(topic.depth(), 4u);
        ++narrow;
      }
    }
  }
  // With broad_fraction 0.5 and 32 subscribers x 2 draws, both kinds occur.
  EXPECT_GT(broad, 0u);
  EXPECT_GT(narrow, 0u);
  const double reliability = result.reliability();
  EXPECT_GE(reliability, 0.0);
  EXPECT_LE(reliability, 1.0);
}

TEST(ExperimentTest, TopicWorkloadIsDeterministicInSeed) {
  ExperimentConfig config = small_rwp(11);
  TopicHierarchyWorkload workload;
  workload.zipf_s = 1.2;
  config.topic_workload = workload;
  config.event_count = 4;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t e = 0; e < a.events.size(); ++e) {
    EXPECT_EQ(a.events[e].topic, b.events[e].topic);
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].subscriptions, b.nodes[i].subscriptions);
    EXPECT_EQ(a.nodes[i].traffic.bytes_sent, b.nodes[i].traffic.bytes_sent);
  }
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
}

TEST(ExperimentTest, BroadOnlyMixMatchesFlatEligibility) {
  // broad_fraction 1 with depth 1 means every subscriber holds a depth-1
  // branch: every event (published on a depth-1 "leaf" of the same level)
  // is eligible exactly for the subscribers holding its branch.
  ExperimentConfig config = small_rwp();
  TopicHierarchyWorkload workload;
  workload.depth = 1;
  workload.branching = 2;
  workload.broad_fraction = 1.0;
  config.topic_workload = workload;
  config.event_count = 4;
  const RunResult result = run_experiment(config);
  for (const NodeOutcome& node : result.nodes) {
    if (!node.subscribed) continue;
    for (const topics::Topic& topic : node.subscriptions.topics()) {
      EXPECT_EQ(topic.depth(), 2u);  // ".t.bX"
    }
  }
  const double reliability = result.reliability();
  EXPECT_GE(reliability, 0.0);
  EXPECT_LE(reliability, 1.0);
}

TEST(ExperimentTest, FrugalRwpDisseminates) {
  const RunResult result = run_experiment(small_rwp());
  EXPECT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.nodes.size(), 40u);
  EXPECT_EQ(result.subscriber_count(), 32u);
  EXPECT_GT(result.reliability(), 0.5);
  EXPECT_GT(result.mean_bytes_sent_per_node(), 0.0);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const RunResult a = run_experiment(small_rwp(5));
  const RunResult b = run_experiment(small_rwp(5));
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.publisher, b.publisher);
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].traffic.bytes_sent, b.nodes[i].traffic.bytes_sent);
    EXPECT_EQ(a.nodes[i].duplicates, b.nodes[i].duplicates);
    EXPECT_EQ(a.nodes[i].delivered_at[0], b.nodes[i].delivered_at[0]);
  }
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  const RunResult a = run_experiment(small_rwp(1));
  const RunResult b = run_experiment(small_rwp(2));
  bool any_difference = a.publisher != b.publisher;
  for (std::size_t i = 0; i < a.nodes.size() && !any_difference; ++i) {
    any_difference = a.nodes[i].traffic.bytes_sent !=
                     b.nodes[i].traffic.bytes_sent;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ExperimentTest, PublisherIsCountedAsDelivered) {
  const RunResult result = run_experiment(small_rwp());
  const NodeOutcome& publisher = result.nodes[result.publisher];
  EXPECT_TRUE(publisher.subscribed);
  ASSERT_TRUE(publisher.delivered_at[0].has_value());
  EXPECT_EQ(*publisher.delivered_at[0], result.events[0].published_at);
}

TEST(ExperimentTest, ReliabilityMonotoneInProbeValidity) {
  const RunResult result = run_experiment(small_rwp());
  double previous = 0.0;
  for (int v = 10; v <= 60; v += 10) {
    const double r =
        result.reliability_within(SimDuration::from_seconds(v));
    EXPECT_GE(r, previous);
    previous = r;
  }
  EXPECT_DOUBLE_EQ(result.reliability(),
                   result.reliability_within(SimDuration::from_seconds(60)));
}

TEST(ExperimentTest, OnlySubscribersDeliver) {
  const RunResult result = run_experiment(small_rwp());
  for (const NodeOutcome& node : result.nodes) {
    if (!node.subscribed) {
      EXPECT_FALSE(node.delivered_at[0].has_value());
    }
  }
}

TEST(ExperimentTest, DeliveriesWithinEventLifetime) {
  const RunResult result = run_experiment(small_rwp());
  const SimTime published = result.events[0].published_at;
  const SimTime expiry = published + result.events[0].validity;
  for (const NodeOutcome& node : result.nodes) {
    if (node.delivered_at[0].has_value()) {
      EXPECT_GE(*node.delivered_at[0], published);
      EXPECT_LE(*node.delivered_at[0], expiry);
    }
  }
}

TEST(ExperimentTest, StaticNodesStillReachNeighbors) {
  ExperimentConfig config = small_rwp();
  config.mobility = StaticSetup{800, 800};  // dense enough to be connected
  config.node_count = 30;
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.reliability(), 0.3);
}

TEST(ExperimentTest, SparseStaticNetworkIsUnreliable) {
  ExperimentConfig config = small_rwp();
  config.mobility = StaticSetup{20000, 20000};  // hopeless sparsity
  const RunResult result = run_experiment(config);
  EXPECT_LT(result.reliability(), 0.3);
}

TEST(ExperimentTest, MobilityImprovesOverStaticSparse) {
  // The paper's core claim: mobility is exploited for dissemination.
  ExperimentConfig sparse_static = small_rwp();
  sparse_static.mobility = StaticSetup{3000, 3000};
  sparse_static.event_validity = SimDuration::from_seconds(120);

  ExperimentConfig sparse_mobile = small_rwp();
  RandomWaypointSetup rwp;
  rwp.config.width_m = 3000;
  rwp.config.height_m = 3000;
  rwp.config.speed_min_mps = 20;
  rwp.config.speed_max_mps = 20;
  sparse_mobile.mobility = rwp;
  sparse_mobile.event_validity = SimDuration::from_seconds(120);

  double static_total = 0;
  double mobile_total = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sparse_static.seed = seed;
    sparse_mobile.seed = seed;
    static_total += run_experiment(sparse_static).reliability();
    mobile_total += run_experiment(sparse_mobile).reliability();
  }
  EXPECT_GT(mobile_total, static_total);
}

TEST(ExperimentTest, CitySectionRuns) {
  const RunResult result = run_experiment(small_city());
  EXPECT_EQ(result.nodes.size(), 15u);
  EXPECT_EQ(result.subscriber_count(), 15u);
  EXPECT_GT(result.reliability(), 0.0);
}

TEST(ExperimentTest, ExplicitPublisherIsUsed) {
  ExperimentConfig config = small_city();
  config.publisher = 7;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.publisher, 7u);
  ASSERT_TRUE(result.nodes[7].delivered_at[0].has_value());
}

TEST(ExperimentTest, NonSubscribedPublisherStillDisseminates) {
  ExperimentConfig config = small_rwp();
  config.interest_fraction = 0.5;
  // Find a non-subscriber deterministically: run once, pick one, re-run.
  const RunResult probe = run_experiment(config);
  NodeId outsider = kInvalidNode;
  for (NodeId id = 0; id < probe.nodes.size(); ++id) {
    if (!probe.nodes[id].subscribed) {
      outsider = id;
      break;
    }
  }
  ASSERT_NE(outsider, kInvalidNode);
  config.publisher = outsider;
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.reliability(), 0.2);
}

TEST(ExperimentTest, MultipleEventsAllTracked) {
  ExperimentConfig config = small_rwp();
  config.event_count = 5;
  const RunResult result = run_experiment(config);
  ASSERT_EQ(result.events.size(), 5u);
  for (std::size_t e = 0; e < 5; ++e) {
    EXPECT_EQ(result.events[e].id.seq, e);
    EXPECT_EQ(result.events[e].id.publisher, result.publisher);
  }
  EXPECT_GT(result.reliability(), 0.5);
}

TEST(ExperimentTest, AllProtocolsComplete) {
  // Every registered protocol — paper baselines and adaptive variants alike
  // — must drive a run to completion through the registry factory path.
  protocol::register_builtin_protocols();
  for (const protocol::ProtocolSpec* spec : protocol::all_protocols()) {
    ExperimentConfig config = small_rwp();
    config.node_count = 20;
    config.protocol = spec->name;
    const RunResult result = run_experiment(config);
    EXPECT_GE(result.reliability(), 0.0) << spec->name;
    EXPECT_GT(result.mean_bytes_sent_per_node(), 0.0) << spec->name;
  }
}

TEST(ExperimentTest, FrugalUsesLessBandwidthThanSimpleFlooding) {
  ExperimentConfig config = small_rwp();
  config.event_count = 5;
  config.publish_spacing = SimDuration::from_seconds(1);
  const RunResult frugal = run_experiment(config);
  config.protocol = "simple-flooding";
  const RunResult flooding = run_experiment(config);
  EXPECT_LT(frugal.mean_bytes_sent_per_node(),
            flooding.mean_bytes_sent_per_node());
  EXPECT_LT(frugal.mean_events_sent_per_node(),
            flooding.mean_events_sent_per_node());
  EXPECT_LT(frugal.mean_duplicates_per_node(),
            flooding.mean_duplicates_per_node());
}

TEST(ExperimentTest, InterestZeroMeansNoSubscribers) {
  ExperimentConfig config = small_rwp();
  config.interest_fraction = 0.0;
  config.publisher = 0;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.subscriber_count(), 0u);
  EXPECT_EQ(result.reliability(), 0.0);
}

// Property sweep across seeds: protocol-level invariants that must hold for
// every run regardless of topology randomness.
class ExperimentInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExperimentInvariants, FrugalRunInvariants) {
  ExperimentConfig config = small_rwp(GetParam());
  config.node_count = 25;
  const RunResult result = run_experiment(config);

  std::size_t delivered = 0;
  for (const NodeOutcome& node : result.nodes) {
    // 1. Deliveries only at subscribers.
    if (!node.subscribed) {
      ASSERT_FALSE(node.delivered_at[0].has_value());
    }
    // 2. Delivery times inside [publish, expiry].
    if (node.delivered_at[0].has_value()) {
      ++delivered;
      ASSERT_GE(*node.delivered_at[0], result.events[0].published_at);
      ASSERT_LE(*node.delivered_at[0],
                result.events[0].published_at + result.events[0].validity);
    }
  }
  // 3. Reliability equals delivered / subscribers.
  EXPECT_NEAR(result.reliability(),
              static_cast<double>(delivered) /
                  static_cast<double>(result.subscriber_count()),
              1e-12);
  // 4. The publisher (a subscriber here) always has its own event.
  EXPECT_TRUE(result.nodes[result.publisher].delivered_at[0].has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentInvariants,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace frugal::core
