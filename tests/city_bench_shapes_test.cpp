// Shape tests: small-seed versions of the paper's qualitative findings.
// These guard the *relationships* the figures rely on (who beats whom, what
// grows with what) so a regression in the protocol or the simulator that
// flips a conclusion fails CI, without pinning noisy absolute values.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "runner/worlds.hpp"
#include "stats/summary.hpp"

namespace frugal::core {
namespace {

/// The paper's §5.1 city world, from the shared registry factory — one
/// source of truth with the benches (see src/runner/worlds.hpp).
ExperimentConfig city(std::uint64_t seed, double interest = 1.0) {
  return runner::city_world(interest, seed);
}

double mean_city_reliability(double hb_upper_s, double interest,
                             int seeds = 2) {
  stats::Summary summary;
  for (int seed = 1; seed <= seeds; ++seed) {
    for (NodeId publisher = 0; publisher < 15; publisher += 3) {
      auto config = city(static_cast<std::uint64_t>(seed), interest);
      config.frugal.hb_upper = SimDuration::from_seconds(hb_upper_s);
      config.publisher = publisher;
      summary.add(run_experiment(config).reliability());
    }
  }
  return summary.mean();
}

TEST(CityShapes, SlowHeartbeatsHurtReliability) {
  // Fig. 13's envelope: 1 s heartbeats clearly beat 5 s heartbeats.
  EXPECT_GT(mean_city_reliability(1.0, 1.0),
            mean_city_reliability(5.0, 1.0) + 0.05);
}

TEST(CityShapes, MoreSubscribersMoreReliability) {
  // Fig. 14's envelope, compared at the extremes to stay noise-proof.
  EXPECT_GT(mean_city_reliability(1.0, 1.0),
            mean_city_reliability(1.0, 0.2));
}

TEST(CityShapes, ValidityGrowsReliability) {
  // Fig. 16's envelope from one run set via the probe property.
  stats::Summary short_validity;
  stats::Summary long_validity;
  for (int seed = 1; seed <= 2; ++seed) {
    for (NodeId publisher = 0; publisher < 15; publisher += 3) {
      auto config = city(static_cast<std::uint64_t>(seed));
      config.publisher = publisher;
      const auto result = run_experiment(config);
      short_validity.add(
          result.reliability_within(SimDuration::from_seconds(25)));
      long_validity.add(
          result.reliability_within(SimDuration::from_seconds(150)));
    }
  }
  EXPECT_GT(long_validity.mean(), short_validity.mean() + 0.2);
}

TEST(CityShapes, PublisherPathMatters) {
  // Fig. 15's envelope: per-publisher reliabilities differ substantially.
  double best = 0.0;
  double worst = 1.0;
  for (NodeId publisher = 0; publisher < 15; ++publisher) {
    stats::Summary summary;
    for (int seed = 1; seed <= 2; ++seed) {
      auto config = city(static_cast<std::uint64_t>(seed));
      config.publisher = publisher;
      summary.add(run_experiment(config).reliability());
    }
    best = std::max(best, summary.mean());
    worst = std::min(worst, summary.mean());
  }
  EXPECT_GT(best - worst, 0.1);
}

TEST(RwpShapes, SpeedGrowsReliabilityInSparseNetworks) {
  // Fig. 11's envelope at 20% interest: mobility is the transport.
  const auto run_at = [](double speed) {
    stats::Summary summary;
    for (int seed = 1; seed <= 3; ++seed) {
      ExperimentConfig config;
      config.node_count = 50;
      config.interest_fraction = 0.3;
      RandomWaypointSetup rwp;
      rwp.config.width_m = 2500;
      rwp.config.height_m = 2500;
      rwp.config.speed_min_mps = speed;
      rwp.config.speed_max_mps = speed;
      config.mobility = rwp;
      config.medium.range_m = 250;
      config.warmup = SimDuration::from_seconds(60);
      config.event_validity = SimDuration::from_seconds(120);
      config.seed = static_cast<std::uint64_t>(seed);
      summary.add(run_experiment(config).reliability());
    }
    return summary.mean();
  };
  EXPECT_GT(run_at(25.0), run_at(1.0) + 0.1);
}

TEST(FrugalityShapes, FrugalBeatsAllFloodingVariants) {
  // Figs. 17-20's envelope on one mid-grid point (5 events, 60% interest).
  ExperimentConfig base;
  base.node_count = 50;
  base.interest_fraction = 0.6;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 2900;
  rwp.config.height_m = 2900;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  base.mobility = rwp;
  base.medium.range_m = 442;
  base.warmup = SimDuration::from_seconds(60);
  base.event_validity = SimDuration::from_seconds(120);
  base.event_count = 5;
  base.seed = 3;

  const RunResult frugal = run_experiment(base);
  for (const char* protocol :
       {"simple-flooding", "interests-aware-flooding",
        "neighbors-interests-flooding"}) {
    ExperimentConfig config = base;
    config.protocol = protocol;
    const RunResult flooding = run_experiment(config);
    EXPECT_LT(frugal.mean_bytes_sent_per_node(),
              flooding.mean_bytes_sent_per_node())
        << protocol;
    EXPECT_LT(frugal.mean_events_sent_per_node(),
              flooding.mean_events_sent_per_node())
        << protocol;
    EXPECT_LT(frugal.mean_duplicates_per_node(),
              flooding.mean_duplicates_per_node())
        << protocol;
    EXPECT_LE(frugal.mean_parasites_per_node(),
              flooding.mean_parasites_per_node())
        << protocol;
  }
}

TEST(FrugalityShapes, NeighborInterestFloodingIsMostExpensive) {
  ExperimentConfig base;
  base.node_count = 40;
  base.interest_fraction = 0.8;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 2600;
  rwp.config.height_m = 2600;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  base.mobility = rwp;
  base.medium.range_m = 442;
  base.warmup = SimDuration::from_seconds(60);
  base.event_validity = SimDuration::from_seconds(120);
  base.event_count = 3;
  base.seed = 4;

  base.protocol = "simple-flooding";
  const double simple_bytes =
      run_experiment(base).mean_bytes_sent_per_node();
  base.protocol = "neighbors-interests-flooding";
  const double neighbor_bytes =
      run_experiment(base).mean_bytes_sent_per_node();
  EXPECT_GT(neighbor_bytes, simple_bytes);
}

}  // namespace
}  // namespace frugal::core
