#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace frugal {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentConsumption) {
  Rng parent1{77};
  Rng parent2{77};
  (void)parent2.next();  // consuming the parent must not change children
  // split() is a pure function of the parent's *current* state, so split
  // before consumption:
  Rng child1 = parent1.split(5);
  Rng child2 = Rng{77}.split(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(RngTest, SplitDifferentKeysDiffer) {
  Rng parent{99};
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng{4};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 7.5);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(RngTest, UniformRangeMean) {
  Rng rng{5};
  double total = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) total += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(total / kSamples, 5.0, 0.1);
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng{6};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversAllValues) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng{8};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng{10};
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng{11};
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng{12};
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.weighted_index(weights)] += 1;
  }
  EXPECT_NEAR(counts[0] / double(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.7, 0.015);
}

TEST(RngTest, Fnv1aStableValues) {
  // Golden values pin the hash so stream derivation stays stable across
  // refactors (changing it would silently re-seed every experiment).
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(fnv1a64("mobility"), fnv1a64("workload"));
}

TEST(RngTest, SplitMix64KnownSequence) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries) {
  Rng rng{GetParam()};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    seen.insert(rng.next());
  }
  EXPECT_GT(seen.size(), 250u);  // no short cycles
}

TEST_P(RngSeedSweep, UniformU64Unbiased) {
  Rng rng{GetParam()};
  // n chosen adversarially near 2^64 * 2/3 would need rejection; here we
  // just verify the modulo-rejection path terminates and is in range.
  const std::uint64_t n = (~std::uint64_t{0} / 3) * 2;
  for (int i = 0; i < 16; ++i) ASSERT_LT(rng.uniform_u64(n), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1234567,
                                           0xDEADBEEFULL, ~std::uint64_t{0}));

}  // namespace
}  // namespace frugal
