// Index == brute force, by construction and by experiment.
//
// The spatial index's whole contract is that switching it on changes nothing
// observable: receiver sets, carrier-sense answers, counters, delivery
// order, everything byte-identical to the original O(n) scans. This suite
// runs two complete Medium instances — one brute-force, one indexed — off
// the same scheduler, the same mobility model, and the same traffic script,
// then demands their entire observable state match: every per-node counter,
// every sink's delivered-frame sequence, plus nodes_in_range and
// sensed_busy_until probed mid-run while frames are on the air.
//
// Sharing one scheduler is safe because a Medium's events only touch its own
// state: interleaving the two mediums' callbacks cannot change either one's
// behaviour relative to running alone. Sharing the mobility model is safe
// because trajectories are pure functions of (seed, node, t).
//
// Coverage axes (per the PR issue): >= 5 seeds x {static, random-waypoint,
// city-section, converge} x node counts {2, 35, 500}, with nodes crashing
// and sleeping mid-run, plus deterministic worlds with positions exactly on
// grid cell boundaries and exactly at range_m.

#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "mobility/city_section.hpp"
#include "mobility/converge.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_mobility.hpp"
#include "mobility/street_graph.hpp"
#include "net/medium.hpp"
#include "net/spatial_index.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace frugal::net {
namespace {

/// Records the exact delivery sequence (order matters: it proves the index
/// preserves side-effect order, not just the final sets).
class SequenceSink final : public MediumClient {
 public:
  struct Delivery {
    NodeId sender;
    std::uint32_t size_bytes;
    int tag;
    bool operator==(const Delivery&) const = default;
  };
  void on_frame(const Frame& frame) override {
    deliveries.push_back(
        {frame.sender, frame.size_bytes, std::any_cast<int>(frame.payload)});
  }
  std::vector<Delivery> deliveries;
};

/// Owns a mobility model plus two mediums over it: `brute` scans, `grid`
/// uses the spatial index, both seeded with the same jitter rng.
struct DualWorld {
  DualWorld(std::unique_ptr<mobility::MobilityModel> model, MediumConfig base,
            std::uint64_t seed)
      : mobility{std::move(model)} {
    MediumConfig brute_cfg = base;
    brute_cfg.use_spatial_index = false;
    MediumConfig grid_cfg = base;
    grid_cfg.use_spatial_index = true;
    brute.emplace(scheduler, *mobility, brute_cfg, Rng{seed ^ 0xF00Du});
    grid.emplace(scheduler, *mobility, grid_cfg, Rng{seed ^ 0xF00Du});
    const std::size_t n = mobility->node_count();
    brute_sinks.resize(n);
    grid_sinks.resize(n);
    for (NodeId id = 0; id < n; ++id) {
      brute->attach(id, &brute_sinks[id]);
      grid->attach(id, &grid_sinks[id]);
    }
  }

  /// Random broadcasts, crashes/recoveries, sleep flips, and live probes of
  /// the two query methods, identically applied to both mediums.
  void run_random_script(std::uint64_t seed, double window_s) {
    Rng rng{seed * 2654435761u + 17};
    const std::size_t n = mobility->node_count();
    const std::size_t broadcasts = 3 * n + 20;
    for (std::size_t i = 0; i < broadcasts; ++i) {
      const auto sender = static_cast<NodeId>(rng.uniform_u64(n));
      const SimTime at = SimTime::from_seconds(rng.uniform(0, window_s));
      const int tag = static_cast<int>(i);
      scheduler.schedule_at(at, [this, sender, tag] {
        brute->broadcast(sender, 125, tag);
        grid->broadcast(sender, 125, tag);
      });
    }
    // Crash ~10% of nodes mid-run; recover half of them later.
    for (std::size_t i = 0; i < n / 10 + 1; ++i) {
      const auto victim = static_cast<NodeId>(rng.uniform_u64(n));
      const SimTime down_at =
          SimTime::from_seconds(rng.uniform(0, window_s * 0.7));
      scheduler.schedule_at(down_at, [this, victim] {
        brute->set_up(victim, false);
        grid->set_up(victim, false);
      });
      if (i % 2 == 0) {
        const SimTime up_at =
            down_at + SimDuration::from_seconds(rng.uniform(0.1, 2.0));
        scheduler.schedule_at(up_at, [this, victim] {
          brute->set_up(victim, true);
          grid->set_up(victim, true);
        });
      }
    }
    // Doze ~10% of nodes for a stretch.
    for (std::size_t i = 0; i < n / 10 + 1; ++i) {
      const auto dozer = static_cast<NodeId>(rng.uniform_u64(n));
      const SimTime doze_at =
          SimTime::from_seconds(rng.uniform(0, window_s * 0.7));
      scheduler.schedule_at(doze_at, [this, dozer] {
        brute->set_sleeping(dozer, true);
        grid->set_sleeping(dozer, true);
      });
      scheduler.schedule_at(
          doze_at + SimDuration::from_seconds(rng.uniform(0.2, 3.0)),
          [this, dozer] {
            brute->set_sleeping(dozer, false);
            grid->set_sleeping(dozer, false);
          });
    }
    // Probe the query APIs while traffic is in flight.
    for (std::size_t i = 0; i < 40; ++i) {
      const auto node = static_cast<NodeId>(rng.uniform_u64(n));
      const SimTime at = SimTime::from_seconds(rng.uniform(0, window_s));
      scheduler.schedule_at(at, [this, node] {
        const SimTime now = scheduler.now();
        EXPECT_EQ(brute->nodes_in_range(node), grid->nodes_in_range(node));
        EXPECT_EQ(brute->sensed_busy_until(node, now).us(),
                  grid->sensed_busy_until(node, now).us());
      });
    }
    scheduler.run_until(SimTime::from_seconds(window_s + 10.0));
    scheduler.run_all();
  }

  void expect_identical() {
    for (NodeId id = 0; id < mobility->node_count(); ++id) {
      const TrafficCounters& b = brute->counters(id);
      const TrafficCounters& g = grid->counters(id);
      EXPECT_EQ(b.frames_sent, g.frames_sent) << "node " << id;
      EXPECT_EQ(b.bytes_sent, g.bytes_sent) << "node " << id;
      EXPECT_EQ(b.frames_delivered, g.frames_delivered) << "node " << id;
      EXPECT_EQ(b.bytes_delivered, g.bytes_delivered) << "node " << id;
      EXPECT_EQ(b.frames_collided, g.frames_collided) << "node " << id;
      EXPECT_EQ(b.frames_missed_busy, g.frames_missed_busy) << "node " << id;
      EXPECT_EQ(b.frames_missed_asleep, g.frames_missed_asleep)
          << "node " << id;
      EXPECT_EQ(b.frames_missed_down, g.frames_missed_down) << "node " << id;
      EXPECT_EQ(b.frames_dropped, g.frames_dropped) << "node " << id;
      EXPECT_EQ(brute_sinks[id].deliveries, grid_sinks[id].deliveries)
          << "node " << id;
    }
  }

  sim::Scheduler scheduler;
  std::unique_ptr<mobility::MobilityModel> mobility;
  std::optional<Medium> brute;
  std::optional<Medium> grid;
  std::vector<SequenceSink> brute_sinks;
  std::vector<SequenceSink> grid_sinks;
};

MediumConfig dense_config() {
  MediumConfig config;
  config.range_m = 120.0;
  config.rate_bps = 250e3;  // 4 ms per 125 B frame: real contention
  config.max_jitter = SimDuration::from_ms(3);
  return config;
}

/// Area side scaling that keeps the neighbour count roughly constant as the
/// node count grows, so every world has real contention and real sparsity.
double area_side(std::size_t nodes) {
  return 60.0 * std::sqrt(static_cast<double>(nodes)) + 25.0;
}

std::unique_ptr<mobility::MobilityModel> make_model(const std::string& kind,
                                                    std::size_t nodes,
                                                    std::uint64_t seed) {
  const double side = area_side(nodes);
  if (kind == "static") {
    Rng rng{seed * 7919 + 1};
    std::vector<Vec2> positions;
    positions.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      positions.push_back({rng.uniform(0, side), rng.uniform(0, side)});
    }
    return std::make_unique<mobility::StaticMobility>(std::move(positions));
  }
  if (kind == "rwp") {
    mobility::RandomWaypointConfig config;
    config.width_m = side;
    config.height_m = side;
    config.speed_min_mps = 1.0;
    config.speed_max_mps = 12.0;  // fast enough to force grid rebuilds
    config.pause = SimDuration::from_seconds(0.5);
    return std::make_unique<mobility::RandomWaypoint>(config, nodes,
                                                      Rng{seed * 31 + 5});
  }
  if (kind == "city") {
    struct OwningCity final : mobility::MobilityModel {
      OwningCity(mobility::StreetGraph g, std::size_t n, Rng r)
          : graph{std::move(g)},
            model{graph, mobility::CitySectionConfig{}, n, r} {}
      [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
        return model.position(node, t);
      }
      [[nodiscard]] double speed(NodeId node, SimTime t) override {
        return model.speed(node, t);
      }
      [[nodiscard]] std::size_t node_count() const override {
        return model.node_count();
      }
      [[nodiscard]] double max_speed_mps() const override {
        return model.max_speed_mps();
      }
      mobility::StreetGraph graph;
      mobility::CitySection model;
    };
    Rng grid_rng{seed * 131 + 9};
    return std::make_unique<OwningCity>(
        mobility::make_campus_grid(mobility::CampusGridConfig{}, grid_rng),
        nodes, Rng{seed * 17 + 3});
  }
  // converge: everyone rushes one rally point and scatters again, inside the
  // traffic window, so the index sees extreme density swings and the fast
  // catch-up speeds of far-away nodes.
  mobility::ConvergeConfig config;
  config.width_m = side;
  config.height_m = side;
  config.speed_mps = 10.0;
  config.rally = {side / 2, side / 2};
  config.rally_radius_m = 12.0;
  config.converge_by = SimTime::from_seconds(3.0);
  config.disperse_at = SimTime::from_seconds(4.5);
  return std::make_unique<mobility::ConvergeDisperse>(config, nodes,
                                                      Rng{seed * 101 + 7});
}

class IndexEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(IndexEquivalence, MatchesBruteForceAcrossNodeCounts) {
  const auto& [kind, seed] = GetParam();
  for (const std::size_t nodes : {std::size_t{2}, std::size_t{35},
                                  std::size_t{500}}) {
    SCOPED_TRACE(kind + " nodes=" + std::to_string(nodes));
    MediumConfig config = dense_config();
    if (kind == "city") config.range_m = 44.0;  // the paper's city radio
    DualWorld world{make_model(kind, nodes, seed), config, seed};
    world.run_random_script(seed * 13 + nodes, /*window_s=*/6.0);
    world.expect_identical();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, IndexEquivalence,
    ::testing::Combine(::testing::Values("static", "rwp", "city", "converge"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(SpatialIndexBoundary, CellBordersAndExactRangeMatchBruteForce) {
  // Positions exactly on cell boundaries (multiples of range_m, including
  // negative-axis corners) and receivers exactly at range_m: the <= range
  // comparison and floor() cell mapping must agree with the brute scan.
  MediumConfig config;
  config.range_m = 100.0;
  config.max_jitter = SimDuration::from_us(50);
  std::vector<Vec2> positions{
      {0, 0},        // on the (0,0) cell corner
      {100, 0},      // exactly range_m away: in range, on a cell border
      {200, 0},      // exactly 2x range: out of range, on a cell border
      {100, 100},    // cell corner, sqrt(2)*range away: out of range
      {-100, 0},     // negative-axis cell border, exactly at range
      {0, -100},     // negative-axis cell border, exactly at range
      {50, -50},     // interior of a negative cell, in range
      {99.999, 0},   // just inside
      {100.001, 0},  // just outside
  };
  DualWorld world{std::make_unique<mobility::StaticMobility>(positions),
                  config, 7};
  world.run_random_script(/*seed=*/11, /*window_s=*/2.0);
  world.expect_identical();

  const std::vector<NodeId> expected{1, 4, 5, 6, 7};
  EXPECT_EQ(world.grid->nodes_in_range(0), expected);
  EXPECT_EQ(world.brute->nodes_in_range(0), expected);
}

TEST(SpatialIndexDirect, CandidatesAreSortedSupersetUnderMotion) {
  // Exercise the index's own contract without a medium: candidates must be
  // sorted, deduplicated, and contain every node truly within the radius,
  // across query times spanning many drift-triggered rebuilds.
  mobility::RandomWaypointConfig config;
  config.width_m = 900.0;
  config.height_m = 900.0;
  config.speed_min_mps = 2.0;
  config.speed_max_mps = 14.0;
  config.pause = SimDuration::from_seconds(0.2);
  mobility::RandomWaypoint model{config, 300, Rng{424242}};
  SpatialIndex index{model, /*cell_size_m=*/100.0};

  Rng rng{999};
  for (int step = 0; step < 60; ++step) {
    const SimTime now = SimTime::from_seconds(step * 0.5);
    const Vec2 center{rng.uniform(0, config.width_m),
                      rng.uniform(0, config.height_m)};
    const auto& cand = index.candidates(center, 100.0, now);
    for (std::size_t i = 1; i < cand.size(); ++i) {
      EXPECT_LT(cand[i - 1], cand[i]);  // sorted and duplicate-free
    }
    for (NodeId node = 0; node < model.node_count(); ++node) {
      if (distance(center, model.position(node, now)) <= 100.0) {
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), node))
            << "node " << node << " missing at t=" << step;
      }
    }
  }
  EXPECT_GT(index.rebuild_count(), 1u);
}

TEST(SpatialIndexDirect, TeleportsInvalidateTheGrid) {
  // StaticMobility's max speed is zero, so without the revision counter the
  // index would never rebuild and a teleported node would keep its old cell.
  std::vector<Vec2> positions{{0, 0}, {1000, 1000}};
  mobility::StaticMobility model{positions};
  SpatialIndex index{model, 100.0};

  const auto& before = index.candidates({0, 0}, 100.0, SimTime::zero());
  EXPECT_EQ(before, (std::vector<NodeId>{0}));

  model.move_node(1, {10, 10});
  const auto& after =
      index.candidates({0, 0}, 100.0, SimTime::from_seconds(1));
  EXPECT_EQ(after, (std::vector<NodeId>{0, 1}));
}

}  // namespace
}  // namespace frugal::net
