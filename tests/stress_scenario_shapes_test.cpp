// Expected-shape tests for the stress scenario families registered in PR 4:
// churn_city (reliability monotone under churn), memory_pressure (Fig. 3 GC
// actually triggers and recovers with capacity) and adversarial_mobility
// (the converge/disperse density spike and its phase contrast). Each test
// runs the registered spec's own make_config so the asserted shape is the
// one the bench reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "mobility/converge.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"

namespace frugal::runner {
namespace {

/// Builds the spec's ParamPoint from values in axis order.
ParamPoint point_for(const ScenarioSpec& spec, std::vector<double> values) {
  EXPECT_EQ(values.size(), spec.axes.size());
  ParamPoint point;
  for (const Axis& axis : spec.axes) point.names.push_back(axis.name);
  point.values = std::move(values);
  return point;
}

/// Seed-averaged run of one grid point (paired seeds across points).
core::RunResult run_point(const ScenarioSpec& spec, const ParamPoint& point,
                          int seed_index = 0) {
  return core::run_experiment(
      spec.make_config(point, job_seed(1, seed_index)));
}

double mean_reliability(const ScenarioSpec& spec, const ParamPoint& point,
                        int seeds) {
  double total = 0;
  for (int s = 0; s < seeds; ++s) {
    total += run_point(spec, point, s).reliability();
  }
  return total / seeds;
}

// ---------------------------------------------------------------------------
// churn_city: reliability decreases monotonically with the churn rate.

TEST(ChurnCityShapes, ReliabilityMonotoneUnderChurn) {
  const ScenarioSpec* spec = find_scenario("churn_city");
  ASSERT_NE(spec, nullptr);
  // axes: churn_per_min, interest, publisher. Full subscribers, one
  // mid-route publisher, the default grid's churn endpoints plus the full
  // grid's 10/min extreme; 2 paired seeds.
  const double none = mean_reliability(
      *spec, point_for(*spec, {0.0, 1.0, 7.0}), 2);
  const double moderate = mean_reliability(
      *spec, point_for(*spec, {6.0, 1.0, 7.0}), 2);
  const double severe = mean_reliability(
      *spec, point_for(*spec, {10.0, 1.0, 7.0}), 2);
  EXPECT_GT(none, 0.5);  // the churn-free city delivers (cf. Fig. 14)
  EXPECT_GE(none, moderate);
  EXPECT_GE(moderate, severe);
  // ...and even severe churn does not zero the protocol out.
  EXPECT_GT(severe, 0.0);
}

TEST(ChurnCityShapes, ChurnSilencesRadiosAndSavesBytes) {
  const ScenarioSpec* spec = find_scenario("churn_city");
  ASSERT_NE(spec, nullptr);
  const core::RunResult calm =
      run_point(*spec, point_for(*spec, {0.0, 1.0, 7.0}));
  const core::RunResult churned =
      run_point(*spec, point_for(*spec, {10.0, 1.0, 7.0}));
  EXPECT_LT(churned.mean_bytes_sent_per_node(),
            calm.mean_bytes_sent_per_node());
}

// ---------------------------------------------------------------------------
// memory_pressure: Equation 1 GC really runs, and pressure really hurts.

TEST(MemoryPressureShapes, GcEvictionsTriggerAtTinyCapacityOnly) {
  const ScenarioSpec* spec = find_scenario("memory_pressure");
  ASSERT_NE(spec, nullptr);
  // axes: capacity, rate_eps. 24 events at 4/s against capacity 2 forces
  // constant victim selection...
  const core::RunResult starved =
      run_point(*spec, point_for(*spec, {2.0, 4.0}));
  EXPECT_GT(starved.mean_gc_evictions_per_node(), 1.0);
  // ...while capacity 64 holds the whole workload: provably no GC.
  const core::RunResult roomy =
      run_point(*spec, point_for(*spec, {64.0, 4.0}));
  EXPECT_EQ(roomy.mean_gc_evictions_per_node(), 0.0);
}

TEST(MemoryPressureShapes, ReliabilityRecoversWithCapacity) {
  const ScenarioSpec* spec = find_scenario("memory_pressure");
  ASSERT_NE(spec, nullptr);
  const double starved = mean_reliability(
      *spec, point_for(*spec, {2.0, 4.0}), 2);
  const double roomy = mean_reliability(
      *spec, point_for(*spec, {64.0, 4.0}), 2);
  EXPECT_GE(roomy, starved);
  // Equation 1 keeps dissemination alive even at capacity 2 (the paper's
  // §4.4 design goal): well above zero, well below the roomy table.
  EXPECT_GT(starved, 0.05);
  EXPECT_GT(roomy, 0.9);
}

// ---------------------------------------------------------------------------
// adversarial_mobility: the density spike and its phase contrast.

TEST(AdversarialMobilityShapes, ConvergeDisperseProducesDensitySpike) {
  // The mobility model itself: scattered at t=0, everyone inside the rally
  // disc while converged, scattered again after dispersal.
  mobility::ConvergeConfig config;
  config.width_m = 5000.0;
  config.height_m = 5000.0;
  config.rally = {2500.0, 2500.0};
  config.rally_radius_m = 15.0;
  config.speed_mps = 10.0;
  config.converge_by = SimTime::from_seconds(240.0);
  config.disperse_at = SimTime::from_seconds(300.0);
  mobility::ConvergeDisperse model{config, 35, Rng{7}};

  const auto max_rally_distance = [&](SimTime t) {
    double worst = 0;
    for (NodeId id = 0; id < 35; ++id) {
      worst = std::max(worst, distance(model.position(id, t), config.rally));
    }
    return worst;
  };
  const auto spread = [&](SimTime t) {
    double worst = 0;
    for (NodeId a = 0; a < 35; ++a) {
      for (NodeId b = a + 1; b < 35; ++b) {
        worst = std::max(worst, distance(model.position(a, t),
                                         model.position(b, t)));
      }
    }
    return worst;
  };

  // Scattered at the start: far beyond one radio range (442 m).
  EXPECT_GT(spread(SimTime::zero()), 1000.0);
  // The spike: every node within the rally disc for the whole dwell.
  for (double t : {240.0, 270.0, 300.0}) {
    EXPECT_LE(max_rally_distance(SimTime::from_seconds(t)),
              config.rally_radius_m + 1e-9)
        << "t=" << t;
  }
  // Long after dispersal (5000 m at 10 mps: parked by t=800), scattered
  // again and static.
  const SimTime late = SimTime::from_seconds(900.0);
  EXPECT_GT(spread(late), 1000.0);
  for (NodeId id = 0; id < 35; ++id) {
    EXPECT_EQ(model.speed(id, late), 0.0);
    EXPECT_EQ(model.position(id, late),
              model.position(id, SimTime::from_seconds(1000.0)));
  }
}

TEST(AdversarialMobilityShapes, ConvergedPhaseBeatsDispersedPhase) {
  const ScenarioSpec* spec = find_scenario("adversarial_mobility");
  ASSERT_NE(spec, nullptr);
  // axes: phase (0 pre, 1 converged, 2 dispersed), speed_mps.
  const core::RunResult converged =
      run_point(*spec, point_for(*spec, {1.0, 5.0}));
  const core::RunResult dispersed =
      run_point(*spec, point_for(*spec, {2.0, 5.0}));
  // Publishing into the crowd reaches everyone nearly instantly...
  EXPECT_GT(converged.reliability(), 0.95);
  EXPECT_LT(converged.mean_delivery_latency_s(), 1.0);
  // ...while the dispersed network maroons events on their carriers.
  EXPECT_LT(dispersed.reliability(), converged.reliability() - 0.3);
}

TEST(AdversarialMobilityShapes, FunnelingCarriersSpikeDuplicates) {
  const ScenarioSpec* spec = find_scenario("adversarial_mobility");
  ASSERT_NE(spec, nullptr);
  const core::RunResult pre =
      run_point(*spec, point_for(*spec, {0.0, 5.0}));
  const core::RunResult converged =
      run_point(*spec, point_for(*spec, {1.0, 5.0}));
  // En-route carriers re-encounter and re-bundle; the converged crowd's
  // perfect overhearing suppresses redundant sends almost entirely.
  EXPECT_GT(pre.mean_duplicates_per_node(),
            converged.mean_duplicates_per_node());
}

}  // namespace
}  // namespace frugal::runner
