// The sharded-sweep contract: every partition of the job range — even,
// uneven, single-job and empty shards alike — merges back to CSV/JSONL
// byte-equal to the unsharded run at any worker count, the artifact
// serialization round-trips exactly, and malformed shard specs, incomplete
// or overlapping shard sets and artifacts from mismatched sweeps die with a
// contract violation instead of merging garbage.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/registry.hpp"
#include "runner/shard.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"

namespace frugal::runner {
namespace {

/// A fast scenario with an uneven job grid: 2 protocols x 3 publishers x
/// 2 seeds = 12 jobs of a small static world.
ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "shard_probe";
  spec.title = "shard probe";
  Axis protocol;
  protocol.name = "protocol";
  protocol.values = {0, 1};
  // Labeled axis: serialized artifacts carry these names, and merge
  // resolves them back through the parser — the protocol-identity
  // round-trip the registry scenarios rely on.
  protocol.format = [](double value) {
    return std::string{value == 0 ? "frugal" : "simple-flooding"};
  };
  protocol.parse = [](std::string_view token) -> std::optional<double> {
    if (token == "frugal") return 0.0;
    if (token == "simple-flooding") return 1.0;
    return std::nullopt;
  };
  Axis publisher;
  publisher.name = "publisher";
  publisher.values = {0, 1, 2};
  publisher.aggregate = true;
  spec.axes = {protocol, publisher};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config;
    config.node_count = 8;
    config.interest_fraction = 1.0;
    config.mobility = core::StaticSetup{400.0, 400.0};
    config.medium.range_m = 200.0;
    config.warmup = SimDuration::from_seconds(2);
    config.event_validity = SimDuration::from_seconds(10);
    config.protocol =
        point.get("protocol") == 0 ? "frugal" : "simple-flooding";
    config.publisher = static_cast<NodeId>(point.get("publisher"));
    config.seed = seed;
    return config;
  };
  spec.metrics = {{"reliability", 3,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.reliability();
                   }},
                  {"bytes", 0,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.mean_bytes_sent_per_node();
                   }}};
  return spec;
}

std::vector<ShardArtifact> run_all_shards(const ScenarioSpec& spec,
                                          SweepOptions options, int count) {
  std::vector<ShardArtifact> artifacts;
  artifacts.reserve(static_cast<std::size_t>(count));
  for (int index = 0; index < count; ++index) {
    options.shard = ShardSpec{index, count};
    artifacts.push_back(run_sweep_shard(spec, options));
  }
  return artifacts;
}

/// The tentpole guarantee, end to end: for every partition the merged
/// result renders byte-equal to the unsharded run — serially and on 8
/// workers — in both machine formats and the table.
void expect_partitions_merge_byte_equal(const ScenarioSpec& spec,
                                        SweepOptions options) {
  options.jobs = 1;
  const SweepResult serial = run_sweep(spec, options);
  const std::string csv = sweep_csv(serial);
  const std::string jsonl = sweep_jsonl(serial);
  options.jobs = 8;
  const SweepResult parallel = run_sweep(spec, options);
  EXPECT_EQ(csv, sweep_csv(parallel));
  EXPECT_EQ(jsonl, sweep_jsonl(parallel));

  for (int count : {1, 2, 3, 7}) {
    // Round-trip every artifact through its serialized form — the exact
    // bytes a remote shard ships home.
    std::vector<ShardArtifact> artifacts;
    for (const ShardArtifact& artifact :
         run_all_shards(spec, options, count)) {
      artifacts.push_back(parse_shard(serialize_shard(artifact)));
    }
    const SweepResult merged = merge_shards(spec, std::move(artifacts));
    EXPECT_EQ(csv, sweep_csv(merged)) << count << " shards";
    EXPECT_EQ(jsonl, sweep_jsonl(merged)) << count << " shards";
    EXPECT_EQ(sweep_table(serial).to_string(),
              sweep_table(merged).to_string())
        << count << " shards";
    EXPECT_EQ(merged.merged_from, count);
    EXPECT_EQ(merged.jobs, 0);
  }
}

TEST(ShardEquivalence, TinySpecEveryPartitionMergesByteEqual) {
  // 12 jobs over {1, 2, 3, 7} shards covers even, uneven and single-job
  // slices (12/7 gives sizes 1 and 2).
  SweepOptions options;
  expect_partitions_merge_byte_equal(tiny_spec(), options);
}

TEST(ShardEquivalence, RegisteredCityScenarioMergesByteEqual) {
  const ScenarioSpec* spec = find_scenario("fig13_heartbeat");
  ASSERT_NE(spec, nullptr);
  SweepOptions options;
  options.seeds = 1;
  Axis hb;
  hb.name = "hb_upper_s";
  hb.values = {1, 5};
  Axis publisher;
  publisher.name = "publisher";
  publisher.values = {0, 7};
  options.overrides = {hb, publisher};
  // 4 jobs over 7 shards exercises empty shards.
  expect_partitions_merge_byte_equal(*spec, options);
}

TEST(ShardEquivalence, RegisteredMemoryPressureScenarioMergesByteEqual) {
  const ScenarioSpec* spec = find_scenario("memory_pressure");
  ASSERT_NE(spec, nullptr);
  SweepOptions options;
  options.seeds = 1;
  Axis capacity;
  capacity.name = "capacity";
  capacity.values = {2, 64};
  Axis rate;
  rate.name = "rate_eps";
  rate.values = {4};
  options.overrides = {capacity, rate};
  expect_partitions_merge_byte_equal(*spec, options);
}

TEST(ShardEquivalence, SeedBaseTravelsThroughTheArtifact) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  options.seed_base = 4242;
  options.jobs = 1;
  const std::string expected = sweep_csv(run_sweep(spec, options));
  const SweepResult merged =
      merge_shards(spec, run_all_shards(spec, options, 2));
  EXPECT_EQ(expected, sweep_csv(merged));
  // ...and a different base produces a different byte stream.
  options.seed_base = 1;
  EXPECT_NE(expected, sweep_csv(run_sweep(spec, options)));
}

TEST(ShardArtifactFormat, SerializeParseRoundTripsExactly) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.jobs = 2;
  options.shard = ShardSpec{1, 3};
  const ShardArtifact artifact = run_sweep_shard(spec, options);
  const std::string text = serialize_shard(artifact);
  const ShardArtifact parsed = parse_shard(text);
  EXPECT_EQ(serialize_shard(parsed), text);
  EXPECT_EQ(parsed.scenario, "shard_probe");
  EXPECT_EQ(parsed.shard.index, 1);
  EXPECT_EQ(parsed.shard.count, 3);
  EXPECT_EQ(parsed.job_count, 12u);
  EXPECT_EQ(parsed.range, shard_range(12, options.shard));
  ASSERT_EQ(parsed.values.size(), artifact.values.size());
  for (std::size_t i = 0; i < parsed.values.size(); ++i) {
    ASSERT_EQ(parsed.values[i].size(), artifact.values[i].size());
    for (std::size_t m = 0; m < parsed.values[i].size(); ++m) {
      // %.17g round-trips doubles bit-for-bit; merge depends on it.
      EXPECT_EQ(parsed.values[i][m], artifact.values[i][m]);
    }
  }
}

// ---------------------------------------------------------------------------
// Invalid inputs die loudly.

TEST(ShardSpecParsing, TryParseAcceptsOnlyWellFormedSpecs) {
  // The non-aborting variant the CLI front-ends build usage errors from.
  ASSERT_TRUE(try_parse_shard_spec("0/1").has_value());
  EXPECT_EQ(try_parse_shard_spec("0/1")->count, 1);
  EXPECT_EQ(try_parse_shard_spec("2/7")->index, 2);
  for (const char* bad :
       {"3/3", "-1/2", "1/0", "abc", "1/2/3", "1", "", "1/2x", "0/999999"}) {
    EXPECT_FALSE(try_parse_shard_spec(bad).has_value()) << bad;
  }
}

TEST(ShardDeathTest, ParseShardSpecRejectsMalformedSpecs) {
  EXPECT_EQ(parse_shard_spec("0/1").count, 1);
  EXPECT_EQ(parse_shard_spec("2/7").index, 2);
  const auto parse = [](const char* text) {
    static_cast<void>(parse_shard_spec(text));
  };
  EXPECT_DEATH(parse("3/3"), "shard spec must be i/N");
  EXPECT_DEATH(parse("-1/2"), "shard spec must be i/N");
  EXPECT_DEATH(parse("1/0"), "shard spec must be i/N");
  EXPECT_DEATH(parse("abc"), "shard spec must be i/N");
  EXPECT_DEATH(parse("1/2/3"), "shard spec must be i/N");
  EXPECT_DEATH(parse("1"), "shard spec must be i/N");
  EXPECT_DEATH(parse(""), "shard spec must be i/N");
}

TEST(ShardDeathTest, ShardRangeRejectsOutOfRangeShards) {
  const auto range = [](std::size_t jobs, int index, int count) {
    static_cast<void>(shard_range(jobs, ShardSpec{index, count}));
  };
  EXPECT_DEATH(range(10, 2, 2), "index < ");
  EXPECT_DEATH(range(10, 0, 0), "count >= 1");
}

TEST(ShardDeathTest, MergeRejectsIncompleteAndOverlappingSets) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  const std::vector<ShardArtifact> artifacts =
      run_all_shards(spec, options, 3);
  const auto merge = [&spec](std::vector<ShardArtifact> set) {
    static_cast<void>(merge_shards(spec, std::move(set)));
  };

  EXPECT_DEATH(merge({artifacts[0], artifacts[2]}),
               "incomplete or oversized shard set");
  EXPECT_DEATH(merge({artifacts[0], artifacts[1], artifacts[1]}),
               "duplicate or missing shard");
  EXPECT_DEATH(
      merge({artifacts[0], artifacts[1], artifacts[2], artifacts[2]}),
      "incomplete or oversized shard set");
}

TEST(ShardDeathTest, MergeRejectsMismatchedSweeps) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  const std::vector<ShardArtifact> base = run_all_shards(spec, options, 2);
  const auto merge = [](const ScenarioSpec& with,
                        std::vector<ShardArtifact> set) {
    static_cast<void>(merge_shards(with, std::move(set)));
  };

  // Different seed base.
  SweepOptions other_base = options;
  other_base.seed_base = 999;
  other_base.shard = ShardSpec{1, 2};
  EXPECT_DEATH(
      merge(spec, {base[0], run_sweep_shard(spec, other_base)}),
      "different seed bases");

  // Different grid with the same job count.
  SweepOptions other_grid = options;
  Axis publisher;
  publisher.name = "publisher";
  publisher.values = {0, 2, 4};
  other_grid.overrides = {publisher};
  other_grid.shard = ShardSpec{1, 2};
  EXPECT_DEATH(
      merge(spec, {base[0], run_sweep_shard(spec, other_grid)}),
      "different grids");

  // Different seed count (hence job count).
  SweepOptions other_seeds = options;
  other_seeds.seeds = 2;
  other_seeds.shard = ShardSpec{1, 2};
  EXPECT_DEATH(
      merge(spec, {base[0], run_sweep_shard(spec, other_seeds)}),
      "job_count");

  // Artifacts for a different scenario than the spec being merged.
  const ScenarioSpec* city = find_scenario("fig13_heartbeat");
  ASSERT_NE(city, nullptr);
  EXPECT_DEATH(merge(*city, {base[0], base[1]}), "scenario == spec.name");
}

TEST(ShardArtifactFormat, LabeledAxisCarriesProtocolNames) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  options.shard = ShardSpec{0, 1};
  const ShardArtifact artifact = run_sweep_shard(spec, options);
  ASSERT_EQ(artifact.axis_labels.size(), 2u);
  EXPECT_EQ(artifact.axis_labels[0],
            (std::vector<std::string>{"frugal", "simple-flooding"}));
  EXPECT_TRUE(artifact.axis_labels[1].empty());  // numeric axis: no labels
  const std::string text = serialize_shard(artifact);
  EXPECT_NE(text.find("\"labels\":[\"frugal\",\"simple-flooding\"]"),
            std::string::npos)
      << text;
  EXPECT_EQ(parse_shard(text).axis_labels, artifact.axis_labels);
}

TEST(ShardDeathTest, MergeAbortsOnUnregisteredProtocolLabel) {
  // An artifact naming a protocol this build does not know must die at
  // merge, not silently run ordinal garbage.
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  options.shard = ShardSpec{0, 1};
  std::string text = serialize_shard(run_sweep_shard(spec, options));
  const std::size_t at = text.find("\"frugal\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 8, "\"fruggal\"");
  std::vector<ShardArtifact> tampered;
  tampered.push_back(parse_shard(text));
  EXPECT_DEATH(static_cast<void>(merge_shards(spec, std::move(tampered))),
               "unknown label \"fruggal\" for axis \"protocol\"");
}

TEST(ShardDeathTest, MergeAbortsWhenSpecAxisCannotParseLabels) {
  // Labels in the artifact but no parser on the spec's axis: the merge has
  // no way to honour the names, so it must refuse.
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  options.shard = ShardSpec{0, 1};
  const ShardArtifact artifact = run_sweep_shard(spec, options);
  ScenarioSpec unparsing = tiny_spec();
  unparsing.axes[0].parse = nullptr;
  EXPECT_DEATH(static_cast<void>(merge_shards(unparsing, {artifact})),
               "labels for an axis without a parser");
}

TEST(ShardDeathTest, MergeRejectsShardsWithDifferentLabels) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  const std::vector<ShardArtifact> base = run_all_shards(spec, options, 2);
  std::string text = serialize_shard(base[1]);
  const std::size_t at = text.find("\"simple-flooding\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 17, "\"gossip\"");
  std::vector<ShardArtifact> mixed;
  mixed.push_back(base[0]);
  mixed.push_back(parse_shard(text));
  EXPECT_DEATH(static_cast<void>(merge_shards(spec, std::move(mixed))),
               "different grids");
}

TEST(ShardDeathTest, ParseRejectsMalformedArtifacts) {
  const ScenarioSpec spec = tiny_spec();
  SweepOptions options;
  options.seeds = 1;
  options.shard = ShardSpec{0, 3};
  const std::string good = serialize_shard(run_sweep_shard(spec, options));
  const auto parse = [](const std::string& text) {
    static_cast<void>(parse_shard(text));
  };

  EXPECT_DEATH(parse("not an artifact"), "malformed shard artifact");
  EXPECT_DEATH(parse(good.substr(0, good.size() / 2)),
               "malformed shard artifact");
  EXPECT_DEATH(parse(good + "trailing\n"),
               "trailing data in shard artifact");
  // A tampered job index breaks the contiguous job-line order.
  std::string tampered = good;
  const std::size_t at = tampered.find("{\"job\":0");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 8, "{\"job\":9");
  EXPECT_DEATH(parse(tampered), "job lines out of order");
}

}  // namespace
}  // namespace frugal::runner
