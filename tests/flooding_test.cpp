#include "core/flooding.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"

namespace frugal::core {
namespace {

using namespace frugal::time_literals;
using topics::Topic;

struct World {
  World(std::vector<Vec2> positions, FloodingVariant variant)
      : mobility{std::move(positions)},
        medium{scheduler, mobility, radio(), Rng{7}} {
    FloodingConfig config;
    config.variant = variant;
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      nodes.push_back(
          std::make_unique<FloodingNode>(id, scheduler, medium, config));
    }
  }

  static net::MediumConfig radio() {
    net::MediumConfig config;
    config.range_m = 100.0;
    config.max_jitter = SimDuration::from_ms(2);
    return config;
  }

  FloodingNode& node(NodeId id) { return *nodes[id]; }
  void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

  Event make_event(const char* topic, double validity_s = 60.0) {
    Event e;
    e.topic = Topic::parse(topic);
    e.validity = SimDuration::from_seconds(validity_s);
    return e;
  }

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  net::Medium medium;
  std::vector<std::unique_ptr<FloodingNode>> nodes;
};

TEST(FloodingTest, SimpleFloodingDeliversToSubscriber) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kSimple};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(2_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FloodingTest, SimpleFloodingRetransmitsEverySecond) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kSimple};
  w.node(0).publish(w.make_event(".a.x", 30.0));
  w.run_for(10_sec);
  // Initial send + ~10 ticks; node 1 also relays what it stores.
  EXPECT_GE(w.node(0).metrics().events_sent, 10u);
  EXPECT_GE(w.node(1).metrics().events_sent, 8u);
}

TEST(FloodingTest, SimpleFloodingRelaysParasites) {
  // Node 1 is not subscribed, yet with simple flooding it stores and relays,
  // so node 2 (out of 0's range) still receives via 1.
  World w{{{0, 0}, {90, 0}, {180, 0}}, FloodingVariant::kSimple};
  w.node(2).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 1u);
  EXPECT_GE(w.node(1).metrics().parasites, 1u);
  EXPECT_GE(w.node(1).stored_event_count(), 1u);
}

TEST(FloodingTest, InterestAwareDoesNotRelayParasites) {
  World w{{{0, 0}, {90, 0}, {180, 0}}, FloodingVariant::kInterestAware};
  w.node(2).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(10_sec);
  // Node 1 hears but neither stores nor forwards; node 2 stays dark.
  EXPECT_EQ(w.node(1).stored_event_count(), 0u);
  EXPECT_GE(w.node(1).metrics().parasites, 1u);
  EXPECT_TRUE(w.node(2).metrics().deliveries.empty());
}

TEST(FloodingTest, InterestAwareSubscriberRelays) {
  World w{{{0, 0}, {90, 0}, {180, 0}}, FloodingVariant::kInterestAware};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(2).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 1u);
}

TEST(FloodingTest, NeighborInterestOnlySendsWithInterestedNeighbors) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kNeighborInterest};
  w.node(0).subscribe(Topic::parse(".a"));
  // Node 1 subscribes to something else: no interested neighbor -> after the
  // initial publish broadcast, the ticker stays silent.
  w.node(1).subscribe(Topic::parse(".b"));
  w.node(0).publish(w.make_event(".a.x", 20.0));
  w.run_for(10_sec);
  EXPECT_LE(w.node(0).metrics().events_sent, 1u);
}

TEST(FloodingTest, NeighborInterestSendsOncePerInterestedNeighbor) {
  World w{{{0, 0}, {50, 0}, {0, 50}, {50, 50}},
          FloodingVariant::kNeighborInterest};
  for (NodeId id = 1; id < 4; ++id) w.node(id).subscribe(Topic::parse(".a"));
  w.node(0).subscribe(Topic::parse(".a"));
  w.run_for(3_sec);  // heartbeats populate neighbor tables
  const auto sent_before = w.node(0).metrics().events_sent;
  w.node(0).publish(w.make_event(".a.x", 10.0));
  w.run_for(1500_ms);
  // One initial broadcast plus one tick at 3 interested neighbors each.
  EXPECT_GE(w.node(0).metrics().events_sent - sent_before, 4u);
}

TEST(FloodingTest, ExpiredEventsStopCirculating) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kSimple};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x", /*validity_s=*/3.0));
  w.run_for(10_sec);
  const auto sent_at_10 = w.node(0).metrics().events_sent +
                          w.node(1).metrics().events_sent;
  w.run_for(10_sec);
  const auto sent_at_20 = w.node(0).metrics().events_sent +
                          w.node(1).metrics().events_sent;
  EXPECT_EQ(sent_at_10, sent_at_20);
  EXPECT_EQ(w.node(0).stored_event_count(), 0u);
}

TEST(FloodingTest, DuplicatesAreCounted) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kSimple};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x", 10.0));
  w.run_for(8_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
  EXPECT_GE(w.node(1).metrics().duplicates, 5u);  // ~1 duplicate per tick
}

TEST(FloodingTest, UnsubscribeStopsDeliveries) {
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kInterestAware};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(1).unsubscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
  EXPECT_GE(w.node(1).metrics().parasites, 1u);
}

TEST(FloodingTest, ResubscribeAfterFullUnsubscribeDeliversAgain) {
  // Regression companion to the frugal re-subscribe test: a flooding
  // process that drops its last topic and re-subscribes must receive events
  // published afterwards (the ticker keeps running; the subscription set
  // alone gates delivery).
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kInterestAware};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(1).unsubscribe(Topic::parse(".a"));
  w.run_for(2_sec);
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(3_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(FloodingTest, DuplicateSubscribeIsIdempotent) {
  // One unsubscribe undoes any number of identical subscribes.
  World w{{{0, 0}, {50, 0}}, FloodingVariant::kInterestAware};
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".a"));
  w.node(1).unsubscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
}

TEST(FloodingTest, PublisherDeliversToItselfOnlyWhenSubscribed) {
  World unsub{{{0, 0}}, FloodingVariant::kSimple};
  unsub.node(0).publish(unsub.make_event(".a.x"));
  EXPECT_TRUE(unsub.node(0).metrics().deliveries.empty());

  World sub{{{0, 0}}, FloodingVariant::kSimple};
  sub.node(0).subscribe(Topic::parse(".a"));
  sub.node(0).publish(sub.make_event(".a.x"));
  EXPECT_EQ(sub.node(0).metrics().deliveries.size(), 1u);
}

}  // namespace
}  // namespace frugal::core
