// The sweep runner's core guarantee: aggregated output is byte-identical
// whatever the worker count, and pushing runs through the parallel path
// reproduces the golden traces bit-for-bit. This suite is also the one CI
// runs under ThreadSanitizer (tsan preset) to prove the pool is race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "golden_trace.hpp"
#include "runner/registry.hpp"
#include "runner/shard.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "trace/trace.hpp"

namespace frugal::runner {
namespace {

/// A fast scenario with enough grid to keep 8 workers busy: 2 protocols x
/// 3 speeds x 2 seeds = 12 simulations of a small RWP world.
ScenarioSpec fast_spec() {
  ScenarioSpec spec;
  spec.name = "determinism_probe";
  spec.title = "determinism probe";
  Axis protocol;
  protocol.name = "protocol";
  protocol.values = {0, 1};
  Axis speed;
  speed.name = "speed_mps";
  speed.values = {2, 8, 20};
  spec.axes = {protocol, speed};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config;
    config.node_count = 12;
    config.interest_fraction = 0.75;
    core::RandomWaypointSetup rwp;
    rwp.config.width_m = 800.0;
    rwp.config.height_m = 800.0;
    rwp.config.speed_min_mps = point.get("speed_mps");
    rwp.config.speed_max_mps = point.get("speed_mps");
    config.mobility = rwp;
    config.medium.range_m = 250.0;
    config.warmup = SimDuration::from_seconds(5);
    config.event_validity = SimDuration::from_seconds(20);
    config.event_count = 2;
    config.protocol =
        point.get("protocol") == 0 ? "frugal" : "simple-flooding";
    config.seed = seed;
    return config;
  };
  spec.metrics = {{"reliability", 3,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.reliability();
                   }},
                  {"bytes", 0,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.mean_bytes_sent_per_node();
                   }},
                  {"duplicates", 1,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.mean_duplicates_per_node();
                   }}};
  return spec;
}

SweepResult sweep_with_jobs(int jobs) {
  static const ScenarioSpec spec = fast_spec();
  SweepOptions options;
  options.jobs = jobs;
  return run_sweep(spec, options);
}

TEST(SweepDeterminism, CsvByteIdenticalAcrossWorkerCounts) {
  const std::string serial = sweep_csv(sweep_with_jobs(1));
  const std::string parallel8 = sweep_csv(sweep_with_jobs(8));
  const std::string parallel3 = sweep_csv(sweep_with_jobs(3));
  EXPECT_EQ(serial, parallel8);
  EXPECT_EQ(serial, parallel3);
  EXPECT_FALSE(serial.empty());
}

TEST(SweepDeterminism, JsonlByteIdenticalAcrossWorkerCounts) {
  EXPECT_EQ(sweep_jsonl(sweep_with_jobs(1)), sweep_jsonl(sweep_with_jobs(8)));
}

TEST(SweepDeterminism, RepeatedParallelRunsAreStable) {
  EXPECT_EQ(sweep_csv(sweep_with_jobs(8)), sweep_csv(sweep_with_jobs(8)));
}

TEST(SweepDeterminism, RegisteredScenarioStableUnderWorkers) {
  // A real registered scenario through the same guarantee, shrunk via grid
  // overrides so the test stays fast (city world, 2 x 3 x 1 seed).
  const ScenarioSpec* spec = find_scenario("fig13_heartbeat");
  ASSERT_NE(spec, nullptr);
  SweepOptions options;
  options.seeds = 1;
  Axis hb;
  hb.name = "hb_upper_s";
  hb.values = {1, 5};
  Axis publisher;
  publisher.name = "publisher";
  publisher.values = {0, 7, 14};
  options.overrides = {hb, publisher};

  options.jobs = 1;
  const std::string serial = sweep_csv(run_sweep(*spec, options));
  options.jobs = 8;
  const std::string parallel = sweep_csv(run_sweep(*spec, options));
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// The job-index partition behind sharded sweeps: shards are disjoint,
// cover the whole range, stay balanced, and per-job seeds do not depend on
// how the range is cut.

TEST(ShardPartition, RangesAreDisjointCoveringAndBalanced) {
  for (std::size_t job_count : {std::size_t{0}, std::size_t{1},
                                std::size_t{5}, std::size_t{12},
                                std::size_t{97}, std::size_t{1000}}) {
    for (int count : {1, 2, 3, 7, 16, 97}) {
      std::size_t cursor = 0;
      std::size_t smallest = job_count;
      std::size_t largest = 0;
      for (int index = 0; index < count; ++index) {
        const JobRange range =
            shard_range(job_count, ShardSpec{index, count});
        // Contiguous from the previous shard's end: disjoint + covering.
        EXPECT_EQ(range.begin, cursor)
            << job_count << " jobs, shard " << index << "/" << count;
        EXPECT_LE(range.begin, range.end);
        smallest = std::min(smallest, range.size());
        largest = std::max(largest, range.size());
        cursor = range.end;
      }
      EXPECT_EQ(cursor, job_count) << job_count << " jobs / " << count;
      EXPECT_LE(largest - smallest, 1u)
          << "unbalanced partition: " << job_count << " jobs / " << count;
    }
  }
}

TEST(ShardPartition, PerJobSeedsInvariantUnderShardCount) {
  // A spy scenario records every (point, seed) pair the runner asks a
  // config for; whatever the shard count, the multiset over a complete
  // shard set must be exactly the unsharded one — the paper's
  // paired-comparison seeding survives any partition.
  using Call = std::tuple<double, double, std::uint64_t>;
  static std::mutex mutex;
  static std::vector<Call> calls;

  ScenarioSpec spec;
  spec.name = "seed_spy";
  spec.title = "seed spy";
  Axis a;
  a.name = "a";
  a.values = {1, 2, 3};
  Axis b;
  b.name = "b";
  b.values = {10, 20};
  spec.axes = {a, b};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    {
      const std::lock_guard<std::mutex> lock{mutex};
      calls.emplace_back(point.get("a"), point.get("b"), seed);
    }
    core::ExperimentConfig config;
    config.node_count = 3;
    config.interest_fraction = 1.0;
    config.mobility = core::StaticSetup{100.0, 100.0};
    config.medium.range_m = 200.0;
    config.warmup = SimDuration::from_seconds(1);
    config.event_validity = SimDuration::from_seconds(2);
    config.seed = seed;
    return config;
  };
  spec.metrics = {{"reliability", 3,
                   [](const core::RunResult& result, const ParamPoint&) {
                     return result.reliability();
                   }}};

  const auto collect = [&](int shard_count) {
    {
      const std::lock_guard<std::mutex> lock{mutex};
      calls.clear();
    }
    SweepOptions options;
    options.seed_base = 77;
    for (int index = 0; index < shard_count; ++index) {
      options.shard = ShardSpec{index, shard_count};
      const ShardArtifact artifact = run_sweep_shard(spec, options);
      EXPECT_EQ(artifact.range, shard_range(12, options.shard));
    }
    const std::lock_guard<std::mutex> lock{mutex};
    std::vector<Call> sorted = calls;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  };

  const std::vector<Call> unsharded = collect(1);
  EXPECT_EQ(unsharded.size(), 12u);  // 3 x 2 points x 2 seeds
  // Seeds are job_seed(base, seed_index) at every grid point.
  for (const Call& call : unsharded) {
    const std::uint64_t seed = std::get<2>(call);
    EXPECT_TRUE(seed == job_seed(77, 0) || seed == job_seed(77, 1))
        << seed;
  }
  EXPECT_EQ(collect(2), unsharded);
  EXPECT_EQ(collect(3), unsharded);
  EXPECT_EQ(collect(7), unsharded);
}

// ---------------------------------------------------------------------------
// Golden traces through the runner path.

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepDeterminism, RunnerReproducesGoldenTracesByteForByte) {
  const std::vector<testing::GoldenScenario> scenarios =
      testing::golden_scenarios();
  ASSERT_FALSE(scenarios.empty());

  // All scenarios on the pool at once, each with its own recorder — the
  // exact execution shape run_sweep uses.
  std::vector<trace::TraceRecorder> recorders(scenarios.size());
  std::vector<core::ExperimentConfig> configs;
  configs.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    core::ExperimentConfig config = scenarios[i].config;
    config.trace = &recorders[i];
    configs.push_back(config);
  }
  const std::vector<core::RunResult> results = run_parallel(configs, 8);
  ASSERT_EQ(results.size(), scenarios.size());

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::string trace =
        testing::serialize_trace(configs[i], results[i], recorders[i]);
    const std::string path = std::string(FRUGAL_GOLDEN_DIR) + "/" +
                             scenarios[i].name + ".trace";
    const std::optional<std::string> golden = read_file(path);
    ASSERT_TRUE(golden.has_value()) << "missing golden file " << path;
    EXPECT_EQ(*golden, trace)
        << scenarios[i].name
        << ": runner-path replay diverged from the golden trace";
  }
}

}  // namespace
}  // namespace frugal::runner
