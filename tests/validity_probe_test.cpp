// Validates the optimization the figure harnesses rely on (DESIGN.md §3,
// Figs. 11/12/16): for a single-publisher workload with ample memory, the
// protocol's externally visible behaviour up to time `publish + v` is
// identical for every run validity >= v, so reliability at probe validity v
// measured from one long run equals the reliability of an actual run
// executed with validity v.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace frugal::core {
namespace {

ExperimentConfig world(std::uint64_t seed, double validity_s) {
  ExperimentConfig config;
  config.node_count = 35;
  config.interest_fraction = 0.8;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 1600;
  rwp.config.height_m = 1600;
  rwp.config.speed_min_mps = 8;
  rwp.config.speed_max_mps = 8;
  config.mobility = rwp;
  config.warmup = SimDuration::from_seconds(20);
  config.event_validity = SimDuration::from_seconds(validity_s);
  config.seed = seed;
  return config;
}

class ValidityProbeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ValidityProbeEquivalence, ProbeEqualsDedicatedRun) {
  const auto [seed, probe_s] = GetParam();
  const RunResult long_run = run_experiment(world(seed, 90.0));
  const RunResult short_run = run_experiment(world(seed, probe_s));
  EXPECT_DOUBLE_EQ(
      long_run.reliability_within(SimDuration::from_seconds(probe_s)),
      short_run.reliability());
  // Stronger: the same subscribers were reached by the probe deadline.
  for (std::size_t i = 0; i < long_run.nodes.size(); ++i) {
    const auto& in_long = long_run.nodes[i].delivered_at[0];
    const auto& in_short = short_run.nodes[i].delivered_at[0];
    const SimTime deadline = long_run.events[0].published_at +
                             SimDuration::from_seconds(probe_s);
    const bool long_reached = in_long.has_value() && *in_long <= deadline;
    ASSERT_EQ(long_reached, in_short.has_value()) << "node " << i;
    if (long_reached) {
      ASSERT_EQ(*in_long, *in_short) << "node " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProbes, ValidityProbeEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(15.0, 30.0, 60.0)));

TEST(ValidityProbeTest, ProbeAtFullValidityIsIdentity) {
  const RunResult run = run_experiment(world(9, 90.0));
  EXPECT_DOUBLE_EQ(run.reliability_within(SimDuration::from_seconds(90)),
                   run.reliability());
}

}  // namespace
}  // namespace frugal::core
