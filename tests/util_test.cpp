#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/vec2.hpp"

namespace frugal {
namespace {

// -- Vec2 ---------------------------------------------------------------------

TEST(Vec2Test, Arithmetic) {
  constexpr Vec2 a{1, 2};
  constexpr Vec2 b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2}));
}

TEST(Vec2Test, Norms) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2Test, Normalized) {
  const Vec2 v = Vec2{10, 0}.normalized();
  EXPECT_DOUBLE_EQ(v.x, 1.0);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector maps to itself
}

TEST(Vec2Test, DefaultIsOrigin) {
  constexpr Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

// -- env helpers ---------------------------------------------------------------

TEST(EnvTest, MissingVariableFallsBack) {
  unsetenv("FRUGAL_TEST_ENV_X");
  EXPECT_FALSE(env_string("FRUGAL_TEST_ENV_X").has_value());
  EXPECT_EQ(env_int("FRUGAL_TEST_ENV_X", 42), 42);
  EXPECT_DOUBLE_EQ(env_double("FRUGAL_TEST_ENV_X", 2.5), 2.5);
  EXPECT_TRUE(env_bool("FRUGAL_TEST_ENV_X", true));
}

TEST(EnvTest, ReadsValues) {
  setenv("FRUGAL_TEST_ENV_X", "123", 1);
  EXPECT_EQ(env_string("FRUGAL_TEST_ENV_X"), "123");
  EXPECT_EQ(env_int("FRUGAL_TEST_ENV_X", 0), 123);
  EXPECT_DOUBLE_EQ(env_double("FRUGAL_TEST_ENV_X", 0), 123.0);
  unsetenv("FRUGAL_TEST_ENV_X");
}

TEST(EnvTest, MalformedNumberFallsBack) {
  setenv("FRUGAL_TEST_ENV_X", "not-a-number", 1);
  EXPECT_EQ(env_int("FRUGAL_TEST_ENV_X", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("FRUGAL_TEST_ENV_X", 1.5), 1.5);
  unsetenv("FRUGAL_TEST_ENV_X");
}

TEST(EnvTest, EmptyStringTreatedAsUnset) {
  setenv("FRUGAL_TEST_ENV_X", "", 1);
  EXPECT_FALSE(env_string("FRUGAL_TEST_ENV_X").has_value());
  EXPECT_EQ(env_int("FRUGAL_TEST_ENV_X", 9), 9);
  unsetenv("FRUGAL_TEST_ENV_X");
}

TEST(EnvTest, BoolSpellings) {
  for (const char* yes : {"1", "true", "yes", "on"}) {
    setenv("FRUGAL_TEST_ENV_X", yes, 1);
    EXPECT_TRUE(env_bool("FRUGAL_TEST_ENV_X", false)) << yes;
  }
  for (const char* no : {"0", "false", "off", "banana"}) {
    setenv("FRUGAL_TEST_ENV_X", no, 1);
    EXPECT_FALSE(env_bool("FRUGAL_TEST_ENV_X", true)) << no;
  }
  unsetenv("FRUGAL_TEST_ENV_X");
}

// -- logging -------------------------------------------------------------------

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kDebug);
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  Logger::set_level(before);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateEagerly) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  FRUGAL_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits below the level
  Logger::set_level(before);
}

TEST(LoggingTest, EnabledLevelWrites) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kTrace);
  FRUGAL_LOG(kInfo) << "logging smoke " << 42;  // must not crash
  Logger::set_level(before);
}

}  // namespace
}  // namespace frugal
