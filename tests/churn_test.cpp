// Failure-injection tests: the protocol under crash/recovery churn
// (paper §2: processes can crash or recover at any time) and the MAC retry
// limit under saturation.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"

namespace frugal::core {
namespace {

ExperimentConfig churn_world(std::uint64_t seed) {
  ExperimentConfig config;
  config.node_count = 30;
  config.interest_fraction = 1.0;
  RandomWaypointSetup rwp;
  rwp.config.width_m = 1200;
  rwp.config.height_m = 1200;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  config.mobility = rwp;
  config.warmup = SimDuration::from_seconds(20);
  config.event_validity = SimDuration::from_seconds(90);
  config.seed = seed;
  return config;
}

TEST(ChurnTest, ZeroRateMatchesNoChurnExactly) {
  ExperimentConfig config = churn_world(3);
  const RunResult without = run_experiment(config);
  config.churn.crashes_per_node_per_minute = 0.0;
  const RunResult with_zero = run_experiment(config);
  EXPECT_DOUBLE_EQ(without.reliability(), with_zero.reliability());
  for (std::size_t i = 0; i < without.nodes.size(); ++i) {
    EXPECT_EQ(without.nodes[i].traffic.bytes_sent,
              with_zero.nodes[i].traffic.bytes_sent);
  }
}

TEST(ChurnTest, ProtocolSurvivesModerateChurn) {
  ExperimentConfig config = churn_world(4);
  config.churn.crashes_per_node_per_minute = 0.5;  // one crash per 2 min
  config.churn.downtime_min = SimDuration::from_seconds(3);
  config.churn.downtime_max = SimDuration::from_seconds(10);
  const RunResult result = run_experiment(config);
  // A dense mobile network keeps disseminating through short blackouts.
  EXPECT_GT(result.reliability(), 0.6);
}

TEST(ChurnTest, HeavyChurnDegradesButDoesNotCrash) {
  ExperimentConfig config = churn_world(5);
  config.churn.crashes_per_node_per_minute = 6.0;  // down every ~10 s
  config.churn.downtime_min = SimDuration::from_seconds(20);
  config.churn.downtime_max = SimDuration::from_seconds(40);
  const RunResult heavy = run_experiment(config);

  ExperimentConfig calm = churn_world(5);
  const RunResult baseline = run_experiment(calm);
  EXPECT_LE(heavy.reliability(), baseline.reliability() + 1e-9);
  EXPECT_GE(heavy.reliability(), 0.0);
}

TEST(ChurnTest, ChurnIsDeterministic) {
  ExperimentConfig config = churn_world(6);
  config.churn.crashes_per_node_per_minute = 2.0;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].traffic.bytes_sent, b.nodes[i].traffic.bytes_sent);
  }
}

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, InvariantsHoldUnderChurn) {
  ExperimentConfig config = churn_world(GetParam());
  config.churn.crashes_per_node_per_minute = 2.0;
  config.churn.downtime_min = SimDuration::from_seconds(5);
  config.churn.downtime_max = SimDuration::from_seconds(15);
  const RunResult result = run_experiment(config);
  for (const NodeOutcome& node : result.nodes) {
    if (node.delivered_at[0].has_value()) {
      ASSERT_TRUE(node.subscribed);
      ASSERT_GE(*node.delivered_at[0], result.events[0].published_at);
      ASSERT_LE(*node.delivered_at[0],
                result.events[0].published_at + result.events[0].validity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// -- latency metrics -----------------------------------------------------------

TEST(LatencyTest, LatenciesSortedAndWithinValidity) {
  const RunResult result = run_experiment(churn_world(7));
  const auto latencies = result.delivery_latencies_s();
  ASSERT_FALSE(latencies.empty());
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    ASSERT_LE(latencies[i - 1], latencies[i]);
  }
  EXPECT_GE(latencies.front(), 0.0);
  EXPECT_LE(latencies.back(), 90.0);
  EXPECT_GT(result.mean_delivery_latency_s(), 0.0);
  EXPECT_LE(result.mean_delivery_latency_s(), latencies.back());
}

TEST(LatencyTest, PublisherLatencyIsZero) {
  const RunResult result = run_experiment(churn_world(8));
  EXPECT_DOUBLE_EQ(result.delivery_latencies_s().front(), 0.0);
}

}  // namespace
}  // namespace frugal::core

namespace frugal::net {
namespace {

// -- MAC retry limit -----------------------------------------------------------

class Sink final : public MediumClient {
 public:
  void on_frame(const Frame&) override { ++frames; }
  int frames = 0;
};

TEST(RetryLimitTest, SaturationDropsInsteadOfSpinning) {
  // Slow channel, tiny retry budget, two chatty neighbors: some frames must
  // be dropped at the sender and accounted as such.
  sim::Scheduler scheduler;
  mobility::StaticMobility mobility{{{0, 0}, {10, 0}}};
  MediumConfig config;
  config.range_m = 100;
  config.rate_bps = 8000;  // 1000 B/s: a 500 B frame takes 0.5 s
  config.max_jitter = SimDuration::from_us(100);
  config.max_defers = 2;
  Medium medium{scheduler, mobility, config, Rng{5}};
  Sink a;
  Sink b;
  medium.attach(0, &a);
  medium.attach(1, &b);
  for (int i = 0; i < 20; ++i) {
    medium.broadcast(0, 500, i);
    medium.broadcast(1, 500, i);
  }
  scheduler.run_until(SimTime::from_seconds(60));
  const auto& c0 = medium.counters(0);
  const auto& c1 = medium.counters(1);
  EXPECT_GT(c0.frames_dropped + c1.frames_dropped, 0u);
  // Whatever was not dropped got through (carrier sense serializes).
  EXPECT_EQ(c0.frames_sent + c0.frames_dropped, 20u);
  EXPECT_EQ(c1.frames_sent + c1.frames_dropped, 20u);
}

TEST(RetryLimitTest, NoDropsWhenChannelIsIdle) {
  sim::Scheduler scheduler;
  mobility::StaticMobility mobility{{{0, 0}, {10, 0}}};
  MediumConfig config;
  config.range_m = 100;
  config.max_defers = 1;
  Medium medium{scheduler, mobility, config, Rng{5}};
  Sink a;
  Sink b;
  medium.attach(0, &a);
  medium.attach(1, &b);
  for (int i = 0; i < 5; ++i) {
    medium.broadcast(0, 100, i);
    scheduler.run_until(scheduler.now() + SimDuration::from_seconds(1));
  }
  EXPECT_EQ(medium.counters(0).frames_dropped, 0u);
  EXPECT_EQ(b.frames, 5);
}

}  // namespace
}  // namespace frugal::net
