// Direct coverage of sim::PeriodicTask restart semantics — previously only
// exercised indirectly through the protocol suites: stop() from inside the
// callback, set_period while stopped, restart after stop, and destruction
// with a pending firing.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace frugal::sim {
namespace {

using namespace frugal::time_literals;

TEST(PeriodicTask, FiresEveryPeriodAfterInitialDelay) {
  Scheduler scheduler;
  std::vector<std::int64_t> fired_at_us;
  PeriodicTask task{scheduler, 1_sec,
                    [&] { fired_at_us.push_back(scheduler.now().us()); }};
  task.start(SimDuration::from_ms(500));
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(3600));
  EXPECT_EQ(fired_at_us, (std::vector<std::int64_t>{500000, 1500000,
                                                    2500000, 3500000}));
}

TEST(PeriodicTask, StopInsideCallbackCancelsFollowUp) {
  Scheduler scheduler;
  int fired = 0;
  // The callback needs access to the task itself, so build it via pointer.
  std::unique_ptr<PeriodicTask> self;
  self = std::make_unique<PeriodicTask>(scheduler, 1_sec, [&] {
    ++fired;
    self->stop();  // stop() from within fn_: arm() must not re-schedule
  });
  self->start();
  scheduler.run_until(SimTime::zero() + 10_sec);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(self->running());
}

TEST(PeriodicTask, RestartAfterStopFiresAgain) {
  Scheduler scheduler;
  int fired = 0;
  PeriodicTask task{scheduler, 1_sec, [&] { ++fired; }};
  task.start();  // zero initial delay: fires at 0, 1 s, 2 s
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(2500));
  EXPECT_EQ(fired, 3);

  task.stop();
  scheduler.run_until(SimTime::zero() + 5_sec);
  EXPECT_EQ(fired, 3);  // stopped: the pending firing was cancelled

  task.start();
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(7500));
  // Restart schedules from "now" with no initial delay: fires at 5 s
  // immediately on start, then 6 s, 7 s.
  EXPECT_EQ(fired, 6);
  EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, SetPeriodWhileStoppedAppliesOnRestart) {
  Scheduler scheduler;
  std::vector<std::int64_t> fired_at_us;
  PeriodicTask task{scheduler, 1_sec,
                    [&] { fired_at_us.push_back(scheduler.now().us()); }};
  task.stop();  // stop before ever starting: harmless
  task.set_period(2_sec);
  EXPECT_EQ(task.period(), 2_sec);

  task.start(2_sec);
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(6500));
  EXPECT_EQ(fired_at_us, (std::vector<std::int64_t>{2000000, 4000000,
                                                    6000000}));
}

TEST(PeriodicTask, SetPeriodWhileRunningTakesEffectNextCycle) {
  Scheduler scheduler;
  std::vector<std::int64_t> fired_at_us;
  PeriodicTask task{scheduler, 1_sec,
                    [&] { fired_at_us.push_back(scheduler.now().us()); }};
  task.start();  // fires at 0, schedules next at 1 s
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(100));
  task.set_period(3_sec);  // pending 1 s firing stays; 3 s applies after it
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(7500));
  EXPECT_EQ(fired_at_us, (std::vector<std::int64_t>{0, 1000000, 4000000,
                                                    7000000}));
}

TEST(PeriodicTask, StartWhileRunningIsANoOp) {
  Scheduler scheduler;
  int fired = 0;
  PeriodicTask task{scheduler, 1_sec, [&] { ++fired; }};
  task.start();
  task.start(SimDuration::from_ms(1));  // ignored: already running
  scheduler.run_until(SimTime::zero() + SimDuration::from_ms(2500));
  EXPECT_EQ(fired, 3);  // 0, 1 s, 2 s — no duplicate schedule
}

TEST(PeriodicTask, DestructionCancelsPendingFiring) {
  Scheduler scheduler;
  int fired = 0;
  {
    PeriodicTask task{scheduler, 1_sec, [&] { ++fired; }};
    task.start(1_sec);
  }  // destroyed with a firing pending
  scheduler.run_until(SimTime::zero() + 5_sec);
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTask, StopIsIdempotentAndRunningReflectsState) {
  Scheduler scheduler;
  PeriodicTask task{scheduler, 1_sec, [] {}};
  EXPECT_FALSE(task.running());
  task.stop();
  task.stop();
  EXPECT_FALSE(task.running());
  task.start();
  EXPECT_TRUE(task.running());
  task.stop();
  EXPECT_FALSE(task.running());
}

}  // namespace
}  // namespace frugal::sim
