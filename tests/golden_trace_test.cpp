// Scenario-regression tests: replay each golden scenario and diff its
// canonical trace byte-for-byte against the checked-in file. See
// golden_trace.hpp for the regeneration workflow.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "golden_trace.hpp"

namespace frugal::testing {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(FRUGAL_GOLDEN_DIR) + "/" + name + ".trace";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regen_requested() {
  // detlint: env-read-ok(test-harness regen knob; never read by simulation)
  const char* value = std::getenv("FRUGAL_REGEN_GOLDEN");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

/// Shows the first differing line so a trace mismatch is debuggable without
/// manually diffing multi-hundred-line strings.
std::string first_diff(const std::string& expected, const std::string& got) {
  std::istringstream a(expected);
  std::istringstream b(got);
  std::string line_a;
  std::string line_b;
  for (int line_no = 1;; ++line_no) {
    const bool more_a = static_cast<bool>(std::getline(a, line_a));
    const bool more_b = static_cast<bool>(std::getline(b, line_b));
    if (!more_a && !more_b) {
      return "traces identical";
    }
    if (line_a != line_b || more_a != more_b) {
      std::ostringstream out;
      out << "first difference at line " << line_no << ":\n  golden: "
          << (more_a ? line_a : "<end of trace>")
          << "\n  actual: " << (more_b ? line_b : "<end of trace>");
      return out.str();
    }
  }
}

class GoldenTraceTest : public ::testing::TestWithParam<GoldenScenario> {};

TEST_P(GoldenTraceTest, ReplayMatchesGoldenTrace) {
  const GoldenScenario& scenario = GetParam();
  const std::string trace = replay_trace(scenario);
  ASSERT_FALSE(trace.empty());

  const std::string path = golden_path(scenario.name);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << trace;
    GTEST_SKIP() << "regenerated " << path;
  }

  const std::optional<std::string> golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << "missing golden file " << path
      << " — regenerate with FRUGAL_REGEN_GOLDEN=1";
  EXPECT_EQ(*golden, trace) << first_diff(*golden, trace);
}

TEST_P(GoldenTraceTest, ReplayIsDeterministic) {
  // Two replays in the same process must serialize identically; combined
  // with the golden diff this locks determinism across processes and runs.
  const GoldenScenario& scenario = GetParam();
  EXPECT_EQ(replay_trace(scenario), replay_trace(scenario));
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenTraceTest, ::testing::ValuesIn(golden_scenarios()),
    [](const ::testing::TestParamInfo<GoldenScenario>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace frugal::testing
