#include "topics/topic_tree.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace frugal::topics {
namespace {

Topic t(const char* text) { return Topic::parse(text); }

TEST(TopicTreeTest, EmptyTree) {
  TopicTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.at(t(".a")), nullptr);
  EXPECT_TRUE(tree.collect_subtree(Topic{}).empty());
  EXPECT_TRUE(tree.topics().empty());
}

TEST(TopicTreeTest, InsertAndExactLookup) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.b"), 2);
  tree.insert(t(".a.c"), 3);
  EXPECT_EQ(tree.size(), 3u);
  const auto* ab = tree.at(t(".a.b"));
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(*ab, (std::vector<int>{1, 2}));
  EXPECT_EQ(tree.at(t(".a"))->size(), 0u);  // node exists, no values
  EXPECT_EQ(tree.at(t(".zz")), nullptr);
}

TEST(TopicTreeTest, RootValues) {
  TopicTree<std::string> tree;
  tree.insert(Topic{}, "root-value");
  ASSERT_NE(tree.at(Topic{}), nullptr);
  EXPECT_EQ(tree.at(Topic{})->front(), "root-value");
}

TEST(TopicTreeTest, CollectSubtreeMatchesCoveringSemantics) {
  TopicTree<int> tree;
  tree.insert(t(".conf"), 1);
  tree.insert(t(".conf.mw"), 2);
  tree.insert(t(".conf.mw.demo"), 3);
  tree.insert(t(".news"), 4);
  // Subscribing to .conf entitles you to 1, 2, 3 — not 4.
  EXPECT_EQ(tree.collect_subtree(t(".conf")), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(tree.collect_subtree(t(".conf.mw")), (std::vector<int>{2, 3}));
  EXPECT_EQ(tree.collect_subtree(Topic{}), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(tree.collect_subtree(t(".conf.icse")).empty());
}

TEST(TopicTreeTest, CollectIsDepthFirstSegmentOrdered) {
  TopicTree<int> tree;
  tree.insert(t(".z"), 26);
  tree.insert(t(".a"), 1);
  tree.insert(t(".a.x"), 2);
  EXPECT_EQ(tree.collect_subtree(Topic{}), (std::vector<int>{1, 2, 26}));
}

TEST(TopicTreeTest, TopicCountUnder) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.b"), 2);  // same topic
  tree.insert(t(".a.c.d"), 3);
  EXPECT_EQ(tree.topic_count_under(t(".a")), 2u);
  EXPECT_EQ(tree.topic_count_under(Topic{}), 2u);
  EXPECT_EQ(tree.topic_count_under(t(".a.b")), 1u);
  EXPECT_EQ(tree.topic_count_under(t(".nope")), 0u);
}

TEST(TopicTreeTest, RemoveIfPrunesEmptyBranches) {
  TopicTree<int> tree;
  tree.insert(t(".a.b.c"), 1);
  tree.insert(t(".a.b.c"), 2);
  tree.insert(t(".a"), 3);
  const auto removed = tree.remove_if([](int v) { return v < 3; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(tree.size(), 1u);
  // The .a.b.c branch is gone entirely.
  EXPECT_EQ(tree.at(t(".a.b.c")), nullptr);
  EXPECT_EQ(tree.at(t(".a.b")), nullptr);
  ASSERT_NE(tree.at(t(".a")), nullptr);
  EXPECT_EQ(tree.at(t(".a"))->front(), 3);
}

TEST(TopicTreeTest, RemoveIfNothingMatches) {
  TopicTree<int> tree;
  tree.insert(t(".a"), 1);
  EXPECT_EQ(tree.remove_if([](int) { return false; }), 0u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(TopicTreeTest, TopicsListing) {
  TopicTree<int> tree;
  tree.insert(t(".b"), 1);
  tree.insert(t(".a.x"), 2);
  tree.insert(Topic{}, 0);
  const auto topics = tree.topics();
  ASSERT_EQ(topics.size(), 3u);
  EXPECT_EQ(topics[0], Topic{});       // root first (depth-first)
  EXPECT_EQ(topics[1], t(".a.x"));
  EXPECT_EQ(topics[2], t(".b"));
}

TEST(TopicTreeTest, ForEachUnderMatchesCollect) {
  TopicTree<int> tree;
  tree.insert(t(".a"), 1);
  tree.insert(t(".a.b"), 2);
  tree.insert(t(".z"), 3);
  std::vector<int> visited;
  tree.for_each_under(t(".a"), [&](int v) { visited.push_back(v); });
  EXPECT_EQ(visited, tree.collect_subtree(t(".a")));
  visited.clear();
  tree.for_each_under(t(".missing"), [&](int v) { visited.push_back(v); });
  EXPECT_TRUE(visited.empty());
}

TEST(TopicTreeTest, AnyUnderShortCircuits) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.c"), 2);
  EXPECT_TRUE(tree.any_under(t(".a"), [](int v) { return v == 2; }));
  EXPECT_FALSE(tree.any_under(t(".a"), [](int v) { return v == 9; }));
  EXPECT_FALSE(tree.any_under(t(".z"), [](int) { return true; }));
  int probes = 0;
  EXPECT_TRUE(tree.any_under(Topic{}, [&](int) {
    ++probes;
    return true;
  }));
  EXPECT_EQ(probes, 1);  // stopped at the first value
}

TEST(TopicTreeTest, RemoveExactValuePrunesEmptiedPath) {
  TopicTree<int> tree;
  tree.insert(t(".a.b.c"), 1);
  tree.insert(t(".a.x"), 2);
  EXPECT_TRUE(tree.remove(t(".a.b.c"), 1));
  EXPECT_EQ(tree.size(), 1u);
  // The intermediate .a.b node is gone with the leaf...
  EXPECT_EQ(tree.at(t(".a.b")), nullptr);
  EXPECT_EQ(tree.at(t(".a.b.c")), nullptr);
  // ...but the shared ancestor survives for the sibling branch.
  ASSERT_NE(tree.at(t(".a.x")), nullptr);
  EXPECT_EQ(tree.at(t(".a.x"))->front(), 2);
}

TEST(TopicTreeTest, RemoveExactValueMisses) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  EXPECT_FALSE(tree.remove(t(".a.b"), 2));      // wrong value
  EXPECT_FALSE(tree.remove(t(".a"), 1));        // value lives deeper
  EXPECT_FALSE(tree.remove(t(".missing"), 1));  // no such branch
  EXPECT_EQ(tree.size(), 1u);
  // Removing one of two equal-topic values keeps the other.
  tree.insert(t(".a.b"), 9);
  EXPECT_TRUE(tree.remove(t(".a.b"), 1));
  ASSERT_NE(tree.at(t(".a.b")), nullptr);
  EXPECT_EQ(*tree.at(t(".a.b")), (std::vector<int>{9}));
}

TEST(TopicTreeTest, RemoveIfPrunesOnlyEmptiedBranches) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.b.c"), 2);
  tree.insert(t(".a.b.c.d"), 3);
  // Remove the middle value: the .a.b.c node empties but must survive as an
  // interior node because .a.b.c.d below it still holds a value.
  EXPECT_EQ(tree.remove_if([](int v) { return v == 2; }), 1u);
  EXPECT_EQ(tree.collect_subtree(t(".a.b")), (std::vector<int>{1, 3}));
  ASSERT_NE(tree.at(t(".a.b.c")), nullptr);
  EXPECT_TRUE(tree.at(t(".a.b.c"))->empty());
  // Now drop the deep value: the whole emptied chain below .a.b goes away.
  EXPECT_EQ(tree.remove_if([](int v) { return v == 3; }), 1u);
  EXPECT_EQ(tree.at(t(".a.b.c")), nullptr);
  EXPECT_EQ(tree.topics(), (std::vector<Topic>{t(".a.b")}));
}

// Property: after interleaved inserts and removals, topics() and
// collect_subtree agree with a model map, and no empty branch lingers
// (every listed topic holds at least one value).
class TopicTreeInterleaved : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TopicTreeInterleaved, TopicsAndSubtreesMatchModelAfterRandomOps) {
  Rng rng{GetParam()};
  TopicTree<int> tree;
  std::vector<std::pair<Topic, int>> model;
  const char* segments[] = {"a", "b", "c"};
  int next = 0;
  for (int step = 0; step < 300; ++step) {
    const bool removing = !model.empty() && rng.bernoulli(0.45);
    if (removing) {
      const auto pick = rng.uniform_u64(model.size());
      if (rng.bernoulli(0.5)) {
        ASSERT_TRUE(tree.remove(model[pick].first, model[pick].second));
      } else {
        const int value = model[pick].second;
        ASSERT_EQ(tree.remove_if([&](int v) { return v == value; }), 1u);
      }
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      Topic topic;
      const auto depth = rng.uniform_u64(5);
      for (std::uint64_t d = 0; d < depth; ++d) {
        topic = topic.child(segments[rng.uniform_u64(3)]);
      }
      tree.insert(topic, next);
      model.emplace_back(topic, next);
      ++next;
    }

    ASSERT_EQ(tree.size(), model.size());
    // topics(): exactly the distinct topics holding values, sorted
    // depth-first (== lexicographic segment order).
    std::vector<Topic> expected_topics;
    for (const auto& [topic, value] : model) {
      expected_topics.push_back(topic);
    }
    std::sort(expected_topics.begin(), expected_topics.end());
    expected_topics.erase(
        std::unique(expected_topics.begin(), expected_topics.end()),
        expected_topics.end());
    ASSERT_EQ(tree.topics(), expected_topics);
    // Spot-check covering queries against the model.
    for (const char* probe : {".", ".a", ".b.c", ".a.a.a"}) {
      const Topic query = Topic::parse(probe);
      auto got = tree.collect_subtree(query);
      std::sort(got.begin(), got.end());
      std::vector<int> expected;
      for (const auto& [topic, value] : model) {
        if (query.covers(topic)) expected.push_back(value);
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "query " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicTreeInterleaved,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(TopicTreeTest, Clear) {
  TopicTree<int> tree;
  tree.insert(t(".a"), 1);
  tree.clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.at(t(".a")), nullptr);
}

// Property: collect_subtree(T) equals the brute-force filter by covers().
class TopicTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopicTreeProperty, SubtreeEqualsCoverFilter) {
  Rng rng{GetParam()};
  TopicTree<int> tree;
  std::vector<std::pair<Topic, int>> entries;
  const char* segments[] = {"a", "b", "c"};
  for (int i = 0; i < 60; ++i) {
    Topic topic;
    const auto depth = rng.uniform_u64(4);
    for (std::uint64_t d = 0; d < depth; ++d) {
      topic = topic.child(segments[rng.uniform_u64(3)]);
    }
    tree.insert(topic, i);
    entries.emplace_back(topic, i);
  }
  for (const char* probe : {".", ".a", ".a.b", ".b.c.a", ".c"}) {
    const Topic query = Topic::parse(probe);
    auto got = tree.collect_subtree(query);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (const auto& [topic, value] : entries) {
      if (query.covers(topic)) expected.push_back(value);
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << "query " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace frugal::topics
