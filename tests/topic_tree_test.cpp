#include "topics/topic_tree.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace frugal::topics {
namespace {

Topic t(const char* text) { return Topic::parse(text); }

TEST(TopicTreeTest, EmptyTree) {
  TopicTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.at(t(".a")), nullptr);
  EXPECT_TRUE(tree.collect_subtree(Topic{}).empty());
  EXPECT_TRUE(tree.topics().empty());
}

TEST(TopicTreeTest, InsertAndExactLookup) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.b"), 2);
  tree.insert(t(".a.c"), 3);
  EXPECT_EQ(tree.size(), 3u);
  const auto* ab = tree.at(t(".a.b"));
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(*ab, (std::vector<int>{1, 2}));
  EXPECT_EQ(tree.at(t(".a"))->size(), 0u);  // node exists, no values
  EXPECT_EQ(tree.at(t(".zz")), nullptr);
}

TEST(TopicTreeTest, RootValues) {
  TopicTree<std::string> tree;
  tree.insert(Topic{}, "root-value");
  ASSERT_NE(tree.at(Topic{}), nullptr);
  EXPECT_EQ(tree.at(Topic{})->front(), "root-value");
}

TEST(TopicTreeTest, CollectSubtreeMatchesCoveringSemantics) {
  TopicTree<int> tree;
  tree.insert(t(".conf"), 1);
  tree.insert(t(".conf.mw"), 2);
  tree.insert(t(".conf.mw.demo"), 3);
  tree.insert(t(".news"), 4);
  // Subscribing to .conf entitles you to 1, 2, 3 — not 4.
  EXPECT_EQ(tree.collect_subtree(t(".conf")), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(tree.collect_subtree(t(".conf.mw")), (std::vector<int>{2, 3}));
  EXPECT_EQ(tree.collect_subtree(Topic{}), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(tree.collect_subtree(t(".conf.icse")).empty());
}

TEST(TopicTreeTest, CollectIsDepthFirstSegmentOrdered) {
  TopicTree<int> tree;
  tree.insert(t(".z"), 26);
  tree.insert(t(".a"), 1);
  tree.insert(t(".a.x"), 2);
  EXPECT_EQ(tree.collect_subtree(Topic{}), (std::vector<int>{1, 2, 26}));
}

TEST(TopicTreeTest, TopicCountUnder) {
  TopicTree<int> tree;
  tree.insert(t(".a.b"), 1);
  tree.insert(t(".a.b"), 2);  // same topic
  tree.insert(t(".a.c.d"), 3);
  EXPECT_EQ(tree.topic_count_under(t(".a")), 2u);
  EXPECT_EQ(tree.topic_count_under(Topic{}), 2u);
  EXPECT_EQ(tree.topic_count_under(t(".a.b")), 1u);
  EXPECT_EQ(tree.topic_count_under(t(".nope")), 0u);
}

TEST(TopicTreeTest, RemoveIfPrunesEmptyBranches) {
  TopicTree<int> tree;
  tree.insert(t(".a.b.c"), 1);
  tree.insert(t(".a.b.c"), 2);
  tree.insert(t(".a"), 3);
  const auto removed = tree.remove_if([](int v) { return v < 3; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(tree.size(), 1u);
  // The .a.b.c branch is gone entirely.
  EXPECT_EQ(tree.at(t(".a.b.c")), nullptr);
  EXPECT_EQ(tree.at(t(".a.b")), nullptr);
  ASSERT_NE(tree.at(t(".a")), nullptr);
  EXPECT_EQ(tree.at(t(".a"))->front(), 3);
}

TEST(TopicTreeTest, RemoveIfNothingMatches) {
  TopicTree<int> tree;
  tree.insert(t(".a"), 1);
  EXPECT_EQ(tree.remove_if([](int) { return false; }), 0u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(TopicTreeTest, TopicsListing) {
  TopicTree<int> tree;
  tree.insert(t(".b"), 1);
  tree.insert(t(".a.x"), 2);
  tree.insert(Topic{}, 0);
  const auto topics = tree.topics();
  ASSERT_EQ(topics.size(), 3u);
  EXPECT_EQ(topics[0], Topic{});       // root first (depth-first)
  EXPECT_EQ(topics[1], t(".a.x"));
  EXPECT_EQ(topics[2], t(".b"));
}

TEST(TopicTreeTest, Clear) {
  TopicTree<int> tree;
  tree.insert(t(".a"), 1);
  tree.clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.at(t(".a")), nullptr);
}

// Property: collect_subtree(T) equals the brute-force filter by covers().
class TopicTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopicTreeProperty, SubtreeEqualsCoverFilter) {
  Rng rng{GetParam()};
  TopicTree<int> tree;
  std::vector<std::pair<Topic, int>> entries;
  const char* segments[] = {"a", "b", "c"};
  for (int i = 0; i < 60; ++i) {
    Topic topic;
    const auto depth = rng.uniform_u64(4);
    for (std::uint64_t d = 0; d < depth; ++d) {
      topic = topic.child(segments[rng.uniform_u64(3)]);
    }
    tree.insert(topic, i);
    entries.emplace_back(topic, i);
  }
  for (const char* probe : {".", ".a", ".a.b", ".b.c.a", ".c"}) {
    const Topic query = Topic::parse(probe);
    auto got = tree.collect_subtree(query);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (const auto& [topic, value] : entries) {
      if (query.covers(topic)) expected.push_back(value);
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << "query " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace frugal::topics
