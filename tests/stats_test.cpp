#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace frugal::stats {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(SummaryTest, NegativeValuesTrackMinMax) {
  Summary s;
  s.add(-3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -1.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left += right;
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(3.0);
  Summary b;
  a += b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b += a;
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummaryTest, Ci95ShrinksWithSamples) {
  Summary small;
  Summary large;
  for (int i = 0; i < 4; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 400; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  EXPECT_EQ(Summary{}.ci95_half_width(), 0.0);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(TableTest, RowCountAndTitle) {
  Table t{"Fig X", {"a", "b"}};
  EXPECT_EQ(t.title(), "Fig X");
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  t.add_numeric_row({1.5, 2.25}, 2);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvWriting) {
  Table t{"Fig 99 test table", {"x", "y"}};
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const auto path = t.write_csv("/tmp");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/fig_99_test_table.csv");
  std::ifstream in{*path};
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "x,y\n1,2\n3,4\n");
  std::remove(path->c_str());
}

TEST(TableTest, CsvFailsGracefullyOnBadDir) {
  Table t{"t", {"x"}};
  t.add_row({"1"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz").has_value());
}

}  // namespace
}  // namespace frugal::stats
