// End-to-end protocol scenarios: the paper's Figure 1 walk-through and the
// trickier dynamics the prose describes (overhearing suppression, duplicate
// avoidance across meetings, subscription changes, multi-topic traffic).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/frugal_node.hpp"
#include "mobility/static_mobility.hpp"
#include "net/medium.hpp"
#include "sim/scheduler.hpp"

namespace frugal::core {
namespace {

using namespace frugal::time_literals;
using topics::Topic;

struct World {
  explicit World(std::vector<Vec2> positions,
                 FrugalConfig config = default_config())
      : mobility{std::move(positions)},
        medium{scheduler, mobility, radio(), Rng{11}} {
    for (NodeId id = 0; id < mobility.node_count(); ++id) {
      nodes.push_back(std::make_unique<FrugalNode>(id, scheduler, medium,
                                                   config, nullptr));
    }
  }

  static FrugalConfig default_config() {
    FrugalConfig config;
    config.hb_upper = 1_sec;
    return config;
  }

  static net::MediumConfig radio() {
    net::MediumConfig config;
    config.range_m = 100.0;
    config.max_jitter = SimDuration::from_ms(2);
    return config;
  }

  FrugalNode& node(NodeId id) { return *nodes[id]; }
  void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

  Event make_event(const char* topic, double validity_s = 600.0) {
    Event e;
    e.topic = Topic::parse(topic);
    e.validity = SimDuration::from_seconds(validity_s);
    return e;
  }

  sim::Scheduler scheduler;
  mobility::StaticMobility mobility;
  net::Medium medium;
  std::vector<std::unique_ptr<FrugalNode>> nodes;
};

/// The complete Figure 1 narrative with the paper's topics T0 ⊃ T1 ⊃ T2.
TEST(Figure1Scenario, FullWalkthrough) {
  // p1 at origin; p2 and p3 far away initially.
  World w{{{0, 0}, {1000, 0}, {2000, 0}}};
  w.node(0).subscribe(Topic::parse(".T0.T1"));        // p1
  w.node(1).subscribe(Topic::parse(".T0.T1.T2"));     // p2
  w.node(2).subscribe(Topic::parse(".T0"));           // p3

  // Initial holdings: p1 has e3 on T1; p2 has e4, e5 on T2.
  w.node(0).publish(w.make_event(".T0.T1"));
  w.node(1).publish(w.make_event(".T0.T1.T2"));
  w.node(1).publish(w.make_event(".T0.T1.T2"));
  w.run_for(2_sec);

  // Part I: p1 and p2 meet; T1 covers T2 so p1 receives e4 and e5. p2 does
  // NOT receive e3 (T2 subscriber; T1 events are above its subscription).
  w.mobility.move_node(1, {50, 0});
  w.run_for(5_sec);
  EXPECT_EQ(w.node(0).metrics().deliveries.size(), 3u);  // e3 + e4 + e5
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 2u);  // only its own
  EXPECT_GE(w.node(1).metrics().parasites, 0u);  // e3 may be overheard

  // Part II: p3 joins; it needs everything.
  w.mobility.move_node(2, {25, 0});
  w.run_for(5_sec);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 3u);

  // Part III: p1 leaves; p2/p3 already share everything — no new sends.
  w.mobility.move_node(0, {5000, 0});
  const auto copies_before = w.node(1).metrics().events_sent +
                             w.node(2).metrics().events_sent;
  w.run_for(20_sec);
  const auto copies_after = w.node(1).metrics().events_sent +
                            w.node(2).metrics().events_sent;
  EXPECT_EQ(copies_before, copies_after);
}

TEST(Figure1Scenario, OverhearingMarksThirdPartyAsServed) {
  // p2 overhears p1's transmission to p3 and concludes p3 needs nothing
  // more — exactly the paper's part II/III observation.
  World w{{{0, 0}, {40, 0}, {80, 0}}};
  for (NodeId id = 0; id < 3; ++id) {
    w.node(id).subscribe(Topic::parse(".t"));
  }
  w.node(0).publish(w.make_event(".t.x"));
  w.run_for(8_sec);
  // Everyone has it; in particular, p2's table should record that p3 knows
  // the event (learned either from the bundle's receiver list or from p3's
  // own id advert).
  EXPECT_TRUE(w.node(1).neighborhood().neighbor_knows(2, EventId{0, 0}));
}

TEST(ScenarioTest, SequentialMeetingsDoNotRedeliver) {
  // A meets B (transfer), they part, meet again: no second delivery, and
  // ideally no second transmission either (id adverts prevent it).
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".t"));
  w.node(1).subscribe(Topic::parse(".t"));
  w.node(0).publish(w.make_event(".t.x"));
  w.run_for(5_sec);
  ASSERT_EQ(w.node(1).metrics().deliveries.size(), 1u);

  w.mobility.move_node(1, {5000, 0});
  w.run_for(10_sec);  // NGC forgets the neighbor on both sides
  EXPECT_FALSE(w.node(0).neighborhood().contains(1));

  const auto copies_before = w.node(0).metrics().events_sent;
  w.mobility.move_node(1, {50, 0});
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);  // still once
  EXPECT_EQ(w.node(1).metrics().duplicates +
                (w.node(0).metrics().events_sent - copies_before),
            w.node(1).metrics().duplicates +
                (w.node(0).metrics().events_sent - copies_before));
  // The id advert should have suppressed a re-send entirely.
  EXPECT_EQ(w.node(0).metrics().events_sent, copies_before);
}

TEST(ScenarioTest, SubscriptionChangeReroutesTraffic) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(1).subscribe(Topic::parse(".b"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".a.x"));
  w.run_for(3_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());

  // Node 1 becomes interested in .a: its next heartbeats advertise the new
  // subscription, node 0 re-admits it and ships the still-valid event.
  w.node(1).subscribe(Topic::parse(".a"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(ScenarioTest, UnsubscribedNodeStopsRelaying) {
  // 0 -> 1 -> 2 chain; node 1 unsubscribes before the publish, so nothing
  // bridges the gap (node 1 drops the event as a parasite).
  World w{{{0, 0}, {90, 0}, {180, 0}}};
  w.node(0).subscribe(Topic::parse(".t"));
  w.node(1).subscribe(Topic::parse(".t"));
  w.node(2).subscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.node(1).unsubscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".t.x"));
  w.run_for(10_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
  EXPECT_TRUE(w.node(2).metrics().deliveries.empty());
}

TEST(ScenarioTest, MultiTopicNodeReceivesBoth) {
  World w{{{0, 0}, {50, 0}, {60, 0}}};
  w.node(0).subscribe(Topic::parse(".sports"));
  w.node(1).subscribe(Topic::parse(".weather"));
  w.node(2).subscribe(Topic::parse(".sports"));
  w.node(2).subscribe(Topic::parse(".weather"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".sports.scores"));
  w.node(1).publish(w.make_event(".weather.rain"));
  w.run_for(5_sec);
  EXPECT_EQ(w.node(2).metrics().deliveries.size(), 2u);
  // The single-topic nodes each got exactly their own topic.
  EXPECT_EQ(w.node(0).metrics().deliveries.size(), 1u);
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

TEST(ScenarioTest, EventTableTopicTreeReflectsHoldings) {
  World w{{{0, 0}}};
  w.node(0).subscribe(Topic::parse(".a"));
  w.node(0).publish(w.make_event(".a.x"));
  w.node(0).publish(w.make_event(".a.x"));
  w.node(0).publish(w.make_event(".a.y.z"));
  const auto tree = w.node(0).events().topic_tree();
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.collect_subtree(Topic::parse(".a.x")).size(), 2u);
  EXPECT_EQ(tree.collect_subtree(Topic::parse(".a")).size(), 3u);
  EXPECT_EQ(tree.topic_count_under(Topic::parse(".a")), 2u);
}

TEST(ScenarioTest, NeighborhoodCapacityBoundsAdmission) {
  FrugalConfig config = World::default_config();
  config.neighborhood_capacity = 2;
  World w{{{0, 0}, {30, 0}, {40, 0}, {50, 0}, {60, 0}}, config};
  for (NodeId id = 0; id < 5; ++id) w.node(id).subscribe(Topic::parse(".t"));
  w.run_for(5_sec);
  EXPECT_LE(w.node(0).neighborhood().size(), 2u);
}

TEST(ScenarioTest, ChainDisseminationAcrossFourHops) {
  // 0-1-2-3-4 spaced at 90 m (range 100 m): the event must traverse the
  // whole chain hop by hop through interested relays.
  World w{{{0, 0}, {90, 0}, {180, 0}, {270, 0}, {360, 0}}};
  for (NodeId id = 0; id < 5; ++id) w.node(id).subscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".t.x"));
  w.run_for(15_sec);
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(w.node(id).metrics().deliveries.size(), 1u) << "node " << id;
  }
}

TEST(ScenarioTest, ValidityExpiryStopsChainMidway) {
  // Same chain, but the event expires after 4 s: far nodes may miss it, and
  // no transmissions of the event happen after expiry.
  World w{{{0, 0}, {90, 0}, {180, 0}, {270, 0}, {360, 0}}};
  for (NodeId id = 0; id < 5; ++id) w.node(id).subscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".t.x", /*validity_s=*/4.0));
  w.run_for(60_sec);
  std::uint64_t copies = 0;
  for (NodeId id = 0; id < 5; ++id) {
    copies += w.node(id).metrics().events_sent;
  }
  const auto copies_at_60 = copies;
  w.run_for(60_sec);
  copies = 0;
  for (NodeId id = 0; id < 5; ++id) {
    copies += w.node(id).metrics().events_sent;
  }
  EXPECT_EQ(copies, copies_at_60);  // nothing moves after expiry
}

TEST(ScenarioTest, TwoPublishersSameTopicBothDeliver) {
  World w{{{0, 0}, {50, 0}, {60, 30}}};
  for (NodeId id = 0; id < 3; ++id) w.node(id).subscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.node(0).publish(w.make_event(".t.a"));
  w.node(1).publish(w.make_event(".t.b"));
  w.run_for(10_sec);
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(w.node(id).metrics().deliveries.size(), 2u) << "node " << id;
  }
  // Distinct ids: (0,0) and (1,0).
  EXPECT_TRUE(w.node(2).metrics().delivered(EventId{0, 0}));
  EXPECT_TRUE(w.node(2).metrics().delivered(EventId{1, 0}));
}

TEST(ScenarioTest, CrashedNodeCatchesUpAfterRecovery) {
  World w{{{0, 0}, {50, 0}}};
  w.node(0).subscribe(Topic::parse(".t"));
  w.node(1).subscribe(Topic::parse(".t"));
  w.run_for(3_sec);
  w.medium.set_up(1, false);  // node 1's radio dies
  w.node(0).publish(w.make_event(".t.x", /*validity_s=*/120.0));
  w.run_for(10_sec);
  EXPECT_TRUE(w.node(1).metrics().deliveries.empty());
  w.medium.set_up(1, true);
  w.run_for(10_sec);  // heartbeats re-detect, id adverts restart the flow
  EXPECT_EQ(w.node(1).metrics().deliveries.size(), 1u);
}

}  // namespace
}  // namespace frugal::core
