#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace frugal::sim {
namespace {

using namespace frugal::time_literals;

TEST(SchedulerTest, StartsAtZero) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.now(), SimTime::zero());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  scheduler.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  scheduler.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesBreakInInsertionOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  scheduler.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, NowAdvancesToEventTime) {
  Scheduler scheduler;
  SimTime seen;
  scheduler.schedule_after(5_sec, [&] { seen = scheduler.now(); });
  scheduler.run_all();
  EXPECT_EQ(seen, SimTime::from_seconds(5));
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(5));
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndSetsNow) {
  Scheduler scheduler;
  int ran = 0;
  scheduler.schedule_at(SimTime::from_seconds(1), [&] { ++ran; });
  scheduler.schedule_at(SimTime::from_seconds(10), [&] { ++ran; });
  scheduler.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(5));
  scheduler.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(ran, 2);
}

TEST(SchedulerTest, EventAtBoundaryRuns) {
  Scheduler scheduler;
  bool ran = false;
  scheduler.schedule_at(SimTime::from_seconds(5), [&] { ran = true; });
  scheduler.run_until(SimTime::from_seconds(5));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler scheduler;
  bool ran = false;
  TaskHandle handle = scheduler.schedule_after(1_sec, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  scheduler.run_all();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelAfterRunIsNoop) {
  Scheduler scheduler;
  int runs = 0;
  TaskHandle handle = scheduler.schedule_after(1_sec, [&] { ++runs; });
  scheduler.run_all();
  EXPECT_FALSE(handle.pending());
  handle.cancel();
  scheduler.run_all();
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerTest, DefaultHandleNeverPending) {
  TaskHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_after(1_sec, [&] {
    order.push_back(1);
    scheduler.schedule_after(1_sec, [&] { order.push_back(2); });
  });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(2));
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTime) {
  Scheduler scheduler;
  scheduler.schedule_after(3_sec, [] {});
  scheduler.run_all();
  bool ran = false;
  scheduler.schedule_after(SimDuration::zero(), [&] { ran = true; });
  scheduler.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(3));
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.schedule_after(1_sec, [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
}

TEST(SchedulerTest, ExecutedCountSkipsCancelled) {
  Scheduler scheduler;
  TaskHandle h = scheduler.schedule_after(1_sec, [] {});
  scheduler.schedule_after(2_sec, [] {});
  h.cancel();
  scheduler.run_all();
  EXPECT_EQ(scheduler.executed_count(), 1u);
}

TEST(SchedulerTest, RunUntilSkipsLeadingTombstonesWithoutAdvancing) {
  Scheduler scheduler;
  TaskHandle h = scheduler.schedule_after(1_sec, [] {});
  h.cancel();
  scheduler.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(10));
  EXPECT_EQ(scheduler.executed_count(), 0u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  PeriodicTask task{scheduler, 2_sec,
                    [&] { fired.push_back(scheduler.now()); }};
  task.start();
  scheduler.run_until(SimTime::from_seconds(7));
  ASSERT_EQ(fired.size(), 4u);  // 0, 2, 4, 6
  EXPECT_EQ(fired[0], SimTime::zero());
  EXPECT_EQ(fired[3], SimTime::from_seconds(6));
}

TEST(PeriodicTaskTest, InitialDelayShiftsPhase) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  PeriodicTask task{scheduler, 2_sec,
                    [&] { fired.push_back(scheduler.now()); }};
  task.start(500_ms);
  scheduler.run_until(SimTime::from_seconds(5));
  ASSERT_EQ(fired.size(), 3u);  // 0.5, 2.5, 4.5
  EXPECT_EQ(fired[0], SimTime::from_ms(500));
  EXPECT_EQ(fired[1], SimTime::from_ms(2500));
}

TEST(PeriodicTaskTest, StopHaltsFiring) {
  Scheduler scheduler;
  int fired = 0;
  PeriodicTask task{scheduler, 1_sec, [&] { ++fired; }};
  task.start();
  scheduler.run_until(SimTime::from_seconds(2));
  task.stop();
  EXPECT_FALSE(task.running());
  scheduler.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(fired, 3);  // 0, 1, 2
}

TEST(PeriodicTaskTest, PeriodChangeAppliesNextCycle) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  PeriodicTask task{scheduler, 1_sec,
                    [&] { fired.push_back(scheduler.now()); }};
  task.start();
  scheduler.run_until(SimTime::from_seconds(1));  // fired at 0 and 1
  // The firing at t=1 already armed t=2 with the old period; the new period
  // takes effect from the next scheduling decision (after the t=2 firing).
  task.set_period(3_sec);
  scheduler.run_until(SimTime::from_seconds(8));
  ASSERT_EQ(fired.size(), 5u);  // 0, 1, 2, 5, 8
  EXPECT_EQ(fired[2], SimTime::from_seconds(2));
  EXPECT_EQ(fired[3], SimTime::from_seconds(5));
  EXPECT_EQ(fired[4], SimTime::from_seconds(8));
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  Scheduler scheduler;
  int fired = 0;
  PeriodicTask task{scheduler, 1_sec, [&] { ++fired; }};
  task.start();
  scheduler.run_until(SimTime::from_seconds(1));  // fires at 0 and 1
  task.stop();
  task.start();  // restart: fires again at now (initial delay 0), then at 2
  scheduler.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(fired, 4);
  EXPECT_TRUE(task.running());
}

TEST(PeriodicTaskTest, StopFromWithinCallback) {
  Scheduler scheduler;
  int fired = 0;
  PeriodicTask* self = nullptr;
  PeriodicTask task{scheduler, 1_sec, [&] {
                      ++fired;
                      if (fired == 2) self->stop();
                    }};
  self = &task;
  task.start();
  scheduler.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StreamsAreStableByName) {
  Simulator a{123};
  Simulator b{123};
  Rng ra = a.stream("x");
  Rng rb = b.stream("x");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ra.next(), rb.next());
}

TEST(SimulatorTest, DistinctStreamNamesDecorrelate) {
  Simulator simulator{123};
  Rng a = simulator.stream("alpha");
  Rng b = simulator.stream("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SimulatorTest, RunForAdvancesClock) {
  Simulator simulator{1};
  simulator.run_for(5_sec);
  EXPECT_EQ(simulator.now(), SimTime::from_seconds(5));
  simulator.run_for(5_sec);
  EXPECT_EQ(simulator.now(), SimTime::from_seconds(10));
}

}  // namespace
}  // namespace frugal::sim
