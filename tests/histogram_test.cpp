#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace frugal::stats {
namespace {

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h{1.0, 10};
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, CountsLandInBuckets) {
  Histogram h{1.0, 4};
  h.add(0.5);
  h.add(1.5);
  h.add(1.9);
  h.add(3.2);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h{1.0, 2};
  h.add(100.0);
  h.add(2.5);  // beyond [0, 2): overflow
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, QuantileOrdering) {
  Histogram h{1.0, 100};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  const double p10 = h.quantile(0.1);
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p90);
  EXPECT_NEAR(p50, 50.0, 2.0);
  EXPECT_NEAR(p90, 90.0, 2.0);
}

TEST(HistogramTest, SingleValueQuantiles) {
  Histogram h{0.5, 20};
  h.add(3.3);
  // Everything falls in the bucket containing 3.3.
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.99), 3.5 + 1e-9);
}

TEST(HistogramTest, SummaryFormat) {
  Histogram h{1.0, 10};
  h.add(1.0);
  h.add(2.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
}

class HistogramQuantileProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramQuantileProperty, QuantilesMonotoneAndBounded) {
  Rng rng{GetParam()};
  Histogram h{0.25, 400};  // covers [0, 100)
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(0.0, 100.0));
  double previous = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.quantile(q);
    ASSERT_GE(value, previous - 1e-9);
    ASSERT_GE(value, 0.0);
    ASSERT_LE(value, 100.0 + 0.25);
    previous = value;
  }
  // Uniform distribution: p50 near 50.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileProperty,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace frugal::stats
