// Streaming-telemetry equivalence and artifact tests.
//
// The load-bearing claims: (1) attaching a telemetry hub never perturbs a
// simulation — sweep CSVs stay byte-identical with the hub on or off, across
// worker counts, and through a shard/merge round trip; (2) the streamed
// aggregates are bit-equal to the materialized RunResult folds they replace;
// (3) bounded-memory runs really elide the per-event records; (4) the
// time-series and Perfetto artifacts are well-formed JSON with the documented
// schema. Plus unit coverage of the operator DAG the hub is built from.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "minijson.hpp"
#include "runner/registry.hpp"
#include "runner/shard.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "telemetry/dag.hpp"

namespace frugal::telemetry {
namespace {

using runner::Axis;
using runner::ScenarioSpec;
using runner::SweepOptions;
using runner::SweepResult;

// ---------------------------------------------------------------------------
// Operator DAG units.

TEST(DagTest, CountSumMeanGaugeBasics) {
  Graph graph;
  Count* count = graph.add<Count>();
  Sum* sum = graph.add<Sum>();
  Mean* mean = graph.add<Mean>();
  Gauge* gauge = graph.add<Gauge>(7.0);

  EXPECT_EQ(gauge->value(), 7.0);
  for (int i = 1; i <= 4; ++i) {
    const SimTime at = SimTime::zero() + SimDuration::from_seconds(i);
    graph.feed(count, at, static_cast<double>(i));
    graph.feed(sum, at, static_cast<double>(i));
    graph.feed(mean, at, static_cast<double>(i));
    graph.feed(gauge, at, static_cast<double>(i));
  }
  EXPECT_EQ(count->count(), 4u);
  EXPECT_EQ(sum->value(), 10.0);
  EXPECT_EQ(mean->value(), 2.5);
  EXPECT_EQ(gauge->value(), 4.0);
}

TEST(DagTest, IntSumIsExactAtMicrosecondScale) {
  Graph graph;
  IntSum* sum = graph.add<IntSum>();
  // Values chosen so naive double accumulation of seconds would round.
  sum->add(1);
  sum->add(180'000'000);
  sum->add(33);
  EXPECT_EQ(sum->total(), 180'000'034);
  EXPECT_EQ(sum->count(), 3u);
}

TEST(DagTest, EmitCascadesDownstreamInTopoOrder) {
  Graph graph;
  WindowedRate* rate = graph.add<WindowedRate>(SimDuration::from_seconds(10));
  Mean* mean_rate = graph.add<Mean>();
  graph.connect(rate, mean_rate);

  const SimTime start = SimTime::zero();
  for (int i = 0; i < 30; ++i) {
    graph.feed(rate, start + SimDuration::from_seconds(i * 0.1), 1.0);
  }
  graph.close_window(start + SimDuration::from_seconds(10));
  EXPECT_EQ(rate->value(), 3.0);  // 30 samples / 10 s
  EXPECT_EQ(mean_rate->value(), 3.0);

  graph.close_window(start + SimDuration::from_seconds(20));
  EXPECT_EQ(rate->value(), 0.0);       // window reset
  EXPECT_EQ(mean_rate->value(), 1.5);  // mean of {3, 0}
}

TEST(DagTest, QuantileSketchResetsPerWindow) {
  Graph graph;
  QuantileSketchOp* sketch = graph.add<QuantileSketchOp>();
  for (int i = 1; i <= 100; ++i) {
    graph.feed(sketch, SimTime::zero(), static_cast<double>(i));
  }
  const double p50 = sketch->sketch().quantile(0.5);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 60.0);
  graph.close_window(SimTime::zero() + SimDuration::from_seconds(10));
  EXPECT_TRUE(sketch->sketch().empty());
}

TEST(DagTest, TimeWindowClosesElapsedBoundariesBeforeSample) {
  Graph graph;
  WindowedRate* rate = graph.add<WindowedRate>(SimDuration::from_seconds(10));
  TimeWindow window{&graph, SimTime::zero(), SimDuration::from_seconds(10)};

  std::vector<double> closes;
  const auto on_closed = [&](SimTime end) { closes.push_back(end.seconds()); };

  // Advancing to 25 s closes the [0,10) and [10,20) windows, not [20,30).
  window.advance(SimTime::zero() + SimDuration::from_seconds(25), on_closed);
  EXPECT_EQ(closes, (std::vector<double>{10, 20}));

  // A sample landing exactly on a boundary belongs to the *next* window:
  // the boundary closes first.
  graph.feed(rate, SimTime::zero() + SimDuration::from_seconds(30), 1.0);
  window.advance(SimTime::zero() + SimDuration::from_seconds(30), on_closed);
  EXPECT_EQ(closes.back(), 30.0);

  // finish() closes the partial tail window at the run horizon.
  window.finish(SimTime::zero() + SimDuration::from_seconds(34), on_closed);
  EXPECT_EQ(closes.back(), 34.0);
  EXPECT_EQ(rate->in_window(), 0u);
}

// ---------------------------------------------------------------------------
// Streamed aggregates vs the materialized folds, on one run.

core::ExperimentConfig small_rwp(std::uint64_t seed = 1) {
  core::ExperimentConfig config;
  config.node_count = 40;
  config.interest_fraction = 0.8;
  core::RandomWaypointSetup rwp;
  rwp.config.width_m = 1500;
  rwp.config.height_m = 1500;
  rwp.config.speed_min_mps = 10;
  rwp.config.speed_max_mps = 10;
  config.mobility = rwp;
  config.warmup = SimDuration::from_seconds(30);
  config.event_validity = SimDuration::from_seconds(60);
  config.event_count = 4;
  config.publish_spacing = SimDuration::from_seconds(2);
  config.seed = seed;
  return config;
}

TEST(TelemetryEquivalence, AggregatesBitEqualToMaterializedFolds) {
  TelemetryConfig telemetry_config;
  telemetry_config.bounded_memory = false;  // keep both representations
  telemetry_config.probe_validities_s = {20.0, 40.0};
  RunTelemetry hub{telemetry_config};

  core::ExperimentConfig config = small_rwp();
  config.telemetry = &hub;
  const core::RunResult result = core::run_experiment(config);

  // The run materialized records, so the RunResult methods below answer
  // from the legacy fold; the streamed numbers must match bit for bit.
  ASSERT_FALSE(result.events.empty());
  ASSERT_TRUE(result.aggregates.has_value());
  const RunAggregates& streamed = *result.aggregates;

  for (const double v_s : {20.0, 40.0, 60.0}) {
    const SimDuration validity = SimDuration::from_seconds(v_s);
    EXPECT_EQ(streamed.reliability_within(validity),
              result.reliability_within(validity))
        << "probe " << v_s;
  }
  EXPECT_EQ(streamed.delivered, result.delivered_count());
  EXPECT_EQ(streamed.mean_delivery_latency_s(),
            result.mean_delivery_latency_s());
}

TEST(TelemetryEquivalence, AttachingHubDoesNotPerturbTheRun) {
  const core::RunResult bare = core::run_experiment(small_rwp());

  TelemetryConfig telemetry_config;
  telemetry_config.probe_validities_s = {20.0};
  RunTelemetry hub{telemetry_config};
  core::ExperimentConfig config = small_rwp();
  config.telemetry = &hub;
  const core::RunResult observed = core::run_experiment(config);

  ASSERT_EQ(bare.events.size(), observed.events.size());
  ASSERT_EQ(bare.nodes.size(), observed.nodes.size());
  for (std::size_t n = 0; n < bare.nodes.size(); ++n) {
    EXPECT_EQ(bare.nodes[n].delivered_at, observed.nodes[n].delivered_at)
        << "node " << n;
    EXPECT_EQ(bare.nodes[n].events_sent, observed.nodes[n].events_sent);
    EXPECT_EQ(bare.nodes[n].traffic.bytes_sent,
              observed.nodes[n].traffic.bytes_sent);
  }
}

TEST(TelemetryEquivalence, BoundedRunElidesRecordsButKeepsTheNumbers) {
  TelemetryConfig reference_config;
  reference_config.probe_validities_s = {20.0, 40.0};
  RunTelemetry reference_hub{reference_config};
  core::ExperimentConfig config = small_rwp();
  config.telemetry = &reference_hub;
  const core::RunResult reference = core::run_experiment(config);

  TelemetryConfig bounded_config = reference_config;
  bounded_config.bounded_memory = true;
  RunTelemetry bounded_hub{bounded_config};
  config.telemetry = &bounded_hub;
  const core::RunResult bounded = core::run_experiment(config);

  // Structural: no per-event or per-(node,event) records were materialized.
  EXPECT_TRUE(bounded.events.empty());
  for (const core::NodeOutcome& node : bounded.nodes) {
    EXPECT_TRUE(node.delivered_at.empty());
  }
  ASSERT_TRUE(bounded.aggregates.has_value());

  // Metric routing answers from the aggregates — bit-equal to the
  // materialized run's legacy fold.
  for (const double v_s : {20.0, 40.0, 60.0}) {
    const SimDuration validity = SimDuration::from_seconds(v_s);
    EXPECT_EQ(bounded.reliability_within(validity),
              reference.reliability_within(validity));
  }
  EXPECT_EQ(bounded.reliability(), reference.reliability());
  EXPECT_EQ(bounded.delivered_count(), reference.delivered_count());
  EXPECT_EQ(bounded.mean_delivery_latency_s(),
            reference.mean_delivery_latency_s());

  // The hub's live-event ring stayed bounded by validity/spacing, not by
  // event count: 60 s validity / 2 s spacing caps simultaneous live events.
  EXPECT_LE(bounded_hub.live_event_high_water(), 31u);
}

// ---------------------------------------------------------------------------
// Sweep-level equivalence: hub on vs off, worker counts, shard/merge.

/// Shrinks a scenario to a fast grid: every axis keeps its first value
/// except the first axis, which keeps up to two — still multi-point, but
/// test-sized. One seed unless the caller raises it.
SweepOptions reduced_options(const ScenarioSpec& spec, int seeds = 1) {
  SweepOptions options;
  options.seeds = seeds;
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    Axis override_axis;
    override_axis.name = spec.axes[a].name;
    override_axis.values = {spec.axes[a].values.front()};
    if (a == 0 && spec.axes[a].values.size() > 1) {
      override_axis.values.push_back(spec.axes[a].values[1]);
    }
    options.overrides.push_back(override_axis);
  }
  return options;
}

class SweepEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(SweepEquivalence, TelemetryCsvByteIdenticalToLegacy) {
  const ScenarioSpec* spec = runner::find_scenario(GetParam());
  ASSERT_NE(spec, nullptr);

  SweepOptions legacy = reduced_options(*spec);
  legacy.jobs = 2;
  const std::string legacy_csv =
      runner::sweep_csv(runner::run_sweep(*spec, legacy));

  SweepOptions streamed = legacy;
  streamed.telemetry = true;
  const std::string streamed_csv =
      runner::sweep_csv(runner::run_sweep(*spec, streamed));

  EXPECT_EQ(legacy_csv, streamed_csv);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SweepEquivalence,
                         ::testing::Values("fig11_rwp_reliability",
                                           "topic_fanout", "energy_lifetime",
                                           "memory_pressure"),
                         [](const auto& param_info) {
                           return std::string{param_info.param};
                         });

TEST(SweepEquivalence, WorkerCountInvariantUnderTelemetry) {
  const ScenarioSpec* spec = runner::find_scenario("fig11_rwp_reliability");
  ASSERT_NE(spec, nullptr);

  SweepOptions options = reduced_options(*spec, /*seeds=*/2);
  options.telemetry = true;
  options.jobs = 1;
  const std::string serial =
      runner::sweep_csv(runner::run_sweep(*spec, options));
  options.jobs = 8;
  const std::string parallel =
      runner::sweep_csv(runner::run_sweep(*spec, options));
  EXPECT_EQ(serial, parallel);
}

TEST(SweepEquivalence, ThreeShardMergeMatchesSingleBoxUnderTelemetry) {
  const ScenarioSpec* spec = runner::find_scenario("fig11_rwp_reliability");
  ASSERT_NE(spec, nullptr);

  SweepOptions single = reduced_options(*spec, /*seeds=*/3);
  single.jobs = 2;
  const std::string single_csv =
      runner::sweep_csv(runner::run_sweep(*spec, single));

  std::vector<runner::ShardArtifact> artifacts;
  for (int i = 0; i < 3; ++i) {
    SweepOptions shard = single;
    shard.telemetry = true;
    shard.shard = runner::ShardSpec{i, 3};
    // Serialize/parse round trip: exactly what the CLI interchange does.
    artifacts.push_back(runner::parse_shard(
        runner::serialize_shard(runner::run_sweep_shard(*spec, shard))));
  }
  const std::string merged_csv =
      runner::sweep_csv(runner::merge_shards(*spec, std::move(artifacts)));
  EXPECT_EQ(single_csv, merged_csv);
}

// ---------------------------------------------------------------------------
// Artifacts: time-series JSONL and Perfetto trace.

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TelemetryArtifacts, TimeSeriesRowsFollowTheSchema) {
  const std::string path = ::testing::TempDir() + "telemetry_ts.jsonl";
  TelemetryConfig telemetry_config;
  telemetry_config.probe_validities_s = {20.0};
  telemetry_config.window_s = 10.0;
  telemetry_config.timeseries_path = path;
  RunTelemetry hub{telemetry_config};

  core::ExperimentConfig config = small_rwp();
  config.telemetry = &hub;
  const core::RunResult result = core::run_experiment(config);

  std::istringstream lines{read_file(path)};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const minijson::Value header = minijson::parse(line);
  EXPECT_EQ(header.at("artifact").as_string(), "timeseries");
  EXPECT_EQ(header.at("window_s").as_number(), 10.0);
  EXPECT_EQ(header.at("node_count").as_number(), 40.0);
  EXPECT_EQ(header.at("event_count").as_number(), 4.0);
  EXPECT_EQ(header.at("run_end_s").as_number(), result.run_end.seconds());

  std::size_t rows = 0;
  double previous_t = 0.0;
  bool saw_reliability = false;
  while (std::getline(lines, line)) {
    const minijson::Value row = minijson::parse(line);
    ++rows;
    const double t = row.at("t_s").as_number();
    EXPECT_GT(t, previous_t);
    previous_t = t;
    for (const char* field :
         {"reliability", "latency_p50_s", "latency_p95_s", "latency_p99_s",
          "deliveries_per_s", "frames_per_s", "gc_per_s", "live_nodes",
          "joules_per_s"}) {
      const minijson::Value& value = row.at(field);
      EXPECT_TRUE(value.is_null() || value.is_number()) << field;
    }
    const minijson::Value& reliability = row.at("reliability");
    if (reliability.is_number()) {
      saw_reliability = true;
      EXPECT_GE(reliability.as_number(), 0.0);
      EXPECT_LE(reliability.as_number(), 1.0);
    }
    EXPECT_LE(row.at("live_nodes").as_number(), 40.0);
  }
  // One row per closed window including the tail; the run spans warmup(30)
  // + 3 spacings + validity(60) = 96 s -> 10 windows.
  EXPECT_GE(rows, 9u);
  // Probe deadlines elapse inside the run, so some window carried windowed
  // reliability.
  EXPECT_TRUE(saw_reliability);
  std::remove(path.c_str());
}

TEST(TelemetryArtifacts, PerfettoTraceIsValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "telemetry_trace.json";
  TelemetryConfig telemetry_config;
  telemetry_config.perfetto_path = path;
  RunTelemetry hub{telemetry_config};

  core::ExperimentConfig config = small_rwp();
  config.telemetry = &hub;
  (void)core::run_experiment(config);

  const minijson::Value trace = minijson::parse(read_file(path));
  const minijson::Array& events = trace.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  bool saw_complete_span = false;
  bool saw_publish_instant = false;
  bool saw_counter = false;
  for (const minijson::Value& event : events) {
    const std::string& phase = event.at("ph").as_string();
    EXPECT_TRUE(phase == "X" || phase == "i" || phase == "C" || phase == "M")
        << phase;
    EXPECT_TRUE(event.at("pid").is_number());
    if (phase == "X") {
      EXPECT_TRUE(event.at("ts").is_number());
      EXPECT_GE(event.at("dur").as_number(), 0.0);
      saw_complete_span = true;
    }
    if (phase == "i" && event.at("name").as_string() == "publish") {
      saw_publish_instant = true;
    }
    if (phase == "C") saw_counter = true;
  }
  EXPECT_TRUE(saw_complete_span);
  EXPECT_TRUE(saw_publish_instant);
  EXPECT_TRUE(saw_counter);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frugal::telemetry
