#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace frugal::trace {
namespace {

TEST(TraceTest, RecordsInOrder) {
  TraceRecorder recorder;
  recorder.publish(SimTime::from_seconds(1), 0, core::EventId{0, 0});
  recorder.deliver(SimTime::from_seconds(2), 1, core::EventId{0, 0});
  recorder.node_down(SimTime::from_seconds(3), 1);
  recorder.node_up(SimTime::from_seconds(4), 1);
  recorder.position(SimTime::from_seconds(5), 0, {10, 20});
  ASSERT_EQ(recorder.size(), 5u);
  EXPECT_EQ(recorder.records()[0].kind, TraceKind::kPublish);
  EXPECT_EQ(recorder.records()[4].kind, TraceKind::kPosition);
  EXPECT_EQ(recorder.records()[4].position, (Vec2{10, 20}));
}

TEST(TraceTest, FilterByKind) {
  TraceRecorder recorder;
  recorder.publish(SimTime::from_seconds(1), 0, core::EventId{0, 0});
  recorder.deliver(SimTime::from_seconds(2), 1, core::EventId{0, 0});
  recorder.deliver(SimTime::from_seconds(3), 2, core::EventId{0, 0});
  const auto deliveries = recorder.filter(TraceKind::kDeliver);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].node, 1u);
  EXPECT_EQ(deliveries[1].node, 2u);
}

TEST(TraceTest, KindNames) {
  EXPECT_STREQ(to_string(TraceKind::kPublish), "publish");
  EXPECT_STREQ(to_string(TraceKind::kDeliver), "deliver");
  EXPECT_STREQ(to_string(TraceKind::kNodeDown), "down");
  EXPECT_STREQ(to_string(TraceKind::kNodeUp), "up");
  EXPECT_STREQ(to_string(TraceKind::kPosition), "position");
}

TEST(TraceTest, CsvRoundTrip) {
  TraceRecorder recorder;
  recorder.publish(SimTime::from_seconds(1.5), 3, core::EventId{3, 7});
  recorder.position(SimTime::from_seconds(2), 4, {1.25, -2.5});
  const char* path = "/tmp/frugal_trace_test.csv";
  ASSERT_TRUE(recorder.write_csv(path));
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,kind,node,event_publisher,event_seq,x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,publish,3,3,7,,");
  std::getline(in, line);
  EXPECT_EQ(line, "2,position,4,,,1.25,-2.5");
  std::remove(path);
}

TEST(TraceTest, CsvFailsOnBadPath) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.write_csv("/nonexistent-dir-xyz/trace.csv"));
}

TEST(TraceTest, Clear) {
  TraceRecorder recorder;
  recorder.node_down(SimTime::zero(), 0);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
}  // namespace frugal::trace
