// A deliberately small recursive-descent JSON parser for tests.
//
// The telemetry artifacts (time-series JSONL, Perfetto traces, --describe-json
// listings, run manifests) are consumed by external tools, so their tests must
// check real JSON well-formedness rather than substring-match the writer's own
// output. This parser accepts standard JSON (no comments, no trailing commas)
// and fails loudly via gtest-friendly exceptions; it is test-only and makes no
// attempt at speed.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace minijson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_{Type::kBool}, bool_{b} {}
  explicit Value(double d) : type_{Type::kNumber}, number_{d} {}
  explicit Value(std::string s) : type_{Type::kString}, string_{std::move(s)} {}
  explicit Value(Array a)
      : type_{Type::kArray}, array_{std::make_shared<Array>(std::move(a))} {}
  explicit Value(Object o)
      : type_{Type::kObject}, object_{std::make_shared<Object>(std::move(o))} {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const {
    require(Type::kBool);
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(Type::kNumber);
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Type::kString);
    return string_;
  }
  [[nodiscard]] const Array& as_array() const {
    require(Type::kArray);
    return *array_;
  }
  [[nodiscard]] const Object& as_object() const {
    require(Type::kObject);
    return *object_;
  }

  /// Object member access; throws when absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& object = as_object();
    const auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("minijson: missing key \"" + key + "\"");
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    const Object& object = as_object();
    return object.find(key) != object.end();
  }

 private:
  void require(Type type) const {
    if (type_ != type) throw std::runtime_error("minijson: wrong value type");
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

namespace detail {

struct Parser {
  const char* at;
  const char* end;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("minijson: ") + what);
  }

  void skip_ws() {
    while (at != end && (*at == ' ' || *at == '\t' || *at == '\n' ||
                         *at == '\r')) {
      ++at;
    }
  }

  char peek() const {
    if (at == end) throw std::runtime_error("minijson: truncated input");
    return *at;
  }

  void expect(char c) {
    if (at == end || *at != c) fail("unexpected character");
    ++at;
  }

  bool consume_literal(const char* literal) {
    const char* cursor = at;
    for (const char* l = literal; *l != '\0'; ++l, ++cursor) {
      if (cursor == end || *cursor != *l) return false;
    }
    at = cursor;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at == end) fail("unterminated string");
      const char c = *at++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at == end) fail("unterminated escape");
      const char esc = *at++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end - at < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *at++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Tests only feed ASCII payloads; reject anything needing real
          // UTF-8/surrogate handling rather than mis-decode it.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const char* start = at;
    if (at != end && *at == '-') ++at;
    while (at != end && (std::isdigit(static_cast<unsigned char>(*at)) != 0 ||
                         *at == '.' || *at == 'e' || *at == 'E' ||
                         *at == '+' || *at == '-')) {
      ++at;
    }
    char* parsed_end = nullptr;
    const std::string text{start, at};
    const double value = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size() || text.empty()) {
      fail("bad number");
    }
    return Value{value};
  }

  Value parse_value() {
    skip_ws();
    if (at == end) fail("truncated input");
    const char c = peek();
    if (c == '{') {
      ++at;
      Object object;
      skip_ws();
      if (peek() == '}') {
        ++at;
        return Value{std::move(object)};
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        if (!object.emplace(std::move(key), parse_value()).second) {
          fail("duplicate object key");
        }
        skip_ws();
        if (peek() == ',') {
          ++at;
          continue;
        }
        expect('}');
        return Value{std::move(object)};
      }
    }
    if (c == '[') {
      ++at;
      Array array;
      skip_ws();
      if (peek() == ']') {
        ++at;
        return Value{std::move(array)};
      }
      for (;;) {
        array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++at;
          continue;
        }
        expect(']');
        return Value{std::move(array)};
      }
    }
    if (c == '"') return Value{parse_string()};
    if (consume_literal("true")) return Value{true};
    if (consume_literal("false")) return Value{false};
    if (consume_literal("null")) return Value{};
    return parse_number();
  }
};

}  // namespace detail

/// Parses exactly one JSON document; throws std::runtime_error on any
/// deviation (trailing garbage included).
[[nodiscard]] inline Value parse(const std::string& text) {
  detail::Parser parser{text.data(), text.data() + text.size()};
  Value value = parser.parse_value();
  parser.skip_ws();
  if (parser.at != parser.end) parser.fail("trailing data");
  return value;
}

}  // namespace minijson
