#include "core/event_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace frugal::core {
namespace {

using topics::SubscriptionSet;
using topics::Topic;

Event make_event(std::uint32_t seq, double validity_s = 100.0,
                 const char* topic = ".t", SimTime published = SimTime::zero()) {
  Event e;
  e.id = EventId{1, seq};
  e.topic = Topic::parse(topic);
  e.published_at = published;
  e.validity = SimDuration::from_seconds(validity_s);
  return e;
}

TEST(GcScoreTest, PaperExample) {
  // Paper §4.4: an event with validity 2 min forwarded < 2 times is collected
  // *after* an event with validity 5 min forwarded 5 times.
  const Event two_min = make_event(1, 120.0);
  const Event five_min = make_event(2, 300.0);
  EXPECT_GT(gc_score(two_min, 1), gc_score(five_min, 5));
}

TEST(GcScoreTest, DecreasesWithForwards) {
  const Event e = make_event(1, 60.0);
  EXPECT_GT(gc_score(e, 0), gc_score(e, 1));
  EXPECT_GT(gc_score(e, 1), gc_score(e, 10));
}

TEST(GcScoreTest, NeverForwardedScoresOne) {
  EXPECT_DOUBLE_EQ(gc_score(make_event(1, 42.0), 0), 1.0);
}

TEST(EventTableTest, InsertAndFind) {
  EventTable table{4};
  table.insert(make_event(1), SimTime::zero());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.contains(EventId{1, 1}));
  const StoredEvent* stored = table.find(EventId{1, 1});
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->forward_count, 0u);
  EXPECT_EQ(table.find(EventId{1, 99}), nullptr);
}

TEST(EventTableTest, InsertBelowCapacityCollectsNothing) {
  EventTable table{2};
  EXPECT_FALSE(table.insert(make_event(1), SimTime::zero()).has_value());
  EXPECT_FALSE(table.insert(make_event(2), SimTime::zero()).has_value());
  EXPECT_TRUE(table.full());
}

TEST(EventTableTest, FullTableEvictsExactlyOne) {
  EventTable table{2};
  table.insert(make_event(1), SimTime::zero());
  table.insert(make_event(2), SimTime::zero());
  const auto victim = table.insert(make_event(3), SimTime::zero());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.contains(EventId{1, 3}));
}

TEST(EventTableTest, ExpiredEvictedFirst) {
  EventTable table{2};
  table.insert(make_event(1, /*validity_s=*/10.0), SimTime::zero());
  table.insert(make_event(2, /*validity_s=*/1000.0), SimTime::zero());
  table.increment_forward_count(EventId{1, 1});  // would otherwise survive
  // At t=50 event 1 is expired; it must be the victim even though event 2
  // has the lower gc score.
  for (int i = 0; i < 10; ++i) table.increment_forward_count(EventId{1, 2});
  const auto victim = table.insert(make_event(3), SimTime::from_seconds(50));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 1}));
}

TEST(EventTableTest, LowestScoreEvictedWhenAllValid) {
  EventTable table{2};
  // Equation 1: evict high-validity, much-forwarded events before short,
  // never-forwarded ones.
  table.insert(make_event(1, 300.0), SimTime::zero());  // 5 min
  table.insert(make_event(2, 120.0), SimTime::zero());  // 2 min
  for (int i = 0; i < 5; ++i) table.increment_forward_count(EventId{1, 1});
  table.increment_forward_count(EventId{1, 2});
  const auto victim = table.insert(make_event(3), SimTime::from_seconds(1));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 1}));
  EXPECT_TRUE(table.contains(EventId{1, 2}));
}

TEST(EventTableTest, TieBreaksOnSmallerId) {
  EventTable table{2};
  table.insert(make_event(5, 60.0), SimTime::zero());
  table.insert(make_event(2, 60.0), SimTime::zero());
  const auto victim = table.insert(make_event(9), SimTime::zero());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 2}));
}

TEST(EventTableTest, IncrementForwardCount) {
  EventTable table{4};
  table.insert(make_event(1), SimTime::zero());
  table.increment_forward_count(EventId{1, 1});
  table.increment_forward_count(EventId{1, 1});
  EXPECT_EQ(table.find(EventId{1, 1})->forward_count, 2u);
  table.increment_forward_count(EventId{1, 42});  // unknown: no-op
}

TEST(EventTableTest, IdsMatchingFiltersByTopicAndValidity) {
  EventTable table{8};
  table.insert(make_event(1, 100.0, ".a.b"), SimTime::zero());
  table.insert(make_event(2, 100.0, ".a.c"), SimTime::zero());
  table.insert(make_event(3, 10.0, ".a.b"), SimTime::zero());  // expires early
  table.insert(make_event(4, 100.0, ".z"), SimTime::zero());

  SubscriptionSet interests;
  interests.add(Topic::parse(".a"));
  const auto ids = table.ids_matching(interests, SimTime::from_seconds(50));
  EXPECT_EQ(ids, (std::vector<EventId>{{1, 1}, {1, 2}}));
}

TEST(EventTableTest, IdsMatchingExactTopic) {
  EventTable table{8};
  table.insert(make_event(1, 100.0, ".a.b"), SimTime::zero());
  SubscriptionSet narrow;
  narrow.add(Topic::parse(".a.b.c"));  // narrower than the event: no match
  EXPECT_TRUE(table.ids_matching(narrow, SimTime::zero()).empty());
  SubscriptionSet exact;
  exact.add(Topic::parse(".a.b"));
  EXPECT_EQ(exact.covers(Topic::parse(".a.b")), true);
  EXPECT_EQ(table.ids_matching(exact, SimTime::zero()).size(), 1u);
}

TEST(EventTableTest, EventsByIdSorted) {
  EventTable table{8};
  table.insert(make_event(5), SimTime::zero());
  table.insert(make_event(1), SimTime::zero());
  table.insert(make_event(3), SimTime::zero());
  const auto events = table.events_by_id();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0]->event.id.seq, 1u);
  EXPECT_EQ(events[1]->event.id.seq, 3u);
  EXPECT_EQ(events[2]->event.id.seq, 5u);
}

TEST(EventTableTest, DropExpired) {
  EventTable table{8};
  table.insert(make_event(1, 10.0), SimTime::zero());
  table.insert(make_event(2, 100.0), SimTime::zero());
  EXPECT_EQ(table.drop_expired(SimTime::from_seconds(50)), 1u);
  EXPECT_FALSE(table.contains(EventId{1, 1}));
  EXPECT_TRUE(table.contains(EventId{1, 2}));
}

TEST(EventTableTest, ValidityBoundaryIsExclusive) {
  // An event is valid strictly before expiry; at exactly published+validity
  // it is of no use (val(e) > now fails).
  const Event e = make_event(1, 10.0);
  EXPECT_TRUE(e.valid_at(SimTime::from_seconds(9.999)));
  EXPECT_FALSE(e.valid_at(SimTime::from_seconds(10.0)));
}


TEST(GcPolicyTest, FifoEvictsOldestStored) {
  EventTable table{2, GcPolicy::kFifo};
  table.insert(make_event(1, 500.0), SimTime::from_seconds(1));
  table.insert(make_event(2, 500.0), SimTime::from_seconds(2));
  // Event 1 is older; FIFO evicts it although its gc score is identical.
  const auto victim = table.insert(make_event(3), SimTime::from_seconds(3));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 1}));
}

TEST(GcPolicyTest, MostForwardedEvictsHottest) {
  EventTable table{2, GcPolicy::kMostForwarded};
  table.insert(make_event(1, 10.0), SimTime::zero());   // short validity
  table.insert(make_event(2, 900.0), SimTime::zero());  // long validity
  for (int i = 0; i < 3; ++i) table.increment_forward_count(EventId{1, 2});
  const auto victim = table.insert(make_event(3), SimTime::from_seconds(1));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 2}));  // most forwarded, validity ignored
}

TEST(GcPolicyTest, AllPoliciesEvictExpiredFirst) {
  for (const GcPolicy policy :
       {GcPolicy::kPaperScore, GcPolicy::kFifo, GcPolicy::kMostForwarded}) {
    EventTable table{2, policy};
    table.insert(make_event(1, 5.0), SimTime::zero());    // expires at 5 s
    table.insert(make_event(2, 500.0), SimTime::zero());
    for (int i = 0; i < 9; ++i) table.increment_forward_count(EventId{1, 2});
    const auto victim =
        table.insert(make_event(3), SimTime::from_seconds(10));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, (EventId{1, 1}))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(GcPolicyTest, PaperScoreKeepsFreshShortLivedEvents) {
  // The paper's §4.4 motivation: a much-forwarded long-validity event makes
  // way for a never-forwarded short one — FIFO would do the opposite.
  EventTable eq1{2, GcPolicy::kPaperScore};
  EventTable fifo{2, GcPolicy::kFifo};
  for (EventTable* table : {&eq1, &fifo}) {
    table->insert(make_event(1, 300.0), SimTime::from_seconds(0));
    for (int i = 0; i < 5; ++i) table->increment_forward_count(EventId{1, 1});
    table->insert(make_event(2, 120.0), SimTime::from_seconds(1));
  }
  const auto eq1_victim = eq1.insert(make_event(3), SimTime::from_seconds(2));
  const auto fifo_victim =
      fifo.insert(make_event(3), SimTime::from_seconds(2));
  EXPECT_EQ(*eq1_victim, (EventId{1, 1}));   // evicts the much-forwarded one
  EXPECT_EQ(*fifo_victim, (EventId{1, 1}));  // FIFO agrees here (older)...
  // ...but reverse the insertion order and they disagree:
  EventTable eq1_r{2, GcPolicy::kPaperScore};
  EventTable fifo_r{2, GcPolicy::kFifo};
  for (EventTable* table : {&eq1_r, &fifo_r}) {
    table->insert(make_event(2, 120.0), SimTime::from_seconds(0));
    table->insert(make_event(1, 300.0), SimTime::from_seconds(1));
    for (int i = 0; i < 5; ++i) table->increment_forward_count(EventId{1, 1});
  }
  EXPECT_EQ(*eq1_r.insert(make_event(3), SimTime::from_seconds(2)),
            (EventId{1, 1}));  // still the forwarded one
  EXPECT_EQ(*fifo_r.insert(make_event(3), SimTime::from_seconds(2)),
            (EventId{1, 2}));  // FIFO evicts the older, fresher event
}

// -- the newcomer competes in GC (paper Fig. 3: collect the globally worst) --

TEST(GcNewcomerTest, ExpiredNewcomerIsRejectedNotStored) {
  EventTable table{2};
  table.insert(make_event(1, 1000.0), SimTime::zero());
  table.insert(make_event(2, 1000.0), SimTime::zero());
  // The incoming event is already expired at insertion time: it is the GC
  // candidate, the stored events survive, nothing is stored.
  const Event late = make_event(3, /*validity_s=*/10.0);
  const auto victim = table.insert(late, SimTime::from_seconds(50));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 3}));
  EXPECT_FALSE(table.contains(EventId{1, 3}));
  EXPECT_TRUE(table.contains(EventId{1, 1}));
  EXPECT_TRUE(table.contains(EventId{1, 2}));
  EXPECT_EQ(table.size(), 2u);
}

TEST(GcNewcomerTest, ExactTieEvictsIncumbentNotNewcomer) {
  // All candidates score 1.0 (fwd = 0): the newcomer is the freshest event
  // in the system, so on an exact tie the incumbent makes way even when the
  // newcomer has the smallest id — a publisher can never lose its own fresh
  // event to the id tie-break.
  Event incoming = make_event(1, 60.0);
  incoming.id = EventId{0, 0};
  EventTable table{2};
  table.insert(make_event(5, 60.0), SimTime::zero());
  table.insert(make_event(7, 60.0), SimTime::zero());
  const auto victim = table.insert(incoming, SimTime::zero());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (EventId{1, 5}));  // smallest stored id
  EXPECT_TRUE(table.contains(EventId{0, 0}));
  EXPECT_EQ(table.size(), 2u);
}

TEST(GcNewcomerTest, FreshNewcomerStillEvictsWorstStored) {
  for (const GcPolicy policy :
       {GcPolicy::kPaperScore, GcPolicy::kFifo, GcPolicy::kMostForwarded}) {
    EventTable table{2, policy};
    table.insert(make_event(1, 300.0), SimTime::from_seconds(1));
    table.insert(make_event(2, 300.0), SimTime::from_seconds(2));
    for (int i = 0; i < 5; ++i) table.increment_forward_count(EventId{1, 1});
    const auto victim =
        table.insert(make_event(3, 300.0, ".t",
                                SimTime::from_seconds(3)),
                     SimTime::from_seconds(3));
    ASSERT_TRUE(victim.has_value());
    EXPECT_NE(*victim, (EventId{1, 3})) << "policy "
                                        << static_cast<int>(policy);
    EXPECT_TRUE(table.contains(EventId{1, 3}));
  }
}

TEST(GcNewcomerTest, RejectedNewcomerLeavesIndexConsistent) {
  EventTable table{1};
  table.insert(make_event(1, 1000.0, ".a.b"), SimTime::zero());
  const Event late = make_event(2, 1.0, ".a.c");
  ASSERT_EQ(table.insert(late, SimTime::from_seconds(10)), (EventId{1, 2}));
  EXPECT_EQ(table.topic_tree().size(), 1u);
  SubscriptionSet interests;
  interests.add(Topic::parse(".a"));
  EXPECT_EQ(table.ids_matching(interests, SimTime::from_seconds(10)),
            (std::vector<EventId>{{1, 1}}));
}

// -- the incremental topic index ---------------------------------------------

TEST(EventTableIndexTest, IdsMatchingDedupsOverlappingSubscriptions) {
  EventTable table{8};
  table.insert(make_event(1, 100.0, ".a.b"), SimTime::zero());
  table.insert(make_event(2, 100.0, ".a"), SimTime::zero());
  SubscriptionSet interests;
  interests.add(Topic::parse(".a"));
  interests.add(Topic::parse(".a.b"));  // redundant: subtree of .a
  EXPECT_EQ(table.ids_matching(interests, SimTime::zero()),
            (std::vector<EventId>{{1, 1}, {1, 2}}));
}

TEST(EventTableIndexTest, HasMatchShortCircuitsOnValidityAndTopic) {
  EventTable table{8};
  table.insert(make_event(1, 10.0, ".a.b"), SimTime::zero());
  table.insert(make_event(2, 100.0, ".z"), SimTime::zero());
  SubscriptionSet a;
  a.add(Topic::parse(".a"));
  EXPECT_TRUE(table.has_match(a, SimTime::zero()));
  EXPECT_FALSE(table.has_match(a, SimTime::from_seconds(50)));  // expired
  SubscriptionSet z;
  z.add(Topic::parse(".z"));
  EXPECT_TRUE(table.has_match(z, SimTime::from_seconds(50)));
  SubscriptionSet none;
  none.add(Topic::parse(".nope"));
  EXPECT_FALSE(table.has_match(none, SimTime::zero()));
}

// Property: after arbitrary interleavings of insert (with GC), expiry drops
// and forward increments, the persistent incremental index is identical to a
// tree rebuilt from scratch over the stored events.
class EventTableIndexProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventTableIndexProperty, IncrementalIndexEqualsRebuild) {
  Rng rng{GetParam()};
  EventTable table{16};
  const char* segments[] = {"a", "b", "c"};
  std::uint32_t seq = 0;
  for (int step = 0; step < 400; ++step) {
    const SimTime now = SimTime::from_seconds(step * 0.7);
    const double roll = rng.uniform();
    if (roll < 0.55) {
      Topic topic;
      const auto depth = rng.uniform_u64(4);
      for (std::uint64_t d = 0; d < depth; ++d) {
        topic = topic.child(segments[rng.uniform_u64(3)]);
      }
      Event e;
      e.id = EventId{1, seq++};
      e.topic = topic;
      e.published_at = now;
      e.validity = SimDuration::from_seconds(rng.uniform(1.0, 120.0));
      table.insert(std::move(e), now);
    } else if (roll < 0.7) {
      table.drop_expired(now);
    } else if (table.size() > 0) {
      const auto events = table.events_by_id();
      table.increment_forward_count(
          events[rng.uniform_u64(events.size())]->event.id);
    }

    // Rebuild from scratch and compare topics, per-topic ids and totals.
    topics::TopicTree<EventId> rebuilt;
    for (const StoredEvent* stored : table.events_by_id()) {
      rebuilt.insert(stored->event.topic, stored->event.id);
    }
    const auto& incremental = table.topic_tree();
    ASSERT_EQ(incremental.size(), rebuilt.size());
    const auto topics = rebuilt.topics();
    ASSERT_EQ(incremental.topics(), topics);
    for (const Topic& topic : topics) {
      const auto* expected_ids = rebuilt.at(topic);
      const auto* indexed = incremental.at(topic);
      ASSERT_NE(indexed, nullptr);
      std::vector<EventId> got;
      got.reserve(indexed->size());
      for (const IndexedEvent& entry : *indexed) {
        got.push_back(entry.id);
        ASSERT_EQ(entry.expires_at, table.find(entry.id)->event.expiry());
      }
      std::sort(got.begin(), got.end());
      std::vector<EventId> want = *expected_ids;
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "topic " << topic.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventTableIndexProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

// Property: under arbitrary interleavings of inserts and forward-increments,
// the table never exceeds capacity and insert evicts at most one event.
class EventTableChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventTableChurn, CapacityInvariant) {
  Rng rng{GetParam()};
  EventTable table{8};
  std::uint32_t seq = 0;
  for (int step = 0; step < 500; ++step) {
    const SimTime now = SimTime::from_seconds(step * 0.5);
    if (rng.bernoulli(0.6)) {
      const double validity = rng.uniform(1.0, 300.0);
      const std::size_t before = table.size();
      const auto victim = table.insert(
          make_event(seq++, validity, ".t", now), now);
      ASSERT_LE(table.size(), 8u);
      if (before < 8) {
        ASSERT_FALSE(victim.has_value());
      } else {
        ASSERT_TRUE(victim.has_value());
        ASSERT_FALSE(table.contains(*victim));
      }
    } else if (table.size() > 0) {
      const auto events = table.events_by_id();
      const auto& pick =
          events[rng.uniform_u64(events.size())]->event.id;
      table.increment_forward_count(pick);
    }
  }
  EXPECT_EQ(table.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventTableChurn,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace frugal::core
