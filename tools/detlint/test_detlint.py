#!/usr/bin/env python3
"""detlint self-tests.

Every fixture under fixtures/ is linted with --no-allow and its findings
compared against the `// EXPECT[<rule>]` markers inside the fixture itself:
*_fire fixtures must produce exactly the marked (line, rule) set, clean and
annotated fixtures must produce none. A final test asserts the real tree is
clean, so the ctest target is also the gate a developer runs locally.
"""

from __future__ import annotations

import importlib.util
import json
import re
import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
DETLINT = HERE / "detlint.py"
FIXTURES = HERE / "fixtures"
EXPECT_RE = re.compile(r"//\s*EXPECT\[([\w-]+)\]")


def run_detlint(*args: str) -> tuple[int, list[dict]]:
    proc = subprocess.run(
        [sys.executable, str(DETLINT), "--json", *args],
        capture_output=True, text=True, check=False)
    if proc.returncode not in (0, 1):
        raise AssertionError(
            f"detlint crashed ({proc.returncode}): {proc.stderr}")
    return proc.returncode, json.loads(proc.stdout)


def expected_markers(fixture: Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(
            fixture.read_text(encoding="utf-8").splitlines(), start=1):
        for match in EXPECT_RE.finditer(line):
            expected.add((lineno, match.group(1)))
    return expected


class FixtureTests(unittest.TestCase):
    """One subtest per fixture: findings == EXPECT markers, exactly."""

    def test_fixtures_match_expect_markers(self):
        fixtures = sorted(FIXTURES.glob("*.cpp"))
        self.assertGreaterEqual(len(fixtures), 13, "fixture set went missing")
        for fixture in fixtures:
            with self.subTest(fixture=fixture.name):
                expected = expected_markers(fixture)
                code, findings = run_detlint(
                    "--engine", "token", "--no-allow", str(fixture))
                got = {(f["line"], f["rule"]) for f in findings}
                self.assertEqual(got, expected)
                self.assertEqual(code, 1 if expected else 0)

    def test_fire_and_clean_both_represented_per_rule(self):
        """The suite must hold, for every rule, at least one fixture that
        fires it and at least one clean/annotated fixture that exercises the
        same shape without firing."""
        fired = set()
        for fixture in FIXTURES.glob("*_fire.cpp"):
            fired.update(rule for _, rule in expected_markers(fixture))
        self.assertEqual(
            fired, {"unordered-iter", "nondet-source", "env-read",
                    "wall-clock", "fp-accumulate", "ptr-order"})
        stems = {p.stem for p in FIXTURES.glob("*.cpp")}
        for prefix in ("r1_unordered_iter", "r2_nondet_source", "r2_env_read",
                       "r3_wall_clock", "r4_fp_accumulate", "r5_ptr_order"):
            self.assertTrue(
                any(s.startswith(prefix) and not s.endswith("_fire")
                    for s in stems),
                f"no clean/annotated fixture for {prefix}")

    def test_seeded_regression_is_caught(self):
        """The acceptance demo: the pre-port neighborhood_table shape (hash-
        order walk with the compensating sort deleted, FP sum in hash order)
        must fail the lint on both rules."""
        code, findings = run_detlint(
            "--engine", "token", "--no-allow",
            str(FIXTURES / "regression_neighborhood_fire.cpp"))
        self.assertEqual(code, 1)
        rules = {f["rule"] for f in findings}
        self.assertIn("unordered-iter", rules)
        self.assertIn("fp-accumulate", rules)


class AnnotationTests(unittest.TestCase):
    def test_empty_reason_is_an_error(self):
        bad = FIXTURES / "_tmp_bad_annotation.cpp"
        bad.write_text(
            "#include <cstdlib>\n"
            "// detlint: env-read-ok()\n"
            "const char* v = std::getenv(\"X\");\n", encoding="utf-8")
        try:
            code, findings = run_detlint("--engine", "token", str(bad))
            self.assertEqual(code, 1)
            rules = {f["rule"] for f in findings}
            # The reasonless annotation is itself reported and suppresses
            # nothing.
            self.assertIn("annotation", rules)
            self.assertIn("env-read", rules)
        finally:
            bad.unlink()

    def test_unknown_rule_is_an_error(self):
        bad = FIXTURES / "_tmp_unknown_rule.cpp"
        bad.write_text("// detlint: no-such-rule-ok(reason)\nint x = 0;\n",
                       encoding="utf-8")
        try:
            code, findings = run_detlint("--engine", "token", str(bad))
            self.assertEqual(code, 1)
            self.assertEqual({f["rule"] for f in findings}, {"annotation"})
        finally:
            bad.unlink()


class TreeTests(unittest.TestCase):
    def test_default_tree_is_clean(self):
        code, findings = run_detlint("--engine", "token")
        self.assertEqual(
            findings, [],
            "the tree must lint clean; fix, port to det:: wrappers, or "
            "annotate with // detlint: <rule>-ok(reason)")
        self.assertEqual(code, 0)

    def test_allowlisted_wrapper_fires_without_allowlist(self):
        """util/stable_map.hpp iterates unordered storage by design — the
        allowlist (not silence) is what keeps it clean, proving the linter
        sees through the wrapper file too."""
        target = HERE.parent.parent / "src" / "util" / "stable_map.hpp"
        code, findings = run_detlint(
            "--engine", "token", "--no-allow", str(target))
        self.assertEqual(code, 1)
        self.assertTrue(
            any(f["rule"] == "unordered-iter" for f in findings))


@unittest.skipUnless(importlib.util.find_spec("clang") is not None,
                     "python3-clang not installed")
class ClangEngineParityTests(unittest.TestCase):
    """When libclang is importable (the CI lint job), the clang engine must
    agree with the token engine on the fixtures' rule sets."""

    def test_clang_engine_on_fixtures(self):
        for fixture in sorted(FIXTURES.glob("*_fire.cpp")):
            with self.subTest(fixture=fixture.name):
                expected_rules = {r for _, r in expected_markers(fixture)}
                try:
                    code, findings = run_detlint(
                        "--engine", "clang", "--no-allow", str(fixture))
                except AssertionError as error:
                    if "clang engine unavailable" in str(error):
                        self.skipTest("libclang present but not loadable")
                    raise
                self.assertEqual(code, 1)
                self.assertEqual({f["rule"] for f in findings},
                                 expected_rules)


if __name__ == "__main__":
    unittest.main(verbosity=2)
