// Fixture: R1 unordered-iter must fire on every traversal shape.
// `// EXPECT[<rule>]` marks each line the linter must flag.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

struct Table {
  std::unordered_map<int, double> entries_;
  std::unordered_set<int> seen_;

  std::size_t count_positive() const {
    std::size_t n = 0;
    for (const auto& [id, value] : entries_) {  // EXPECT[unordered-iter]
      if (value > 0) ++n;
    }
    return n;
  }

  void drain() {
    for (auto it = entries_.begin(); it != entries_.end();) {  // EXPECT[unordered-iter]
      it = entries_.erase(it);
    }
  }

  void prune() {
    std::erase_if(seen_, [](int id) { return id < 0; });  // EXPECT[unordered-iter]
  }
};
