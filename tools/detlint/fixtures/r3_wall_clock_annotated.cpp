// Fixture: annotated wall-clock reads (bench harness timing) are accepted.
#include <chrono>

double bench_seconds() {
  // detlint: wall-clock-ok(bench harness wall-time; never fed back into sim)
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();  // detlint: wall-clock-ok(bench harness wall-time)
  return std::chrono::duration<double>(end - start).count();
}
