// Fixture: a justified annotation suppresses R1 — on the same line or the
// line directly above. Zero findings expected.
#include <cstddef>
#include <unordered_map>

struct Table {
  std::unordered_map<int, std::size_t> buckets_;

  void clear_buckets() {
    // detlint: unordered-iter-ok(clears every bucket; order unobservable)
    for (auto& [key, bucket] : buckets_) bucket = 0;
  }

  std::size_t total() const {
    std::size_t n = 0;
    for (const auto& [key, bucket] : buckets_) n += bucket;  // detlint: unordered-iter-ok(size_t sum is order-independent)
    return n;
  }
};
