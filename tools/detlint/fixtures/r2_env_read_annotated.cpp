// Fixture: an annotated getenv (e.g. a test-harness knob) is accepted.
#include <cstdlib>

bool regen_requested() {
  // detlint: env-read-ok(test-harness knob; never read by simulation)
  const char* value = std::getenv("FRUGAL_REGEN");
  return value != nullptr && value[0] == '1';
}
