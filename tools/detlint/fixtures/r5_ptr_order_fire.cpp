// Fixture: R5 ptr-order must fire on ordered containers keyed on raw
// pointer values and on compare-by-pointer comparators: pointer order is
// allocation (ASLR) order, different every process.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Node {
  int id = 0;
};

std::map<const Node*, int> rank_;  // EXPECT[ptr-order]
std::set<Node*> live_;             // EXPECT[ptr-order]

void sort_nodes(std::vector<const Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });  // EXPECT[ptr-order]
}
