// Fixture: R4 fp-accumulate must fire on floating-point += inside an
// unordered iteration — *in addition to* R1 on the loop itself, because FP
// rounding makes the hash order observable in the sum even when the loop
// was annotated for some other reason.
#include <unordered_map>

struct Table {
  std::unordered_map<int, double> speeds_;

  double average() const {
    double total = 0;
    for (const auto& [id, speed] : speeds_) {  // EXPECT[unordered-iter]
      total += speed;  // EXPECT[fp-accumulate]
    }
    return speeds_.empty() ? 0.0 : total / static_cast<double>(speeds_.size());
  }
};
