// Fixture: R4 stays silent on FP accumulation over deterministic order and
// on integral accumulation inside (annotated) unordered iteration.
#include <cstddef>
#include <unordered_map>
#include <vector>

struct Table {
  std::unordered_map<int, std::size_t> counts_;
  std::vector<double> speeds_;

  double sum_speeds() const {
    double total = 0;
    for (const double speed : speeds_) total += speed;  // ordered: fine
    return total;
  }

  std::size_t total_count() const {
    std::size_t n = 0;
    // detlint: unordered-iter-ok(size_t sum is order-independent)
    for (const auto& [id, count] : counts_) n += count;
    return n;
  }
};
