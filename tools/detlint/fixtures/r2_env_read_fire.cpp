// Fixture: R2' env-read must fire on raw getenv outside util/env.
#include <cstdlib>

bool flag_enabled() {
  const char* value = std::getenv("FRUGAL_FLAG");  // EXPECT[env-read]
  return value != nullptr && value[0] == '1';
}
