// Fixture: the seeded regression. This is the shape neighborhood_table.cpp
// had before the det::hash_map port — an unordered member walked by
// range-for, with the compensating std::sort deleted and an FP average
// summed in hash order. Re-introducing any of it must fail the lint.
#include <cstdint>
#include <unordered_map>
#include <vector>

using NodeId = std::uint32_t;

struct NeighborEntry {
  double speed_mps = 0;
  bool stale = false;
};

struct NeighborhoodTable {
  std::unordered_map<NodeId, NeighborEntry> entries_;

  // Pre-port collect(): hash-order walk, and the caller's sort is gone, so
  // the pruned-neighbor order leaks straight into the trace.
  std::vector<NodeId> collect_stale() {
    std::vector<NodeId> pruned;
    for (const auto& [id, entry] : entries_) {  // EXPECT[unordered-iter]
      if (entry.stale) pruned.push_back(id);
    }
    return pruned;  // no std::sort: hash order escapes
  }

  // Pre-port average_speed(): FP sum in hash order — byte-identical traces
  // break as soon as the bucket layout shifts.
  double average_speed() const {
    double total = 0;
    for (const auto& [id, entry] : entries_) {  // EXPECT[unordered-iter]
      total += entry.speed_mps;  // EXPECT[fp-accumulate]
    }
    return entries_.empty() ? 0.0
                            : total / static_cast<double>(entries_.size());
  }
};
