// Fixture: R3 wall-clock must fire on steady_clock outside the whitelist.
#include <chrono>

double elapsed_seconds() {
  const auto start = std::chrono::steady_clock::now();  // EXPECT[wall-clock]
  const auto end = std::chrono::steady_clock::now();    // EXPECT[wall-clock]
  return std::chrono::duration<double>(end - start).count();
}
