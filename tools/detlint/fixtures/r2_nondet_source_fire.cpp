// Fixture: R2 nondet-source must fire on every banned randomness / wall-time
// source.
#include <chrono>
#include <cstdlib>
#include <random>

int draw() {
  std::random_device device;  // EXPECT[nondet-source]
  std::mt19937 engine;        // EXPECT[nondet-source]
  srand(42);                  // EXPECT[nondet-source]
  return rand() + static_cast<int>(device() + engine());  // EXPECT[nondet-source]
}

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // EXPECT[nondet-source]
}
