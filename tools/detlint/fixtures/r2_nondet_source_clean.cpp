// Fixture: R2 stays silent on the sanctioned pattern — every stream derived
// from an explicit run seed (util/rng.hpp's discipline).
#include <cstdint>
#include <random>

std::uint64_t splitmix(std::uint64_t& state);

int draw(std::uint64_t run_seed) {
  std::mt19937_64 engine{run_seed};  // explicitly seeded: allowed
  std::uniform_int_distribution<int> dist{0, 9};
  return dist(engine);
}
