// Fixture: R1 must stay silent on point lookups, the find/end membership
// idiom, and iteration over ordered/sequence containers.
#include <map>
#include <unordered_map>
#include <vector>

struct Table {
  std::unordered_map<int, double> entries_;
  std::map<int, double> ordered_;
  std::vector<int> ids_;

  bool knows(int id) const { return entries_.find(id) != entries_.end(); }

  double get_or_zero(int id) const {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return 0.0;
    return it->second;
  }

  double sum_sorted() const {
    double total = 0;
    for (const auto& [id, value] : ordered_) total += value;
    for (const int id : ids_) total += static_cast<double>(id);
    return total;
  }
};
