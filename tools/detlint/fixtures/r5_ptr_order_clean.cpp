// Fixture: R5 stays silent on stable-id keys and field-based comparators.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct Node {
  std::uint32_t id = 0;
};

std::map<std::uint32_t, int> rank_;
std::set<std::uint32_t> live_;

void sort_nodes(std::vector<const Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}
