#!/usr/bin/env python3
"""detlint — the repo's determinism linter.

Every headline claim this repository makes (golden traces byte-for-byte,
shard merges cmp-equal to single-box runs, --jobs 1 == --jobs 8 CSVs)
rests on one discipline: nothing order- or environment-sensitive may
depend on hash layout, wall clocks, or ambient randomness. detlint turns
that discipline into machinery. It enforces:

  R1  unordered-iter   Range-for / begin()/end() / std::erase_if traversal
                       of std::unordered_map/set outside allowlisted sites.
                       Hash order is not part of any contract; iterate a
                       sorted view (det::hash_map in util/stable_map.hpp)
                       or annotate with a justification.
  R2  nondet-source    Banned nondeterminism sources: std::random_device,
                       rand()/srand(), std::chrono::system_clock, and
                       default-constructed standard RNG engines (their
                       default seed invites later "fixes" to time seeds).
                       All simulator randomness flows from util/rng.hpp.
  R2' env-read         getenv outside util/env — ambient configuration must
                       go through the typed env_* helpers so runs are
                       reproducible from their recorded configuration.
  R3  wall-clock       std::chrono::steady_clock outside the wall-clock
                       provenance whitelist (the self-profiler and the sweep
                       runner's wall_seconds field). Wall time must never
                       reach canonical outputs.
  R4  fp-accumulate    Floating-point += / -= accumulation inside an
                       unordered iteration: hash-order FP sums round
                       differently per layout, silently changing results.
  R5  ptr-order        Ordered containers keyed on raw pointer values, or
                       comparators that compare raw pointers: pointer order
                       is ASLR order, different every process.

Escape hatch: a finding on line N is suppressed by the annotation

    // detlint: <rule>-ok(<non-empty reason>)

on line N or line N-1. The reason is mandatory; an empty one is an error.

Engines:
  * token  — a comment/string-aware lexical pass. No dependencies; this is
             the fallback (and self-test reference) everywhere.
  * clang  — libclang (clang.cindex) over build/compile_commands.json for
             type-accurate detection through typedefs and auto.
  * auto   — clang when importable and loadable, token otherwise.

Exit status: 0 when no unsuppressed findings, 1 otherwise, 2 on usage or
environment errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

# Directories scanned by a default (no-path) invocation, relative to the
# repository root.
DEFAULT_ROOTS = ["src", "tests", "bench", "examples"]

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

RULES = {
    "unordered-iter": "traversal of std::unordered_map/set (hash order)",
    "nondet-source": "banned nondeterminism source",
    "env-read": "getenv outside util/env",
    "wall-clock": "steady_clock outside the wall-clock whitelist",
    "fp-accumulate": "floating-point accumulation inside unordered iteration",
    "ptr-order": "ordering keyed on raw pointer values (ASLR order)",
}

# Per-rule allowlists (repo-root-relative paths). These are the sites whose
# whole job is the thing the rule bans: the det:: wrappers must iterate the
# unordered storage to build their sorted views, the profiler and the sweep
# runner own wall-clock provenance, and util/env is the one sanctioned
# getenv call.
ALLOWLIST = {
    "unordered-iter": {"src/util/stable_map.hpp"},
    "wall-clock": {"src/sim/profiler.hpp", "src/runner/sweep.cpp"},
    "env-read": {"src/util/env.cpp"},
}


@dataclass(frozen=True)
class Finding:
    file: str  # repo-root-relative, POSIX separators
    line: int  # 1-based
    rule: str
    message: str


# --------------------------------------------------------------------------
# Lexing: strip comments and literals (preserving offsets), harvest
# `// detlint: <rule>-ok(reason)` annotations.

ANNOTATION_RE = re.compile(r"detlint:\s*([\w-]+?)-ok\(([^)]*)\)")


def lex(text: str):
    """Returns (code, annotations, errors): `code` is `text` with comment
    and string/char-literal *contents* replaced by spaces (newlines kept, so
    offsets and line numbers survive); `annotations` maps line -> set of
    rule ids suppressed there; `errors` lists (line, message) for malformed
    annotations."""
    out = []
    annotations: dict[int, set[str]] = {}
    errors: list[tuple[int, str]] = []
    i, n = 0, len(text)
    line = 1

    def blank(segment: str) -> str:
        return "".join(c if c == "\n" else " " for c in segment)

    def harvest(comment: str, start_line: int) -> None:
        for match in ANNOTATION_RE.finditer(comment):
            rule, reason = match.group(1), match.group(2).strip()
            at = start_line + comment[: match.start()].count("\n")
            if rule not in RULES:
                errors.append((at, f"annotation names unknown rule '{rule}'"))
            elif not reason:
                errors.append(
                    (at, f"annotation '{rule}-ok' needs a non-empty reason"))
            else:
                annotations.setdefault(at, set()).add(rule)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            harvest(text[i:end], line)
            out.append(blank(text[i:end]))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            harvest(text[i:end + 2], line)
            segment = text[i:end + 2]
            out.append(blank(segment))
            line += segment.count("\n")
            i = end + 2
        elif c == '"' and text[max(0, i - 1):i + 1] in ('R"', 'R"'):
            # Raw string literal R"delim( ... )delim".
            m = re.match(r'"([^(\s]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            delim = m.group(1)
            close = text.find(")" + delim + '"', i)
            close = n if close == -1 else close + len(delim) + 2
            segment = text[i:close]
            out.append('"' + blank(segment[1:-1]) + '"'
                       if len(segment) >= 2 else blank(segment))
            line += segment.count("\n")
            i = close
        elif c in ('"', "'"):
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + blank(text[i + 1:j - 1]) + (text[j - 1:j] or ""))
            line += text[i:j].count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    return "".join(out), annotations, errors


# --------------------------------------------------------------------------
# Token engine.

UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<")
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:map|set)\s*<")
FP_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:[;,=({]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
MEMBER_ITER_RE_TEMPLATE = r"\b({names})\s*\.\s*c?r?(?:begin|end)\s*\("
ERASE_IF_RE = re.compile(r"\bstd\s*::\s*erase_if\s*\(\s*([^,]+),")
ENGINE_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux24|ranlux48|"
    r"knuth_b)\s+\w+\s*;")
PTR_CMP_RE = re.compile(
    r"\[[^\]\n]*\]\s*\(\s*(?:const\s+)?[\w:]+\s*\*+\s*(?:const\s+)?(\w+)\s*,"
    r"\s*(?:const\s+)?[\w:]+\s*\*+\s*(?:const\s+)?(\w+)\s*\)"
    r"\s*(?:->\s*[\w:]+\s*)?\{\s*return\s+(\w+)\s*[<>]\s*(\w+)\s*;")
ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<")

BANNED_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b|\brandom_device\b"),
     "nondet-source", "std::random_device is nondeterministic by design; "
     "derive streams from the run seed via util/rng.hpp"),
    (re.compile(r"\bsrand\s*\("), "nondet-source",
     "srand() seeds hidden global state; use util/rng.hpp"),
    (re.compile(r"\brand\s*\("), "nondet-source",
     "rand() draws from hidden global state; use util/rng.hpp"),
    (re.compile(r"\bsystem_clock\b"), "nondet-source",
     "system_clock reads wall time; simulation time comes from the "
     "scheduler, wall provenance from the profiler/sweep runner"),
    (re.compile(r"\bgetenv\s*\("), "env-read",
     "read the environment through util/env's typed helpers"),
]


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def match_angles(code: str, open_idx: int) -> int:
    """Given index of '<', returns index one past its matching '>', or -1."""
    depth = 0
    i = open_idx
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Ignore '->' and '>>' handled naturally: '>>' closes two.
            if i > 0 and code[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1  # not a template argument list after all
        i += 1
    return -1


def declared_unordered(code: str, aliases: set[str]) -> set[str]:
    """Names declared in `code` with std::unordered_map/set type (or an
    alias of one)."""
    names: set[str] = set()
    for match in UNORDERED_DECL_RE.finditer(code):
        close = match_angles(code, match.end() - 1)
        if close == -1:
            continue
        after = re.match(r"\s*&?\s*(\w+)\s*[;={(,)]", code[close:])
        if after:
            names.add(after.group(1))
    for alias in aliases:
        for match in re.finditer(
                r"\b" + re.escape(alias) + r"\s+(\w+)\s*[;={(]", code):
            names.add(match.group(1))
    return names


def unordered_symbols(files: dict[str, str]) -> dict[str, set[str]]:
    """Per-file sets of names known to be std::unordered_map/set.

    Scoping keeps the name-based heuristic honest: a file sees names it
    declares itself, names declared in its paired header/source (same stem —
    the member-field case: declared in foo.hpp, iterated in foo.cpp), and,
    tree-wide, names following the trailing-underscore member convention
    (`table_`) declared in any header. A local `events` vector in one file
    is never poisoned by an unordered `events` in another; the clang engine
    in CI resolves the remaining cross-file cases by type."""
    aliases: set[str] = set()
    for code in files.values():
        for match in USING_ALIAS_RE.finditer(code):
            aliases.add(match.group(1))
    own: dict[str, set[str]] = {
        rel: declared_unordered(code, aliases) for rel, code in files.items()}
    header_members: set[str] = set()
    for rel, names in own.items():
        if Path(rel).suffix in (".hpp", ".hh", ".h"):
            header_members.update(n for n in names if n.endswith("_"))
    by_stem: dict[str, set[str]] = {}
    for rel, names in own.items():
        path = Path(rel)
        by_stem.setdefault(str(path.parent / path.stem), set()).update(names)
    scoped: dict[str, set[str]] = {}
    for rel in files:
        path = Path(rel)
        scoped[rel] = (own[rel]
                       | by_stem.get(str(path.parent / path.stem), set())
                       | header_members)
    return scoped


def terminal_name(expr: str) -> str | None:
    """The identifier an expression like `table_`, `this->entries_` or
    `node.events_` ultimately names; None for calls, indexing, etc."""
    expr = expr.strip()
    if not expr or expr[-1] in ")]":
        return None
    match = re.search(r"(\w+)\s*$", expr)
    return match.group(1) if match else None


def find_block(code: str, start: int) -> tuple[int, int]:
    """(open, close) offsets of the next {...} block at/after `start`; for a
    braceless statement, the span up to the next ';'."""
    n = len(code)
    i = start
    while i < n and code[i] not in "{;":
        i += 1
    if i >= n:
        return (n, n)
    if code[i] == ";":
        return (start, i)
    depth = 0
    j = i
    while j < n:
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return (i, j)
        j += 1
    return (i, n)


def token_lint_file(rel: str, code: str, names: set[str],
                    findings: list[Finding]) -> None:
    fp_vars = {m.group(1) for m in FP_DECL_RE.finditer(code)}

    def add(offset: int, rule: str, message: str) -> None:
        findings.append(Finding(rel, line_of(code, offset), rule, message))

    # R1: range-for over an unordered container (+ R4 inside its body).
    for match in RANGE_FOR_RE.finditer(code):
        open_paren = match.end() - 1
        depth = 0
        close_paren = -1
        for i in range(open_paren, len(code)):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    close_paren = i
                    break
        if close_paren == -1:
            continue
        header = code[open_paren + 1:close_paren]
        if ":" not in header:
            continue
        # The range expression: after the last top-level ':' that is not
        # part of '::'.
        parts = re.split(r"(?<!:):(?!:)", header)
        if len(parts) < 2:
            continue
        range_expr = parts[-1]
        name = terminal_name(range_expr)
        if name is None or name not in names:
            continue
        add(match.start(), "unordered-iter",
            f"range-for over unordered container '{name}': hash order is "
            "not deterministic across layouts; iterate a sorted view "
            "(det::hash_map/hash_set in util/stable_map.hpp)")
        body_open, body_close = find_block(code, close_paren + 1)
        body = code[body_open:body_close]
        for acc in re.finditer(r"([\w]+)(?:\.\w+|->\w+|\[[^\]]*\])*\s*[+\-]=",
                               body):
            root = acc.group(1)
            if root in fp_vars:
                add(body_open + acc.start(), "fp-accumulate",
                    f"floating-point accumulation into '{root}' inside "
                    "unordered iteration: hash-order FP sums round "
                    "differently per layout")

    # R1: explicit iterator traversal.
    if names:
        member_iter_re = re.compile(MEMBER_ITER_RE_TEMPLATE.format(
            names="|".join(re.escape(n) for n in sorted(names))))
        for match in member_iter_re.finditer(code):
            # `it == m.end()` / `it != m.end()` is the find-membership
            # idiom, not a traversal.
            before = code[:match.start()].rstrip()
            if before.endswith("==") or before.endswith("!="):
                continue
            add(match.start(), "unordered-iter",
                f"iterator traversal of unordered container "
                f"'{match.group(1)}'")
        for match in ERASE_IF_RE.finditer(code):
            name = terminal_name(match.group(1))
            if name in names:
                add(match.start(), "unordered-iter",
                    f"std::erase_if over unordered container '{name}': "
                    "the visit order leaks to any side effect in the "
                    "predicate; use det::hash_map::erase_if (pure "
                    "per-entry predicates only) or a sorted sweep")

    # R2 / R2' / R3.
    for pattern, rule, message in BANNED_PATTERNS:
        for match in pattern.finditer(code):
            add(match.start(), rule, message)
    for match in ENGINE_DECL_RE.finditer(code):
        add(match.start(), "nondet-source",
            f"default-constructed std::{match.group(1)}: the default seed "
            "is a constant today and a time-seed refactor tomorrow; seed "
            "explicitly from the run seed (util/rng.hpp)")
    for match in re.finditer(r"\bsteady_clock\b", code):
        add(match.start(), "wall-clock",
            "steady_clock outside the wall-clock whitelist "
            "(sim/profiler.hpp, runner/sweep.cpp): wall time must never "
            "influence simulation state or canonical outputs")

    # R5: ordered containers keyed on raw pointers.
    for match in ORDERED_DECL_RE.finditer(code):
        close = match_angles(code, match.end() - 1)
        if close == -1:
            continue
        args = code[match.end():close - 1]
        depth = 0
        first = args
        for i, c in enumerate(args):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                first = args[:i]
                break
        if first.strip().endswith("*"):
            add(match.start(), "ptr-order",
                f"ordered container keyed on raw pointer "
                f"'{first.strip()}': pointer order is allocation (ASLR) "
                "order — key on a stable id instead")
    for match in PTR_CMP_RE.finditer(code):
        params = {match.group(1), match.group(2)}
        if match.group(3) in params and match.group(4) in params:
            add(match.start(), "ptr-order",
                "comparator orders by raw pointer value (ASLR order); "
                "compare a stable field instead")


def run_token_engine(paths: list[Path]) -> tuple[list[Finding],
                                                 dict[str, dict[int, set[str]]],
                                                 list[Finding]]:
    files: dict[str, str] = {}
    annotations: dict[str, dict[int, set[str]]] = {}
    errors: list[Finding] = []
    for path in paths:
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        code, notes, note_errors = lex(path.read_text(encoding="utf-8"))
        files[rel] = code
        annotations[rel] = notes
        for line, message in note_errors:
            errors.append(Finding(rel, line, "annotation", message))
    scoped = unordered_symbols(files)
    findings: list[Finding] = []
    for rel, code in sorted(files.items()):
        token_lint_file(rel, code, scoped[rel], findings)
    return findings, annotations, errors


# --------------------------------------------------------------------------
# libclang engine.

def run_clang_engine(paths: list[Path], compile_commands: Path):
    import clang.cindex as ci  # noqa: deferred, optional dependency

    if not compile_commands.is_file():
        raise RuntimeError(
            f"no compile_commands.json at {compile_commands}; configure "
            "the default CMake preset first (cmake --preset default)")

    wanted = {p.resolve() for p in paths}
    findings: list[Finding] = []
    annotations: dict[str, dict[int, set[str]]] = {}
    errors: list[Finding] = []
    seen: set[tuple[str, int, str, str]] = set()

    def rel_of(location) -> str | None:
        if location.file is None:
            return None
        path = Path(location.file.name).resolve()
        if path not in wanted:
            return None
        return path.relative_to(REPO_ROOT).as_posix()

    def add(cursor, rule: str, message: str) -> None:
        rel = rel_of(cursor.location)
        if rel is None:
            return
        key = (rel, cursor.location.line, rule, message)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(rel, cursor.location.line, rule, message))

    def is_unordered(ctype) -> bool:
        spelling = ctype.get_canonical().spelling
        return ("unordered_map<" in spelling or "unordered_set<" in spelling)

    def is_fp(ctype) -> bool:
        return ctype.get_canonical().spelling in ("float", "double",
                                                  "long double")

    def first_template_arg_is_pointer(ctype) -> bool:
        canonical = ctype.get_canonical()
        if canonical.get_num_template_arguments() < 1:
            return False
        arg = canonical.get_template_argument_type(0)
        return arg.get_canonical().kind == ci.TypeKind.POINTER

    def walk(cursor, unordered_loop_extents):
        for child in cursor.get_children():
            kind = child.kind
            if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(child.get_children())
                flagged = False
                # The range initializer is the first expression child.
                for sub in children:
                    if sub.kind.is_expression() and is_unordered(sub.type):
                        add(child, "unordered-iter",
                            "range-for over unordered container: iterate a "
                            "sorted view (det::hash_map/hash_set)")
                        flagged = True
                        break
                if flagged:
                    extent = child.extent
                    unordered_loop_extents = unordered_loop_extents + [
                        (extent.start.offset, extent.end.offset,
                         extent.start.file.name if extent.start.file else "")]
            elif kind == ci.CursorKind.CALL_EXPR:
                if child.spelling in ("begin", "end", "cbegin", "cend",
                                      "rbegin", "rend"):
                    args = list(child.get_children())
                    if args and is_unordered(args[0].type):
                        add(child, "unordered-iter",
                            f"{child.spelling}() on unordered container")
                elif child.spelling == "erase_if":
                    args = [a for a in child.get_children()
                            if a.kind.is_expression()]
                    if args and is_unordered(args[0].type):
                        add(child, "unordered-iter",
                            "std::erase_if over unordered container")
                elif child.spelling in ("rand", "srand"):
                    add(child, "nondet-source",
                        f"{child.spelling}() draws from hidden global "
                        "state; use util/rng.hpp")
                elif child.spelling == "getenv":
                    add(child, "env-read",
                        "read the environment through util/env")
            elif kind in (ci.CursorKind.TYPE_REF, ci.CursorKind.DECL_REF_EXPR,
                          ci.CursorKind.TEMPLATE_REF):
                spelling = child.spelling
                if "random_device" in spelling:
                    add(child, "nondet-source", "std::random_device is "
                        "nondeterministic by design; use util/rng.hpp")
                elif "system_clock" in spelling:
                    add(child, "nondet-source",
                        "system_clock reads wall time")
                elif "steady_clock" in spelling:
                    add(child, "wall-clock",
                        "steady_clock outside the wall-clock whitelist")
            elif kind in (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL):
                canonical = child.type.get_canonical().spelling
                engine = re.match(
                    r"std::(?:__\w+::)?(mersenne_twister_engine|"
                    r"linear_congruential_engine|subtract_with_carry_engine|"
                    r"shuffle_order_engine|discard_block_engine)<", canonical)
                if engine and not any(
                        sub.kind.is_expression()
                        for sub in child.get_children()):
                    add(child, "nondet-source",
                        "default-constructed standard RNG engine; seed "
                        "explicitly from the run seed (util/rng.hpp)")
                base = re.match(r"std::(?:__\w+::)?(?:multi)?(map|set)<",
                                canonical)
                if base and first_template_arg_is_pointer(child.type):
                    add(child, "ptr-order",
                        "ordered container keyed on raw pointer (ASLR "
                        "order); key on a stable id instead")
            elif kind == ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
                loc = child.location
                if is_fp(child.type) and loc.file is not None:
                    for start, end, fname in unordered_loop_extents:
                        if (fname == loc.file.name
                                and start <= loc.offset <= end):
                            add(child, "fp-accumulate",
                                "floating-point accumulation inside "
                                "unordered iteration")
                            break
            walk(child, unordered_loop_extents)

    db = ci.CompilationDatabase.fromDirectory(str(compile_commands.parent))
    index = ci.Index.create()
    parsed: set[Path] = set()
    for command in db.getAllCompileCommands():
        source = Path(command.directory, command.filename).resolve()
        if source not in wanted or source in parsed:
            continue
        parsed.add(source)
        args = [a for a in list(command.arguments)[1:]
                if a not in ("-c", "-o", str(command.filename))]
        # Drop the object-file operand that follows -o (already filtered).
        tu = index.parse(str(source), args=args,
                         options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        walk(tu.cursor, [])
    # Headers and files outside the compilation database (tests not built,
    # fixtures): parse standalone with the project's include root.
    for path in sorted(wanted - parsed):
        tu = index.parse(str(path),
                         args=["-std=c++20", f"-I{REPO_ROOT}/src", "-xc++"])
        walk(tu.cursor, [])

    # Annotations still come from the lexical pass (libclang drops comments
    # unless every TU re-parses with comment retention per file).
    for path in sorted(wanted):
        rel = path.relative_to(REPO_ROOT).as_posix()
        _, notes, note_errors = lex(path.read_text(encoding="utf-8"))
        annotations[rel] = notes
        for line, message in note_errors:
            errors.append(Finding(rel, line, "annotation", message))
    return findings, annotations, errors


# --------------------------------------------------------------------------
# Driver.

def collect_paths(arguments: list[str]) -> list[Path]:
    roots = ([Path(a) for a in arguments] if arguments
             else [REPO_ROOT / r for r in DEFAULT_ROOTS])
    paths: list[Path] = []
    for root in roots:
        if root.is_file():
            paths.append(root)
        elif root.is_dir():
            paths.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
        else:
            print(f"detlint: no such path: {root}", file=sys.stderr)
            sys.exit(2)
    return paths


def clang_available() -> bool:
    try:
        import clang.cindex as ci
        ci.Index.create()
        return True
    except Exception:
        return False


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: "
                             + " ".join(DEFAULT_ROOTS) + " under the repo "
                             "root)")
    parser.add_argument("--engine", choices=["auto", "token", "clang"],
                        default="auto")
    parser.add_argument("--compile-commands",
                        default=str(REPO_ROOT / "build"
                                    / "compile_commands.json"),
                        help="compilation database for the clang engine")
    parser.add_argument("--no-allow", action="store_true",
                        help="ignore the built-in per-rule allowlists "
                             "(fixture self-tests)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:16} {description}")
        return 0

    paths = collect_paths(args.paths)
    engine = args.engine
    if engine == "auto":
        engine = "clang" if clang_available() else "token"
        if engine == "token":
            print("detlint: libclang unavailable, using the token engine",
                  file=sys.stderr)

    if engine == "clang":
        try:
            findings, annotations, errors = run_clang_engine(
                paths, Path(args.compile_commands))
        except ImportError as error:
            print(f"detlint: clang engine unavailable: {error}",
                  file=sys.stderr)
            return 2
        except RuntimeError as error:
            print(f"detlint: {error}", file=sys.stderr)
            return 2
    else:
        findings, annotations, errors = run_token_engine(paths)

    reported: list[Finding] = []
    for finding in findings:
        notes = annotations.get(finding.file, {})
        if (finding.rule in notes.get(finding.line, ())
                or finding.rule in notes.get(finding.line - 1, ())):
            continue
        if not args.no_allow and finding.file in ALLOWLIST.get(
                finding.rule, ()):
            continue
        reported.append(finding)
    reported.extend(errors)
    reported.sort(key=lambda f: (f.file, f.line, f.rule))

    if args.json:
        print(json.dumps([f.__dict__ for f in reported], indent=2))
    else:
        for finding in reported:
            print(f"{finding.file}:{finding.line}: [{finding.rule}] "
                  f"{finding.message}")
    if reported:
        print(f"detlint ({engine} engine): {len(reported)} finding(s); "
              "fix, port to det:: wrappers, or annotate with "
              "`// detlint: <rule>-ok(reason)`", file=sys.stderr)
        return 1
    print(f"detlint ({engine} engine): clean ({len(paths)} files)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
