// Causal dissemination tracing: per-event propagation DAGs.
//
// The DisseminationTracer is a pure observer that reconstructs, for every
// published workload event, the causal DAG of its propagation:
//   nodes  = (process, sim-time) states — the instants a process acquired,
//            advertised, requested or delivered the event,
//   edges  = (frame id, sender -> receiver, phase) for every frame offer the
//            medium reported, labeled with the offer's outcome (delivered /
//            collided / missed-{busy,asleep,down}),
//   leaves = one terminal outcome per eligible subscriber:
//            delivered / expired-in-table / gc-evicted / marooned /
//            died-with-node (a total partition — causal_trace_test proves it).
//
// Inputs are the Medium's FrameListener callbacks (per-frame fates, keyed by
// the stable frame ids PR 10 added) and the protocol nodes' PhaseAnnotator
// calls (what each event-carrying or advert frame means). The tracer NEVER
// schedules tasks, draws RNG, or mutates simulation state: attaching it is
// provably perturbation-free (goldens and sweep CSVs byte-identical with
// tracing on and off).
//
// From the DAG it derives per-run metrics through the PR 7 operator graph:
// hop-count distribution (KLL sketch), redundancy ratio (intact receptions
// per unique delivery), and a four-segment latency decomposition
//   publish -> first-carry -> advert-heard -> retrieve-request -> deliver
// via a clamped milestone chain m0 <= m1 <= m2 <= m3 <= m4, so the segments
// are each >= 0 and sum exactly (in integer microseconds) to the delivery
// latency. Flooding runs naturally show zero advert/request segments, which
// is what makes the frugal-vs-flooding latency gap attributable to protocol
// phases.
//
// Exports: a JSONL trace (one self-describing record per event; see
// EXPERIMENTS.md for the schema) consumed by scripts/explain_event.py and
// scripts/plot_figures.py, and Perfetto flow events stitched onto the
// telemetry writer's per-node tracks. In bounded mode, records are retired
// (row written, stats folded, memory freed) once the stream clock passes the
// event's validity expiry, so memory is flat in event count; stats and JSONL
// are byte-identical between bounded and unbounded modes because both fold
// at retirement and count post-retirement deliveries separately.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/node.hpp"
#include "net/medium.hpp"
#include "stats/kll_sketch.hpp"
#include "telemetry/dag.hpp"
#include "telemetry/perfetto.hpp"
#include "util/stable_map.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::telemetry {

/// Terminal outcome of one eligible subscriber for one event (a total
/// partition, decided at the event's validity expiry, priority top-down).
enum class SubscriberOutcome : std::uint8_t {
  kDelivered,       ///< the application saw the event before expiry
  kDiedWithNode,    ///< the subscriber's radio was down at expiry
  kMarooned,        ///< no frame referencing the event was ever offered
  kGcEvicted,       ///< heard of the event, but it was GC-evicted somewhere
  kExpiredInTable,  ///< heard of the event, validity ran out anyway
};
inline constexpr std::size_t kSubscriberOutcomeCount = 5;

[[nodiscard]] const char* to_string(SubscriberOutcome outcome);

/// What happened to one frame offer at one receiver.
enum class EdgeOutcome : std::uint8_t {
  kDelivered,
  kCollided,
  kMissedBusy,
  kMissedAsleep,
  kMissedDown,
};

[[nodiscard]] const char* to_string(EdgeOutcome outcome);
[[nodiscard]] const char* to_string(core::DisseminationPhase phase);

/// One edge of an event's propagation DAG: a frame referencing the event,
/// offered by `from` to `to`, with the offer's fate.
struct EdgeRecord {
  std::uint64_t frame_id = 0;
  core::DisseminationPhase phase = core::DisseminationPhase::kPublish;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  SimTime sent;  ///< airtime start (the tx commit instant)
  SimTime at;    ///< outcome instant (offer time for busy/asleep, else end)
  EdgeOutcome outcome = EdgeOutcome::kDelivered;
};

/// Terminal row for one eligible subscriber.
struct SubscriberRecord {
  NodeId node = kInvalidNode;
  SubscriberOutcome outcome = SubscriberOutcome::kExpiredInTable;
  /// Delivery time for kDelivered, the event's expiry otherwise.
  SimTime at;
  /// Hop depth of the delivery path (0 = publisher self-delivery); 0 for
  /// non-delivered outcomes.
  std::uint32_t hops = 0;
};

/// Indices into the four-segment latency decomposition.
enum : std::size_t {
  kSegPublishToCarry = 0,   ///< publish -> last-hop carrier acquired it
  kSegCarryToAdvert = 1,    ///< carrier had it -> subscriber heard an advert
  kSegAdvertToRequest = 2,  ///< advert heard -> subscriber's id-list reply
  kSegRequestToDeliver = 3, ///< request -> application delivery
  kSegmentCount = 4,
};

/// The reconstructed DAG of one event, frozen at retirement.
struct EventRecord {
  core::EventId id;
  SimTime published_at;
  SimDuration validity;
  std::vector<EdgeRecord> edges;             ///< medium arrival order
  std::vector<SubscriberRecord> subscribers; ///< ascending node id
  bool has_first_carry = false;
  SimTime first_carry;  ///< first intact reception of the event anywhere
  std::uint64_t receptions = 0;  ///< intact event-carrying receptions
  std::uint64_t deliveries = 0;  ///< fresh app deliveries before retirement
  /// Per-segment latency totals (microseconds) summed over this event's
  /// deliveries; each delivery's four segments sum to its exact latency.
  std::int64_t segment_us[kSegmentCount] = {0, 0, 0, 0};
};

/// Per-run aggregates derived from the DAGs, carried into RunResult.
struct DisseminationStats {
  std::uint64_t events = 0;          ///< published workload events observed
  std::uint64_t eligible = 0;        ///< sum of per-event eligible counts
  std::uint64_t delivered = 0;       ///< fresh deliveries before retirement
  std::uint64_t receptions = 0;      ///< intact event-carrying receptions
  std::uint64_t late_deliveries = 0; ///< deliveries after retirement (rare)
  std::uint64_t outcomes[kSubscriberOutcomeCount] = {0, 0, 0, 0, 0};
  std::uint64_t hops_count = 0;
  std::int64_t hops_total = 0;
  double hops_p50 = 0.0;
  double hops_p95 = 0.0;
  double hops_max = 0.0;
  std::uint64_t segment_count = 0;  ///< deliveries with a decomposition
  std::int64_t segment_us[kSegmentCount] = {0, 0, 0, 0};

  /// Mean hop depth over all fresh deliveries (0 when none).
  [[nodiscard]] double mean_hops() const {
    return hops_count == 0
               ? 0.0
               : static_cast<double>(hops_total) /
                     static_cast<double>(hops_count);
  }
  /// Intact event-carrying receptions per unique delivery (0 when none).
  [[nodiscard]] double redundancy_ratio() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(receptions) /
                                static_cast<double>(delivered);
  }
  /// Mean seconds spent in one latency segment per decomposed delivery.
  [[nodiscard]] double mean_segment_s(std::size_t segment) const {
    return segment_count == 0
               ? 0.0
               : static_cast<double>(segment_us[segment]) / 1e6 /
                     static_cast<double>(segment_count);
  }
};

struct TracerConfig {
  /// When non-empty, write the dissem-trace JSONL here.
  std::string trace_path;
  /// Bounded-memory mode: free each event's record at retirement instead of
  /// keeping it for post-run introspection. Stats and JSONL are identical
  /// either way.
  bool bounded = false;
};

/// The pure-observer tracer. Plugs into the medium as its FrameListener and
/// into every protocol node as its PhaseAnnotator; the experiment fans its
/// delivery/GC/publish callbacks in next to telemetry's.
///
/// Every input callback is virtual so causal_trace_test can interpose a
/// recording shim: the shim captures the raw callback stream verbatim,
/// forwards to the base class, and a batch reconstruction over the captured
/// stream is then compared against the streaming DAGs for equality.
class DisseminationTracer : public net::FrameListener,
                            public core::PhaseAnnotator {
 public:
  struct Binding {
    std::size_t node_count = 0;
    /// Whether `node` counts toward an event's eligible-subscriber set
    /// (same contract as telemetry::RunBinding::node_eligible). Borrowed:
    /// valid from begin_run until end_run.
    std::function<bool(NodeId, const core::Event&)> node_eligible;
  };

  explicit DisseminationTracer(TracerConfig config = {});
  ~DisseminationTracer() override;

  DisseminationTracer(const DisseminationTracer&) = delete;
  DisseminationTracer& operator=(const DisseminationTracer&) = delete;

  void begin_run(Binding binding);

  /// Optional: stitch Perfetto flow events (publish -> tx spans ->
  /// deliveries) onto an existing writer's per-node tracks. Borrowed; must
  /// outlive the run. Call after begin_run.
  void set_perfetto(PerfettoWriter* writer) { perfetto_ = writer; }

  /// The experiment reports each publish with the event's final id and
  /// publish time, *before* calling the node's publish() (which
  /// self-delivers synchronously).
  virtual void on_publish(const core::Event& event, SimTime at);

  /// Fired once per fresh application-level delivery of a workload event.
  virtual void on_delivery(NodeId node, const core::Event& event, SimTime at);

  /// Fired once per event-table GC collection, with the victim's id.
  virtual void on_gc_eviction(NodeId node, core::EventId victim, SimTime at);

  /// Retires every outstanding event, finalizes stats and closes the trace
  /// file. Must run before the experiment tears down the bound state.
  virtual void end_run(SimTime run_end);

  // -- core::PhaseAnnotator -------------------------------------------------
  void annotate(std::uint64_t frame_id, NodeId sender,
                core::DisseminationPhase phase,
                const std::vector<core::EventId>& event_ids) override;

  // -- net::FrameListener ---------------------------------------------------
  void on_frame_sent(const net::Frame& frame, SimTime start,
                     SimTime end) override;
  void on_frame_dropped(const net::Frame& frame, SimTime at) override;
  void on_frame_delivered(const net::Frame& frame, NodeId receiver,
                          SimTime end) override;
  void on_frame_collided(const net::Frame& frame, NodeId receiver,
                         SimTime end) override;
  void on_frame_missed(const net::Frame& frame, NodeId receiver,
                       net::FrameLossReason reason, SimTime at) override;
  void on_node_up_changed(NodeId node, bool up, SimTime at) override;

  /// Valid after end_run.
  [[nodiscard]] const DisseminationStats& stats() const { return stats_; }

  /// Retired per-event records in publish order. Empty in bounded mode
  /// (records are freed at retirement); tests and explain tooling use the
  /// unbounded mode.
  [[nodiscard]] const std::vector<EventRecord>& records() const {
    return retired_;
  }

  /// Peak number of simultaneously live (unretired) events — the memory
  /// bound bench_dissem_overhead asserts against in bounded mode.
  [[nodiscard]] std::size_t live_event_high_water() const {
    return live_high_water_;
  }

  [[nodiscard]] bool bounded() const { return config_.bounded; }

 private:
  static constexpr std::uint32_t kDepthUnset = ~0u;

  /// Per-(event, process) causal state while the event is live.
  struct PerNode {
    std::uint32_t depth = kDepthUnset;  ///< hop depth at acquisition
    SimTime acq;                        ///< when depth was set
    bool offered = false;      ///< any frame referencing the event offered
    bool advert_heard = false;
    SimTime advert_at;
    bool requested = false;
    SimTime request_at;
    bool delivered = false;
    SimTime delivered_at;
    std::uint32_t hops = 0;
    std::int64_t segment_us[kSegmentCount] = {0, 0, 0, 0};
  };

  struct LiveEvent {
    EventRecord record;
    core::Event event;  ///< id/topic/validity copy for eligibility checks
    std::vector<NodeId> eligible;  ///< ascending
    det::hash_map<NodeId, PerNode> nodes;
    bool gc_evicted = false;
  };

  /// One annotated frame in flight (issued, possibly not yet on air).
  struct PendingFrame {
    NodeId sender = kInvalidNode;
    core::DisseminationPhase phase = core::DisseminationPhase::kPublish;
    std::vector<core::EventId> event_ids;
    bool sent = false;
    SimTime start;
    SimTime end;
  };

  /// Last intact event-carrying frame delivered to each receiver — how
  /// on_delivery (synchronous with on_frame) identifies the delivering
  /// frame and hence the last-hop carrier for the latency decomposition.
  struct LastDelivered {
    SimTime end = SimTime::from_us(-1);
    NodeId sender = kInvalidNode;
    std::uint64_t frame_id = 0;
    std::vector<core::EventId> event_ids;
  };

  [[nodiscard]] static bool carries_events(core::DisseminationPhase phase) {
    return phase == core::DisseminationPhase::kPublish ||
           phase == core::DisseminationPhase::kEventPush ||
           phase == core::DisseminationPhase::kFloodForward ||
           phase == core::DisseminationPhase::kGossipForward;
  }

  [[nodiscard]] static std::uint64_t flow_id_of(core::EventId id) {
    return (static_cast<std::uint64_t>(id.publisher) << 32) | id.seq;
  }

  [[nodiscard]] LiveEvent* live(core::EventId id) {
    auto* entry = live_.find(id);
    return entry != nullptr ? entry->get() : nullptr;
  }

  /// Advances the monotone stream clock: retires expired events and prunes
  /// stale frame annotations.
  void advance_stream(SimTime at);
  void record_edge(const PendingFrame& pending, std::uint64_t frame_id,
                   NodeId receiver, EdgeOutcome outcome, SimTime at);
  void retire_front(SimTime now);
  void write_record(const EventRecord& record);
  void fold_stats(const EventRecord& record);

  TracerConfig config_;
  Binding binding_;
  bool began_ = false;
  bool ended_ = false;

  // Operator DAG carrying the run aggregates (PR 7 engine): exact integer
  // sums for hop totals and segment times, a count per outcome class, and
  // the KLL hop sketch.
  Graph graph_;
  IntSum* hops_sum_ = nullptr;
  IntSum* segment_sums_[kSegmentCount] = {nullptr, nullptr, nullptr, nullptr};
  Count* outcome_counts_[kSubscriberOutcomeCount] = {nullptr, nullptr,
                                                     nullptr, nullptr,
                                                     nullptr};
  Count* receptions_op_ = nullptr;
  Count* deliveries_op_ = nullptr;
  QuantileSketchOp* hop_sketch_ = nullptr;

  /// Live events by id, plus their publish order (the retirement order).
  det::hash_map<core::EventId, std::unique_ptr<LiveEvent>, core::EventIdHash>
      live_;
  std::deque<core::EventId> order_;
  std::size_t live_high_water_ = 0;

  /// Annotated frames in flight, pruned once the stream passes their end.
  det::hash_map<std::uint64_t, PendingFrame> frames_;
  SimTime last_frame_prune_;

  std::vector<LastDelivered> last_delivered_;
  std::vector<bool> node_up_;

  SimTime stream_time_;
  std::uint64_t late_deliveries_ = 0;

  std::vector<EventRecord> retired_;  ///< unbounded mode only
  std::FILE* trace_ = nullptr;
  PerfettoWriter* perfetto_ = nullptr;

  DisseminationStats stats_;
};

}  // namespace frugal::telemetry
