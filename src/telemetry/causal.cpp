#include "telemetry/causal.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/expect.hpp"

namespace frugal::telemetry {

const char* to_string(SubscriberOutcome outcome) {
  switch (outcome) {
    case SubscriberOutcome::kDelivered: return "delivered";
    case SubscriberOutcome::kDiedWithNode: return "died-with-node";
    case SubscriberOutcome::kMarooned: return "marooned";
    case SubscriberOutcome::kGcEvicted: return "gc-evicted";
    case SubscriberOutcome::kExpiredInTable: return "expired-in-table";
  }
  return "?";
}

const char* to_string(EdgeOutcome outcome) {
  switch (outcome) {
    case EdgeOutcome::kDelivered: return "delivered";
    case EdgeOutcome::kCollided: return "collided";
    case EdgeOutcome::kMissedBusy: return "missed-busy";
    case EdgeOutcome::kMissedAsleep: return "missed-asleep";
    case EdgeOutcome::kMissedDown: return "missed-down";
  }
  return "?";
}

const char* to_string(core::DisseminationPhase phase) {
  switch (phase) {
    case core::DisseminationPhase::kPublish: return "publish";
    case core::DisseminationPhase::kAdvert: return "advert";
    case core::DisseminationPhase::kRetrieveRequest: return "retrieve-request";
    case core::DisseminationPhase::kEventPush: return "event-push";
    case core::DisseminationPhase::kFloodForward: return "flood-forward";
    case core::DisseminationPhase::kGossipForward: return "gossip-forward";
  }
  return "?";
}

DisseminationTracer::DisseminationTracer(TracerConfig config)
    : config_{std::move(config)} {
  hops_sum_ = graph_.add<IntSum>();
  for (auto*& op : segment_sums_) op = graph_.add<IntSum>();
  for (auto*& op : outcome_counts_) op = graph_.add<Count>();
  receptions_op_ = graph_.add<Count>();
  deliveries_op_ = graph_.add<Count>();
  hop_sketch_ = graph_.add<QuantileSketchOp>();
  // Hop samples fan out to both the exact sum and the sketch.
  graph_.connect(hops_sum_, hop_sketch_);
}

DisseminationTracer::~DisseminationTracer() {
  if (trace_ != nullptr) {
    std::fclose(trace_);
    trace_ = nullptr;
  }
}

void DisseminationTracer::begin_run(Binding binding) {
  FRUGAL_EXPECT(!began_);
  FRUGAL_EXPECT(binding.node_count > 0);
  FRUGAL_EXPECT(binding.node_eligible != nullptr);
  binding_ = std::move(binding);
  began_ = true;
  last_delivered_.assign(binding_.node_count, LastDelivered{});
  node_up_.assign(binding_.node_count, true);
  stream_time_ = SimTime::zero();
  last_frame_prune_ = SimTime::zero();
  if (!config_.trace_path.empty()) {
    trace_ = std::fopen(config_.trace_path.c_str(), "w");
    if (trace_ != nullptr) {
      std::fprintf(trace_,
                   "{\"artifact\":\"dissem-trace\",\"node_count\":%zu,"
                   "\"bounded\":%s}\n",
                   binding_.node_count, config_.bounded ? "true" : "false");
    }
  }
}

void DisseminationTracer::on_publish(const core::Event& event, SimTime at) {
  FRUGAL_EXPECT(began_ && !ended_);
  advance_stream(at);
  auto live = std::make_unique<LiveEvent>();
  live->event = event;
  live->record.id = event.id;
  live->record.published_at = at;
  live->record.validity = event.validity;
  for (NodeId node = 0; node < binding_.node_count; ++node) {
    if (binding_.node_eligible(node, event)) live->eligible.push_back(node);
  }
  // The publisher holds the event from the instant of publication: hop
  // depth 0, acquisition time = publish time.
  PerNode& publisher = live->nodes[event.id.publisher];
  publisher.depth = 0;
  publisher.acq = at;
  publisher.offered = true;
  const core::EventId id = event.id;
  if (live_.try_emplace(id, std::move(live)).inserted) {
    order_.push_back(id);
    live_high_water_ = std::max(live_high_water_, order_.size());
  }
  if (perfetto_ != nullptr) {
    // Coincides with telemetry's "publish" instant on the publisher track.
    perfetto_->flow_start(id.publisher, "dissem", "dissem", at,
                          flow_id_of(id));
  }
}

void DisseminationTracer::on_delivery(NodeId node, const core::Event& event,
                                      SimTime at) {
  if (!began_ || ended_) return;
  advance_stream(at);
  LiveEvent* live_event = live(event.id);
  if (live_event == nullptr) {
    // Published before the tracer attached, or already retired: count it
    // separately so bounded and unbounded stats stay identical.
    late_deliveries_ += 1;
    return;
  }
  PerNode& state = live_event->nodes[node];
  if (state.delivered) return;  // defensive: callers report fresh only
  state.delivered = true;
  state.delivered_at = at;
  state.hops = state.depth != kDepthUnset ? state.depth : 0;
  live_event->record.deliveries += 1;

  // Latency decomposition via the clamped milestone chain
  // m0 (publish) <= m1 (last-hop carrier acquired) <= m2 (advert heard)
  // <= m3 (request sent) <= m4 (deliver): each segment >= 0 and the four
  // sum exactly to the delivery latency in integer microseconds.
  const SimTime m0 = live_event->record.published_at;
  SimTime m1 = m0;
  const LastDelivered& slot =
      node < last_delivered_.size() ? last_delivered_[node] : LastDelivered{};
  if (slot.end == at &&
      std::find(slot.event_ids.begin(), slot.event_ids.end(), event.id) !=
          slot.event_ids.end()) {
    const PerNode* carrier = live_event->nodes.find(slot.sender);
    if (carrier != nullptr && carrier->depth != kDepthUnset) {
      m1 = std::clamp(carrier->acq, m0, at);
    }
  }
  SimTime m2 = m1;
  if (state.advert_heard && state.advert_at <= at) {
    m2 = std::max(m1, state.advert_at);
  }
  SimTime m3 = m2;
  if (state.requested && state.request_at <= at) {
    m3 = std::max(m2, state.request_at);
  }
  state.segment_us[kSegPublishToCarry] = (m1 - m0).us();
  state.segment_us[kSegCarryToAdvert] = (m2 - m1).us();
  state.segment_us[kSegAdvertToRequest] = (m3 - m2).us();
  state.segment_us[kSegRequestToDeliver] = (at - m3).us();
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    live_event->record.segment_us[s] += state.segment_us[s];
  }
  if (perfetto_ != nullptr) {
    // Coincides with telemetry's "deliver" instant on the receiver track.
    perfetto_->flow_end(node, "dissem", "dissem", at, flow_id_of(event.id));
  }
}

void DisseminationTracer::on_gc_eviction(NodeId node, core::EventId victim,
                                         SimTime at) {
  static_cast<void>(node);
  if (!began_ || ended_) return;
  advance_stream(at);
  LiveEvent* live_event = live(victim);
  if (live_event != nullptr) live_event->gc_evicted = true;
}

void DisseminationTracer::annotate(std::uint64_t frame_id, NodeId sender,
                                   core::DisseminationPhase phase,
                                   const std::vector<core::EventId>& ids) {
  if (!began_ || ended_) return;
  PendingFrame pending;
  pending.sender = sender;
  pending.phase = phase;
  pending.event_ids = ids;
  frames_.try_emplace(frame_id, std::move(pending));
}

void DisseminationTracer::on_frame_sent(const net::Frame& frame, SimTime start,
                                        SimTime end) {
  if (!began_ || ended_) return;
  advance_stream(start);
  PendingFrame* pending = frames_.find(frame.id);
  if (pending == nullptr) return;  // unannotated (heartbeat) frame
  pending->sent = true;
  pending->start = start;
  pending->end = end;

  if (pending->phase == core::DisseminationPhase::kAdvert ||
      pending->phase == core::DisseminationPhase::kRetrieveRequest) {
    // An id-list transmission is the sender's "retrieve request" for every
    // live event it heard advertised but has not yet received: the reply
    // that triggers the holder's RETRIEVEEVENTSTOSEND.
    for (const core::EventId& id : order_) {
      LiveEvent* live_event = live(id);
      if (live_event == nullptr) continue;
      PerNode* state = live_event->nodes.find(pending->sender);
      if (state == nullptr || !state->advert_heard || state->requested ||
          state->delivered) {
        continue;
      }
      if (start < state->advert_at) continue;
      state->requested = true;
      state->request_at = start;
    }
  }

  if (perfetto_ != nullptr && carries_events(pending->phase)) {
    for (const core::EventId& id : pending->event_ids) {
      if (live(id) != nullptr) {
        // Coincides with telemetry's "tx" span start on the sender track.
        perfetto_->flow_step(pending->sender, "dissem", "dissem", start,
                             flow_id_of(id));
      }
    }
  }
}

void DisseminationTracer::on_frame_dropped(const net::Frame& frame,
                                           SimTime at) {
  if (!began_ || ended_) return;
  advance_stream(at);
  frames_.erase(frame.id);
}

void DisseminationTracer::record_edge(const PendingFrame& pending,
                                      std::uint64_t frame_id, NodeId receiver,
                                      EdgeOutcome outcome, SimTime at) {
  for (const core::EventId& id : pending.event_ids) {
    LiveEvent* live_event = live(id);
    if (live_event == nullptr) continue;
    EdgeRecord edge;
    edge.frame_id = frame_id;
    edge.phase = pending.phase;
    edge.from = pending.sender;
    edge.to = receiver;
    edge.sent = pending.sent ? pending.start : at;
    edge.at = at;
    edge.outcome = outcome;
    live_event->record.edges.push_back(edge);
    live_event->nodes[receiver].offered = true;
  }
}

void DisseminationTracer::on_frame_delivered(const net::Frame& frame,
                                             NodeId receiver, SimTime end) {
  if (!began_ || ended_) return;
  advance_stream(end);
  PendingFrame* pending = frames_.find(frame.id);
  if (pending == nullptr) return;
  record_edge(*pending, frame.id, receiver, EdgeOutcome::kDelivered, end);

  if (carries_events(pending->phase)) {
    for (const core::EventId& id : pending->event_ids) {
      LiveEvent* live_event = live(id);
      if (live_event == nullptr) continue;
      live_event->record.receptions += 1;
      if (!live_event->record.has_first_carry) {
        live_event->record.has_first_carry = true;
        live_event->record.first_carry = end;
      }
      // Hop depth: first intact acquisition wins; depth = carrier + 1.
      PerNode& state = live_event->nodes[receiver];
      if (state.depth == kDepthUnset) {
        const PerNode* carrier = live_event->nodes.find(pending->sender);
        const std::uint32_t carrier_depth =
            carrier != nullptr && carrier->depth != kDepthUnset
                ? carrier->depth
                : 0;
        state.depth = carrier_depth + 1;
        state.acq = end;
      }
    }
    if (receiver < last_delivered_.size()) {
      LastDelivered& slot = last_delivered_[receiver];
      slot.end = end;
      slot.sender = pending->sender;
      slot.frame_id = frame.id;
      slot.event_ids = pending->event_ids;
    }
  } else {
    // Advert frames: first advert containing a live event marks the
    // receiver's advert-heard milestone.
    for (const core::EventId& id : pending->event_ids) {
      LiveEvent* live_event = live(id);
      if (live_event == nullptr) continue;
      PerNode& state = live_event->nodes[receiver];
      if (!state.advert_heard) {
        state.advert_heard = true;
        state.advert_at = end;
      }
    }
  }
}

void DisseminationTracer::on_frame_collided(const net::Frame& frame,
                                            NodeId receiver, SimTime end) {
  if (!began_ || ended_) return;
  advance_stream(end);
  const PendingFrame* pending = frames_.find(frame.id);
  if (pending == nullptr) return;
  record_edge(*pending, frame.id, receiver, EdgeOutcome::kCollided, end);
}

void DisseminationTracer::on_frame_missed(const net::Frame& frame,
                                          NodeId receiver,
                                          net::FrameLossReason reason,
                                          SimTime at) {
  if (!began_ || ended_) return;
  advance_stream(at);
  const PendingFrame* pending = frames_.find(frame.id);
  if (pending == nullptr) return;
  EdgeOutcome outcome = EdgeOutcome::kMissedDown;
  switch (reason) {
    case net::FrameLossReason::kBusy:
      outcome = EdgeOutcome::kMissedBusy;
      break;
    case net::FrameLossReason::kAsleep:
      outcome = EdgeOutcome::kMissedAsleep;
      break;
    case net::FrameLossReason::kDown:
      outcome = EdgeOutcome::kMissedDown;
      break;
  }
  record_edge(*pending, frame.id, receiver, outcome, at);
}

void DisseminationTracer::on_node_up_changed(NodeId node, bool up,
                                             SimTime at) {
  if (!began_ || ended_) return;
  advance_stream(at);
  if (node < node_up_.size()) node_up_[node] = up;
}

void DisseminationTracer::advance_stream(SimTime at) {
  if (at < stream_time_) return;  // defensive; the stream is monotone
  stream_time_ = at;
  retire_front(at);
  // Prune annotations of frames whose last receiver callback has passed.
  // Amortized: a sweep at most once per simulated second.
  if (stream_time_ - last_frame_prune_ >= SimDuration::from_seconds(1.0)) {
    last_frame_prune_ = stream_time_;
    const SimTime cutoff = stream_time_;
    frames_.erase_if([cutoff](const auto& entry) {
      return entry.second.sent && entry.second.end < cutoff;
    });
  }
}

void DisseminationTracer::retire_front(SimTime now) {
  while (!order_.empty()) {
    const core::EventId id = order_.front();
    LiveEvent* live_event = live(id);
    if (live_event == nullptr) {
      order_.pop_front();
      continue;
    }
    const SimTime expiry =
        live_event->record.published_at + live_event->record.validity;
    if (expiry > now) break;
    order_.pop_front();

    // Decide each eligible subscriber's terminal outcome (ascending id).
    EventRecord& record = live_event->record;
    for (NodeId node : live_event->eligible) {
      SubscriberRecord row;
      row.node = node;
      row.at = expiry;
      const PerNode* state = live_event->nodes.find(node);
      if (state != nullptr && state->delivered) {
        row.outcome = SubscriberOutcome::kDelivered;
        row.at = state->delivered_at;
        row.hops = state->hops;
      } else if (node < node_up_.size() && !node_up_[node]) {
        row.outcome = SubscriberOutcome::kDiedWithNode;
      } else if (state == nullptr || !state->offered) {
        row.outcome = SubscriberOutcome::kMarooned;
      } else if (live_event->gc_evicted) {
        row.outcome = SubscriberOutcome::kGcEvicted;
      } else {
        row.outcome = SubscriberOutcome::kExpiredInTable;
      }
      record.subscribers.push_back(row);
    }

    fold_stats(record);
    write_record(record);
    if (!config_.bounded) retired_.push_back(std::move(record));
    live_.erase(id);
  }
}

void DisseminationTracer::fold_stats(const EventRecord& record) {
  stats_.events += 1;
  stats_.receptions += record.receptions;
  for (std::uint64_t i = 0; i < record.receptions; ++i) {
    graph_.feed(receptions_op_, record.published_at, 1.0);
  }
  stats_.delivered += record.deliveries;
  for (std::uint64_t i = 0; i < record.deliveries; ++i) {
    graph_.feed(deliveries_op_, record.published_at, 1.0);
  }
  stats_.eligible += record.subscribers.size();
  for (const SubscriberRecord& row : record.subscribers) {
    graph_.feed(outcome_counts_[static_cast<std::size_t>(row.outcome)],
                row.at, 1.0);
    if (row.outcome == SubscriberOutcome::kDelivered) {
      // feed() pushes through hops_sum_ into the KLL sketch downstream.
      graph_.feed(hops_sum_, row.at, static_cast<double>(row.hops));
    }
  }
  if (record.deliveries > 0) {
    stats_.segment_count += record.deliveries;
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      segment_sums_[s]->add(record.segment_us[s]);
      stats_.segment_us[s] += record.segment_us[s];
    }
  }
}

void DisseminationTracer::write_record(const EventRecord& record) {
  if (trace_ == nullptr) return;
  std::fprintf(trace_,
               "{\"event\":{\"publisher\":%u,\"seq\":%u},"
               "\"published_at_s\":%.6f,\"validity_s\":%.6f",
               record.id.publisher, record.id.seq,
               record.published_at.seconds(), record.validity.seconds());
  std::fputs(",\"edges\":[", trace_);
  bool first = true;
  for (const EdgeRecord& edge : record.edges) {
    if (!first) std::fputc(',', trace_);
    first = false;
    std::fprintf(trace_,
                 "{\"frame\":%" PRIu64
                 ",\"phase\":\"%s\",\"from\":%u,\"to\":%u,"
                 "\"sent_s\":%.6f,\"at_s\":%.6f,\"outcome\":\"%s\"}",
                 edge.frame_id, to_string(edge.phase), edge.from, edge.to,
                 edge.sent.seconds(), edge.at.seconds(),
                 to_string(edge.outcome));
  }
  std::fputs("],\"subscribers\":[", trace_);
  first = true;
  for (const SubscriberRecord& row : record.subscribers) {
    if (!first) std::fputc(',', trace_);
    first = false;
    std::fprintf(trace_,
                 "{\"node\":%u,\"outcome\":\"%s\",\"at_s\":%.6f,"
                 "\"hops\":%u}",
                 row.node, to_string(row.outcome), row.at.seconds(),
                 row.hops);
  }
  std::fprintf(trace_,
               "],\"receptions\":%" PRIu64 ",\"deliveries\":%" PRIu64,
               record.receptions, record.deliveries);
  if (record.has_first_carry) {
    std::fprintf(trace_, ",\"first_carry_s\":%.6f",
                 record.first_carry.seconds());
  }
  std::fprintf(trace_,
               ",\"segments_us\":{\"publish_to_carry\":%" PRId64
               ",\"carry_to_advert\":%" PRId64
               ",\"advert_to_request\":%" PRId64
               ",\"request_to_deliver\":%" PRId64 "}}\n",
               record.segment_us[kSegPublishToCarry],
               record.segment_us[kSegCarryToAdvert],
               record.segment_us[kSegAdvertToRequest],
               record.segment_us[kSegRequestToDeliver]);
}

void DisseminationTracer::end_run(SimTime run_end) {
  FRUGAL_EXPECT(began_);
  if (ended_) return;
  advance_stream(run_end);
  // Retire everything still live, in publish order, regardless of expiry:
  // the run horizon is the final observation point.
  while (!order_.empty()) {
    const core::EventId id = order_.front();
    LiveEvent* live_event = live(id);
    if (live_event == nullptr) {
      order_.pop_front();
      continue;
    }
    // Force-retire by pretending the stream reached the expiry.
    const SimTime expiry =
        live_event->record.published_at + live_event->record.validity;
    retire_front(std::max(run_end, expiry));
  }
  ended_ = true;

  stats_.late_deliveries = late_deliveries_;
  stats_.hops_count = hops_sum_->count();
  stats_.hops_total = hops_sum_->total();
  const stats::KllSketch& sketch = hop_sketch_->sketch();
  if (!sketch.empty()) {
    stats_.hops_p50 = sketch.quantile(0.5);
    stats_.hops_p95 = sketch.quantile(0.95);
    stats_.hops_max = sketch.quantile(1.0);
  }
  // Cross-check the operator-graph carriers against the struct fields the
  // folds maintained in lockstep.
  FRUGAL_EXPECT(stats_.receptions == receptions_op_->count());
  FRUGAL_EXPECT(stats_.delivered == deliveries_op_->count());
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    FRUGAL_EXPECT(stats_.segment_us[s] == segment_sums_[s]->total());
  }
  for (std::size_t o = 0; o < kSubscriberOutcomeCount; ++o) {
    stats_.outcomes[o] = outcome_counts_[o]->count();
  }

  if (trace_ != nullptr) {
    std::fclose(trace_);
    trace_ = nullptr;
  }
}

}  // namespace frugal::telemetry
