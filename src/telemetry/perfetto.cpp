#include "telemetry/perfetto.hpp"

#include <cinttypes>

namespace frugal::telemetry {

namespace {
// Track ids: pid 1 holds every node track; tid 0 is reserved so node n maps
// to tid n + 1 (trace viewers hide tid 0 counters oddly otherwise).
constexpr unsigned kPid = 1;

[[nodiscard]] unsigned long tid_of(NodeId node) {
  return static_cast<unsigned long>(node) + 1;
}
}  // namespace

PerfettoWriter::PerfettoWriter(const std::string& path,
                               std::size_t node_count) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) return;
  std::fputs("{\"traceEvents\":[\n", out_);
  std::fprintf(out_,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
               "\"args\":{\"name\":\"frugal-sim\"}}",
               kPid);
  first_ = false;
  for (std::size_t node = 0; node < node_count; ++node) {
    begin_event();
    std::fprintf(out_,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"tid\":%lu,\"args\":{\"name\":\"node %zu\"}}",
                 kPid, tid_of(static_cast<NodeId>(node)), node);
  }
}

PerfettoWriter::~PerfettoWriter() { finish(); }

void PerfettoWriter::begin_event() {
  if (!first_) std::fputs(",\n", out_);
  first_ = false;
}

void PerfettoWriter::span(NodeId node, const char* name, const char* category,
                          SimTime start, SimTime end) {
  if (out_ == nullptr) return;
  begin_event();
  std::fprintf(out_,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%u,"
               "\"tid\":%lu,\"ts\":%" PRId64 ",\"dur\":%" PRId64 "}",
               name, category, kPid, tid_of(node), start.us(),
               end.us() - start.us());
}

void PerfettoWriter::instant(NodeId node, const char* name,
                             const char* category, SimTime at) {
  if (out_ == nullptr) return;
  begin_event();
  std::fprintf(out_,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"pid\":%u,"
               "\"tid\":%lu,\"ts\":%" PRId64 ",\"s\":\"t\"}",
               name, category, kPid, tid_of(node), at.us());
}

void PerfettoWriter::counter(const char* name, SimTime at, double value) {
  if (out_ == nullptr) return;
  begin_event();
  std::fprintf(out_,
               "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%u,\"ts\":%" PRId64
               ",\"args\":{\"value\":%.10g}}",
               name, kPid, at.us(), value);
}

void PerfettoWriter::flow_start(NodeId node, const char* name,
                                const char* category, SimTime at,
                                std::uint64_t flow_id) {
  if (out_ == nullptr) return;
  begin_event();
  std::fprintf(out_,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"s\",\"pid\":%u,"
               "\"tid\":%lu,\"ts\":%" PRId64 ",\"id\":%" PRIu64 "}",
               name, category, kPid, tid_of(node), at.us(), flow_id);
}

void PerfettoWriter::flow_step(NodeId node, const char* name,
                               const char* category, SimTime at,
                               std::uint64_t flow_id) {
  if (out_ == nullptr) return;
  begin_event();
  std::fprintf(out_,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"t\",\"pid\":%u,"
               "\"tid\":%lu,\"ts\":%" PRId64 ",\"id\":%" PRIu64 "}",
               name, category, kPid, tid_of(node), at.us(), flow_id);
}

void PerfettoWriter::flow_end(NodeId node, const char* name,
                              const char* category, SimTime at,
                              std::uint64_t flow_id) {
  if (out_ == nullptr) return;
  begin_event();
  // "bp":"e" binds the arrowhead to the enclosing slice at this timestamp.
  std::fprintf(out_,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\","
               "\"pid\":%u,\"tid\":%lu,\"ts\":%" PRId64 ",\"id\":%" PRIu64
               "}",
               name, category, kPid, tid_of(node), at.us(), flow_id);
}

void PerfettoWriter::finish() {
  if (out_ == nullptr) return;
  std::fputs("\n]}\n", out_);
  std::fclose(out_);
  out_ = nullptr;
}

}  // namespace frugal::telemetry
