// Typed operator DAG for streaming metrics.
//
// A Graph owns a set of Operators wired into a directed acyclic dataflow:
// sources are fed samples as simulation events happen, emit() pushes results
// to downstream operators. Execution is topo-ordered by construction — an
// edge may only point from an earlier-added operator to a later-added one
// (asserted at connect time), so a simple forward cascade visits every
// operator after all of its inputs. All state is O(1) or O(sketch) per
// operator: the DAG holds bounded history regardless of stream length,
// which is what lets million-event runs compute RunResult aggregates
// without materializing per-event records.
//
// Window semantics: the tumbling TimeWindow driver watches the (monotone)
// stream clock and closes every elapsed window boundary before the sample
// that crossed it is processed. On close, Graph::close_window runs every
// operator's on_window_close in topo order — windowed operators (rates,
// per-window sketches) emit their aggregate downstream and reset.
//
// Determinism: operators do nothing but arithmetic on the values pushed
// through them, in push order. Feeding the same stream reproduces every
// output bit-for-bit; a Sum fed per-event values in publish-index order
// reproduces the exact double-addition order of the materialized folds it
// replaces.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "stats/kll_sketch.hpp"
#include "util/expect.hpp"
#include "util/time.hpp"

namespace frugal::telemetry {

class Graph;

class Operator {
 public:
  virtual ~Operator() = default;

  /// Receives one input sample (from Graph::feed or an upstream emit).
  virtual void on_sample(SimTime at, double value) = 0;

  /// A tumbling window ending at `window_end` closed. Windowed operators
  /// emit their aggregate and reset; stateless/cumulative ones ignore it.
  virtual void on_window_close(SimTime window_end) {
    static_cast<void>(window_end);
  }

  /// Current output value (aggregate so far, or last windowed emission).
  [[nodiscard]] virtual double value() const = 0;

 protected:
  /// Pushes a result to every connected downstream operator.
  void emit(SimTime at, double value);

 private:
  friend class Graph;
  Graph* graph_ = nullptr;
  std::size_t index_ = 0;
  std::vector<std::size_t> downstream_;
};

class Graph {
 public:
  /// Constructs an operator inside the graph; insertion order is the
  /// topological order.
  template <typename Op, typename... Args>
  Op* add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    raw->graph_ = this;
    raw->index_ = ops_.size();
    ops_.push_back(std::move(op));
    return raw;
  }

  /// Wires `from` -> `to`. Inputs must precede consumers in insertion
  /// order, which keeps the forward cascade a valid topological execution.
  void connect(Operator* from, Operator* to) {
    FRUGAL_EXPECT(from != nullptr && to != nullptr);
    FRUGAL_EXPECT(from->graph_ == this && to->graph_ == this);
    FRUGAL_EXPECT(from->index_ < to->index_);
    from->downstream_.push_back(to->index_);
  }

  /// Feeds a sample into a source operator.
  void feed(Operator* source, SimTime at, double value) {
    FRUGAL_EXPECT(source != nullptr && source->graph_ == this);
    source->on_sample(at, value);
  }

  /// Closes a tumbling window across the whole graph, in topo order.
  void close_window(SimTime window_end) {
    for (const auto& op : ops_) op->on_window_close(window_end);
  }

  [[nodiscard]] std::size_t size() const { return ops_.size(); }

 private:
  friend class Operator;
  std::vector<std::unique_ptr<Operator>> ops_;
};

inline void Operator::emit(SimTime at, double value) {
  for (const std::size_t idx : downstream_) {
    graph_->ops_[idx]->on_sample(at, value);
  }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Cumulative sample count.
class Count final : public Operator {
 public:
  void on_sample(SimTime, double) override { count_ += 1; }
  [[nodiscard]] double value() const override {
    return static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Exact integer accumulator (microsecond latencies, byte counts): immune
/// to floating-point rounding, so its total is order-independent.
class IntSum final : public Operator {
 public:
  void on_sample(SimTime, double value) override {
    total_ += static_cast<std::int64_t>(value);
    count_ += 1;
  }
  /// Exact entry point for callers holding the integer (no double round
  /// trip).
  void add(std::int64_t value) {
    total_ += value;
    count_ += 1;
  }
  [[nodiscard]] double value() const override {
    return static_cast<double>(total_);
  }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::int64_t total_ = 0;
  std::uint64_t count_ = 0;
};

/// Double accumulator in push order — the bit-equality carrier for folds
/// whose materialized counterpart added the same values in the same order.
class Sum final : public Operator {
 public:
  void on_sample(SimTime, double value) override {
    total_ += value;
    count_ += 1;
  }
  [[nodiscard]] double value() const override { return total_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Running mean of everything pushed through it.
class Mean final : public Operator {
 public:
  void on_sample(SimTime, double value) override {
    total_ += value;
    count_ += 1;
  }
  [[nodiscard]] double value() const override {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }

 private:
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Last-value gauge (live node count, battery level, ...).
class Gauge final : public Operator {
 public:
  explicit Gauge(double initial = 0.0) : value_{initial} {}
  void on_sample(SimTime, double value) override { value_ = value; }
  [[nodiscard]] double value() const override { return value_; }

 private:
  double value_;
};

/// Per-window event rate: counts samples inside the current tumbling
/// window; on close, emits count/window_seconds downstream and resets.
class WindowedRate final : public Operator {
 public:
  explicit WindowedRate(SimDuration window) : window_{window} {
    FRUGAL_EXPECT(window.us() > 0);
  }
  void on_sample(SimTime, double) override { in_window_ += 1; }
  void on_window_close(SimTime window_end) override {
    rate_ = static_cast<double>(in_window_) / window_.seconds();
    in_window_ = 0;
    emit(window_end, rate_);
  }
  [[nodiscard]] double value() const override { return rate_; }
  [[nodiscard]] std::uint64_t in_window() const { return in_window_; }

 private:
  SimDuration window_;
  std::uint64_t in_window_ = 0;
  double rate_ = 0.0;
};

/// Per-window quantile sketch (KLL): bounded memory, deterministic. On
/// window close it emits the median downstream and resets; callers needing
/// several quantiles read them via quantile() just before the close.
class QuantileSketchOp final : public Operator {
 public:
  explicit QuantileSketchOp(std::size_t k = 256) : sketch_{k} {}
  void on_sample(SimTime, double value) override { sketch_.insert(value); }
  void on_window_close(SimTime window_end) override {
    if (!sketch_.empty()) emit(window_end, sketch_.quantile(0.5));
    sketch_.clear();
  }
  [[nodiscard]] double value() const override {
    return sketch_.empty() ? 0.0 : sketch_.quantile(0.5);
  }
  [[nodiscard]] const stats::KllSketch& sketch() const { return sketch_; }

 private:
  stats::KllSketch sketch_;
};

/// Tumbling-window driver: watches the monotone stream clock and closes
/// every elapsed window before the crossing sample is processed. Not an
/// Operator — it drives Graph::close_window and reports each closed
/// window's end to the owner (which is where time-series rows are written).
class TimeWindow {
 public:
  TimeWindow(Graph* graph, SimTime start, SimDuration width)
      : graph_{graph}, next_end_{start + width}, width_{width} {
    FRUGAL_EXPECT(graph != nullptr);
    FRUGAL_EXPECT(width.us() > 0);
  }

  /// Advances the stream clock to `at`, closing every window whose end is
  /// <= at. `on_closed` (may be null) runs after each graph-wide close.
  template <typename OnClosed>
  void advance(SimTime at, OnClosed&& on_closed) {
    while (next_end_ <= at) {
      graph_->close_window(next_end_);
      on_closed(next_end_);
      next_end_ = next_end_ + width_;
    }
  }

  /// Closes the final (partial) window unconditionally at end of run.
  template <typename OnClosed>
  void finish(SimTime run_end, OnClosed&& on_closed) {
    advance(run_end, on_closed);
    if (run_end + width_ > next_end_) {
      // A partial tail window remains open; close it at the run horizon.
      graph_->close_window(run_end);
      on_closed(run_end);
      next_end_ = run_end + width_;
    }
  }

  [[nodiscard]] SimTime next_end() const { return next_end_; }

 private:
  Graph* graph_;
  SimTime next_end_;
  SimDuration width_;
};

}  // namespace frugal::telemetry
