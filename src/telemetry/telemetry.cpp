#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace frugal::telemetry {

RunTelemetry::RunTelemetry(TelemetryConfig config)
    : config_{std::move(config)} {
  FRUGAL_EXPECT(config_.window_s > 0);
}

RunTelemetry::~RunTelemetry() {
  if (series_ != nullptr) std::fclose(series_);
}

void RunTelemetry::begin_run(RunBinding binding) {
  FRUGAL_EXPECT(!began_);
  FRUGAL_EXPECT(binding.node_count > 0);
  FRUGAL_EXPECT(!binding.publishers.empty());
  FRUGAL_EXPECT(binding.node_eligible != nullptr);
  FRUGAL_EXPECT(binding.eligible_count != nullptr);
  binding_ = std::move(binding);
  began_ = true;

  // Operator DAG. Insertion order is topological order; the two edges wired
  // below feed windowed emissions into their running summaries.
  delivered_op_ = graph_.add<Count>();
  latency_us_op_ = graph_.add<IntSum>();
  window_ = SimDuration::from_seconds(config_.window_s);
  win_deliveries_ = graph_.add<WindowedRate>(window_);
  win_tx_ = graph_.add<WindowedRate>(window_);
  win_gc_ = graph_.add<WindowedRate>(window_);
  win_latency_ = graph_.add<QuantileSketchOp>();
  live_nodes_ = graph_.add<Gauge>(static_cast<double>(binding_.node_count));
  last_p50_ = graph_.add<Gauge>();
  mean_delivery_rate_ = graph_.add<Mean>();
  graph_.connect(win_latency_, last_p50_);
  graph_.connect(win_deliveries_, mean_delivery_rate_);

  // Reliability probes: the run validity always, then any extras (deduped
  // by exact microsecond value — probes are matched exactly at query time).
  auto add_probe = [this](std::int64_t validity_us) {
    for (const Probe& probe : probes_) {
      if (probe.validity_us == validity_us) return;
    }
    probes_.push_back(Probe{validity_us, 0, graph_.add<Sum>()});
  };
  add_probe(binding_.run_validity.us());
  run_probe_index_ = 0;
  for (const double v_s : config_.probe_validities_s) {
    add_probe(SimDuration::from_seconds(v_s).us());
  }

  slot_of_node_.assign(binding_.node_count, kInvalidNode);
  for (std::size_t slot = 0; slot < binding_.publishers.size(); ++slot) {
    const NodeId node = binding_.publishers[slot];
    FRUGAL_EXPECT(node < binding_.node_count);
    FRUGAL_EXPECT(slot_of_node_[node] == kInvalidNode);
    slot_of_node_[node] = static_cast<std::uint32_t>(slot);
  }

  eligible_by_topic_.assign(binding_.topic_count, -1);
  up_count_ = binding_.node_count;
  stream_time_ = SimTime::zero();
  next_window_end_ = SimTime::zero() + window_;
  last_flush_end_ = SimTime::zero();

  if (!config_.timeseries_path.empty()) {
    series_ = std::fopen(config_.timeseries_path.c_str(), "w");
    FRUGAL_EXPECT(series_ != nullptr && "cannot open --timeseries path");
    std::fprintf(series_,
                 "{\"artifact\":\"timeseries\",\"window_s\":%.10g,"
                 "\"node_count\":%zu,\"event_count\":%zu,"
                 "\"run_validity_s\":%.10g,\"run_end_s\":%.10g}\n",
                 config_.window_s, binding_.node_count, binding_.event_count,
                 binding_.run_validity.seconds(),
                 binding_.run_end.seconds());
  }
  if (!config_.perfetto_path.empty()) {
    perfetto_ = std::make_unique<PerfettoWriter>(config_.perfetto_path,
                                                 binding_.node_count);
    FRUGAL_EXPECT(perfetto_->ok() && "cannot open --perfetto path");
    down_since_.assign(binding_.node_count, std::nullopt);
    sleep_since_.assign(binding_.node_count, std::nullopt);
  }
}

std::size_t RunTelemetry::event_index_of(core::EventId id) const {
  FRUGAL_EXPECT(id.publisher < slot_of_node_.size());
  const std::uint32_t slot = slot_of_node_[id.publisher];
  FRUGAL_EXPECT(slot != kInvalidNode);
  // Round-robin publishing: publisher at `slot` emits events slot, slot+P,
  // slot+2P, ... with consecutive per-publisher sequence numbers from 0.
  return static_cast<std::size_t>(id.seq) * binding_.publishers.size() + slot;
}

std::uint32_t RunTelemetry::eligible_for_topic(std::uint32_t topic_index) {
  FRUGAL_EXPECT(topic_index < eligible_by_topic_.size());
  if (eligible_by_topic_[topic_index] < 0) {
    eligible_by_topic_[topic_index] = binding_.eligible_count(topic_index);
  }
  return static_cast<std::uint32_t>(eligible_by_topic_[topic_index]);
}

void RunTelemetry::on_publish(std::size_t index, core::EventId id, SimTime at,
                              std::uint32_t topic_index) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(at);
  FRUGAL_EXPECT(index == published_count_);
  FRUGAL_EXPECT(event_index_of(id) == index);
  LiveEvent live;
  live.published_at = at;
  live.eligible = eligible_for_topic(topic_index);
  live.reached.assign(probes_.size(), 0);
  ring_.push_back(std::move(live));
  ++published_count_;
  live_high_water_ = std::max(live_high_water_, ring_.size());
  if (perfetto_) perfetto_->instant(id.publisher, "publish", "app", at);
}

void RunTelemetry::on_delivery(NodeId node, const core::Event& event,
                               SimTime at) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(at);

  const std::int64_t latency_us = (at - event.published_at).us();
  FRUGAL_EXPECT(latency_us >= 0);
  graph_.feed(delivered_op_, at, 1.0);
  latency_us_op_->add(latency_us);
  graph_.feed(win_deliveries_, at, 1.0);
  graph_.feed(win_latency_, at, static_cast<double>(latency_us) / 1e6);

  const std::size_t index = event_index_of(event.id);
  FRUGAL_EXPECT(index < published_count_);
  if (index >= base_index_) {
    LiveEvent& live = ring_[index - base_index_];
    if (live.eligible > 0 && binding_.node_eligible(node, event)) {
      for (std::size_t p = 0; p < probes_.size(); ++p) {
        if (latency_us <= probes_[p].validity_us) ++live.reached[p];
      }
    }
  }
  // else: a late delivery (past every probe deadline, record pruned) — it
  // still counts toward delivered/latency, exactly as the materialized path
  // counts post-deadline delivered_at entries.

  if (perfetto_) perfetto_->instant(node, "deliver", "app", at);
}

void RunTelemetry::on_gc_eviction(NodeId node, SimTime at) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(at);
  graph_.feed(win_gc_, at, 1.0);
  if (perfetto_) perfetto_->instant(node, "gc", "table", at);
}

void RunTelemetry::on_tx(NodeId sender, SimTime start, SimTime end) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(start);
  graph_.feed(win_tx_, start, 1.0);
  if (perfetto_) perfetto_->span(sender, "tx", "radio", start, end);
}

void RunTelemetry::on_rx(NodeId receiver, SimTime start, SimTime end) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(start);
  if (perfetto_) perfetto_->span(receiver, "rx", "radio", start, end);
}

void RunTelemetry::on_up_changed(NodeId node, bool up, SimTime at) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(at);
  if (up) {
    ++up_count_;
  } else {
    FRUGAL_EXPECT(up_count_ > 0);
    --up_count_;
  }
  graph_.feed(live_nodes_, at, static_cast<double>(up_count_));
  if (perfetto_) {
    if (!up) {
      down_since_[node] = at;
    } else if (down_since_[node]) {
      perfetto_->span(node, "down", "power", *down_since_[node], at);
      down_since_[node].reset();
    }
  }
}

void RunTelemetry::on_sleep_changed(NodeId node, bool sleeping, SimTime at) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.ingest"};
  advance_stream(at);
  if (perfetto_) {
    if (sleeping) {
      sleep_since_[node] = at;
    } else if (sleep_since_[node]) {
      perfetto_->span(node, "sleep", "power", *sleep_since_[node], at);
      sleep_since_[node].reset();
    }
  }
}

void RunTelemetry::advance_stream(SimTime t) {
  // Callback timestamps are monotone (they come from scheduler tasks), but
  // clamp defensively: windows only ever move forward.
  if (t < stream_time_) t = stream_time_;
  while (next_window_end_ <= t) {
    // Retirements whose deadline precedes the boundary belong to the
    // closing window ([start, end) convention); interleave before flushing.
    retire_probes_before(next_window_end_);
    flush_window(next_window_end_);
    next_window_end_ = next_window_end_ + window_;
  }
  retire_probes_before(t);
  stream_time_ = t;
}

void RunTelemetry::retire_probes_before(SimTime t) {
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    Probe& probe = probes_[p];
    while (probe.cursor < published_count_) {
      const LiveEvent& live = ring_[probe.cursor - base_index_];
      const std::int64_t deadline_us =
          live.published_at.us() + probe.validity_us;
      // A delivery AT the deadline still counts (<=), so an event only
      // retires once the stream is strictly past it.
      if (deadline_us >= t.us()) break;
      if (live.eligible > 0) {
        const double fraction = static_cast<double>(live.reached[p]) /
                                static_cast<double>(live.eligible);
        graph_.feed(probe.fraction_sum, SimTime::from_us(deadline_us),
                    fraction);
        if (p == run_probe_index_) {
          window_rel_sum_ += fraction;
          ++window_rel_count_;
        }
      }
      ++probe.cursor;
    }
  }
  std::size_t min_cursor = published_count_;
  for (const Probe& probe : probes_) {
    min_cursor = std::min(min_cursor, probe.cursor);
  }
  while (base_index_ < min_cursor) {
    ring_.pop_front();
    ++base_index_;
  }
}

void RunTelemetry::flush_window(SimTime window_end) {
  sim::ProfileScope scope{binding_.profiler, "telemetry.flush"};
  const bool have_rel = window_rel_count_ > 0;
  const double reliability =
      have_rel
          ? window_rel_sum_ / static_cast<double>(window_rel_count_)
          : 0.0;
  const bool have_latency = !win_latency_->sketch().empty();
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  if (have_latency) {
    p50 = win_latency_->sketch().quantile(0.5);
    p95 = win_latency_->sketch().quantile(0.95);
    p99 = win_latency_->sketch().quantile(0.99);
  }

  graph_.close_window(window_end);

  const double deliveries_ps = win_deliveries_->value();
  const double frames_ps = win_tx_->value();
  const double gc_ps = win_gc_->value();
  const bool have_joules = static_cast<bool>(binding_.total_joules_at);
  double joules_ps = 0.0;
  if (have_joules) {
    const double total = binding_.total_joules_at(window_end);
    joules_ps = (total - last_joules_total_) / window_.seconds();
    last_joules_total_ = total;
  }

  if (series_ != nullptr) {
    write_series_row(window_end, reliability, have_rel, p50, p95, p99,
                     have_latency, deliveries_ps, frames_ps, gc_ps, joules_ps,
                     have_joules);
  }
  if (perfetto_) {
    if (have_rel) perfetto_->counter("reliability", window_end, reliability);
    if (have_latency) {
      perfetto_->counter("latency_p95_s", window_end, p95);
    }
    perfetto_->counter("deliveries_per_s", window_end, deliveries_ps);
    perfetto_->counter("frames_per_s", window_end, frames_ps);
    perfetto_->counter("gc_per_s", window_end, gc_ps);
    perfetto_->counter("live_nodes", window_end,
                       static_cast<double>(up_count_));
    if (have_joules) {
      perfetto_->counter("joules_per_s", window_end, joules_ps);
    }
  }

  window_rel_sum_ = 0.0;
  window_rel_count_ = 0;
  last_flush_end_ = window_end;
}

void RunTelemetry::write_series_row(SimTime window_end, double reliability,
                                    bool have_reliability, double p50,
                                    double p95, double p99, bool have_latency,
                                    double deliveries_ps, double frames_ps,
                                    double gc_ps, double joules_ps,
                                    bool have_joules) {
  char rel[32] = "null";
  char l50[32] = "null";
  char l95[32] = "null";
  char l99[32] = "null";
  char jps[32] = "null";
  if (have_reliability) std::snprintf(rel, sizeof rel, "%.10g", reliability);
  if (have_latency) {
    std::snprintf(l50, sizeof l50, "%.10g", p50);
    std::snprintf(l95, sizeof l95, "%.10g", p95);
    std::snprintf(l99, sizeof l99, "%.10g", p99);
  }
  if (have_joules) std::snprintf(jps, sizeof jps, "%.10g", joules_ps);
  std::fprintf(series_,
               "{\"t_s\":%.10g,\"reliability\":%s,\"latency_p50_s\":%s,"
               "\"latency_p95_s\":%s,\"latency_p99_s\":%s,"
               "\"deliveries_per_s\":%.10g,\"frames_per_s\":%.10g,"
               "\"gc_per_s\":%.10g,\"live_nodes\":%zu,"
               "\"joules_per_s\":%s}\n",
               window_end.seconds(), rel, l50, l95, l99, deliveries_ps,
               frames_ps, gc_ps, up_count_, jps);
}

void RunTelemetry::end_run(SimTime run_end) {
  FRUGAL_EXPECT(began_ && !ended_);
  sim::ProfileScope scope{binding_.profiler, "telemetry.flush"};
  advance_stream(run_end);
  // Deadlines at or past the run horizon never see another delivery (the
  // simulation has drained), so every outstanding fold finalizes now with
  // reached counts exactly as the materialized path would read them.
  retire_probes_before(SimTime::max());
  if (last_flush_end_ < run_end || window_rel_count_ > 0) {
    // Tail window (possibly partial; rates still divide by the full window
    // width — documented in EXPERIMENTS.md).
    flush_window(run_end);
  }

  if (perfetto_) {
    for (NodeId node = 0; node < down_since_.size(); ++node) {
      if (down_since_[node]) {
        perfetto_->span(node, "down", "power", *down_since_[node], run_end);
      }
    }
    for (NodeId node = 0; node < sleep_since_.size(); ++node) {
      if (sleep_since_[node]) {
        perfetto_->span(node, "sleep", "power", *sleep_since_[node], run_end);
      }
    }
    perfetto_->finish();
  }
  if (series_ != nullptr) {
    std::fclose(series_);
    series_ = nullptr;
  }

  aggregates_.probes.clear();
  for (const Probe& probe : probes_) {
    aggregates_.probes.push_back(ProbeAggregate{
        probe.validity_us, probe.fraction_sum->value(),
        probe.fraction_sum->count()});
  }
  aggregates_.run_validity_us = binding_.run_validity.us();
  aggregates_.delivered = delivered_op_->count();
  aggregates_.latency_sum_us = latency_us_op_->total();
  ended_ = true;
}

const RunAggregates& RunTelemetry::aggregates() const {
  FRUGAL_EXPECT(ended_);
  return aggregates_;
}

}  // namespace frugal::telemetry
