// Streaming-computed RunResult aggregates.
//
// When an experiment runs with a bounded-memory telemetry hub attached
// (telemetry/telemetry.hpp), the per-event / per-(node,event) records that
// RunResult's delivery metrics are normally derived from are never
// materialized. This struct carries the equivalent aggregates, folded live
// from the delivery stream in a way that is bit-equal to the materialized
// math:
//   - reliability probes accumulate per-event reached/eligible fractions in
//     publish-index order — the exact double-addition order of
//     RunResult::reliability_within's event loop;
//   - the latency sum is an exact int64 microsecond total (order-free), and
//     both code paths divide it identically.
// telemetry_test proves the equivalence with sweep-CSV cmp across scenario
// families.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"
#include "util/time.hpp"

namespace frugal::telemetry {

/// One registered reliability probe: reliability_within(validity) is only
/// answerable in bounded mode for validities declared before the run.
struct ProbeAggregate {
  std::int64_t validity_us = 0;
  /// Sum of per-event reached/eligible fractions, added in publish-index
  /// order (events with zero eligible subscribers are skipped, as in the
  /// materialized fold).
  double fraction_total = 0.0;
  std::uint64_t counted_events = 0;
};

struct RunAggregates {
  std::vector<ProbeAggregate> probes;
  std::int64_t run_validity_us = 0;
  /// Recorded (node, event) deliveries — every fresh application-level
  /// delivery of a workload event.
  std::uint64_t delivered = 0;
  /// Exact sum of delivery latencies in microseconds.
  std::int64_t latency_sum_us = 0;

  [[nodiscard]] double reliability_within(SimDuration validity) const {
    for (const ProbeAggregate& probe : probes) {
      if (probe.validity_us == validity.us()) {
        return probe.counted_events == 0
                   ? 0.0
                   : probe.fraction_total /
                         static_cast<double>(probe.counted_events);
      }
    }
    // Bounded runs can only answer validities that were registered as
    // probes before the run (the sweep runner registers every metric's
    // probe plus the run validity automatically).
    FRUGAL_EXPECT(false && "unregistered reliability probe validity");
    return 0.0;
  }

  [[nodiscard]] double reliability() const {
    return reliability_within(SimDuration::from_us(run_validity_us));
  }

  [[nodiscard]] std::size_t delivered_count() const {
    return static_cast<std::size_t>(delivered);
  }

  [[nodiscard]] double mean_delivery_latency_s() const {
    if (delivered == 0) return 0.0;
    return static_cast<double>(latency_sum_us) /
           static_cast<double>(delivered) / 1e6;
  }
};

}  // namespace frugal::telemetry
