// Chrome/Perfetto trace-event JSON writer.
//
// Emits the legacy Chrome trace-event format ({"traceEvents": [...]}) that
// ui.perfetto.dev and chrome://tracing both load directly. One track (tid)
// per simulated node under a single process: complete spans ("X") for radio
// TX/RX bursts and down/sleep stretches, instant events ("i") for publishes,
// deliveries and GC evictions, and counter tracks ("C") for the windowed
// series (reliability, frames/s, joules/s, ...). Timestamps are simulated
// microseconds, which the trace viewers display natively.
//
// The writer streams: each event goes straight to the file, so trace size
// never accumulates in memory. finish() closes the JSON arrays; the
// destructor calls it if the caller forgot.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::telemetry {

class PerfettoWriter {
 public:
  /// Opens `path` and writes the preamble plus per-node thread-name
  /// metadata. ok() reports whether the file opened.
  PerfettoWriter(const std::string& path, std::size_t node_count);
  ~PerfettoWriter();

  PerfettoWriter(const PerfettoWriter&) = delete;
  PerfettoWriter& operator=(const PerfettoWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_ != nullptr; }

  /// Complete span ("X") on `node`'s track over [start, end).
  void span(NodeId node, const char* name, const char* category, SimTime start,
            SimTime end);

  /// Instant event ("i") on `node`'s track.
  void instant(NodeId node, const char* name, const char* category,
               SimTime at);

  /// Counter sample ("C") on a process-level counter track.
  void counter(const char* name, SimTime at, double value);

  /// Flow events ("s"/"t"/"f"): arrows the trace viewer draws between
  /// events on different tracks sharing the same `flow_id`. The
  /// dissemination tracer uses one flow per published event, stitching the
  /// publish instant -> frame airtime spans -> delivery instants. A flow
  /// event binds to the enclosing slice at the same (pid, tid, ts), so
  /// callers emit these at timestamps where a span/instant already exists.
  void flow_start(NodeId node, const char* name, const char* category,
                  SimTime at, std::uint64_t flow_id);
  void flow_step(NodeId node, const char* name, const char* category,
                 SimTime at, std::uint64_t flow_id);
  void flow_end(NodeId node, const char* name, const char* category,
                SimTime at, std::uint64_t flow_id);

  /// Closes the JSON document and the file. Idempotent.
  void finish();

 private:
  void begin_event();

  std::FILE* out_ = nullptr;
  bool first_ = true;
};

}  // namespace frugal::telemetry
