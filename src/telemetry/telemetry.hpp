// Streaming telemetry engine: the per-run hub that folds simulator event
// streams through the operator DAG (dag.hpp) into
//   (a) RunResult-equivalent aggregates (aggregates.hpp) — bit-equal to the
//       materialized math, which is what lets bounded-memory runs skip the
//       per-event and per-(node,event) records entirely,
//   (b) a windowed time-series artifact (JSONL, one row per tumbling
//       window: reliability, latency quantiles, frames/s, GC evictions/s,
//       live nodes, joules/s) rendered by scripts/plot_figures.py, and
//   (c) a Chrome/Perfetto trace (perfetto.hpp): per-node TX/RX/down/sleep
//       spans, publish/delivery/GC instants, windowed counter tracks.
//
// Invariants the experiment layer relies on:
//   - The hub NEVER schedules simulator tasks, draws from simulator RNG
//     streams, or mutates any simulation object. Attaching telemetry cannot
//     perturb a run (telemetry_test proves sweep CSVs stay byte-identical).
//   - Memory is bounded by the live-event window (events whose newest probe
//     deadline has not yet passed — at most validity/spacing events) plus
//     the DAG's O(1)/O(sketch) operators, never by run length.
//
// Reliability probes: reliability_within(v) is a per-event fold, so bounded
// runs can only answer validities registered before the run starts (the
// sweep runner registers each scenario's probe validities plus the run
// validity automatically).
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "net/medium.hpp"
#include "sim/profiler.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/dag.hpp"
#include "telemetry/perfetto.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::telemetry {

struct TelemetryConfig {
  /// When true the experiment skips materializing per-event records and
  /// per-node delivered_at vectors; every RunResult delivery metric is
  /// answered from the streamed aggregates instead.
  bool bounded_memory = false;
  /// Reliability-probe validities (seconds) beyond the run validity, which
  /// is always registered.
  std::vector<double> probe_validities_s;
  /// Tumbling-window width for the time-series artifact.
  double window_s = 10.0;
  /// When non-empty, write the windowed time-series as JSONL here.
  std::string timeseries_path;
  /// When non-empty, write a Chrome trace-event JSON here.
  std::string perfetto_path;
};

/// Everything the hub needs from one experiment run, bound at begin_run.
/// The callable members borrow experiment-local state (subscription tables,
/// the energy model) — they are valid from begin_run until end_run, which
/// is why end_run must happen before the experiment moves that state into
/// its results.
struct RunBinding {
  std::size_t node_count = 0;
  std::size_t event_count = 0;
  std::size_t topic_count = 1;
  /// Round-robin publisher ring: event i is published by
  /// publishers[i % publishers.size()].
  std::vector<NodeId> publishers;
  SimDuration run_validity;
  SimTime run_end;
  /// Whether `node` counts toward an event's reached set (subscribed and
  /// its subscriptions cover the event's topic).
  std::function<bool(NodeId, const core::Event&)> node_eligible;
  /// Number of eligible nodes for events of a given topic-pool index
  /// (cached per topic by the hub).
  std::function<std::uint32_t(std::uint32_t)> eligible_count;
  /// Total joules spent across all nodes as of `t` (null when the run has
  /// no energy model); must not mutate the model.
  std::function<double(SimTime)> total_joules_at;
  sim::Profiler* profiler = nullptr;
};

class RunTelemetry final : public net::RadioActivityListener {
 public:
  explicit RunTelemetry(TelemetryConfig config);
  ~RunTelemetry() override;

  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  void begin_run(RunBinding binding);

  /// The experiment reports each publish *before* calling the node's
  /// publish() (which self-delivers synchronously). `index` is the global
  /// publish index; ids follow EventId{publishers[index % P], index / P}.
  void on_publish(std::size_t index, core::EventId id, SimTime at,
                  std::uint32_t topic_index);

  /// Fired once per fresh application-level delivery of a workload event.
  void on_delivery(NodeId node, const core::Event& event, SimTime at);

  /// Fired once per event-table GC collection.
  void on_gc_eviction(NodeId node, SimTime at);

  /// Final drain: retires every outstanding probe fold, flushes the tail
  /// window, closes open Perfetto spans and finalizes both artifacts. Must
  /// run before the experiment tears down the state the binding borrows.
  void end_run(SimTime run_end);

  // -- net::RadioActivityListener -------------------------------------------
  void on_tx(NodeId sender, SimTime start, SimTime end) override;
  void on_rx(NodeId receiver, SimTime start, SimTime end) override;
  void on_up_changed(NodeId node, bool up, SimTime at) override;
  void on_sleep_changed(NodeId node, bool sleeping, SimTime at) override;

  /// Valid after end_run.
  [[nodiscard]] const RunAggregates& aggregates() const;

  [[nodiscard]] bool bounded() const { return config_.bounded_memory; }
  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

  /// Peak number of simultaneously live (unretired) events — the memory
  /// bound bench_telemetry_rss asserts against.
  [[nodiscard]] std::size_t live_event_high_water() const {
    return live_high_water_;
  }

  /// The Perfetto writer, when the config asked for one (null otherwise).
  /// Valid between begin_run and end_run; the dissemination tracer threads
  /// its flow events onto the same per-node tracks through this.
  [[nodiscard]] PerfettoWriter* perfetto_writer() { return perfetto_.get(); }

 private:
  /// One event still inside some probe's validity horizon.
  struct LiveEvent {
    SimTime published_at;
    std::uint32_t eligible = 0;
    /// reached[p]: eligible nodes that got the event within probe p's
    /// validity. Frozen once the stream clock passes the probe deadline.
    std::vector<std::uint32_t> reached;
  };

  struct Probe {
    std::int64_t validity_us = 0;
    /// Next publish index to retire (fold into the Sum) for this probe.
    std::size_t cursor = 0;
    /// Per-event reached/eligible fractions, added in publish-index order —
    /// the exact double-addition order of the materialized fold.
    Sum* fraction_sum = nullptr;
  };

  void advance_stream(SimTime t);
  void retire_probes_before(SimTime t);
  void flush_window(SimTime window_end);
  void write_series_row(SimTime window_end, double reliability,
                        bool have_reliability, double p50, double p95,
                        double p99, bool have_latency, double deliveries_ps,
                        double frames_ps, double gc_ps, double joules_ps,
                        bool have_joules);
  [[nodiscard]] std::size_t event_index_of(core::EventId id) const;
  [[nodiscard]] std::uint32_t eligible_for_topic(std::uint32_t topic_index);

  TelemetryConfig config_;
  RunBinding binding_;
  bool began_ = false;
  bool ended_ = false;

  // Operator DAG: aggregate carriers plus windowed series operators.
  Graph graph_;
  Count* delivered_op_ = nullptr;
  IntSum* latency_us_op_ = nullptr;
  WindowedRate* win_deliveries_ = nullptr;
  WindowedRate* win_tx_ = nullptr;
  WindowedRate* win_gc_ = nullptr;
  QuantileSketchOp* win_latency_ = nullptr;
  Gauge* live_nodes_ = nullptr;
  Gauge* last_p50_ = nullptr;
  Mean* mean_delivery_rate_ = nullptr;

  std::vector<Probe> probes_;
  std::size_t run_probe_index_ = 0;

  // Live-event ring: publish indices [base_index_, published_count_).
  std::deque<LiveEvent> ring_;
  std::size_t base_index_ = 0;
  std::size_t published_count_ = 0;
  std::size_t live_high_water_ = 0;

  /// Cached eligible-node counts, one per topic-pool index (-1 = unknown).
  std::vector<std::int64_t> eligible_by_topic_;
  std::vector<std::uint32_t> slot_of_node_;

  SimTime stream_time_;
  SimTime next_window_end_;
  SimDuration window_;
  SimTime last_flush_end_;

  // Windowed-reliability accumulator (per run-validity-probe retirements
  // inside the current window).
  double window_rel_sum_ = 0.0;
  std::uint64_t window_rel_count_ = 0;

  std::size_t up_count_ = 0;
  double last_joules_total_ = 0.0;

  std::FILE* series_ = nullptr;
  std::unique_ptr<PerfettoWriter> perfetto_;
  std::vector<std::optional<SimTime>> down_since_;
  std::vector<std::optional<SimTime>> sleep_since_;

  RunAggregates aggregates_;
};

/// Fans the medium's radio-activity stream out to two listeners, energy
/// model first (accounting must settle before observation reads it), then
/// telemetry. before_tx forwards in the same order.
class RadioActivityTee final : public net::RadioActivityListener {
 public:
  RadioActivityTee(net::RadioActivityListener* first,
                   net::RadioActivityListener* second)
      : first_{first}, second_{second} {}

  void before_tx(NodeId sender, SimTime now) override {
    if (first_ != nullptr) first_->before_tx(sender, now);
    if (second_ != nullptr) second_->before_tx(sender, now);
  }
  void on_tx(NodeId sender, SimTime start, SimTime end) override {
    if (first_ != nullptr) first_->on_tx(sender, start, end);
    if (second_ != nullptr) second_->on_tx(sender, start, end);
  }
  void on_rx(NodeId receiver, SimTime start, SimTime end) override {
    if (first_ != nullptr) first_->on_rx(receiver, start, end);
    if (second_ != nullptr) second_->on_rx(receiver, start, end);
  }
  void on_up_changed(NodeId node, bool up, SimTime at) override {
    if (first_ != nullptr) first_->on_up_changed(node, up, at);
    if (second_ != nullptr) second_->on_up_changed(node, up, at);
  }
  void on_sleep_changed(NodeId node, bool sleeping, SimTime at) override {
    if (first_ != nullptr) first_->on_sleep_changed(node, sleeping, at);
    if (second_ != nullptr) second_->on_sleep_changed(node, sleeping, at);
  }

 private:
  net::RadioActivityListener* first_;
  net::RadioActivityListener* second_;
};

}  // namespace frugal::telemetry
