#include "net/medium.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/expect.hpp"
#include "util/logging.hpp"

namespace frugal::net {

Medium::Medium(sim::Scheduler& scheduler, mobility::MobilityModel& mobility,
               MediumConfig config, Rng jitter_rng)
    : scheduler_{scheduler},
      mobility_{mobility},
      config_{config},
      rng_{jitter_rng},
      clients_(mobility.node_count(), nullptr),
      up_(mobility.node_count(), true),
      sleeping_(mobility.node_count(), false),
      counters_(mobility.node_count()),
      tx_busy_until_(mobility.node_count(), SimTime::zero()),
      receptions_(mobility.node_count()) {
  FRUGAL_EXPECT(config.range_m > 0);
  FRUGAL_EXPECT(config.rate_bps > 0);
  FRUGAL_EXPECT(!config.max_jitter.is_negative());
  if (config_.use_spatial_index) {
    index_ = std::make_unique<SpatialIndex>(mobility_, config_.range_m);
  }
}

void Medium::attach(NodeId node, MediumClient* client) {
  FRUGAL_EXPECT(node < clients_.size());
  FRUGAL_EXPECT(client != nullptr);
  clients_[node] = client;
}

void Medium::set_up(NodeId node, bool up) {
  FRUGAL_EXPECT(node < up_.size());
  if (up_[node] == up) return;
  up_[node] = up;
  if (listener_ != nullptr) {
    listener_->on_up_changed(node, up, scheduler_.now());
  }
  if (frame_listener_ != nullptr) {
    frame_listener_->on_node_up_changed(node, up, scheduler_.now());
  }
}

bool Medium::is_up(NodeId node) const {
  FRUGAL_EXPECT(node < up_.size());
  return up_[node];
}

void Medium::set_sleeping(NodeId node, bool sleeping) {
  FRUGAL_EXPECT(node < sleeping_.size());
  if (sleeping_[node] == sleeping) return;
  sleeping_[node] = sleeping;
  if (listener_ != nullptr) {
    listener_->on_sleep_changed(node, sleeping, scheduler_.now());
  }
}

bool Medium::is_sleeping(NodeId node) const {
  FRUGAL_EXPECT(node < sleeping_.size());
  return sleeping_[node];
}

const TrafficCounters& Medium::counters(NodeId node) const {
  FRUGAL_EXPECT(node < counters_.size());
  return counters_[node];
}

std::vector<NodeId> Medium::nodes_in_range(NodeId node) const {
  FRUGAL_EXPECT(node < clients_.size());
  const SimTime now = scheduler_.now();
  const Vec2 here = mobility_.position(node, now);
  const double range_sq = config_.range_m * config_.range_m;
  std::vector<NodeId> result;
  auto consider = [&](NodeId other) {
    if (!can_receive(other, node)) return;
    if (distance_sq(here, mobility_.position(other, now)) <= range_sq) {
      result.push_back(other);
    }
  };
  if (index_ != nullptr) {
    // Candidates come back sorted, so `result` matches the brute-force
    // ascending order exactly.
    for (NodeId other : index_->candidates(here, config_.range_m, now)) {
      consider(other);
    }
  } else {
    for (NodeId other = 0; other < clients_.size(); ++other) consider(other);
  }
  return result;
}

std::uint64_t Medium::broadcast(NodeId sender, std::uint32_t size_bytes,
                                std::any payload) {
  sim::ProfileScope profile{scheduler_.profiler(), "medium.broadcast"};
  FRUGAL_EXPECT(sender < clients_.size());
  FRUGAL_EXPECT(size_bytes > 0);
  // Every issued frame gets an id, even one dropped on the spot: the fate
  // contract (exactly one of sent/dropped per issue) then holds per id too.
  const std::uint64_t frame_id = next_frame_id_++;
  if (!up_[sender]) {
    // Issued while down: the counters contract promises every issued frame
    // lands in exactly one of frames_sent / frames_dropped, same as the
    // crashed-while-queued path below.
    counters_[sender].frames_dropped += 1;
    if (frame_listener_ != nullptr) {
      frame_listener_->on_frame_dropped(
          Frame{sender, size_bytes, {}, frame_id}, scheduler_.now());
    }
    return frame_id;
  }

  auto frame = std::make_shared<Frame>(
      Frame{sender, size_bytes, std::move(payload), frame_id});
  const SimDuration jitter =
      config_.max_jitter.us() > 0
          ? SimDuration::from_us(static_cast<std::int64_t>(rng_.uniform_u64(
                static_cast<std::uint64_t>(config_.max_jitter.us()))))
          : SimDuration::zero();
  scheduler_.schedule_after(jitter, [this, sender, frame] {
    start_transmission(sender, frame, /*attempt=*/0);
  });
  return frame_id;
}

SimTime Medium::sensed_busy_until(NodeId sender, SimTime at) const {
  const Vec2 here = mobility_.position(sender, at);
  const double range_sq = config_.range_m * config_.range_m;
  SimTime busy = SimTime::zero();
  if (index_ != nullptr) {
    // tx_busy_until_[j] > at iff j has a transmission on air at `at` (it is
    // only ever set to the end of a transmission starting right then, and a
    // sender never overlaps its own frames), and that transmission ends at
    // exactly tx_busy_until_[j] — so the per-node field answers the same
    // question the on_air_ scan below does, without the scan.
    for (NodeId other : index_->candidates(here, config_.range_m, at)) {
      if (other == sender || tx_busy_until_[other] <= at) continue;
      const Vec2 there = mobility_.position(other, at);
      if (distance_sq(here, there) <= range_sq) {
        busy = std::max(busy, tx_busy_until_[other]);
      }
    }
    return busy;
  }
  for (const Transmission& tx : on_air_) {
    if (tx.end <= at || tx.sender == sender) continue;
    const Vec2 there = mobility_.position(tx.sender, at);
    if (distance_sq(here, there) <= range_sq) busy = std::max(busy, tx.end);
  }
  return busy;
}

void Medium::start_transmission(NodeId sender,
                                const std::shared_ptr<Frame>& frame,
                                int attempt) {
  sim::ProfileScope profile{scheduler_.profiler(), "medium.transmission"};
  if (!up_[sender]) {  // crashed while the frame was queued
    counters_[sender].frames_dropped += 1;
    if (frame_listener_ != nullptr) {
      frame_listener_->on_frame_dropped(*frame, scheduler_.now());
    }
    return;
  }
  const SimTime now = scheduler_.now();
  prune(now);

  // Defer while our own radio or the sensed channel is busy (carrier sense);
  // give up after max_defers attempts (802.11-style retry limit).
  SimTime free_at = std::max(tx_busy_until_[sender],
                             sensed_busy_until(sender, now));
  if (free_at > now) {
    if (attempt >= config_.max_defers) {
      counters_[sender].frames_dropped += 1;
      if (frame_listener_ != nullptr) {
        frame_listener_->on_frame_dropped(*frame, now);
      }
      return;
    }
    // Contention window grows with the attempt number (DCF stand-in).
    const std::uint64_t window = 1000ULL * static_cast<std::uint64_t>(attempt + 1);
    const SimDuration retry_jitter = SimDuration::from_us(
        static_cast<std::int64_t>(rng_.uniform_u64(window) + 1));
    scheduler_.schedule_at(free_at + retry_jitter,
                           [this, sender, frame, attempt] {
                             start_transmission(sender, frame, attempt + 1);
                           });
    return;
  }

  // Settle the sender's energy account before committing the frame: a
  // battery that emptied since the last report kills the radio here (the
  // listener flips set_up), and a dead radio must not transmit.
  if (listener_ != nullptr) {
    listener_->before_tx(sender, now);
    if (!up_[sender]) {  // battery died while the frame was queued
      counters_[sender].frames_dropped += 1;
      if (frame_listener_ != nullptr) {
        frame_listener_->on_frame_dropped(*frame, now);
      }
      return;
    }
  }

  const auto duration = SimDuration::from_seconds(
      static_cast<double>(frame->size_bytes) * 8.0 / config_.rate_bps);
  const SimTime end = now + duration;
  tx_busy_until_[sender] = end;
  on_air_.push_back(Transmission{sender, now, end});
  counters_[sender].frames_sent += 1;
  counters_[sender].bytes_sent += frame->size_bytes;
  if (listener_ != nullptr) listener_->on_tx(sender, now, end);
  if (frame_listener_ != nullptr) {
    frame_listener_->on_frame_sent(*frame, now, end);
  }

  const Vec2 origin = mobility_.position(sender, now);
  const double range_sq = config_.range_m * config_.range_m;
  if (index_ != nullptr) {
    // Candidates are a sorted superset of the in-range nodes;
    // offer_to_receiver re-applies the exact predicate and distance check,
    // and the ascending order keeps every side effect in brute-force order.
    for (NodeId receiver :
         index_->candidates(origin, config_.range_m, now)) {
      if (!can_receive(receiver, sender)) continue;
      if (distance_sq(origin, mobility_.position(receiver, now)) > range_sq)
        continue;
      offer_to_receiver(receiver, frame, now, end);
    }
  } else {
    for (NodeId receiver = 0; receiver < clients_.size(); ++receiver) {
      if (!can_receive(receiver, sender)) continue;
      if (distance_sq(origin, mobility_.position(receiver, now)) > range_sq)
        continue;
      offer_to_receiver(receiver, frame, now, end);
    }
  }
}

void Medium::offer_to_receiver(NodeId receiver,
                               const std::shared_ptr<Frame>& frame,
                               SimTime now, SimTime end) {
  // Half-duplex: a radio that is transmitting cannot hear this frame.
  if (config_.enable_collisions && tx_busy_until_[receiver] > now) {
    counters_[receiver].frames_missed_busy += 1;
    if (frame_listener_ != nullptr) {
      frame_listener_->on_frame_missed(*frame, receiver,
                                       FrameLossReason::kBusy, now);
    }
    return;
  }

  // Power-save sleep: the radio is dozing and never locks on the frame.
  if (sleeping_[receiver]) {
    counters_[receiver].frames_missed_asleep += 1;
    if (frame_listener_ != nullptr) {
      frame_listener_->on_frame_missed(*frame, receiver,
                                       FrameLossReason::kAsleep, now);
    }
    return;
  }

  // Drop this receiver's ended receptions before the overlap check. Pruning
  // here — instead of sweeping every node's list on every broadcast — keeps
  // the per-broadcast cost proportional to the audience; ended receptions
  // can never corrupt anything (the overlap test is `ongoing.end > now`).
  std::erase_if(receptions_[receiver],
                [now](const Reception& rx) { return rx.end <= now; });

  auto corrupted = std::make_shared<bool>(false);
  if (config_.enable_collisions) {
    for (Reception& ongoing : receptions_[receiver]) {
      if (ongoing.end > now) {  // overlap: both frames are lost
        *ongoing.corrupted = true;
        *corrupted = true;
      }
    }
  }
  receptions_[receiver].push_back(Reception{now, end, corrupted});
  if (listener_ != nullptr) listener_->on_rx(receiver, now, end);

  scheduler_.schedule_at(end, [this, receiver, frame, corrupted, end] {
    if (*corrupted) {
      counters_[receiver].frames_collided += 1;
      if (frame_listener_ != nullptr) {
        frame_listener_->on_frame_collided(*frame, receiver, end);
      }
      return;
    }
    if (!up_[receiver] || clients_[receiver] == nullptr) {
      // Powered down mid-reception: the locked-on frame is voided, and
      // counted so (delivered + collided + missed_down covers every
      // reception the radio started).
      counters_[receiver].frames_missed_down += 1;
      if (frame_listener_ != nullptr) {
        frame_listener_->on_frame_missed(*frame, receiver,
                                         FrameLossReason::kDown, end);
      }
      return;
    }
    counters_[receiver].frames_delivered += 1;
    counters_[receiver].bytes_delivered += frame->size_bytes;
    if (frame_listener_ != nullptr) {
      frame_listener_->on_frame_delivered(*frame, receiver, end);
    }
    clients_[receiver]->on_frame(*frame);
  });
}

void Medium::prune(SimTime now) {
  // Receptions are pruned lazily per receiver in offer_to_receiver; sweeping
  // them all here would reintroduce an O(n) cost per broadcast.
  std::erase_if(on_air_,
                [now](const Transmission& tx) { return tx.end <= now; });
}

double two_ray_range(double tx_power_dbm, double sensitivity_dbm,
                     double antenna_gain, double antenna_height_m) {
  FRUGAL_EXPECT(antenna_gain > 0);
  FRUGAL_EXPECT(antenna_height_m > 0);
  const double gains_db =
      10.0 * std::log10(antenna_gain * antenna_gain * antenna_height_m *
                        antenna_height_m * antenna_height_m *
                        antenna_height_m);
  return std::pow(10.0, (tx_power_dbm - sensitivity_dbm + gains_db) / 40.0);
}

}  // namespace frugal::net
