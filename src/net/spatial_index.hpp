// Uniform-grid spatial index over mobility positions.
//
// The medium's receiver resolution, carrier sense, and nodes_in_range all ask
// the same question: "which nodes are within `radius` of this point right
// now?". The brute-force answer scans every node — O(n) per broadcast, O(n²)
// per heartbeat round — which caps worlds at a few hundred nodes. This index
// buckets nodes into square cells (side = radio range) and answers with the
// nodes in the 3x3-ish block of cells around the query point instead.
//
// Design constraints, in order:
//   1. *Exactness.* `candidates()` must return a superset of the true
//      in-range set — the medium re-checks exact distances and all receiver
//      predicates, so extra candidates cost a little time but never change
//      behaviour. A missed candidate would silently change delivery, so the
//      index is conservative everywhere (drift bounds, float slack).
//   2. *Determinism.* Candidates come back sorted ascending by NodeId, the
//      same order the brute-force scan visits nodes, so every downstream
//      side effect (counter bumps, scheduled deliveries, trace lines) is
//      byte-identical between the two paths.
//   3. *No mobility-model cooperation beyond two cheap hooks.* Models only
//      report a global speed bound (max_speed_mps) and a teleport revision
//      counter; the index lazily rebuilds itself whenever positions may have
//      drifted more than one cell since the last build, and widens queries
//      by the accumulated drift in between. Rebuilds are O(n) but amortized
//      over cell_size / max_speed of simulated time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/time.hpp"
#include "util/types.hpp"
#include "util/vec2.hpp"

namespace frugal::net {

class SpatialIndex {
 public:
  /// `cell_size_m` should be the query radius (radio range) for the classic
  /// ~9-cell lookups; any positive value is correct.
  SpatialIndex(mobility::MobilityModel& mobility, double cell_size_m);

  /// Node ids whose position at `now` *may* be within `radius_m` of
  /// `center`: a conservative superset of the true in-range set (callers
  /// must re-check exact distances), sorted ascending. The returned buffer
  /// is owned by the index and valid until the next call.
  ///
  /// Query times must be non-decreasing (the mobility-model contract, which
  /// the index inherits because rebuilds query every node's position).
  [[nodiscard]] const std::vector<NodeId>& candidates(Vec2 center,
                                                      double radius_m,
                                                      SimTime now);

  /// Number of full grid rebuilds performed so far (bench/test telemetry).
  [[nodiscard]] std::uint64_t rebuild_count() const { return rebuilds_; }

 private:
  /// Packs a cell coordinate pair into one map key. Distinct cells collide
  /// only when their coordinates differ by a multiple of 2^32 cells —
  /// unreachable for any physical world — and a collision would only merge
  /// buckets, i.e. add candidates, never lose them.
  [[nodiscard]] static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  [[nodiscard]] std::int64_t cell_of(double v) const;
  /// Worst-case meters any node may have moved since the grid was built.
  [[nodiscard]] double drift_m(SimTime now) const;
  void rebuild(SimTime now);

  mobility::MobilityModel& mobility_;
  double cell_m_;
  double max_speed_;
  bool built_ = false;
  SimTime built_at_;
  std::uint64_t built_revision_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
  std::vector<NodeId> scratch_;
};

}  // namespace frugal::net
