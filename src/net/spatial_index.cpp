#include "net/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace frugal::net {

namespace {
/// Headroom added to every query radius. Mobility models interpolate
/// positions in doubles, so a node can land a hair outside the ideal
/// max_speed * elapsed drift envelope; positions are meters, so a micrometer
/// dwarfs any accumulated rounding while staying far below physical scales.
constexpr double kFloatSlackM = 1e-6;
}  // namespace

SpatialIndex::SpatialIndex(mobility::MobilityModel& mobility,
                           double cell_size_m)
    : mobility_{mobility},
      cell_m_{cell_size_m},
      max_speed_{mobility.max_speed_mps()} {
  FRUGAL_EXPECT(cell_size_m > 0);
  FRUGAL_EXPECT(max_speed_ >= 0);
}

std::int64_t SpatialIndex::cell_of(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_m_));
}

double SpatialIndex::drift_m(SimTime now) const {
  return std::max(0.0, max_speed_ * (now - built_at_).seconds());
}

void SpatialIndex::rebuild(SimTime now) {
  // detlint: unordered-iter-ok(clears every bucket; order unobservable)
  for (auto& [unused_key, bucket] : cells_) bucket.clear();
  const std::size_t n = mobility_.node_count();
  for (NodeId node = 0; node < n; ++node) {
    const Vec2 pos = mobility_.position(node, now);
    // Ascending insertion keeps every bucket sorted by construction.
    cells_[key(cell_of(pos.x), cell_of(pos.y))].push_back(node);
  }
  built_ = true;
  built_at_ = now;
  built_revision_ = mobility_.position_revision();
  ++rebuilds_;
}

const std::vector<NodeId>& SpatialIndex::candidates(Vec2 center,
                                                    double radius_m,
                                                    SimTime now) {
  FRUGAL_EXPECT(radius_m >= 0);
  // Rebuild when positions were edited out-of-band (teleports) or nodes may
  // have drifted more than one cell from where the grid placed them; the
  // one-cell budget keeps query rectangles small without rebuilding on every
  // call.
  if (!built_ || built_revision_ != mobility_.position_revision() ||
      drift_m(now) > cell_m_) {
    rebuild(now);
  }

  // A node within radius_m of `center` now was within radius_m + drift of it
  // at build time, so scanning every cell that intersects the widened square
  // around `center` covers the true in-range set. floor() is monotone, so
  // the cell range below is exact for the widened square.
  const double reach = radius_m + drift_m(now) + kFloatSlackM;
  const std::int64_t cx_min = cell_of(center.x - reach);
  const std::int64_t cx_max = cell_of(center.x + reach);
  const std::int64_t cy_min = cell_of(center.y - reach);
  const std::int64_t cy_max = cell_of(center.y + reach);

  scratch_.clear();
  for (std::int64_t cx = cx_min; cx <= cx_max; ++cx) {
    for (std::int64_t cy = cy_min; cy <= cy_max; ++cy) {
      const auto it = cells_.find(key(cx, cy));
      if (it == cells_.end()) continue;
      scratch_.insert(scratch_.end(), it->second.begin(), it->second.end());
    }
  }
  // Buckets are individually sorted but visited in cell order; downstream
  // behaviour depends on ascending NodeId order (see header).
  std::sort(scratch_.begin(), scratch_.end());
  return scratch_;
}

}  // namespace frugal::net
