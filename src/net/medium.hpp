// Broadcast wireless medium.
//
// Stand-in for the paper's Qualnet 802.11b substrate (see DESIGN.md §1). The
// protocol under study needs exactly four properties from the MAC/PHY, all
// modeled here:
//   1. one-hop broadcast with a finite radio range (unit disk whose radius can
//      be derived from tx power / sensitivity via the two-ray formula),
//   2. frames take size * 8 / rate on air,
//   3. senders carrier-sense and defer (plus random jitter) before talking,
//   4. frames that overlap in time at a receiver corrupt each other
//      (collisions), and a transmitting radio cannot receive (half-duplex).
//
// The medium charges every sent/received byte to per-node traffic counters;
// the evaluation's bandwidth numbers come from these.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/mobility.hpp"
#include "net/spatial_index.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::net {

/// One on-air frame. `payload` carries the protocol message by value (the
/// codec layer accounts for its wire size separately; see core/wire.hpp).
struct Frame {
  NodeId sender = kInvalidNode;
  std::uint32_t size_bytes = 0;
  std::any payload;
  /// Stable, monotonically increasing per-medium id, assigned at broadcast()
  /// in issue order. Observer-only: nothing in the medium or the protocols
  /// branches on it, so goldens are byte-identical with or without consumers.
  std::uint64_t id = 0;
};

/// Implemented by protocol nodes to receive frames.
class MediumClient {
 public:
  virtual ~MediumClient() = default;
  virtual void on_frame(const Frame& frame) = 0;
};

/// Observer of raw radio activity, implemented by the energy model
/// (src/energy): per-frame airtime at the sender and at every receiver whose
/// radio locks onto the frame, plus power and sleep state flips. The medium
/// reports physics only; what a state transition costs is the listener's
/// business.
class RadioActivityListener {
 public:
  virtual ~RadioActivityListener() = default;
  /// Called immediately before `sender` would put a frame on air: the last
  /// chance to settle accounts and power a depleted radio down (via
  /// Medium::set_up) before the frame commits — the medium re-checks the
  /// sender's up state afterwards, so a battery that emptied since the
  /// last report never transmits.
  virtual void before_tx(NodeId sender, SimTime now) {
    static_cast<void>(sender);
    static_cast<void>(now);
  }
  /// `sender`'s radio transmits over [start, end).
  virtual void on_tx(NodeId sender, SimTime start, SimTime end) = 0;
  /// `receiver`'s radio is locked on an incoming frame over [start, end).
  /// Reported whether or not the frame later collides — a corrupted
  /// reception costs the same airtime as an intact one.
  virtual void on_rx(NodeId receiver, SimTime start, SimTime end) = 0;
  /// Radio powered up or down (churn crash/recovery, battery depletion).
  /// Only actual flips are reported, never redundant sets.
  virtual void on_up_changed(NodeId node, bool up, SimTime at) = 0;
  /// Radio entered or left power-save sleep (duty cycling). Only actual
  /// flips are reported.
  virtual void on_sleep_changed(NodeId node, bool sleeping, SimTime at) = 0;
};

/// Why a frame that was offered to a receiver never reached its client.
enum class FrameLossReason : std::uint8_t {
  kBusy,    ///< receiver's radio was transmitting (half-duplex)
  kAsleep,  ///< receiver was in power-save sleep
  kDown,    ///< receiver powered down between lock-on and frame end
};

/// Per-frame fate observer, implemented by the dissemination tracer
/// (src/telemetry/causal.hpp). Separate from RadioActivityListener on
/// purpose: that interface reports airtime physics to the energy model,
/// this one reports the *outcome* of every issued frame at every receiver.
/// All methods default to no-ops so implementors subscribe selectively.
class FrameListener {
 public:
  virtual ~FrameListener() = default;
  /// The frame committed to air over [start, end).
  virtual void on_frame_sent(const Frame& frame, SimTime start, SimTime end) {
    static_cast<void>(frame);
    static_cast<void>(start);
    static_cast<void>(end);
  }
  /// The frame was issued but never got on air: sender down at issue time,
  /// crashed or battery-died while queued, or gave up after max_defers.
  virtual void on_frame_dropped(const Frame& frame, SimTime at) {
    static_cast<void>(frame);
    static_cast<void>(at);
  }
  /// The frame arrived intact at `receiver` (called immediately before the
  /// client's on_frame).
  virtual void on_frame_delivered(const Frame& frame, NodeId receiver,
                                  SimTime end) {
    static_cast<void>(frame);
    static_cast<void>(receiver);
    static_cast<void>(end);
  }
  /// The frame was corrupted by overlap at `receiver`.
  virtual void on_frame_collided(const Frame& frame, NodeId receiver,
                                 SimTime end) {
    static_cast<void>(frame);
    static_cast<void>(receiver);
    static_cast<void>(end);
  }
  /// The frame never reached `receiver`'s client for `reason` (busy/asleep
  /// are reported at offer time, down at the frame's scheduled end).
  virtual void on_frame_missed(const Frame& frame, NodeId receiver,
                               FrameLossReason reason, SimTime at) {
    static_cast<void>(frame);
    static_cast<void>(receiver);
    static_cast<void>(reason);
    static_cast<void>(at);
  }
  /// Radio powered up or down. Mirrors RadioActivityListener::on_up_changed
  /// so a frame observer can track liveness without also being the energy
  /// listener.
  virtual void on_node_up_changed(NodeId node, bool up, SimTime at) {
    static_cast<void>(node);
    static_cast<void>(up);
    static_cast<void>(at);
  }
};

struct MediumConfig {
  double range_m = 442.0;   ///< paper: 442 m at 1 Mbps, 44 m in the city model
  double rate_bps = 1e6;    ///< broadcast basic rate (802.11b: 1 Mbps)
  bool enable_collisions = true;
  /// Random pre-transmission jitter, standing in for CSMA slot back-off; also
  /// desynchronizes periodic heartbeats.
  SimDuration max_jitter = SimDuration::from_ms(5);
  /// Carrier-sense retry limit, mirroring the 802.11 retry limit: a frame
  /// that finds the channel busy this many times is dropped (queue overflow
  /// under saturation). The per-retry wait grows linearly with the attempt
  /// number (a simple stand-in for DCF's exponential back-off).
  int max_defers = 16;
  /// Receiver/carrier-sense resolution path. true: uniform-grid spatial
  /// index, O(neighbors) per broadcast (see net/spatial_index.hpp). false:
  /// the original brute-force scan over every node, O(n) per broadcast.
  /// Both paths are behaviour-identical down to the byte (spatial_index_test
  /// proves it); the flag exists so bench_medium_scaling can measure the
  /// separation and the property test can compare the two live.
  bool use_spatial_index = true;
};

struct TrafficCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_delivered = 0;   ///< received intact
  std::uint64_t bytes_delivered = 0;
  std::uint64_t frames_collided = 0;    ///< lost at this receiver to overlap
  std::uint64_t frames_missed_busy = 0; ///< lost because radio was transmitting
  std::uint64_t frames_missed_asleep = 0; ///< lost to power-save sleep
  /// Receptions voided because the radio powered down (crash or battery
  /// death) between locking onto the frame and its end.
  std::uint64_t frames_missed_down = 0;
  /// Sender gave up after max_defers, or its radio went down (crash or
  /// battery death) while the frame was queued — every issued frame ends
  /// up in exactly one of frames_sent / frames_dropped.
  std::uint64_t frames_dropped = 0;
};

class Medium {
 public:
  Medium(sim::Scheduler& scheduler, mobility::MobilityModel& mobility,
         MediumConfig config, Rng jitter_rng);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers the client for `node`. Must be called before the node sends or
  /// can receive. `node` must be < mobility.node_count().
  void attach(NodeId node, MediumClient* client);

  /// Marks a node up/down (crash/recover). Down nodes neither send nor hear.
  void set_up(NodeId node, bool up);
  [[nodiscard]] bool is_up(NodeId node) const;

  /// Puts a node's radio into power-save sleep / wakes it (802.11 PSM
  /// style): a sleeping radio overhears nothing (frames it would have
  /// received count as `frames_missed_asleep`) but still wakes to transmit.
  void set_sleeping(NodeId node, bool sleeping);
  [[nodiscard]] bool is_sleeping(NodeId node) const;

  /// Registers the (single, optional) radio-activity observer. Not owned;
  /// must outlive the medium's use. nullptr detaches.
  void set_listener(RadioActivityListener* listener) { listener_ = listener; }

  /// Registers the (single, optional) per-frame fate observer. Not owned;
  /// must outlive the medium's use. nullptr detaches.
  void set_frame_listener(FrameListener* listener) {
    frame_listener_ = listener;
  }

  /// Queues a broadcast from `sender`. The frame goes on air after jitter and
  /// carrier-sense deferral, and reaches every up node within range. Returns
  /// the frame's stable id (assigned even when the sender is down and the
  /// frame is dropped on the spot); callers that don't trace may ignore it.
  std::uint64_t broadcast(NodeId sender, std::uint32_t size_bytes,
                          std::any payload);

  [[nodiscard]] const TrafficCounters& counters(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return clients_.size(); }

  /// Nodes currently within radio range of `node` that could receive a frame
  /// from it: up, attached, and within `range_m` (excluding itself). Sleeping
  /// nodes are included — they are in range, they just doze through frames.
  [[nodiscard]] std::vector<NodeId> nodes_in_range(NodeId node) const;

  /// Until when `sender` senses the channel busy at time `at` (zero when the
  /// channel is idle): the latest end among other nodes' transmissions in
  /// range. Public so the index-equivalence property test can compare the
  /// indexed and brute-force answers directly.
  [[nodiscard]] SimTime sensed_busy_until(NodeId sender, SimTime at) const;

  [[nodiscard]] const MediumConfig& config() const { return config_; }

 private:
  struct Reception {
    SimTime start;
    SimTime end;
    std::shared_ptr<bool> corrupted;
  };
  struct Transmission {
    NodeId sender = kInvalidNode;
    SimTime start;
    SimTime end;
  };

  /// The one receiver predicate shared by delivery and nodes_in_range (minus
  /// the range check, which callers apply to their own query position).
  [[nodiscard]] bool can_receive(NodeId receiver, NodeId sender) const {
    return receiver != sender && up_[receiver] &&
           clients_[receiver] != nullptr;
  }

  void start_transmission(NodeId sender, const std::shared_ptr<Frame>& frame,
                          int attempt);
  void offer_to_receiver(NodeId receiver, const std::shared_ptr<Frame>& frame,
                         SimTime now, SimTime end);
  void prune(SimTime now);

  sim::Scheduler& scheduler_;
  mobility::MobilityModel& mobility_;
  MediumConfig config_;
  Rng rng_;
  std::vector<MediumClient*> clients_;
  RadioActivityListener* listener_ = nullptr;
  FrameListener* frame_listener_ = nullptr;
  std::uint64_t next_frame_id_ = 0;
  std::vector<bool> up_;
  std::vector<bool> sleeping_;
  std::vector<TrafficCounters> counters_;
  std::vector<SimTime> tx_busy_until_;
  std::vector<std::vector<Reception>> receptions_;
  std::vector<Transmission> on_air_;
  /// Present iff config_.use_spatial_index. unique_ptr (not optional) so the
  /// const query methods can use it: candidates() mutates internal caches.
  std::unique_ptr<SpatialIndex> index_;
};

/// Radio range from the two-ray ground-reflection model:
///   d = 10 ^ ((Pt_dBm - sensitivity_dBm + 10 log10(Gt Gr ht^2 hr^2)) / 40)
/// With the paper's parameters (15 dB tx, 0.8 antenna efficiency, ~1 m
/// antennas) this yields 448/341/316/252 m for the -93/-89/-87/-83 dB
/// sensitivities — matching the paper's quoted 442/339/321/273 m ranges to
/// within a few percent.
[[nodiscard]] double two_ray_range(double tx_power_dbm, double sensitivity_dbm,
                                   double antenna_gain = 0.8,
                                   double antenna_height_m = 1.0);

}  // namespace frugal::net
