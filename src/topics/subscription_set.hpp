// A process's subscription list (paper: pi.subscriptions), with the covering
// semantics of the topic-based scheme: subscribing to T covers T and all of
// its subtopics.
#pragma once

#include <algorithm>
#include <vector>

#include "topics/topic.hpp"

namespace frugal::topics {

class SubscriptionSet {
 public:
  SubscriptionSet() = default;
  explicit SubscriptionSet(std::vector<Topic> subscriptions) {
    for (auto& t : subscriptions) add(std::move(t));
  }

  /// Adds a subscription; duplicates are ignored. Keeping redundant entries
  /// (a topic already covered by a broader one) mirrors the paper, where a
  /// process may unsubscribe from the broad topic later and must retain the
  /// narrow interest.
  void add(Topic topic) {
    if (std::find(topics_.begin(), topics_.end(), topic) == topics_.end()) {
      topics_.push_back(std::move(topic));
    }
  }

  /// Removes an exact subscription; returns true when it was present.
  bool remove(const Topic& topic) {
    const auto it = std::find(topics_.begin(), topics_.end(), topic);
    if (it == topics_.end()) return false;
    topics_.erase(it);
    return true;
  }

  [[nodiscard]] bool empty() const { return topics_.empty(); }
  [[nodiscard]] std::size_t size() const { return topics_.size(); }
  [[nodiscard]] const std::vector<Topic>& topics() const { return topics_; }

  /// True when an event published on `topic` is of interest here.
  [[nodiscard]] bool covers(const Topic& topic) const {
    return std::any_of(topics_.begin(), topics_.end(),
                       [&](const Topic& s) { return s.covers(topic); });
  }

  /// True when the two processes share interests under hierarchy matching:
  /// some subscription of one covers (or equals) a subscription of the other.
  /// This is the paper's "subscriptions ∈ pi.subscriptions" neighbor-table
  /// admission test (events of the narrower topic interest both sides).
  [[nodiscard]] bool overlaps(const SubscriptionSet& other) const {
    for (const Topic& a : topics_) {
      for (const Topic& b : other.topics_) {
        if (a.covers(b) || b.covers(a)) return true;
      }
    }
    return false;
  }

  friend bool operator==(const SubscriptionSet&,
                         const SubscriptionSet&) = default;

 private:
  std::vector<Topic> topics_;
};

}  // namespace frugal::topics
