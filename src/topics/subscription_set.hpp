// A process's subscription list (paper: pi.subscriptions), with the covering
// semantics of the topic-based scheme: subscribing to T covers T and all of
// its subtopics.
//
// Besides the paper-ordered topic list, the set maintains a sorted index of
// normalized paths. Ancestry is a prefix relation at '.' boundaries on those
// paths, so covers() resolves by probing the O(depth) ancestor prefixes of
// the queried topic and overlaps() by one ancestor walk plus one subtree
// range probe per subscription — O(depth * log n) each instead of the
// linear/quadratic scans a flat list needs. Small sets keep the scan (it is
// faster than binary searching a handful of entries); semantics are
// identical on both paths.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "topics/topic.hpp"

namespace frugal::topics {

class SubscriptionSet {
 public:
  SubscriptionSet() = default;
  explicit SubscriptionSet(std::vector<Topic> subscriptions) {
    for (auto& t : subscriptions) add(std::move(t));
  }

  /// Adds a subscription; duplicates are ignored. Keeping redundant entries
  /// (a topic already covered by a broader one) mirrors the paper, where a
  /// process may unsubscribe from the broad topic later and must retain the
  /// narrow interest.
  void add(Topic topic) {
    if (std::find(topics_.begin(), topics_.end(), topic) != topics_.end()) {
      return;
    }
    sorted_paths_.insert(
        std::upper_bound(sorted_paths_.begin(), sorted_paths_.end(),
                         topic.path(), std::less<>{}),
        std::string{topic.path()});
    topics_.push_back(std::move(topic));
  }

  /// Removes an exact subscription; returns true when it was present.
  bool remove(const Topic& topic) {
    const auto it = std::find(topics_.begin(), topics_.end(), topic);
    if (it == topics_.end()) return false;
    const auto sorted_it =
        std::lower_bound(sorted_paths_.begin(), sorted_paths_.end(),
                         topic.path(), std::less<>{});
    sorted_paths_.erase(sorted_it);
    topics_.erase(it);
    return true;
  }

  [[nodiscard]] bool empty() const { return topics_.empty(); }
  [[nodiscard]] std::size_t size() const { return topics_.size(); }
  [[nodiscard]] const std::vector<Topic>& topics() const { return topics_; }

  /// True when an event published on `topic` is of interest here, i.e. some
  /// subscription is `topic` or an ancestor of it.
  [[nodiscard]] bool covers(const Topic& topic) const {
    if (topics_.size() <= kLinearScanMax) {
      return std::any_of(topics_.begin(), topics_.end(),
                         [&](const Topic& s) { return s.covers(topic); });
    }
    return contains_ancestor_of(topic);
  }

  /// True when the two processes share interests under hierarchy matching:
  /// some subscription of one covers (or equals) a subscription of the other.
  /// This is the paper's "subscriptions ∈ pi.subscriptions" neighbor-table
  /// admission test (events of the narrower topic interest both sides).
  [[nodiscard]] bool overlaps(const SubscriptionSet& other) const {
    if (topics_.size() * other.topics_.size() <=
        kLinearScanMax * kLinearScanMax) {
      for (const Topic& a : topics_) {
        for (const Topic& b : other.topics_) {
          if (a.covers(b) || b.covers(a)) return true;
        }
      }
      return false;
    }
    // Probe the smaller set's subscriptions against the larger set's index:
    // a and b overlap iff the other set holds an ancestor-or-self of a
    // (b.covers(a)) or a subscription inside a's subtree (a.covers(b)).
    const SubscriptionSet& probe = size() <= other.size() ? *this : other;
    const SubscriptionSet& index = size() <= other.size() ? other : *this;
    for (const Topic& a : probe.topics_) {
      if (index.contains_ancestor_of(a) || index.contains_descendant_of(a)) {
        return true;
      }
    }
    return false;
  }

  friend bool operator==(const SubscriptionSet&,
                         const SubscriptionSet&) = default;

 private:
  /// Below this size the flat scans win; the property tests exercise sets on
  /// both sides of the threshold.
  static constexpr std::size_t kLinearScanMax = 8;

  /// Some subscription is `topic` itself or an ancestor: probe every
  /// segment-boundary prefix of the normalized path.
  [[nodiscard]] bool contains_ancestor_of(const Topic& topic) const {
    const auto held = [&](std::string_view path) {
      return std::binary_search(sorted_paths_.begin(), sorted_paths_.end(),
                                path, std::less<>{});
    };
    if (held(std::string_view{})) return true;  // root covers everything
    const std::string_view path = topic.path();
    for (std::size_t dot = path.find('.'); dot != std::string_view::npos;
         dot = path.find('.', dot + 1)) {
      if (held(path.substr(0, dot))) return true;
    }
    return !path.empty() && held(path);
  }

  /// Some subscription lies strictly below `topic`: entries with prefix
  /// `path + '.'` are contiguous in the sorted index.
  [[nodiscard]] bool contains_descendant_of(const Topic& topic) const {
    if (topic.is_root()) return !sorted_paths_.empty();
    std::string prefix{topic.path()};
    prefix += '.';
    const auto it = std::lower_bound(sorted_paths_.begin(),
                                     sorted_paths_.end(), prefix,
                                     std::less<>{});
    return it != sorted_paths_.end() && it->starts_with(prefix);
  }

  std::vector<Topic> topics_;
  /// Normalized paths of topics_, sorted (the covering index).
  std::vector<std::string> sorted_paths_;
};

}  // namespace frugal::topics
