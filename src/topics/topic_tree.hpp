// Hierarchical topic-indexed container.
//
// The paper's event table (Fig. 3) stores events "according to the topic
// hierarchy (from the partial topic tree information the process has)".
// TopicTree<T> is that structure: a trie over topic segments where each node
// holds the values filed under exactly that topic, with subtree collection
// for the covering queries of the topic-based scheme (a subscription to T
// matches T and everything below it).
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "topics/topic.hpp"

namespace frugal::topics {

template <typename T>
class TopicTree {
 public:
  /// Files `value` under exactly `topic`.
  void insert(const Topic& topic, T value) {
    node_for(topic, /*create=*/true)->values.push_back(std::move(value));
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Values filed under exactly `topic` (no subtopics).
  [[nodiscard]] const std::vector<T>* at(const Topic& topic) const {
    const Node* node = find(topic);
    return node != nullptr ? &node->values : nullptr;
  }

  /// All values under `topic` and its subtopics, in depth-first segment
  /// order — the set a subscriber to `topic` is entitled to.
  [[nodiscard]] std::vector<T> collect_subtree(const Topic& topic) const {
    std::vector<T> out;
    if (const Node* node = find(topic)) collect(*node, out);
    return out;
  }

  /// Number of distinct topics that currently hold at least one value under
  /// the subtree rooted at `topic`.
  [[nodiscard]] std::size_t topic_count_under(const Topic& topic) const {
    const Node* node = find(topic);
    return node != nullptr ? count_topics(*node) : 0;
  }

  /// Calls `fn(value)` for every value under `topic` and its subtopics, in
  /// the same depth-first segment order as collect_subtree — without
  /// materializing a vector (the covering-query hot path).
  template <typename Fn>
  void for_each_under(const Topic& topic, Fn&& fn) const {
    if (const Node* node = find(topic)) visit(*node, fn);
  }

  /// True when `predicate(value)` holds for some value under `topic`;
  /// short-circuits on the first hit.
  template <typename Predicate>
  [[nodiscard]] bool any_under(const Topic& topic,
                               Predicate&& predicate) const {
    const Node* node = find(topic);
    return node != nullptr && any(*node, predicate);
  }

  /// Removes one value equal to `value` filed under exactly `topic`, pruning
  /// branches emptied along the path. Returns true when it was present —
  /// the incremental counterpart of the whole-tree remove_if.
  bool remove(const Topic& topic, const T& value) {
    const auto segments = topic.segments();
    if (!remove_exact(root_, segments, 0, value)) return false;
    --size_;
    return true;
  }

  /// Removes all values for which `predicate(value)` is true, anywhere in
  /// the tree; empty branches are pruned. Returns the number removed.
  template <typename Predicate>
  std::size_t remove_if(Predicate predicate) {
    const std::size_t removed = remove_recursive(root_, predicate);
    size_ -= removed;
    return removed;
  }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

  /// Topics (canonical dotted form) that currently hold values, depth-first.
  [[nodiscard]] std::vector<Topic> topics() const {
    std::vector<Topic> out;
    list_topics(root_, Topic{}, out);
    return out;
  }

 private:
  struct Node {
    std::vector<T> values;
    std::map<std::string, Node, std::less<>> children;  // ordered: stable walks
  };

  [[nodiscard]] const Node* find(const Topic& topic) const {
    const Node* node = &root_;
    for (const auto& segment : topic.segments()) {
      const auto it = node->children.find(segment);
      if (it == node->children.end()) return nullptr;
      node = &it->second;
    }
    return node;
  }

  Node* node_for(const Topic& topic, bool create) {
    Node* node = &root_;
    for (const auto& segment : topic.segments()) {
      const auto it = node->children.find(segment);
      if (it != node->children.end()) {
        node = &it->second;
      } else if (create) {
        node = &node->children[segment];
      } else {
        return nullptr;
      }
    }
    return node;
  }

  static void collect(const Node& node, std::vector<T>& out) {
    out.insert(out.end(), node.values.begin(), node.values.end());
    for (const auto& [segment, child] : node.children) collect(child, out);
  }

  template <typename Fn>
  static void visit(const Node& node, Fn& fn) {
    for (const T& value : node.values) fn(value);
    for (const auto& [segment, child] : node.children) visit(child, fn);
  }

  template <typename Predicate>
  static bool any(const Node& node, Predicate& predicate) {
    for (const T& value : node.values) {
      if (predicate(value)) return true;
    }
    for (const auto& [segment, child] : node.children) {
      if (any(child, predicate)) return true;
    }
    return false;
  }

  static bool remove_exact(Node& node,
                           const std::vector<std::string>& segments,
                           std::size_t index, const T& value) {
    if (index == segments.size()) {
      const auto it =
          std::find(node.values.begin(), node.values.end(), value);
      if (it == node.values.end()) return false;
      node.values.erase(it);
      return true;
    }
    const auto it = node.children.find(segments[index]);
    if (it == node.children.end()) return false;
    if (!remove_exact(it->second, segments, index + 1, value)) return false;
    if (it->second.values.empty() && it->second.children.empty()) {
      node.children.erase(it);
    }
    return true;
  }

  static std::size_t count_topics(const Node& node) {
    std::size_t count = node.values.empty() ? 0 : 1;
    for (const auto& [segment, child] : node.children) {
      count += count_topics(child);
    }
    return count;
  }

  template <typename Predicate>
  static std::size_t remove_recursive(Node& node, Predicate& predicate) {
    const auto before = node.values.size();
    std::erase_if(node.values, predicate);
    std::size_t removed = before - node.values.size();
    for (auto it = node.children.begin(); it != node.children.end();) {
      removed += remove_recursive(it->second, predicate);
      if (it->second.values.empty() && it->second.children.empty()) {
        it = node.children.erase(it);
      } else {
        ++it;
      }
    }
    return removed;
  }

  static void list_topics(const Node& node, const Topic& here,
                          std::vector<Topic>& out) {
    if (!node.values.empty()) out.push_back(here);
    for (const auto& [segment, child] : node.children) {
      list_topics(child, here.child(segment), out);
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace frugal::topics
