// Topic hierarchy.
//
// Topics are dot-separated paths (".grenoble.conferences.middleware"); the
// root topic is ".". Subscribing to a topic implicitly subscribes to all of
// its subtopics (paper §2), so the central operation is the ancestor test.
//
// Internally a topic is its normalized path without the leading dot (the root
// is the empty string), which makes the ancestor test a prefix check at a
// segment boundary.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expect.hpp"

namespace frugal::topics {

class Topic {
 public:
  /// The root topic ".".
  Topic() = default;

  /// Parses "a.b.c", ".a.b.c" or "." — leading dot optional, root is ".".
  /// Segments must be non-empty (no "a..b") and must not contain whitespace.
  static Topic parse(std::string_view text);

  /// True when `text` is parseable by parse().
  [[nodiscard]] static bool valid(std::string_view text);

  [[nodiscard]] bool is_root() const { return path_.empty(); }

  /// Number of segments; the root has depth 0.
  [[nodiscard]] std::size_t depth() const;

  /// Parent topic; the root is its own parent.
  [[nodiscard]] Topic parent() const;

  /// Direct child named `segment`.
  [[nodiscard]] Topic child(std::string_view segment) const;

  /// True when `this` is `other` or an ancestor of it, i.e. a subscription to
  /// `this` receives events published on `other`.
  [[nodiscard]] bool covers(const Topic& other) const {
    if (path_.empty()) return true;  // root covers everything
    if (other.path_.size() < path_.size()) return false;
    if (other.path_.compare(0, path_.size(), path_) != 0) return false;
    return other.path_.size() == path_.size() ||
           other.path_[path_.size()] == '.';
  }

  /// Segments, in order from the root (owned strings: safe to keep after the
  /// Topic goes away).
  [[nodiscard]] std::vector<std::string> segments() const;

  /// The normalized path without the leading dot; the root is "". Ancestry
  /// is a prefix relation at '.' boundaries on this form, which is what the
  /// sorted-path indexes (SubscriptionSet) build on.
  [[nodiscard]] std::string_view path() const { return path_; }

  /// Canonical dotted form with leading dot; the root renders as ".".
  [[nodiscard]] std::string to_string() const {
    return path_.empty() ? std::string{"."} : "." + path_;
  }

  friend auto operator<=>(const Topic&, const Topic&) = default;

 private:
  explicit Topic(std::string path) : path_{std::move(path)} {}
  std::string path_;  // "a.b.c" without leading dot; "" is the root
};

/// All topics exactly `depth` levels below `root` in the complete
/// `branching`-ary tree whose level segments are "b0".."b{branching-1}",
/// in depth-first (= lexicographic, for branching <= 10) order. The shared
/// synthetic-hierarchy builder of the topic_fanout workload and the
/// event-table scaling benches. depth 0 yields {root}.
[[nodiscard]] std::vector<Topic> complete_tree_level(const Topic& root,
                                                     std::uint32_t branching,
                                                     std::uint32_t depth);

}  // namespace frugal::topics
