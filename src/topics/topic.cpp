#include "topics/topic.hpp"

#include <cctype>

namespace frugal::topics {

namespace {

bool segments_well_formed(std::string_view path) {
  if (path.empty()) return true;  // root
  if (path.front() == '.' || path.back() == '.') return false;
  bool previous_dot = false;
  for (char c : path) {
    if (c == '.') {
      if (previous_dot) return false;  // empty segment
      previous_dot = true;
      continue;
    }
    previous_dot = false;
    if (std::isspace(static_cast<unsigned char>(c)) != 0) return false;
  }
  return true;
}

std::string_view strip_leading_dot(std::string_view text) {
  if (!text.empty() && text.front() == '.') text.remove_prefix(1);
  return text;
}

}  // namespace

bool Topic::valid(std::string_view text) {
  if (text == ".") return true;
  if (text.empty()) return false;  // the root is spelled "."
  const std::string_view path = strip_leading_dot(text);
  return !path.empty() && segments_well_formed(path);
}

Topic Topic::parse(std::string_view text) {
  FRUGAL_EXPECT(valid(text));
  if (text == ".") return Topic{};
  return Topic{std::string{strip_leading_dot(text)}};
}

std::size_t Topic::depth() const {
  if (path_.empty()) return 0;
  std::size_t n = 1;
  for (char c : path_) {
    if (c == '.') ++n;
  }
  return n;
}

Topic Topic::parent() const {
  const auto pos = path_.rfind('.');
  if (pos == std::string::npos) return Topic{};  // depth <= 1 -> root
  return Topic{path_.substr(0, pos)};
}

Topic Topic::child(std::string_view segment) const {
  FRUGAL_EXPECT(!segment.empty());
  FRUGAL_EXPECT(segment.find('.') == std::string_view::npos);
  if (path_.empty()) return Topic{std::string{segment}};
  return Topic{path_ + "." + std::string{segment}};
}

std::vector<Topic> complete_tree_level(const Topic& root,
                                       std::uint32_t branching,
                                       std::uint32_t depth) {
  FRUGAL_EXPECT(branching >= 1);
  std::vector<Topic> level{root};
  for (std::uint32_t d = 0; d < depth; ++d) {
    // Guard b^depth *before* materializing the next level, so an absurd
    // branching/depth combination aborts instead of attempting a giant
    // allocation.
    FRUGAL_EXPECT(level.size() <= (1u << 20) / branching);
    std::vector<Topic> next;
    next.reserve(level.size() * branching);
    for (const Topic& parent : level) {
      for (std::uint32_t child = 0; child < branching; ++child) {
        next.push_back(parent.child("b" + std::to_string(child)));
      }
    }
    level = std::move(next);
  }
  return level;
}

std::vector<std::string> Topic::segments() const {
  std::vector<std::string> out;
  if (path_.empty()) return out;
  std::string_view rest = path_;
  for (;;) {
    const auto pos = rest.find('.');
    if (pos == std::string_view::npos) {
      out.emplace_back(rest);
      return out;
    }
    out.emplace_back(rest.substr(0, pos));
    rest.remove_prefix(pos + 1);
  }
}

}  // namespace frugal::topics
