// Experiment runner: wires simulator + medium + mobility + protocol nodes
// into one run of the paper's evaluation setup and collects the metrics the
// figures are built from (reliability, bandwidth, events sent, duplicates,
// parasites).
//
// A run publishes `event_count` events on one topic from one publisher after
// a warm-up, lets them live out their validity period, and reports per-node
// outcomes. Reliability can be evaluated at any probe validity <= the run's
// validity from the recorded delivery times: for single-publisher workloads
// with ample memory the protocol's behaviour up to time v is identical for
// every validity >= v, so one run yields the whole validity axis (used by
// Figs. 11, 12 and 16; see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/flooding.hpp"
#include "core/frugal_node.hpp"
#include "core/node.hpp"
#include "energy/energy.hpp"
#include "mobility/city_section.hpp"
#include "mobility/converge.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/medium.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/causal.hpp"

namespace frugal::trace {
class TraceRecorder;
}

namespace frugal::telemetry {
class RunTelemetry;
}

namespace frugal::sim {
class Profiler;
}

namespace frugal::core {

/// Static placement over a rectangle (the speed-0 points of Fig. 11).
struct StaticSetup {
  double width_m = 5000.0;
  double height_m = 5000.0;
};

struct RandomWaypointSetup {
  mobility::RandomWaypointConfig config;
};

struct CitySetup {
  mobility::CampusGridConfig grid;
  mobility::CitySectionConfig movement;
};

/// Flash-crowd mobility (the adversarial_mobility scenario family): every
/// process converges on one rally point, dwells, then disperses.
struct ConvergeSetup {
  mobility::ConvergeConfig config;
};

using MobilitySetup =
    std::variant<StaticSetup, RandomWaypointSetup, CitySetup, ConvergeSetup>;

/// Crash/recovery injection (paper §2: processes "can move in and out of the
/// range of other processes, or crash (or recover), at any time"). Crashes
/// arrive per node as a Poisson process; a crashed node is silent and deaf
/// (its radio is down) for a uniform downtime, keeping its tables — exactly
/// what a device reboot looks like to the protocol.
struct ChurnConfig {
  double crashes_per_node_per_minute = 0.0;  ///< 0 disables churn
  SimDuration downtime_min = SimDuration::from_seconds(5.0);
  SimDuration downtime_max = SimDuration::from_seconds(30.0);
};

/// Hierarchical pub/sub workload over a synthetic topic tree (the
/// topic_fanout scenario family). The hierarchy is the complete
/// `branching`-ary tree of `depth` levels under ".t"; publications land on
/// leaf topics with Zipf-skewed popularity, and each subscriber draws
/// `subscriptions_per_node` interests that are either broad (a depth-1
/// branch topic, covering its whole subtree) or narrow (a single leaf).
/// When unset, runs use the paper's flat workload (everyone subscribes
/// ".news", events publish on ".news.local") — bit-identical to before.
struct TopicHierarchyWorkload {
  std::uint32_t depth = 3;      ///< levels below the root; leaves = b^depth
  std::uint32_t branching = 3;  ///< children per interior topic
  /// Zipf exponent of leaf publication popularity: weight(rank r) =
  /// 1/(r+1)^s over the depth-first leaf order. 0 = uniform.
  double zipf_s = 1.0;
  /// Probability that a drawn subscription is broad (depth-1 branch) rather
  /// than narrow (leaf).
  double broad_fraction = 0.5;
  std::uint32_t subscriptions_per_node = 1;
};

struct ExperimentConfig {
  /// Registered name of the dissemination protocol to run (see
  /// protocol/registry.hpp; `register_builtin_protocols()` provides
  /// "frugal", the three flooding variants and the adaptive/gossip
  /// variants). Unregistered names abort with a listing.
  std::string protocol = "frugal";
  /// Opaque per-protocol knobs, keyed by the ProtocolParam names the
  /// chosen protocol declares (e.g. "hb_stretch" for
  /// battery-adaptive-frugal). Keys no protocol declared abort. Ordered
  /// map: iteration order is deterministic for serialization.
  std::map<std::string, double> protocol_params;
  std::size_t node_count = 150;  ///< paper: 150 (RWP), 15 (city)
  /// Fraction of processes subscribed to the event topic ("interest"/
  /// "subscribers" axis of the figures). Non-subscribed processes run no
  /// protocol tasks of their own but still overhear traffic (parasites).
  double interest_fraction = 0.8;
  MobilitySetup mobility = RandomWaypointSetup{};
  net::MediumConfig medium;
  FrugalConfig frugal;
  FloodingConfig flooding;  ///< flooding protocols override `variant`
  /// Simulated time before the first publication (paper: 600 s for random
  /// waypoint, to let the node distribution stabilize).
  SimDuration warmup = SimDuration::from_seconds(600.0);
  SimDuration event_validity = SimDuration::from_seconds(180.0);
  std::uint32_t event_count = 1;
  std::uint32_t event_bytes = 400;
  /// Events are published `publish_spacing` apart starting at `warmup`.
  SimDuration publish_spacing = SimDuration::from_seconds(1.0);
  /// Publisher node; defaults to the first subscriber drawn. May be a
  /// non-subscriber (Fig. 14/15 sweeps publish from every process in turn).
  std::optional<NodeId> publisher;
  /// Number of distinct publishers; the workload's events round-robin
  /// across them in publication order. The publisher set starts at
  /// `publisher` (or the default draw) and continues through the seeded
  /// subscriber order. 1 — the paper's single-publisher workloads — is
  /// bit-identical to the pre-multi-publisher behaviour.
  std::uint32_t publisher_count = 1;
  /// Optional hierarchical topic workload; see TopicHierarchyWorkload.
  std::optional<TopicHierarchyWorkload> topic_workload;
  ChurnConfig churn;
  /// Optional radio energy accounting (see energy/energy.hpp): power-state
  /// metering, finite batteries with depletion-driven death, and duty-cycle
  /// sleep. Unset (the default) runs the exact pre-energy code path — no
  /// extra scheduler events, byte-identical golden traces.
  std::optional<energy::EnergyConfig> energy;
  std::uint64_t seed = 1;
  /// Optional: receives the run's publish/delivery/churn records, appended
  /// in time order after the run completes. Not owned; must outlive the
  /// run_experiment call. The golden-trace regression tests diff this.
  trace::TraceRecorder* trace = nullptr;
  /// Optional streaming telemetry hub (telemetry/telemetry.hpp): consumes
  /// the publish/delivery/frame/energy/GC streams live and produces
  /// RunResult-equivalent aggregates plus time-series / Perfetto artifacts.
  /// A bounded-memory hub elides the per-event records, so it is mutually
  /// exclusive with `trace`. Not owned; must outlive the run.
  telemetry::RunTelemetry* telemetry = nullptr;
  /// Optional simulator self-profiler: exclusive per-subsystem wall-clock
  /// and call counts (scheduler tasks, medium, telemetry, experiment
  /// phases). Not owned; attaching it never affects simulated behaviour.
  sim::Profiler* profiler = nullptr;
  /// Optional causal dissemination tracer (telemetry/causal.hpp): consumes
  /// the medium's per-frame fates and the nodes' phase annotations and
  /// reconstructs per-event propagation DAGs, hop/redundancy/phase-latency
  /// metrics and the dissem-trace artifact. Pure observer — attaching it is
  /// perturbation-free. Not owned; must outlive the run.
  telemetry::DisseminationTracer* dissem_tracer = nullptr;
};

struct PublishedEventRecord {
  EventId id;
  SimTime published_at;
  SimDuration validity;
  /// The topic the event was published on (hierarchical workloads publish
  /// on varying leaves; flat runs always use ".news.local").
  topics::Topic topic;
};

struct NodeOutcome {
  bool subscribed = false;
  /// The node's drawn interests; reliability counts a node against an event
  /// only when these cover the event's topic.
  topics::SubscriptionSet subscriptions;
  /// Traffic during the measurement window (from first publish to run end).
  net::TrafficCounters traffic;
  std::uint64_t events_sent = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t parasites = 0;
  /// Event-table GC collections (Fig. 3 / Equation 1) this node performed
  /// during the measurement window — 0 unless memory pressure forced
  /// victim selection. Flooding baselines keep no event table, so always 0
  /// there.
  std::uint64_t gc_evictions = 0;
  /// Radio energy drawn during the measurement window, in joules. 0 unless
  /// the run carried an EnergyConfig.
  double energy_spent_j = 0.0;
  /// Whole-run radio energy including the warm-up — what the battery
  /// actually lost, and what the joules-per-delivered-event headline
  /// charges (a network that spent its batteries warming up must not rank
  /// as frugal). 0 unless the run carried an EnergyConfig.
  double energy_spent_total_j = 0.0;
  /// Measurement-window joules broken down by radio power state (transmit /
  /// receive / idle listening / power-save sleep). The four sum to
  /// `energy_spent_j` up to floating-point addition order; the off state
  /// draws nothing. All 0 unless the run carried an EnergyConfig.
  double energy_tx_j = 0.0;
  double energy_rx_j = 0.0;
  double energy_idle_j = 0.0;
  double energy_sleep_j = 0.0;
  /// Time spent in power-save sleep during the measurement window, seconds.
  double time_asleep_s = 0.0;
  /// The node's battery emptied and its radio was switched off for good.
  bool died_of_depletion = false;
  /// Exact battery-depletion instant (absolute simulated time), if any.
  /// May precede the warm-up: a battery too small for the warm-up kills
  /// the node before the first publication.
  std::optional<SimTime> depleted_at;
  /// Delivery times of the workload events, by event index.
  std::vector<std::optional<SimTime>> delivered_at;
};

struct RunResult {
  std::vector<PublishedEventRecord> events;
  std::vector<NodeOutcome> nodes;
  /// The first (for single-publisher runs: the only) publishing node.
  NodeId publisher = kInvalidNode;
  /// Every publishing node, in round-robin order (size = publisher_count).
  std::vector<NodeId> publishers;
  /// End of simulated time (last publish + validity); the horizon the
  /// energy lifetime metrics are capped at.
  SimTime run_end;
  /// Streamed aggregates when the run carried a telemetry hub. Bounded-
  /// memory runs leave `events` and every `delivered_at` empty and answer
  /// the delivery metrics from here instead; materialized runs keep both so
  /// tests can assert the streamed math is bit-equal to the legacy fold.
  std::optional<telemetry::RunAggregates> aggregates;
  /// Causal-dissemination aggregates when the run carried a
  /// DisseminationTracer: hop distribution, redundancy ratio, per-phase
  /// latency decomposition and the terminal-outcome partition.
  std::optional<telemetry::DisseminationStats> dissem;

  /// Fraction of *eligible* subscribers (those whose subscriptions cover
  /// the event's topic) that received each event within `validity` of its
  /// publication, averaged over events with at least one eligible
  /// subscriber. For the flat workload every subscriber is eligible for
  /// every event, so this is the paper's reception probability unchanged.
  /// `validity` must not exceed the validity the run was executed with.
  [[nodiscard]] double reliability_within(SimDuration validity) const;
  /// Reliability at the run's own validity period.
  [[nodiscard]] double reliability() const;

  [[nodiscard]] double mean_bytes_sent_per_node() const;
  [[nodiscard]] double mean_events_sent_per_node() const;
  [[nodiscard]] double mean_duplicates_per_node() const;
  [[nodiscard]] double mean_parasites_per_node() const;
  /// Mean event-table GC collections per process (the memory_pressure
  /// family's observable for "Equation 1 actually ran").
  [[nodiscard]] double mean_gc_evictions_per_node() const;
  [[nodiscard]] std::size_t subscriber_count() const;

  // -- Energy / frugality-in-joules metrics (all 0-ish without an
  //    EnergyConfig; see energy/energy.hpp) --------------------------------
  /// Mean measurement-window radio energy per process, joules.
  [[nodiscard]] double mean_joules_per_node() const;
  /// Number of recorded (subscriber, event) deliveries.
  [[nodiscard]] std::size_t delivered_count() const;
  /// The frugality headline: whole-run joules across every process per
  /// recorded delivery. Whole-run — not measurement-window — so a
  /// configuration whose batteries died during the warm-up is charged for
  /// everything it burned rather than scoring a free 0. When nothing was
  /// delivered the total is returned unscaled (as if one delivery),
  /// keeping the metric finite.
  [[nodiscard]] double joules_per_delivered_event() const;
  /// Fraction of processes whose battery emptied before the run ended.
  [[nodiscard]] double depleted_fraction() const;
  /// Fraction of processes still alive at the end of the run.
  [[nodiscard]] double survivor_fraction() const;
  /// Seconds from simulation start to the first battery death — the
  /// network-lifetime number; `run_end` when every process survived.
  [[nodiscard]] double first_depletion_s() const;

  /// Delivery latencies (seconds from publication) of every successful
  /// delivery across subscribers and events, ascending.
  [[nodiscard]] std::vector<double> delivery_latencies_s() const;
  /// Mean delivery latency in seconds (0 when nothing was delivered).
  [[nodiscard]] double mean_delivery_latency_s() const;

  // -- Causal-dissemination metrics (0 without a DisseminationTracer) ------
  /// Mean hop count over delivered (subscriber, event) pairs, where the
  /// publisher's own synchronous self-delivery is hop 0.
  [[nodiscard]] double mean_hops_to_deliver() const {
    return dissem.has_value() ? dissem->mean_hops() : 0.0;
  }
  /// Intact event-carrying frame receptions per unique fresh delivery —
  /// the broadcast-redundancy headline (1.0 = every reception was useful).
  [[nodiscard]] double redundancy_ratio() const {
    return dissem.has_value() ? dissem->redundancy_ratio() : 0.0;
  }
};

/// Runs one complete simulation. Deterministic in config.seed.
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config);

}  // namespace frugal::core
