// The paper's frugal dissemination algorithm (§3, §4, Figs. 4-10).
//
// Three phases:
//  1. Neighborhood detection — periodic heartbeats `(id, subscriptions,
//     [speed])`; receivers with overlapping interests keep a neighborhood
//     table and, on detecting a new neighbor, advertise the ids of the valid
//     events they hold that match that neighbor's interests.
//  2. Dissemination — when the table shows a neighbor interested in a valid
//     event it (presumably) lacks, the events to send are collected and
//     broadcast after a back-off inversely proportional to their number;
//     overheard bundles update the table and cancel redundant sends.
//  3. Garbage collection — the neighborhood table ages out on NGCDelay; the
//     bounded event table evicts by Equation 1 (see event_table.hpp).
//
// Delay plumbing (Fig. 8): HBDelay adapts to the neighborhood's average
// advertised speed (x / avgSpeed, clamped to [lower, upper]); NGCDelay =
// HBDelay * HB2NGC; BODelay = HBDelay / (HB2BO * |eventsToSend|).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/event_table.hpp"
#include "core/messages.hpp"
#include "core/neighborhood_table.hpp"
#include "core/node.hpp"
#include "core/wire.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/subscription_set.hpp"
#include "util/stable_map.hpp"

namespace frugal::core {

struct FrugalConfig {
  /// Default heartbeat delay before any neighborhood information (Fig. 4
  /// initializes it to 15 s; the speed-adaptive computation then clamps it
  /// into [hb_lower, hb_upper] on first use).
  SimDuration hb_default = SimDuration::from_seconds(15.0);
  SimDuration hb_lower = SimDuration::from_ms(100);
  /// The evaluation's "heartbeat upper bound period" (1 s in the random
  /// waypoint runs; swept 1-5 s in Fig. 13).
  SimDuration hb_upper = SimDuration::from_seconds(1.0);
  /// Optional dynamic override of the heartbeat upper bound, re-evaluated on
  /// every heartbeat send and every delay recomputation (adaptive protocol
  /// variants plug charge- or speed-dependent bounds in here; results are
  /// floored at hb_lower). Null = the static hb_upper above, exactly the
  /// paper's behaviour.
  std::function<SimDuration()> hb_upper_dynamic;
  double x = 40.0;       ///< HBDelay = x / averageSpeed (paper: x = 40)
  double hb2bo = 2.0;    ///< paper: HB2BO = 2
  double hb2ngc = 2.5;   ///< paper: HB2NGC = 2.5
  std::size_t event_table_capacity = 4096;
  GcPolicy gc_policy = GcPolicy::kPaperScore;  ///< Equation 1 by default
  std::size_t neighborhood_capacity = 0;  ///< 0 = unbounded (footnote 5)
  bool send_speed_in_heartbeat = true;    ///< the optional tachometer field
  bool adaptive_heartbeat = true;   ///< ablation: false = fixed hb_upper
  bool exchange_event_ids = true;   ///< ablation: false = skip id adverts
  bool use_backoff = true;          ///< ablation: false = send immediately
};

class FrugalNode final : public ProtocolNode {
 public:
  /// `speed_provider` supplies the device's current speed for heartbeats
  /// (nullptr models a device without a tachometer).
  FrugalNode(NodeId id, sim::Scheduler& scheduler, net::Medium& medium,
             FrugalConfig config, std::function<double()> speed_provider);

  ~FrugalNode() override;

  [[nodiscard]] NodeId id() const override { return id_; }

  // -- Figure 5: subscription / unsubscription -----------------------------
  void subscribe(const topics::Topic& topic) override;
  void unsubscribe(const topics::Topic& topic) override;

  // -- Figure 9: publication ------------------------------------------------
  void publish(Event event) override;

  // -- Frame reception ------------------------------------------------------
  void on_frame(const net::Frame& frame) override;

  [[nodiscard]] const DeliveryMetrics& metrics() const override {
    return metrics_;
  }
  void set_delivery_callback(DeliveryCallback callback) override {
    delivery_callback_ = std::move(callback);
  }
  void set_gc_callback(
      std::function<void(EventId, SimTime)> callback) override {
    gc_callback_ = std::move(callback);
  }
  void set_phase_annotator(PhaseAnnotator* annotator) override {
    annotator_ = annotator;
  }
  void enable_delivery_history_pruning(SimDuration slack) override {
    prune_slack_ = slack;
  }

  // -- Introspection (tests, examples) --------------------------------------
  [[nodiscard]] const topics::SubscriptionSet& subscriptions() const {
    return subscriptions_;
  }
  [[nodiscard]] const NeighborhoodTable& neighborhood() const {
    return neighborhood_;
  }
  [[nodiscard]] const EventTable& events() const { return events_; }
  [[nodiscard]] SimDuration hb_delay() const { return hb_delay_; }
  [[nodiscard]] SimDuration ngc_delay() const { return ngc_delay_; }
  [[nodiscard]] bool backoff_pending() const { return backoff_.pending(); }
  [[nodiscard]] bool retrieve_pending() const {
    return pending_retrieve_.pending();
  }
  [[nodiscard]] bool heartbeat_running() const {
    return heartbeat_ != nullptr && heartbeat_->running();
  }

 private:
  // Message handlers.
  void on_heartbeat(const Heartbeat& heartbeat);
  void on_event_ids(const EventIdList& list);
  void on_event_bundle(const EventBundle& bundle);

  // Figure 6 helpers.
  void send_heartbeat();
  void advertise_events_to(const topics::SubscriptionSet& interests);
  /// Expiry of an advertised id when our own table holds the event.
  [[nodiscard]] std::optional<SimTime> known_expiry(EventId id) const;

  // Figure 7: collects events some neighbor needs; arms the back-off.
  void retrieve_events_to_send();

  // Figure 8: delay computations.
  void compute_hb_delay();
  void compute_ngc_delay();
  [[nodiscard]] SimDuration compute_bo_delay(std::size_t events_to_send) const;

  // Figure 9: back-off expiration.
  void on_backoff_expired();

  void start_tasks();
  void stop_tasks();
  void run_neighborhood_gc();
  void deliver(const Event& event);
  /// Broadcasts `message` and returns the medium frame id (for annotation).
  std::uint64_t broadcast(Message message);
  void send_bundle(std::vector<Event> events, DisseminationPhase phase);

  NodeId id_;
  sim::Scheduler& scheduler_;
  net::Medium& medium_;
  FrugalConfig config_;
  std::function<double()> speed_provider_;

  topics::SubscriptionSet subscriptions_;
  NeighborhoodTable neighborhood_;
  EventTable events_;
  std::vector<EventId> events_to_send_;

  /// Id lists heard from senders that are not (yet) in the neighborhood
  /// table. The paper discards those outright (Fig. 6 line 26), but the
  /// advert and the admitting heartbeat race on a broadcast channel; keeping
  /// the last advert briefly and merging it at admission avoids one
  /// redundant bundle per re-encounter. Entries expire after two heartbeat
  /// periods.
  struct StashedAdvert {
    std::vector<EventId> ids;
    SimTime heard_at;
  };
  det::hash_map<NodeId, StashedAdvert> advert_stash_;

  SimDuration hb_delay_;
  SimDuration ngc_delay_;
  std::optional<SimDuration> bo_delay_;  ///< null when no back-off pending

  std::unique_ptr<sim::PeriodicTask> heartbeat_;
  std::unique_ptr<sim::PeriodicTask> neighborhood_gc_;
  sim::TaskHandle backoff_;
  sim::TaskHandle pending_retrieve_;

  DeliveryMetrics metrics_;
  DeliveryCallback delivery_callback_;
  std::function<void(EventId, SimTime)> gc_callback_;
  PhaseAnnotator* annotator_ = nullptr;
  std::optional<SimDuration> prune_slack_;
  std::uint32_t next_seq_ = 0;

  friend class FrugalNodeTestPeer;
};

}  // namespace frugal::core
