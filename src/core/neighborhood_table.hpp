// The neighborhood table (paper §4.1, Fig. 2).
//
// One row per one-hop neighbor whose subscriptions overlap ours: the
// neighbor's id, its subscriptions, the set of events it is presumed to have
// received, its advertised speed, and the time the row was last refreshed
// (used by the periodic neighborhoodGC task, Fig. 10).
#pragma once

#include <optional>
#include <vector>

#include "core/event.hpp"
#include "topics/subscription_set.hpp"
#include "util/stable_map.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::core {

struct NeighborEntry {
  NodeId id = kInvalidNode;
  topics::SubscriptionSet subscriptions;
  /// Events this neighbor presumably received, mapped to the expiry of the
  /// event when the recorder knew it (SimTime::max() when it did not, e.g.
  /// an advertised id for an event we never held). The map is consulted only
  /// for ids of *currently valid* events, so entries whose expiry has passed
  /// are dropped by collect() — without that pruning a long-lived neighbor
  /// row grows with every event ever seen, turning a bounded protocol state
  /// into O(run length) memory and cache-hostile lookups.
  det::hash_map<EventId, SimTime, EventIdHash> known_events;
  std::optional<double> speed_mps;
  SimTime store_time;
};

class NeighborhoodTable {
 public:
  /// Bounded table: `capacity` is the maximum number of neighbors a process
  /// can handle (paper footnote 5). 0 means unbounded.
  explicit NeighborhoodTable(std::size_t capacity = 0)
      : capacity_{capacity} {}

  [[nodiscard]] bool contains(NodeId id) const {
    return entries_.contains(id);
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Inserts or refreshes a neighbor (UPDATENEIGHBORINFO). Returns false when
  /// the neighbor was new but the table is full (entry dropped), true
  /// otherwise. Refreshing keeps the known-events set.
  bool upsert(NodeId id, topics::SubscriptionSet subscriptions,
              std::optional<double> speed_mps, SimTime now);

  /// Marks `event` as (presumably) received by neighbor `id`
  /// (UPDATENEIGHBOREVENTINFO). No-op for unknown neighbors. Pass the
  /// event's expiry when known so collect() can retire the entry once the
  /// event can no longer be disseminated; an exact expiry upgrades an
  /// earlier unknown one, never the reverse.
  void record_event(NodeId id, EventId event,
                    std::optional<SimTime> expiry = std::nullopt);

  /// Refreshes the store time of a neighbor without touching its data.
  void touch(NodeId id, SimTime now);

  [[nodiscard]] bool neighbor_knows(NodeId id, EventId event) const;

  [[nodiscard]] const NeighborEntry* find(NodeId id) const;

  /// Removes every entry whose store time is older than now - max_age
  /// (the neighborhoodGC task), and prunes known-event ids whose recorded
  /// expiry has passed (they can never be consulted again). Returns the
  /// number of neighbor entries removed.
  std::size_t collect(SimTime now, SimDuration max_age);

  void remove(NodeId id) { entries_.erase(id); }
  void clear() { entries_.clear(); }

  /// Mean advertised speed of neighbors that reported one; nullopt when no
  /// neighbor did (AVERAGESPEED).
  [[nodiscard]] std::optional<double> average_speed() const;

  /// Stable iteration order (ascending id) so runs are reproducible.
  [[nodiscard]] std::vector<const NeighborEntry*> entries_by_id() const;

  /// Ids of all current neighbors, ascending.
  [[nodiscard]] std::vector<NodeId> neighbor_ids() const;

 private:
  std::size_t capacity_;
  det::hash_map<NodeId, NeighborEntry> entries_;
};

}  // namespace frugal::core
