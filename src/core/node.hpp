// Common interface of all protocol implementations (the frugal algorithm and
// the three flooding baselines), so the experiment runner and the examples
// treat them uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/event.hpp"
#include "net/medium.hpp"
#include "topics/topic.hpp"
#include "util/stable_map.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::core {

/// One application-level delivery, with the event's expiry retained so
/// bounded-memory runs can prune records of long-expired events.
struct DeliveryRecord {
  SimTime at;       ///< first application-level delivery time
  SimTime expires;  ///< the event's expiry (published_at + validity)
};

/// Per-process delivery accounting — the evaluation's four frugality metrics
/// (events sent, duplicates, parasites) plus delivery times for reliability.
struct DeliveryMetrics {
  /// Unique events delivered to the application, with delivery time.
  /// Point-lookup only by construction (det::hash_map): per-event delivery
  /// times are read by id, never folded in hash order.
  det::hash_map<EventId, DeliveryRecord, EventIdHash> deliveries;
  /// Receptions of an event already delivered/stored here (interested).
  std::uint64_t duplicates = 0;
  /// Receptions of events whose topic we have not subscribed to.
  std::uint64_t parasites = 0;
  /// Event copies broadcast by this process (each event in a bundle counts
  /// once; a flooding retransmission counts once per event per send).
  std::uint64_t events_sent = 0;
  /// Event-table GC collections (Fig. 3 / Equation 1): victim selections a
  /// full table forced on insert, whether a stored event was evicted or the
  /// newcomer was rejected. Always 0 for the flooding baselines (no event
  /// table).
  std::uint64_t gc_evictions = 0;

  [[nodiscard]] bool delivered(EventId id) const {
    return deliveries.contains(id);
  }

  /// Drops delivery records whose event expired more than `slack` ago.
  /// Only safe when nobody will read per-event delivery times afterwards
  /// (i.e. bounded-memory telemetry runs); the slack keeps `delivered()`
  /// correct for any frame still in flight, since nodes only transmit
  /// valid events.
  void prune_deliveries(SimTime now, SimDuration slack) {
    deliveries.erase_if([&](const auto& entry) {
      return entry.second.expires + slack < now;
    });
  }
};

/// Protocol-level meaning of one broadcast frame, annotated by the sending
/// node for observers (the dissemination tracer). Heartbeats are deliberately
/// unannotated: they carry no event payload, so tracers ignore their frames.
enum class DisseminationPhase : std::uint8_t {
  kPublish,          ///< publisher's initial transmission of a fresh event
  kAdvert,           ///< frugal: EventIdList advertising stored event ids
  kRetrieveRequest,  ///< frugal: empty EventIdList — pure retrieve trigger
  kEventPush,        ///< frugal: EventBundle answering a neighbor's advert
  kFloodForward,     ///< flooding: periodic retransmission of a stored event
  kGossipForward,    ///< gossip: coin-flip retransmission of a stored event
};

/// Pure observer of protocol-phase frame annotations. Nodes call `annotate`
/// immediately after Medium::broadcast returns the frame id, passing the
/// event ids the frame carries (advertised ids for an EventIdList, bundled
/// event ids for an EventBundle; empty for a retrieve-request).
class PhaseAnnotator {
 public:
  virtual ~PhaseAnnotator() = default;
  virtual void annotate(std::uint64_t frame_id, NodeId sender,
                        DisseminationPhase phase,
                        const std::vector<EventId>& event_ids) = 0;
};

/// A pub/sub process: the software on one mobile device (paper §2).
class ProtocolNode : public net::MediumClient {
 public:
  using DeliveryCallback = std::function<void(const Event&, SimTime)>;

  ~ProtocolNode() override = default;

  [[nodiscard]] virtual NodeId id() const = 0;

  virtual void subscribe(const topics::Topic& topic) = 0;
  virtual void unsubscribe(const topics::Topic& topic) = 0;

  /// Publishes a new event produced by this process. The event's id must
  /// carry this node as publisher.
  virtual void publish(Event event) = 0;

  [[nodiscard]] virtual const DeliveryMetrics& metrics() const = 0;

  /// Invoked on every application-level delivery (optional).
  virtual void set_delivery_callback(DeliveryCallback callback) = 0;

  /// Invoked on every event-table GC collection (optional), with the id of
  /// the evicted/rejected event. Protocols without an event table ignore it.
  virtual void set_gc_callback(std::function<void(EventId, SimTime)> callback) {
    static_cast<void>(callback);
  }

  /// Registers the (optional, not owned) phase annotator consulted on every
  /// event-carrying broadcast. Protocols without annotations ignore it.
  virtual void set_phase_annotator(PhaseAnnotator* annotator) {
    static_cast<void>(annotator);
  }

  /// Lets the node drop delivery records of events expired more than
  /// `slack` ago during its periodic housekeeping. Only bounded-memory
  /// telemetry runs enable this — materialized runs read the full map.
  virtual void enable_delivery_history_pruning(SimDuration slack) {
    static_cast<void>(slack);
  }
};

}  // namespace frugal::core
