// Wire accounting and codec.
//
// Two concerns live here:
//
// 1. *Size accounting* — the bandwidth numbers of the evaluation (Fig. 17)
//    are computed from the paper's stated message sizes: 50-byte heartbeats,
//    128-bit (16-byte) event identifiers, 400-byte events (the event's
//    wire_bytes already includes its headers). wire_size() implements that
//    accounting and is what gets charged to the Medium's traffic counters.
//
// 2. *Codec* — messages can also be encoded to / decoded from real bytes.
//    The simulator moves messages as C++ values for speed, but the codec
//    keeps the message model honest (everything the protocol relies on fits
//    on the wire) and gives the tests a round-trip / malformed-input target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/messages.hpp"

namespace frugal::core {

inline constexpr std::uint32_t kHeartbeatWireBytes = 50;  // paper §5.2
inline constexpr std::uint32_t kEventIdWireBytes = 16;    // 128-bit ids
inline constexpr std::uint32_t kNeighborIdWireBytes = 4;
inline constexpr std::uint32_t kMessageHeaderBytes = 8;

[[nodiscard]] std::uint32_t wire_size(const Heartbeat& message);
[[nodiscard]] std::uint32_t wire_size(const EventIdList& message);
[[nodiscard]] std::uint32_t wire_size(const EventBundle& message);
[[nodiscard]] std::uint32_t wire_size(const Message& message);

/// Serializes a message to bytes. The encoding is self-describing (leading
/// tag) and length-prefixed throughout.
[[nodiscard]] std::vector<std::byte> encode(const Message& message);

/// Parses bytes produced by encode(); returns nullopt on any malformed,
/// truncated or trailing-garbage input (never crashes, suitable for fuzzing).
[[nodiscard]] std::optional<Message> decode(
    const std::vector<std::byte>& bytes);

}  // namespace frugal::core
