#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <tuple>

#include "mobility/static_mobility.hpp"
#include "protocol/registry.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "util/expect.hpp"

namespace frugal::core {

namespace {

std::unique_ptr<mobility::MobilityModel> build_mobility(
    const MobilitySetup& setup, std::size_t node_count, Rng rng) {
  if (const auto* fixed = std::get_if<StaticSetup>(&setup)) {
    std::vector<Vec2> positions;
    positions.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      positions.push_back(
          {rng.uniform(0, fixed->width_m), rng.uniform(0, fixed->height_m)});
    }
    return std::make_unique<mobility::StaticMobility>(std::move(positions));
  }
  if (const auto* rwp = std::get_if<RandomWaypointSetup>(&setup)) {
    return std::make_unique<mobility::RandomWaypoint>(rwp->config, node_count,
                                                      rng);
  }
  if (const auto* converge = std::get_if<ConvergeSetup>(&setup)) {
    return std::make_unique<mobility::ConvergeDisperse>(converge->config,
                                                        node_count, rng);
  }
  const auto& city = std::get<CitySetup>(setup);
  Rng grid_rng = rng.split(0xC17Fu);
  // The graph must outlive the model; wrap both in one owner.
  struct OwningCitySection final : mobility::MobilityModel {
    OwningCitySection(mobility::StreetGraph g,
                      const mobility::CitySectionConfig& cfg, std::size_t n,
                      Rng r)
        : graph{std::move(g)}, model{graph, cfg, n, r} {}
    [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
      return model.position(node, t);
    }
    [[nodiscard]] double speed(NodeId node, SimTime t) override {
      return model.speed(node, t);
    }
    [[nodiscard]] std::size_t node_count() const override {
      return model.node_count();
    }
    [[nodiscard]] double max_speed_mps() const override {
      return model.max_speed_mps();
    }
    mobility::StreetGraph graph;
    mobility::CitySection model;
  };
  return std::make_unique<OwningCitySection>(
      mobility::make_campus_grid(city.grid, grid_rng), city.movement,
      node_count, rng.split(0x30B11EULL));
}

struct MetricsSnapshot {
  std::uint64_t bytes_sent = 0;
  std::uint64_t events_sent = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t parasites = 0;
  std::uint64_t gc_evictions = 0;
  double energy_j = 0.0;
  double asleep_s = 0.0;
  double tx_j = 0.0;
  double rx_j = 0.0;
  double idle_j = 0.0;
  double sleep_j = 0.0;
};

}  // namespace

double RunResult::reliability_within(SimDuration validity) const {
  // Bounded-memory runs have no per-event records; the streamed aggregates
  // answer (only) the probe validities registered before the run.
  if (events.empty() && aggregates.has_value()) {
    return aggregates->reliability_within(validity);
  }
  if (events.empty()) return 0.0;
  double total = 0;
  std::size_t counted_events = 0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    FRUGAL_EXPECT(validity <= events[e].validity);
    const SimTime deadline = events[e].published_at + validity;
    std::size_t eligible = 0;
    std::size_t reached = 0;
    for (const NodeOutcome& node : nodes) {
      if (!node.subscribed) continue;
      if (!node.subscriptions.covers(events[e].topic)) continue;
      ++eligible;
      const auto& at = node.delivered_at[e];
      if (at.has_value() && *at <= deadline) ++reached;
    }
    // Hierarchical workloads can publish events no drawn subscription
    // covers; they have no reception probability and are skipped.
    if (eligible == 0) continue;
    total += static_cast<double>(reached) / static_cast<double>(eligible);
    ++counted_events;
  }
  return counted_events == 0
             ? 0.0
             : total / static_cast<double>(counted_events);
}

double RunResult::reliability() const {
  if (events.empty() && aggregates.has_value()) {
    return aggregates->reliability();
  }
  return events.empty() ? 0.0 : reliability_within(events.front().validity);
}

std::size_t RunResult::subscriber_count() const {
  return static_cast<std::size_t>(std::count_if(
      nodes.begin(), nodes.end(),
      [](const NodeOutcome& n) { return n.subscribed; }));
}

namespace {
double mean_over_nodes(const std::vector<NodeOutcome>& nodes,
                       double (*extract)(const NodeOutcome&)) {
  if (nodes.empty()) return 0.0;
  double total = 0;
  for (const NodeOutcome& node : nodes) total += extract(node);
  return total / static_cast<double>(nodes.size());
}
}  // namespace

double RunResult::mean_bytes_sent_per_node() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return static_cast<double>(n.traffic.bytes_sent);
  });
}
double RunResult::mean_events_sent_per_node() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return static_cast<double>(n.events_sent);
  });
}
double RunResult::mean_duplicates_per_node() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return static_cast<double>(n.duplicates);
  });
}
double RunResult::mean_parasites_per_node() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return static_cast<double>(n.parasites);
  });
}
double RunResult::mean_gc_evictions_per_node() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return static_cast<double>(n.gc_evictions);
  });
}

double RunResult::mean_joules_per_node() const {
  return mean_over_nodes(nodes,
                         [](const NodeOutcome& n) { return n.energy_spent_j; });
}

std::size_t RunResult::delivered_count() const {
  if (events.empty() && aggregates.has_value()) {
    return aggregates->delivered_count();
  }
  std::size_t count = 0;
  for (const NodeOutcome& node : nodes) {
    for (const auto& at : node.delivered_at) {
      if (at.has_value()) ++count;
    }
  }
  return count;
}

double RunResult::joules_per_delivered_event() const {
  double total = 0;
  for (const NodeOutcome& node : nodes) total += node.energy_spent_total_j;
  return total / static_cast<double>(std::max<std::size_t>(
                     delivered_count(), 1));
}

double RunResult::depleted_fraction() const {
  return mean_over_nodes(nodes, [](const NodeOutcome& n) {
    return n.died_of_depletion ? 1.0 : 0.0;
  });
}

double RunResult::survivor_fraction() const {
  return 1.0 - depleted_fraction();
}

double RunResult::first_depletion_s() const {
  SimTime first = run_end;
  for (const NodeOutcome& node : nodes) {
    if (node.depleted_at.has_value()) first = std::min(first, *node.depleted_at);
  }
  return first.seconds();
}

std::vector<double> RunResult::delivery_latencies_s() const {
  std::vector<double> latencies;
  for (const NodeOutcome& node : nodes) {
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (node.delivered_at[e].has_value()) {
        latencies.push_back(
            (*node.delivered_at[e] - events[e].published_at).seconds());
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

double RunResult::mean_delivery_latency_s() const {
  if (events.empty() && aggregates.has_value()) {
    return aggregates->mean_delivery_latency_s();
  }
  // Exact integer-microsecond sum: addition order cannot matter, which is
  // what makes the streamed fold (delivery order) bit-equal to this
  // node-major walk.
  std::int64_t total_us = 0;
  std::uint64_t count = 0;
  for (const NodeOutcome& node : nodes) {
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (node.delivered_at[e].has_value()) {
        total_us += (*node.delivered_at[e] - events[e].published_at).us();
        ++count;
      }
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(total_us) / static_cast<double>(count) / 1e6;
}

RunResult run_experiment(const ExperimentConfig& config) {
  FRUGAL_EXPECT(config.node_count > 0);
  FRUGAL_EXPECT(config.interest_fraction >= 0 &&
                config.interest_fraction <= 1);
  FRUGAL_EXPECT(config.event_count > 0);
  FRUGAL_EXPECT(config.event_validity.us() > 0);

  // Resolve the protocol by registered name before any state is built:
  // an unknown name or an undeclared knob key aborts with a listing.
  protocol::register_builtin_protocols();
  const protocol::ProtocolSpec& proto =
      protocol::require_protocol(config.protocol);
  protocol::validate_params(proto, config);

  telemetry::RunTelemetry* const telemetry = config.telemetry;
  const bool bounded = telemetry != nullptr && telemetry->bounded();
  // A bounded hub never materializes the per-event records the trace
  // assembly reads from; the combination cannot work.
  FRUGAL_EXPECT(!(bounded && config.trace != nullptr));

  // The outermost profile scope: everything not claimed by an inner scope
  // (scheduler tasks, medium work, telemetry folds, collection) lands here.
  sim::ProfileScope run_profile{config.profiler, "experiment.orchestrate"};

  sim::Simulator simulator{config.seed};
  simulator.scheduler().set_profiler(config.profiler);
  auto mobility = build_mobility(config.mobility, config.node_count,
                                 simulator.stream("mobility"));
  net::Medium medium{simulator.scheduler(), *mobility, config.medium,
                     simulator.stream("mac-jitter")};

  // Optional radio energy accounting (energy/energy.hpp): meter the radio's
  // power states off the medium's airtime reports and, with a finite
  // battery, kill depleted nodes through the crash machinery. Unset runs
  // the exact pre-energy code path — no listener, no extra events.
  std::vector<trace::TraceRecord> lifecycle_records;
  std::unique_ptr<energy::EnergyModel> energy_model;
  std::unique_ptr<sim::PeriodicTask> battery_sampler;
  std::vector<std::unique_ptr<sim::PeriodicTask>> duty_tasks;
  if (config.energy.has_value()) {
    energy_model = std::make_unique<energy::EnergyModel>(config.node_count,
                                                         *config.energy);
    medium.set_listener(energy_model.get());
    energy_model->set_depletion_callback([&](NodeId id, SimTime) {
      // The churn machinery is the kill switch: a dead radio neither sends
      // nor overhears. The node keeps its tables — they just stop
      // mattering. A radio that is already dark (churn blackout, or the
      // very crash whose accounting discovered this crossing) needs no
      // flip and no second kNodeDown record; the recovery guard below
      // keeps it dark forever. The exact crossing instant lives in
      // NodeOutcome::depleted_at.
      if (!medium.is_up(id)) return;
      medium.set_up(id, false);
      if (config.trace != nullptr) {
        lifecycle_records.push_back(
            {simulator.now(), trace::TraceKind::kNodeDown, id, {}, {}});
      }
    });
    if (energy::any_finite_battery(*config.energy)) {
      // Sample batteries so a depleted radio goes dark within a bounded
      // delay even while completely silent.
      battery_sampler = std::make_unique<sim::PeriodicTask>(
          simulator.scheduler(), config.energy->sample_period,
          [&] { energy_model->advance_all(simulator.now()); });
      battery_sampler->start(config.energy->sample_period);
    }
    if (config.energy->sleep_fraction > 0) {
      // Duty cycling: each round's tail is spent in power-save sleep, with
      // rounds staggered per node so the network never dozes in lockstep.
      const SimDuration period = config.energy->duty_period;
      const SimDuration awake =
          period * (1.0 - config.energy->sleep_fraction);
      const SimDuration asleep = period - awake;
      duty_tasks.reserve(config.node_count);
      for (NodeId id = 0; id < config.node_count; ++id) {
        auto task = std::make_unique<sim::PeriodicTask>(
            simulator.scheduler(), period,
            [&medium, &simulator, &duty_tasks,
             model = energy_model.get(), id, asleep] {
              if (model->depleted(id)) {
                // A dead radio needs no duty cycle; stop generating
                // sleep/wake events for the rest of the run.
                duty_tasks[id]->stop();
                return;
              }
              medium.set_sleeping(id, true);
              simulator.scheduler().schedule_after(
                  asleep, [&medium, id] { medium.set_sleeping(id, false); });
            });
        task->start(awake + period * static_cast<std::int64_t>(id) /
                                static_cast<std::int64_t>(config.node_count));
        duty_tasks.push_back(std::move(task));
      }
    }
  }

  // Telemetry observes the same radio-activity stream the energy model
  // does; with both attached the tee forwards energy-first so accounting
  // settles before observation reads it.
  telemetry::RadioActivityTee radio_tee{nullptr, nullptr};
  if (telemetry != nullptr) {
    if (energy_model != nullptr) {
      radio_tee = telemetry::RadioActivityTee{energy_model.get(), telemetry};
      medium.set_listener(&radio_tee);
    } else {
      medium.set_listener(telemetry);
    }
  }

  // Draw subscribers: a seeded shuffle, first k nodes subscribe.
  Rng workload = simulator.stream("workload");
  std::vector<NodeId> order(config.node_count);
  std::iota(order.begin(), order.end(), NodeId{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[workload.uniform_u64(i)]);
  }
  const auto subscriber_count = static_cast<std::size_t>(
      std::llround(config.interest_fraction *
                   static_cast<double>(config.node_count)));
  std::vector<bool> subscribed(config.node_count, false);
  for (std::size_t i = 0; i < subscriber_count; ++i) {
    subscribed[order[i]] = true;
  }

  // The workload's topics: the paper's flat pair (everyone subscribes
  // ".news", events publish on ".news.local") or, when topic_workload is
  // set, per-node draws over a synthetic hierarchy. All extra draws happen
  // after the subscriber shuffle on the same stream, so flat runs consume
  // exactly the pre-hierarchy random sequence (golden traces unchanged).
  std::vector<topics::SubscriptionSet> node_subscriptions(config.node_count);
  // Events reference topics by pool index so telemetry can cache per-topic
  // eligible counts; flat runs use a one-entry pool.
  std::vector<topics::Topic> topic_pool{topics::Topic::parse(".news.local")};
  std::vector<std::uint32_t> event_topic_index(config.event_count, 0);
  if (!config.topic_workload.has_value()) {
    const topics::Topic subscription = topics::Topic::parse(".news");
    for (NodeId id = 0; id < config.node_count; ++id) {
      if (subscribed[id]) node_subscriptions[id].add(subscription);
    }
  } else {
    const TopicHierarchyWorkload& workload_spec = *config.topic_workload;
    FRUGAL_EXPECT(workload_spec.depth >= 1);
    FRUGAL_EXPECT(workload_spec.branching >= 1);
    FRUGAL_EXPECT(workload_spec.zipf_s >= 0);
    FRUGAL_EXPECT(workload_spec.broad_fraction >= 0 &&
                  workload_spec.broad_fraction <= 1);
    FRUGAL_EXPECT(workload_spec.subscriptions_per_node >= 1);

    // The complete branching-ary tree of `depth` levels under ".t".
    const topics::Topic root = topics::Topic::parse(".t");
    const std::vector<topics::Topic> branches =  // depth-1 (broad subs)
        topics::complete_tree_level(root, workload_spec.branching, 1);
    const std::vector<topics::Topic> leaves = topics::complete_tree_level(
        root, workload_spec.branching, workload_spec.depth);
    FRUGAL_EXPECT(leaves.size() <= 65536);  // b^depth must stay sane

    // Zipf popularity over the depth-first leaf order.
    std::vector<double> popularity(leaves.size());
    for (std::size_t rank = 0; rank < leaves.size(); ++rank) {
      popularity[rank] =
          std::pow(static_cast<double>(rank + 1), -workload_spec.zipf_s);
    }

    for (NodeId id = 0; id < config.node_count; ++id) {
      if (!subscribed[id]) continue;
      for (std::uint32_t draw = 0;
           draw < workload_spec.subscriptions_per_node; ++draw) {
        const bool broad = workload.bernoulli(workload_spec.broad_fraction);
        const auto& pool = broad ? branches : leaves;
        node_subscriptions[id].add(
            pool[workload.uniform_u64(pool.size())]);
      }
    }
    for (std::uint32_t i = 0; i < config.event_count; ++i) {
      event_topic_index[i] =
          static_cast<std::uint32_t>(workload.weighted_index(popularity));
    }
    topic_pool = leaves;
  }

  // Build protocol nodes through the registered module's factory. The
  // context exposes only narrow seams: per-node speed (the heartbeat
  // tachometer), per-node remaining charge fraction (present only with a
  // finite battery), and named RNG streams.
  protocol::BuildContext build_context{
      simulator.scheduler(),
      medium,
      config,
      [model = mobility.get(), sched = &simulator.scheduler()](NodeId id) {
        return model->speed(id, sched->now());
      },
      energy_model != nullptr && energy::any_finite_battery(*config.energy)
          ? std::function<double(NodeId)>(
                [model = energy_model.get(),
                 sched = &simulator.scheduler()](NodeId id) {
                  return model->charge_fraction_at(id, sched->now());
                })
          : nullptr,
      [&simulator](std::string_view name, std::uint64_t index) {
        return simulator.stream(name, index);
      }};
  telemetry::DisseminationTracer* tracer = config.dissem_tracer;
  std::vector<std::unique_ptr<ProtocolNode>> nodes;
  nodes.reserve(config.node_count);
  for (NodeId id = 0; id < config.node_count; ++id) {
    nodes.push_back(proto.make_node(id, build_context));
    FRUGAL_ENSURE(nodes.back() != nullptr);
    for (const topics::Topic& topic : node_subscriptions[id].topics()) {
      nodes.back()->subscribe(topic);
    }
    if (telemetry != nullptr || tracer != nullptr) {
      ProtocolNode* node = nodes.back().get();
      node->set_delivery_callback(
          [telemetry, tracer, id](const Event& event, SimTime at) {
            if (telemetry != nullptr) telemetry->on_delivery(id, event, at);
            if (tracer != nullptr) tracer->on_delivery(id, event, at);
          });
      node->set_gc_callback(
          [telemetry, tracer, id](EventId victim, SimTime at) {
            if (telemetry != nullptr) telemetry->on_gc_eviction(id, at);
            if (tracer != nullptr) tracer->on_gc_eviction(id, victim, at);
          });
      if (tracer != nullptr) node->set_phase_annotator(tracer);
      if (telemetry != nullptr && bounded) {
        // Without per-event records nobody reads delivery times post-run;
        // let nodes drop records of long-expired events so the delivery
        // maps stay bounded by the validity window. The slack dwarfs any
        // airtime + defer chain, keeping the duplicate checks exact.
        node->enable_delivery_history_pruning(SimDuration::from_seconds(30.0));
      }
    }
  }
  if (tracer != nullptr) medium.set_frame_listener(tracer);

  // The publisher set: the configured (or default-drawn) first publisher,
  // then further processes in the seeded shuffle order. Events round-robin
  // across it; count 1 reproduces the original single-publisher workload.
  FRUGAL_EXPECT(config.publisher_count >= 1);
  FRUGAL_EXPECT(config.publisher_count <= config.node_count);
  const NodeId publisher =
      config.publisher.value_or(subscriber_count > 0 ? order[0] : NodeId{0});
  FRUGAL_EXPECT(publisher < config.node_count);
  std::vector<NodeId> publishers{publisher};
  for (const NodeId candidate : order) {
    if (publishers.size() >= config.publisher_count) break;
    if (candidate != publisher) publishers.push_back(candidate);
  }
  FRUGAL_ENSURE(publishers.size() == config.publisher_count);

  // Schedule the workload: event i at warmup + i * spacing, published by
  // publishers[i % k]. Each node numbers its own publications, so event i
  // carries the publishing node's local sequence number. The publications
  // form a chain (each schedules its successor) so a long workload holds
  // O(1) pending tasks instead of O(event_count); reserving the whole
  // sequence block up front keeps every task's (when, seq) key — and thus
  // the global pop order — identical to the old schedule-everything loop.
  std::vector<PublishedEventRecord> records(bounded ? 0 : config.event_count);
  std::vector<std::uint32_t> next_seq_of(publishers.size(), 0);
  const std::uint64_t seq_base =
      simulator.scheduler().reserve_sequence_block(config.event_count);
  std::function<void(std::uint32_t)> publish_event = [&](std::uint32_t i) {
    if (i + 1 < config.event_count) {
      const SimTime next_at =
          SimTime::zero() + config.warmup +
          config.publish_spacing * static_cast<std::int64_t>(i + 1);
      simulator.scheduler().schedule_at_with_sequence(
          next_at, seq_base + i + 1,
          [&publish_event, i] { publish_event(i + 1); });
    }
    const std::size_t slot = i % publishers.size();
    const NodeId publishing_node = publishers[slot];
    const std::uint32_t seq = next_seq_of[slot]++;
    Event event;
    event.topic = topic_pool[event_topic_index[i]];
    event.validity = config.event_validity;
    event.wire_bytes = config.event_bytes;
    if (telemetry != nullptr) {
      // Before publish(): the node self-delivers synchronously, and the hub
      // must know the event by then.
      telemetry->on_publish(i, EventId{publishing_node, seq}, simulator.now(),
                            event_topic_index[i]);
    }
    if (tracer != nullptr) {
      // Same ordering constraint: the publisher's synchronous self-delivery
      // must find the event already live in the tracer.
      Event traced = event;
      traced.id = EventId{publishing_node, seq};
      traced.published_at = simulator.now();
      tracer->on_publish(traced, simulator.now());
    }
    nodes[publishing_node]->publish(event);
    // publish() assigned the id; record it for result extraction.
    if (!bounded) {
      records[i] = PublishedEventRecord{EventId{publishing_node, seq},
                                        simulator.now(), config.event_validity,
                                        topic_pool[event_topic_index[i]]};
    }
  };
  simulator.scheduler().schedule_at_with_sequence(
      SimTime::zero() + config.warmup, seq_base,
      [&publish_event] { publish_event(0); });

  // Snapshot traffic and frugality counters when measurement starts (the
  // paper's numbers cover the dissemination window, not the warm-up).
  std::vector<MetricsSnapshot> baseline(config.node_count);
  simulator.scheduler().schedule_at(SimTime::zero() + config.warmup, [&] {
    if (energy_model != nullptr) energy_model->advance_all(simulator.now());
    for (NodeId id = 0; id < config.node_count; ++id) {
      const DeliveryMetrics& m = nodes[id]->metrics();
      baseline[id] = MetricsSnapshot{
          medium.counters(id).bytes_sent, m.events_sent, m.duplicates,
          m.parasites, m.gc_evictions,
          energy_model != nullptr ? energy_model->spent_j(id) : 0.0,
          energy_model != nullptr ? energy_model->time_asleep(id).seconds()
                                  : 0.0};
      if (energy_model != nullptr) {
        using energy::RadioState;
        baseline[id].tx_j =
            energy_model->spent_in_state_j(id, RadioState::kTx);
        baseline[id].rx_j =
            energy_model->spent_in_state_j(id, RadioState::kRx);
        baseline[id].idle_j =
            energy_model->spent_in_state_j(id, RadioState::kIdle);
        baseline[id].sleep_j =
            energy_model->spent_in_state_j(id, RadioState::kSleep);
      }
    }
  });

  const SimTime last_publish =
      SimTime::zero() + config.warmup +
      config.publish_spacing * static_cast<std::int64_t>(config.event_count - 1);
  const SimTime run_end = last_publish + config.event_validity;

  if (telemetry != nullptr) {
    telemetry::RunBinding binding;
    binding.node_count = config.node_count;
    binding.event_count = config.event_count;
    binding.topic_count = topic_pool.size();
    binding.publishers = publishers;
    binding.run_validity = config.event_validity;
    binding.run_end = run_end;
    // These borrow the experiment-local tables; end_run() runs before the
    // collection phase moves them into the result.
    binding.node_eligible = [&subscribed, &node_subscriptions](
                                NodeId id, const Event& event) {
      return subscribed[id] && node_subscriptions[id].covers(event.topic);
    };
    binding.eligible_count = [&subscribed, &node_subscriptions,
                              &topic_pool](std::uint32_t topic_index) {
      std::uint32_t count = 0;
      for (NodeId id = 0; id < node_subscriptions.size(); ++id) {
        if (subscribed[id] &&
            node_subscriptions[id].covers(topic_pool[topic_index])) {
          ++count;
        }
      }
      return count;
    };
    if (energy_model != nullptr) {
      binding.total_joules_at = [model = energy_model.get()](SimTime t) {
        double total = 0.0;
        for (NodeId id = 0; id < model->node_count(); ++id) {
          total += model->spent_j_at(id, t);
        }
        return total;
      };
    }
    binding.profiler = config.profiler;
    telemetry->begin_run(std::move(binding));
  }

  if (tracer != nullptr) {
    telemetry::DisseminationTracer::Binding binding;
    binding.node_count = config.node_count;
    // Borrows the same experiment-local tables as the hub's binding;
    // tracer->end_run() likewise runs before collection moves them.
    binding.node_eligible = [&subscribed, &node_subscriptions](
                                NodeId id, const Event& event) {
      return subscribed[id] && node_subscriptions[id].covers(event.topic);
    };
    tracer->begin_run(std::move(binding));
    if (telemetry != nullptr) {
      // Stitch flow events onto the hub's Perfetto tracks (null when the
      // hub was not asked for a Perfetto artifact — flows simply off).
      tracer->set_perfetto(telemetry->perfetto_writer());
    }
  }

  // Churn: pre-generate each node's crash/recovery timeline (Poisson crash
  // arrivals, uniform downtime) and schedule radio-down/up flips.
  if (config.churn.crashes_per_node_per_minute > 0) {
    FRUGAL_EXPECT(config.churn.downtime_min <= config.churn.downtime_max);
    const double lambda_per_s =
        config.churn.crashes_per_node_per_minute / 60.0;
    Rng churn_root = simulator.stream("churn");
    for (NodeId id = 0; id < config.node_count; ++id) {
      Rng rng = churn_root.split(id);
      SimTime t = SimTime::zero();
      for (;;) {
        const double gap_s =
            -std::log(1.0 - rng.uniform()) / lambda_per_s;
        t += SimDuration::from_seconds(gap_s);
        if (t >= run_end) break;
        const SimDuration down = SimDuration::from_seconds(
            rng.uniform(config.churn.downtime_min.seconds(),
                        config.churn.downtime_max.seconds()));
        // Record the crash only if the flip happens: a node that has
        // meanwhile died of depletion is already (and permanently) down.
        // Without an energy model the radio is always up here — the
        // per-node timeline never overlaps its own downtimes.
        simulator.scheduler().schedule_at(t, [&, id, down_at = t] {
          if (!medium.is_up(id)) return;
          medium.set_up(id, false);
          if (config.trace != nullptr) {
            lifecycle_records.push_back(
                {down_at, trace::TraceKind::kNodeDown, id, {}, {}});
          }
        });
        if (t + down < run_end) {
          simulator.scheduler().schedule_at(
              t + down, [&, model = energy_model.get(), id, up_at = t + down] {
                // A battery death is forever: churn recovery must not
                // resurrect a depleted radio (and leaves no trace record).
                if (model != nullptr && model->depleted(id)) return;
                medium.set_up(id, true);
                if (config.trace != nullptr) {
                  lifecycle_records.push_back(
                      {up_at, trace::TraceKind::kNodeUp, id, {}, {}});
                }
              });
        }
        t += down;
      }
    }
  }

  simulator.run_until(run_end);
  if (energy_model != nullptr) energy_model->advance_all(run_end);
  // Drain the hub before collection: its binding borrows tables the
  // collection phase moves out. The tracer drains first — its retirement
  // rows must not observe the hub's Perfetto writer after finalization.
  if (tracer != nullptr) tracer->end_run(run_end);
  if (telemetry != nullptr) telemetry->end_run(run_end);

  // Collect results.
  sim::ProfileScope collect_profile{config.profiler, "experiment.collect"};
  RunResult result;
  result.events = std::move(records);
  result.publisher = publisher;
  result.publishers = std::move(publishers);
  result.run_end = run_end;
  result.nodes.resize(config.node_count);
  for (NodeId id = 0; id < config.node_count; ++id) {
    NodeOutcome& outcome = result.nodes[id];
    outcome.subscribed = subscribed[id];
    outcome.subscriptions = std::move(node_subscriptions[id]);
    const net::TrafficCounters& traffic = medium.counters(id);
    outcome.traffic = traffic;
    outcome.traffic.bytes_sent = traffic.bytes_sent - baseline[id].bytes_sent;
    const DeliveryMetrics& m = nodes[id]->metrics();
    outcome.events_sent = m.events_sent - baseline[id].events_sent;
    outcome.duplicates = m.duplicates - baseline[id].duplicates;
    outcome.parasites = m.parasites - baseline[id].parasites;
    outcome.gc_evictions = m.gc_evictions - baseline[id].gc_evictions;
    if (energy_model != nullptr) {
      using energy::RadioState;
      outcome.energy_spent_total_j = energy_model->spent_j(id);
      outcome.energy_spent_j =
          outcome.energy_spent_total_j - baseline[id].energy_j;
      outcome.energy_tx_j =
          energy_model->spent_in_state_j(id, RadioState::kTx) -
          baseline[id].tx_j;
      outcome.energy_rx_j =
          energy_model->spent_in_state_j(id, RadioState::kRx) -
          baseline[id].rx_j;
      outcome.energy_idle_j =
          energy_model->spent_in_state_j(id, RadioState::kIdle) -
          baseline[id].idle_j;
      outcome.energy_sleep_j =
          energy_model->spent_in_state_j(id, RadioState::kSleep) -
          baseline[id].sleep_j;
      outcome.time_asleep_s =
          energy_model->time_asleep(id).seconds() - baseline[id].asleep_s;
      outcome.died_of_depletion = energy_model->depleted(id);
      outcome.depleted_at = energy_model->depleted_at(id);
    }
    outcome.delivered_at.resize(result.events.size());
    for (std::size_t e = 0; e < result.events.size(); ++e) {
      const DeliveryRecord* record = m.deliveries.find(result.events[e].id);
      if (record != nullptr) outcome.delivered_at[e] = record->at;
    }
  }
  if (telemetry != nullptr) result.aggregates = telemetry->aggregates();
  if (tracer != nullptr) result.dissem = tracer->stats();

  if (config.trace != nullptr) {
    // Assemble the run's records in (time, kind, node) order. Deliveries are
    // only observable post-run from the metrics maps, so everything is
    // gathered here and sorted rather than recorded live.
    std::vector<trace::TraceRecord> all = std::move(lifecycle_records);
    for (const PublishedEventRecord& event : result.events) {
      all.push_back({event.published_at, trace::TraceKind::kPublish,
                     event.id.publisher, event.id, {}});
    }
    for (NodeId id = 0; id < config.node_count; ++id) {
      const NodeOutcome& outcome = result.nodes[id];
      for (std::size_t e = 0; e < result.events.size(); ++e) {
        if (outcome.delivered_at[e].has_value()) {
          all.push_back({*outcome.delivered_at[e], trace::TraceKind::kDeliver,
                         id, result.events[e].id, {}});
        }
      }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const trace::TraceRecord& a,
                        const trace::TraceRecord& b) {
                       return std::tie(a.at, a.kind, a.node) <
                              std::tie(b.at, b.kind, b.node);
                     });
    for (const trace::TraceRecord& record : all) {
      switch (record.kind) {
        case trace::TraceKind::kPublish:
          config.trace->publish(record.at, record.node, *record.event);
          break;
        case trace::TraceKind::kDeliver:
          config.trace->deliver(record.at, record.node, *record.event);
          break;
        case trace::TraceKind::kNodeDown:
          config.trace->node_down(record.at, record.node);
          break;
        case trace::TraceKind::kNodeUp:
          config.trace->node_up(record.at, record.node);
          break;
        case trace::TraceKind::kPosition:
          break;
      }
    }
  }
  return result;
}

}  // namespace frugal::core
