// The three flooding baselines of the evaluation (paper §5.2, "Frugality"):
//
//  (1) Simple flooding          — every second, every process retransmits
//      every valid event it has heard, regardless of anyone's interests.
//  (2) Interests-aware flooding — processes store and retransmit only events
//      they are themselves interested in.
//  (3) Neighbors'-interests flooding — like (2), plus heartbeat-derived
//      neighbor knowledge: an event is transmitted once per currently-known
//      interested neighbor (hence the paper's observation that this variant
//      burns the most bandwidth, >1 MB per process).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/event_table.hpp"
#include "core/messages.hpp"
#include "core/node.hpp"
#include "core/wire.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/subscription_set.hpp"
#include "util/stable_map.hpp"

namespace frugal::core {

enum class FloodingVariant : std::uint8_t {
  kSimple,
  kInterestAware,
  kNeighborInterest,
};

struct FloodingConfig {
  FloodingVariant variant = FloodingVariant::kSimple;
  /// Retransmission period ("an event is sent every second", paper §5.2).
  SimDuration period = SimDuration::from_seconds(1.0);
  /// Heartbeat period for the neighbors'-interests variant.
  SimDuration hb_period = SimDuration::from_seconds(1.0);
  /// Neighbor entries older than this are dropped (variant 3 only).
  SimDuration neighbor_ttl = SimDuration::from_seconds(2.5);
  std::size_t store_capacity = 4096;
};

class FloodingNode final : public ProtocolNode {
 public:
  FloodingNode(NodeId id, sim::Scheduler& scheduler, net::Medium& medium,
               FloodingConfig config);

  [[nodiscard]] NodeId id() const override { return id_; }

  void subscribe(const topics::Topic& topic) override;
  void unsubscribe(const topics::Topic& topic) override;
  void publish(Event event) override;
  void on_frame(const net::Frame& frame) override;

  [[nodiscard]] const DeliveryMetrics& metrics() const override {
    return metrics_;
  }
  void set_delivery_callback(DeliveryCallback callback) override {
    delivery_callback_ = std::move(callback);
  }
  void enable_delivery_history_pruning(SimDuration slack) override {
    prune_slack_ = slack;
  }
  void set_phase_annotator(PhaseAnnotator* annotator) override {
    annotator_ = annotator;
  }

  [[nodiscard]] const topics::SubscriptionSet& subscriptions() const {
    return subscriptions_;
  }
  [[nodiscard]] std::size_t stored_event_count() const {
    return store_.size();
  }

 private:
  struct Neighbor {
    topics::SubscriptionSet subscriptions;
    SimTime heard_at;
  };

  void tick();
  void send_heartbeat();
  void on_heartbeat(const Heartbeat& heartbeat);
  void on_event_bundle(const EventBundle& bundle);
  void maybe_store(const Event& event);
  void transmit_event(const Event& event, DisseminationPhase phase);
  void deliver(const Event& event);

  NodeId id_;
  sim::Scheduler& scheduler_;
  net::Medium& medium_;
  FloodingConfig config_;

  topics::SubscriptionSet subscriptions_;
  det::hash_map<EventId, Event, EventIdHash> store_;
  det::hash_map<NodeId, Neighbor> neighbors_;  // variant 3 only

  sim::PeriodicTask ticker_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_;

  DeliveryMetrics metrics_;
  DeliveryCallback delivery_callback_;
  PhaseAnnotator* annotator_ = nullptr;
  std::optional<SimDuration> prune_slack_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace frugal::core
