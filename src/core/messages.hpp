// The protocol's three message kinds (paper §3/§4):
//   Heartbeat    — neighborhood detection: id, subscriptions, optional speed.
//   EventIdList  — ids of held valid events matching a neighbor's interests.
//   EventBundle  — actual events plus the sender's presumed receivers, so
//                  overhearers learn who (presumably) holds what.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "core/event.hpp"
#include "topics/subscription_set.hpp"
#include "util/types.hpp"

namespace frugal::core {

struct Heartbeat {
  NodeId sender = kInvalidNode;
  topics::SubscriptionSet subscriptions;
  /// Current speed (m/s) when a tachometer is available; optimization only.
  std::optional<double> speed_mps;
};

struct EventIdList {
  NodeId sender = kInvalidNode;
  std::vector<EventId> ids;
};

struct EventBundle {
  NodeId sender = kInvalidNode;
  std::vector<Event> events;
  /// Neighbors the sender believes will receive this bundle; receivers mark
  /// these nodes as (presumably) holding the bundled events.
  std::vector<NodeId> presumed_receivers;
};

using Message = std::variant<Heartbeat, EventIdList, EventBundle>;

}  // namespace frugal::core
