// Events: the unit of dissemination (paper §2).
//
// Every event has a unique identifier (publisher id + per-publisher sequence
// number), belongs to one topic of the hierarchy, and carries a validity
// period after which its content is of no use and it may be garbage
// collected anywhere in the system.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "topics/topic.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::core {

/// Globally unique event identifier. The paper models ids as 128-bit values;
/// our in-memory form is (publisher, seq) and the wire charge is
/// kEventIdWireBytes (see wire.hpp).
struct EventId {
  NodeId publisher = kInvalidNode;
  std::uint32_t seq = 0;

  friend constexpr auto operator<=>(EventId, EventId) = default;
};

struct EventIdHash {
  [[nodiscard]] std::size_t operator()(EventId id) const {
    std::uint64_t x =
        (static_cast<std::uint64_t>(id.publisher) << 32) | id.seq;
    // splitmix64 finalizer
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

struct Event {
  EventId id;
  topics::Topic topic;
  SimTime published_at;
  /// val(e): the validity period, fixed for the event's whole lifetime.
  SimDuration validity;
  /// Total on-air size of the event in bytes (payload plus headers); the
  /// paper's evaluation uses 400-byte events.
  std::uint32_t wire_bytes = 400;
  /// Application payload (examples use it; the evaluation only needs sizes).
  std::string payload;

  [[nodiscard]] SimTime expiry() const { return published_at + validity; }
  [[nodiscard]] bool valid_at(SimTime t) const { return expiry() > t; }
};

}  // namespace frugal::core
