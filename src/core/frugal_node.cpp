#include "core/frugal_node.hpp"

#include <algorithm>
#include <memory>

#include "sim/profiler.hpp"
#include "util/expect.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace frugal::core {

namespace {

SimDuration clamp(SimDuration value, SimDuration lo, SimDuration hi) {
  return std::min(std::max(value, lo), hi);
}

/// The heartbeat upper bound in force right now: the dynamic override when
/// configured (floored at hb_lower so a pathological provider cannot
/// invert the clamp window), else the static hb_upper.
SimDuration effective_hb_upper(const FrugalConfig& config) {
  if (!config.hb_upper_dynamic) return config.hb_upper;
  return std::max(config.hb_upper_dynamic(), config.hb_lower);
}

/// Deterministic per-node phase in [0, period): spreads out the first
/// heartbeat of each process so they do not all fire in the same slot.
SimDuration initial_phase(NodeId id, SimDuration period) {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL ^ id;
  const std::uint64_t h = splitmix64(state);
  return SimDuration::from_us(static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(std::max<std::int64_t>(period.us(), 1))));
}

}  // namespace

FrugalNode::FrugalNode(NodeId id, sim::Scheduler& scheduler,
                       net::Medium& medium, FrugalConfig config,
                       std::function<double()> speed_provider)
    : id_{id},
      scheduler_{scheduler},
      medium_{medium},
      config_{config},
      speed_provider_{std::move(speed_provider)},
      neighborhood_{config.neighborhood_capacity},
      events_{config.event_table_capacity, config.gc_policy},
      // Fig. 4 initializes HBDelay to its default; we additionally clamp it
      // into [hb_lower, hb_upper] up front so a process is discoverable from
      // its first subscription instead of after one 15 s default period.
      hb_delay_{clamp(config.hb_default, config.hb_lower,
                      effective_hb_upper(config))},
      ngc_delay_{hb_delay_ * config.hb2ngc} {
  FRUGAL_EXPECT(config.hb_lower.us() > 0);
  FRUGAL_EXPECT(config.hb_lower <= config.hb_upper);
  FRUGAL_EXPECT(config.x > 0);
  FRUGAL_EXPECT(config.hb2bo > 0);
  FRUGAL_EXPECT(config.hb2ngc > 0);
  medium_.attach(id_, this);
}

FrugalNode::~FrugalNode() {
  // Scheduled lambdas capture `this`; cancel them so a scheduler outliving
  // the node never runs into freed memory.
  backoff_.cancel();
  pending_retrieve_.cancel();
}

// ---------------------------------------------------------------- Figure 5

void FrugalNode::subscribe(const topics::Topic& topic) {
  subscriptions_.add(topic);
  start_tasks();
}

void FrugalNode::unsubscribe(const topics::Topic& topic) {
  // A topic we never subscribed to must be a no-op: falling through on an
  // already-empty subscription set would tear down the armed publisher-side
  // machinery (back-off, deferred retrieve) a pure publisher relies on.
  if (!subscriptions_.remove(topic)) return;
  if (subscriptions_.empty()) {
    stop_tasks();
    // Cancel the armed dissemination work too: a back-off or deferred
    // retrieve left scheduled here would still broadcast bundles after the
    // last unsubscription. (Held valid events may later re-enter
    // dissemination if a *new* interested neighbor is admitted — the same
    // deliberate widening that lets a pure publisher disseminate.)
    backoff_.cancel();
    bo_delay_ = std::nullopt;
    pending_retrieve_.cancel();
    events_to_send_.clear();
  }
}

void FrugalNode::start_tasks() {
  if (heartbeat_ == nullptr) {
    heartbeat_ = std::make_unique<sim::PeriodicTask>(
        scheduler_, hb_delay_, [this] { send_heartbeat(); });
  }
  if (!heartbeat_->running()) {
    heartbeat_->set_period(hb_delay_);
    heartbeat_->start(initial_phase(id_, hb_delay_));
  }
  if (neighborhood_gc_ == nullptr) {
    neighborhood_gc_ = std::make_unique<sim::PeriodicTask>(
        scheduler_, ngc_delay_, [this] { run_neighborhood_gc(); });
  }
  if (!neighborhood_gc_->running()) {
    neighborhood_gc_->set_period(ngc_delay_);
    neighborhood_gc_->start(ngc_delay_);
  }
}

void FrugalNode::stop_tasks() {
  if (heartbeat_) heartbeat_->stop();
  if (neighborhood_gc_) neighborhood_gc_->stop();
}

// ---------------------------------------------------------------- Figure 6

void FrugalNode::send_heartbeat() {
  if (config_.hb_upper_dynamic) {
    // The bound may have drifted (battery drained, speed changed) with no
    // heartbeat received in between; refresh the delays on our own beat.
    compute_hb_delay();
    compute_ngc_delay();
  }
  Heartbeat hb;
  hb.sender = id_;
  hb.subscriptions = subscriptions_;
  if (config_.send_speed_in_heartbeat && speed_provider_) {
    hb.speed_mps = speed_provider_();
  }
  broadcast(Message{std::move(hb)});
}

void FrugalNode::on_heartbeat(const Heartbeat& heartbeat) {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.heartbeat"};
  const SimTime now = scheduler_.now();

  // Admission test: keep only neighbors we share interests with. Subscribers
  // match via subscription overlap; additionally, a process relaying or
  // publishing events keeps neighbors interested in the events it currently
  // holds, so a pure publisher (no subscriptions of its own) can still
  // disseminate — the paper's processes are always subscribers too, so this
  // only widens, never narrows, the paper's test.
  const bool admit = subscriptions_.overlaps(heartbeat.subscriptions) ||
                     events_.has_match(heartbeat.subscriptions, now);

  if (admit) {
    const NeighborEntry* existing = neighborhood_.find(heartbeat.sender);
    const bool is_new = existing == nullptr;
    const bool subscriptions_changed =
        !is_new && !(existing->subscriptions == heartbeat.subscriptions);
    neighborhood_.upsert(heartbeat.sender, heartbeat.subscriptions,
                         heartbeat.speed_mps, now);
    // Merge an id advert that raced ahead of this admitting heartbeat.
    if (const StashedAdvert* stashed = advert_stash_.find(heartbeat.sender)) {
      if (stashed->heard_at + hb_delay_ * 2 >= now) {
        for (EventId event_id : stashed->ids) {
          neighborhood_.record_event(heartbeat.sender, event_id,
                                     known_expiry(event_id));
        }
      }
      advert_stash_.erase(heartbeat.sender);
    }
    // "new neighborEvent": advertise the ids of the valid events we hold
    // matching the neighbor's interests. The paper raises this on detection;
    // we also re-advertise when a known neighbor changed its subscriptions
    // (its interest set, hence the relevant ids, changed).
    if ((is_new || subscriptions_changed) && config_.exchange_event_ids) {
      advertise_events_to(heartbeat.subscriptions);
    }
    // A freshly met neighbor has an empty presumed-received set, so anything
    // we hold that matches its interests is a dissemination opportunity.
    // The check is deferred by one heartbeat period: a subscriber neighbor
    // advertises its held ids within that window (pruning events it already
    // has), so this path only transmits for neighbors that cannot advertise
    // — e.g. toward a pure publisher's audience — or that genuinely lack
    // events.
    if (is_new && !pending_retrieve_.pending()) {
      pending_retrieve_ = scheduler_.schedule_after(
          hb_delay_, [this] { retrieve_events_to_send(); });
    }
  }

  compute_hb_delay();
  compute_ngc_delay();
}

std::optional<SimTime> FrugalNode::known_expiry(EventId id) const {
  // Advertised id lists carry no expiry on the wire; when we hold the event
  // ourselves the table knows it, otherwise the recording stays unbounded
  // (SimTime::max()) and is retired only with the whole neighbor row.
  const StoredEvent* stored = events_.find(id);
  if (stored == nullptr) return std::nullopt;
  return stored->event.expiry();
}

void FrugalNode::advertise_events_to(
    const topics::SubscriptionSet& interests) {
  EventIdList list;
  list.sender = id_;
  list.ids = events_.ids_matching(interests, scheduler_.now());
  // An empty list is still sent: hearing any id list from a new neighbor is
  // what triggers the peer's RETRIEVEEVENTSTOSEND for events *we* lack.
  // For the tracer the two cases are distinct phases: a non-empty list
  // advertises held events, an empty one is a pure retrieve trigger.
  std::vector<EventId> ids = list.ids;
  const DisseminationPhase phase = ids.empty()
                                       ? DisseminationPhase::kRetrieveRequest
                                       : DisseminationPhase::kAdvert;
  const std::uint64_t frame_id = broadcast(Message{std::move(list)});
  if (annotator_ != nullptr) annotator_->annotate(frame_id, id_, phase, ids);
}

void FrugalNode::on_event_ids(const EventIdList& list) {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.event_ids"};
  const SimTime now = scheduler_.now();
  if (!neighborhood_.contains(list.sender)) {
    // Not admitted (yet): the admitting heartbeat may simply not have
    // arrived. Stash the advert; on_heartbeat merges it at admission.
    advert_stash_.erase_if([&](const auto& kv) {
      return kv.second.heard_at + hb_delay_ * 2 < now;
    });
    advert_stash_[list.sender] = StashedAdvert{list.ids, now};
    return;
  }
  neighborhood_.touch(list.sender, now);
  for (EventId id : list.ids) {
    neighborhood_.record_event(list.sender, id, known_expiry(id));
  }
  retrieve_events_to_send();
}

// ---------------------------------------------------------------- Figure 7

void FrugalNode::retrieve_events_to_send() {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.retrieve"};
  const SimTime now = scheduler_.now();
  events_to_send_.clear();
  det::hash_set<EventId, EventIdHash> selected;
  for (const NeighborEntry* neighbor : neighborhood_.entries_by_id()) {
    // The topic index resolves each neighbor's interests in O(matching
    // subtree); the ids come back valid, covered and ascending — the same
    // order the flat scan produced.
    for (EventId id : events_.ids_matching(neighbor->subscriptions, now)) {
      if (neighbor->known_events.contains(id)) continue;
      if (selected.insert(id)) events_to_send_.push_back(id);
    }
  }
  if (events_to_send_.empty()) return;

  if (!config_.use_backoff) {
    on_backoff_expired();
    return;
  }

  const SimDuration delay = compute_bo_delay(events_to_send_.size());
  if (!bo_delay_.has_value()) {
    bo_delay_ = delay;
    backoff_ = scheduler_.schedule_after(delay, [this] {
      on_backoff_expired();
    });
  } else if (delay < *bo_delay_) {
    // COMPUTEBODELAY keeps the minimum of the current and the recomputed
    // delay; rearm the timer with the shorter one.
    bo_delay_ = delay;
    backoff_.cancel();
    backoff_ = scheduler_.schedule_after(delay, [this] {
      on_backoff_expired();
    });
  }
}

// ---------------------------------------------------------------- Figure 8

void FrugalNode::compute_hb_delay() {
  const SimDuration upper = effective_hb_upper(config_);
  if (!config_.adaptive_heartbeat) {
    hb_delay_ = upper;
  } else {
    const std::optional<double> average = neighborhood_.average_speed();
    if (average.has_value() && *average > 1e-3) {
      hb_delay_ = SimDuration::from_seconds(config_.x / *average);
    }
    hb_delay_ = clamp(hb_delay_, config_.hb_lower, upper);
  }
  if (heartbeat_) heartbeat_->set_period(hb_delay_);
}

void FrugalNode::compute_ngc_delay() {
  ngc_delay_ = hb_delay_ * config_.hb2ngc;
  if (neighborhood_gc_) neighborhood_gc_->set_period(ngc_delay_);
}

SimDuration FrugalNode::compute_bo_delay(std::size_t events_to_send) const {
  FRUGAL_EXPECT(events_to_send > 0);
  return hb_delay_ /
         (config_.hb2bo * static_cast<double>(events_to_send));
}

// ---------------------------------------------------------------- Figure 9

void FrugalNode::on_backoff_expired() {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.backoff_send"};
  bo_delay_ = std::nullopt;
  backoff_.cancel();

  // Recompute the events to send: the neighborhood may have changed during
  // the back-off (id lists heard, bundles overheard, validity expirations).
  const SimTime now = scheduler_.now();
  std::vector<Event> bundle;
  det::hash_set<EventId, EventIdHash> selected;
  for (const NeighborEntry* neighbor : neighborhood_.entries_by_id()) {
    for (EventId id : events_.ids_matching(neighbor->subscriptions, now)) {
      if (neighbor->known_events.contains(id)) continue;
      if (selected.insert(id)) {
        bundle.push_back(events_.find(id)->event);
      }
    }
  }
  events_to_send_.clear();
  if (!bundle.empty()) {
    send_bundle(std::move(bundle), DisseminationPhase::kEventPush);
  }
}

void FrugalNode::send_bundle(std::vector<Event> events,
                             DisseminationPhase phase) {
  FRUGAL_EXPECT(!events.empty());
  EventBundle bundle;
  bundle.sender = id_;
  bundle.presumed_receivers = neighborhood_.neighbor_ids();
  bundle.events = std::move(events);

  metrics_.events_sent += bundle.events.size();
  for (const Event& event : bundle.events) {
    for (NodeId neighbor : bundle.presumed_receivers) {
      neighborhood_.record_event(neighbor, event.id, event.expiry());
    }
    events_.increment_forward_count(event.id);
  }
  std::vector<EventId> carried;
  if (annotator_ != nullptr) {
    carried.reserve(bundle.events.size());
    for (const Event& event : bundle.events) carried.push_back(event.id);
  }
  const std::uint64_t frame_id = broadcast(Message{std::move(bundle)});
  if (annotator_ != nullptr) {
    annotator_->annotate(frame_id, id_, phase, carried);
  }
}

void FrugalNode::publish(Event event) {
  const SimTime now = scheduler_.now();
  event.id = EventId{id_, next_seq_++};
  event.published_at = now;
  FRUGAL_EXPECT(event.validity.us() > 0);

  // Broadcast right away when at least one known neighbor is interested in
  // the event's topic (the publication path has no back-off).
  bool interested = false;
  for (const NeighborEntry* neighbor : neighborhood_.entries_by_id()) {
    if (neighbor->subscriptions.covers(event.topic)) {
      interested = true;
      break;
    }
  }
  if (interested) {
    send_bundle({event}, DisseminationPhase::kPublish);
    // send_bundle charged fwd(e) via the table, but the event is not stored
    // yet; re-apply after insertion below.
  }

  if (const auto victim = events_.insert(event, now); victim.has_value()) {
    ++metrics_.gc_evictions;
    if (gc_callback_) gc_callback_(*victim, now);
  }
  if (interested) events_.increment_forward_count(event.id);
  deliver(event);

  // Fig. 9 lines 50-52: a publisher keeps its neighborhood table collected
  // even when it never subscribed (and thus never started the tasks).
  if (neighborhood_gc_ == nullptr || !neighborhood_gc_->running()) {
    if (neighborhood_gc_ == nullptr) {
      neighborhood_gc_ = std::make_unique<sim::PeriodicTask>(
          scheduler_, ngc_delay_, [this] { run_neighborhood_gc(); });
    }
    neighborhood_gc_->set_period(ngc_delay_);
    neighborhood_gc_->start(ngc_delay_);
  }
}

void FrugalNode::on_event_bundle(const EventBundle& bundle) {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.bundle"};
  const SimTime now = scheduler_.now();
  bool interested = false;

  for (const Event& event : bundle.events) {
    // The sender and every presumed receiver now (presumably) hold event.
    neighborhood_.record_event(bundle.sender, event.id, event.expiry());
    for (NodeId presumed : bundle.presumed_receivers) {
      neighborhood_.record_event(presumed, event.id, event.expiry());
    }

    if (!subscriptions_.covers(event.topic)) {
      metrics_.parasites += 1;  // dropped immediately (paper §3 phase 2)
      continue;
    }
    if (events_.contains(event.id)) {
      metrics_.duplicates += 1;
      continue;
    }
    const auto victim = events_.insert(event, now);
    if (victim.has_value()) {
      ++metrics_.gc_evictions;
      if (gc_callback_) gc_callback_(*victim, now);
    }
    if (victim.has_value() && *victim == event.id) {
      // The full table rejected the newcomer (it is the worst GC candidate,
      // e.g. expired on arrival). It cannot be relayed from here, so leave
      // the pending back-off alone — repeated receipts of such an event
      // must not keep deferring a pending transmission.
      deliver(event);
      continue;
    }
    interested = true;
    // A relevant event arrived: cancel the pending back-off; the send set is
    // recomputed below via RETRIEVEEVENTSTOSEND (Fig. 9 line 22).
    backoff_.cancel();
    bo_delay_ = std::nullopt;
    deliver(event);
  }

  if (interested) retrieve_events_to_send();
}

void FrugalNode::deliver(const Event& event) {
  const SimTime now = scheduler_.now();
  // An event can be re-stored after its table entry was collected while the
  // copy kept circulating; the application already saw it, so count it as a
  // duplicate and keep the first delivery time.
  const bool fresh = metrics_.deliveries
                         .try_emplace(event.id,
                                      DeliveryRecord{now, event.expiry()})
                         .inserted;
  if (!fresh) {
    metrics_.duplicates += 1;
    return;
  }
  if (delivery_callback_) delivery_callback_(event, now);
}

// --------------------------------------------------------------- Figure 10

void FrugalNode::run_neighborhood_gc() {
  sim::ProfileScope profile{scheduler_.profiler(), "frugal.ngc"};
  const SimTime now = scheduler_.now();
  neighborhood_.collect(now, ngc_delay_);
  if (prune_slack_.has_value()) metrics_.prune_deliveries(now, *prune_slack_);
}

// ----------------------------------------------------------------- plumbing

void FrugalNode::on_frame(const net::Frame& frame) {
  const auto message =
      std::any_cast<std::shared_ptr<const Message>>(&frame.payload);
  if (message == nullptr || *message == nullptr) return;  // foreign traffic
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Heartbeat>) {
          on_heartbeat(m);
        } else if constexpr (std::is_same_v<T, EventIdList>) {
          on_event_ids(m);
        } else {
          on_event_bundle(m);
        }
      },
      **message);
}

std::uint64_t FrugalNode::broadcast(Message message) {
  const std::uint32_t size = wire_size(message);
  return medium_.broadcast(
      id_, size,
      std::make_shared<const Message>(std::move(message)));
}

}  // namespace frugal::core
