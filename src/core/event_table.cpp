#include "core/event_table.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace frugal::core {

EventTable::EventTable(std::size_t capacity, GcPolicy policy)
    : capacity_{capacity}, policy_{policy} {
  FRUGAL_EXPECT(capacity > 0);
}

std::optional<EventId> EventTable::insert(Event event, SimTime now) {
  FRUGAL_EXPECT(!contains(event.id));
  std::optional<EventId> victim;
  if (full()) {
    victim = pick_victim(event, now);
    if (*victim == event.id) return victim;  // the newcomer lost: not stored
    const StoredEvent* evicted = events_.find(*victim);
    index_.remove(evicted->event.topic,
                  IndexedEvent{*victim, evicted->event.expiry()});
    events_.erase(*victim);
  }
  StoredEvent stored;
  stored.stored_at = now;
  const EventId id = event.id;
  index_.insert(event.topic, IndexedEvent{id, event.expiry()});
  stored.event = std::move(event);
  events_.try_emplace(id, std::move(stored));
  return victim;
}

const StoredEvent* EventTable::find(EventId id) const {
  return events_.find(id);
}

void EventTable::increment_forward_count(EventId id) {
  if (StoredEvent* stored = events_.find(id)) ++stored->forward_count;
}

std::vector<EventId> EventTable::ids_matching(
    const topics::SubscriptionSet& interests, SimTime now) const {
  std::vector<EventId> out;
  for (const topics::Topic& subscription : interests.topics()) {
    index_.for_each_under(subscription, [&](const IndexedEvent& entry) {
      if (entry.expires_at > now) out.push_back(entry.id);
    });
  }
  std::sort(out.begin(), out.end());
  // Subscriptions may cover overlapping subtrees; ids are unique per event.
  if (interests.size() > 1) {
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

bool EventTable::has_match(const topics::SubscriptionSet& interests,
                           SimTime now) const {
  for (const topics::Topic& subscription : interests.topics()) {
    if (index_.any_under(subscription, [&](const IndexedEvent& entry) {
          return entry.expires_at > now;
        })) {
      return true;
    }
  }
  return false;
}

std::vector<const StoredEvent*> EventTable::events_by_id() const {
  std::vector<const StoredEvent*> out;
  out.reserve(events_.size());
  // Ascending-key order; the key is the event id, so no re-sort needed.
  events_.for_each_sorted(
      [&](const EventId&, const StoredEvent& stored) { out.push_back(&stored); });
  return out;
}

std::size_t EventTable::drop_expired(SimTime now) {
  std::vector<EventId> expired;
  events_.for_each_sorted([&](const EventId& id, const StoredEvent& stored) {
    if (!stored.event.valid_at(now)) expired.push_back(id);
  });
  for (const EventId id : expired) {
    const StoredEvent* stored = events_.find(id);
    index_.remove(stored->event.topic, IndexedEvent{id, stored->event.expiry()});
    events_.erase(id);
  }
  return expired.size();
}

EventId EventTable::pick_victim(const Event& incoming, SimTime now) const {
  FRUGAL_EXPECT(!events_.empty());
  // Lower keys are evicted first; expired events sort below everything.
  const auto key = [&](const Event& event, std::uint32_t forward_count,
                       SimTime stored_at) {
    switch (policy_) {
      case GcPolicy::kPaperScore:
        return gc_score(event, forward_count);
      case GcPolicy::kFifo:
        return static_cast<double>(stored_at.us());
      case GcPolicy::kMostForwarded:
        return -static_cast<double>(forward_count);
    }
    return 0.0;
  };

  const StoredEvent* best = nullptr;
  bool best_expired = false;
  double best_key = 0;
  // The winner is a minimum under a total order (expired-first, key, id), so
  // any visit order yields it; ascending ids keep the scan reproducible to
  // read in a debugger too.
  events_.for_each_sorted([&](const EventId& id, const StoredEvent& stored) {
    const bool expired = !stored.event.valid_at(now);
    const double k = key(stored.event, stored.forward_count,
                         stored.stored_at);
    const bool better = [&] {
      if (best == nullptr) return true;
      if (expired != best_expired) return expired;  // expired first
      if (k != best_key) return k < best_key;
      return id < best->event.id;  // deterministic tie-break
    }();
    if (better) {
      best = &stored;
      best_expired = expired;
      best_key = k;
    }
  });

  // The incoming event (fwd = 0, stored now) competes: it is collected
  // instead of the stored victim only when *strictly* worse — in practice
  // when it is expired on arrival, since a fresh event's key is maximal
  // under every policy. On exact ties the incumbent makes way (Equation 1's
  // spirit: the newcomer is the freshest event in the system), which also
  // guarantees publish() can never lose the node's own fresh event.
  const bool incoming_expired = !incoming.valid_at(now);
  const double incoming_key = key(incoming, 0, now);
  if ((incoming_expired && !best_expired) ||
      (incoming_expired == best_expired && incoming_key < best_key)) {
    return incoming.id;
  }
  return best->event.id;
}

}  // namespace frugal::core
