#include "core/event_table.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace frugal::core {

EventTable::EventTable(std::size_t capacity, GcPolicy policy)
    : capacity_{capacity}, policy_{policy} {
  FRUGAL_EXPECT(capacity > 0);
}

std::optional<EventId> EventTable::insert(Event event, SimTime now) {
  FRUGAL_EXPECT(!contains(event.id));
  std::optional<EventId> victim;
  if (full()) {
    victim = pick_victim(now);
    events_.erase(*victim);
  }
  StoredEvent stored;
  stored.stored_at = now;
  const EventId id = event.id;
  stored.event = std::move(event);
  events_.emplace(id, std::move(stored));
  return victim;
}

const StoredEvent* EventTable::find(EventId id) const {
  const auto it = events_.find(id);
  return it != events_.end() ? &it->second : nullptr;
}

void EventTable::increment_forward_count(EventId id) {
  const auto it = events_.find(id);
  if (it != events_.end()) ++it->second.forward_count;
}

std::vector<EventId> EventTable::ids_matching(
    const topics::SubscriptionSet& interests, SimTime now) const {
  std::vector<EventId> out;
  for (const auto& [id, stored] : events_) {
    if (stored.event.valid_at(now) && interests.covers(stored.event.topic)) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<const StoredEvent*> EventTable::events_by_id() const {
  std::vector<const StoredEvent*> out;
  out.reserve(events_.size());
  for (const auto& [id, stored] : events_) out.push_back(&stored);
  std::sort(out.begin(), out.end(),
            [](const StoredEvent* a, const StoredEvent* b) {
              return a->event.id < b->event.id;
            });
  return out;
}

std::size_t EventTable::drop_expired(SimTime now) {
  return std::erase_if(events_, [&](const auto& kv) {
    return !kv.second.event.valid_at(now);
  });
}

topics::TopicTree<EventId> EventTable::topic_tree() const {
  topics::TopicTree<EventId> tree;
  for (const StoredEvent* stored : events_by_id()) {
    tree.insert(stored->event.topic, stored->event.id);
  }
  return tree;
}

EventId EventTable::pick_victim(SimTime now) const {
  FRUGAL_EXPECT(!events_.empty());
  // Lower keys are evicted first; expired events sort below everything.
  const auto key = [&](const StoredEvent& stored) {
    switch (policy_) {
      case GcPolicy::kPaperScore:
        return gc_score(stored.event, stored.forward_count);
      case GcPolicy::kFifo:
        return static_cast<double>(stored.stored_at.us());
      case GcPolicy::kMostForwarded:
        return -static_cast<double>(stored.forward_count);
    }
    return 0.0;
  };
  const StoredEvent* best = nullptr;
  bool best_expired = false;
  double best_key = 0;
  for (const auto& [id, stored] : events_) {
    const bool expired = !stored.event.valid_at(now);
    const double k = key(stored);
    const bool better = [&] {
      if (best == nullptr) return true;
      if (expired != best_expired) return expired;  // expired first
      if (k != best_key) return k < best_key;
      return id < best->event.id;  // deterministic tie-break
    }();
    if (better) {
      best = &stored;
      best_expired = expired;
      best_key = k;
    }
  }
  return best->event.id;
}

}  // namespace frugal::core
