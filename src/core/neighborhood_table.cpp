#include "core/neighborhood_table.hpp"

#include <algorithm>

namespace frugal::core {

bool NeighborhoodTable::upsert(NodeId id,
                               topics::SubscriptionSet subscriptions,
                               std::optional<double> speed_mps, SimTime now) {
  if (NeighborEntry* existing = entries_.find(id)) {
    existing->subscriptions = std::move(subscriptions);
    existing->speed_mps = speed_mps;
    existing->store_time = now;
    return true;
  }
  if (capacity_ != 0 && entries_.size() >= capacity_) return false;
  NeighborEntry entry;
  entry.id = id;
  entry.subscriptions = std::move(subscriptions);
  entry.speed_mps = speed_mps;
  entry.store_time = now;
  entries_.try_emplace(id, std::move(entry));
  return true;
}

void NeighborhoodTable::record_event(NodeId id, EventId event,
                                     std::optional<SimTime> expiry) {
  NeighborEntry* entry = entries_.find(id);
  if (entry == nullptr) return;
  const SimTime bound = expiry.value_or(SimTime::max());
  const auto [slot, fresh] = entry->known_events.try_emplace(event, bound);
  // An exact expiry replaces an unknown (max) one; an event's expiry is a
  // fact of the event, so two exact recordings always agree.
  if (!fresh && bound < *slot) *slot = bound;
}

void NeighborhoodTable::touch(NodeId id, SimTime now) {
  if (NeighborEntry* entry = entries_.find(id)) entry->store_time = now;
}

bool NeighborhoodTable::neighbor_knows(NodeId id, EventId event) const {
  const NeighborEntry* entry = entries_.find(id);
  return entry != nullptr && entry->known_events.contains(event);
}

const NeighborEntry* NeighborhoodTable::find(NodeId id) const {
  return entries_.find(id);
}

std::size_t NeighborhoodTable::collect(SimTime now, SimDuration max_age) {
  const std::size_t removed = entries_.erase_if([&](const auto& kv) {
    return kv.second.store_time + max_age < now;
  });
  // Known-event ids are consulted only for events still valid (expiry > now);
  // once the recorded expiry passes, the entry is dead weight.
  entries_.for_each_sorted([&](NodeId, NeighborEntry& entry) {
    entry.known_events.erase_if(
        [&](const auto& kv) { return kv.second <= now; });
  });
  return removed;
}

std::optional<double> NeighborhoodTable::average_speed() const {
  double total = 0;
  std::size_t reporting = 0;
  // Summed in ascending-id order: the FP rounding of `total`, and hence the
  // adaptive heartbeat period derived from it, must not depend on hash
  // layout.
  entries_.for_each_sorted([&](NodeId, const NeighborEntry& entry) {
    if (entry.speed_mps) {
      total += *entry.speed_mps;
      ++reporting;
    }
  });
  if (reporting == 0) return std::nullopt;
  return total / static_cast<double>(reporting);
}

std::vector<const NeighborEntry*> NeighborhoodTable::entries_by_id() const {
  std::vector<const NeighborEntry*> out;
  out.reserve(entries_.size());
  entries_.for_each_sorted(
      [&](NodeId, const NeighborEntry& entry) { out.push_back(&entry); });
  return out;
}

std::vector<NodeId> NeighborhoodTable::neighbor_ids() const {
  return entries_.sorted_keys();
}

}  // namespace frugal::core
