#include "core/neighborhood_table.hpp"

#include <algorithm>

namespace frugal::core {

bool NeighborhoodTable::upsert(NodeId id,
                               topics::SubscriptionSet subscriptions,
                               std::optional<double> speed_mps, SimTime now) {
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.subscriptions = std::move(subscriptions);
    it->second.speed_mps = speed_mps;
    it->second.store_time = now;
    return true;
  }
  if (capacity_ != 0 && entries_.size() >= capacity_) return false;
  NeighborEntry entry;
  entry.id = id;
  entry.subscriptions = std::move(subscriptions);
  entry.speed_mps = speed_mps;
  entry.store_time = now;
  entries_.emplace(id, std::move(entry));
  return true;
}

void NeighborhoodTable::record_event(NodeId id, EventId event,
                                     std::optional<SimTime> expiry) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const SimTime bound = expiry.value_or(SimTime::max());
  const auto [slot, fresh] = it->second.known_events.emplace(event, bound);
  // An exact expiry replaces an unknown (max) one; an event's expiry is a
  // fact of the event, so two exact recordings always agree.
  if (!fresh && bound < slot->second) slot->second = bound;
}

void NeighborhoodTable::touch(NodeId id, SimTime now) {
  const auto it = entries_.find(id);
  if (it != entries_.end()) it->second.store_time = now;
}

bool NeighborhoodTable::neighbor_knows(NodeId id, EventId event) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second.known_events.contains(event);
}

const NeighborEntry* NeighborhoodTable::find(NodeId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() ? &it->second : nullptr;
}

std::size_t NeighborhoodTable::collect(SimTime now, SimDuration max_age) {
  const std::size_t removed = std::erase_if(entries_, [&](const auto& kv) {
    return kv.second.store_time + max_age < now;
  });
  // Known-event ids are consulted only for events still valid (expiry > now);
  // once the recorded expiry passes, the entry is dead weight.
  for (auto& [id, entry] : entries_) {
    std::erase_if(entry.known_events,
                  [&](const auto& kv) { return kv.second <= now; });
  }
  return removed;
}

std::optional<double> NeighborhoodTable::average_speed() const {
  double total = 0;
  std::size_t reporting = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.speed_mps) {
      total += *entry.speed_mps;
      ++reporting;
    }
  }
  if (reporting == 0) return std::nullopt;
  return total / static_cast<double>(reporting);
}

std::vector<const NeighborEntry*> NeighborhoodTable::entries_by_id() const {
  std::vector<const NeighborEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry* a, const NeighborEntry* b) {
              return a->id < b->id;
            });
  return out;
}

std::vector<NodeId> NeighborhoodTable::neighbor_ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace frugal::core
