#include "core/wire.hpp"

#include <cstring>
#include <limits>
#include <string>

#include "util/expect.hpp"

namespace frugal::core {

std::uint32_t wire_size(const Heartbeat& /*message*/) {
  return kHeartbeatWireBytes;
}

std::uint32_t wire_size(const EventIdList& message) {
  return kMessageHeaderBytes +
         static_cast<std::uint32_t>(message.ids.size()) * kEventIdWireBytes;
}

std::uint32_t wire_size(const EventBundle& message) {
  std::uint32_t total = kMessageHeaderBytes;
  for (const Event& event : message.events) total += event.wire_bytes;
  total += static_cast<std::uint32_t>(message.presumed_receivers.size()) *
           kNeighborIdWireBytes;
  return total;
}

std::uint32_t wire_size(const Message& message) {
  return std::visit([](const auto& m) { return wire_size(m); }, message);
}

namespace {

enum class Tag : std::uint8_t {
  kHeartbeat = 1,
  kEventIdList = 2,
  kEventBundle = 3,
};

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    FRUGAL_EXPECT(s.size() <= std::numeric_limits<std::uint32_t>::max());
    u32(static_cast<std::uint32_t>(s.size()));
    for (char c : s) u8(static_cast<std::uint8_t>(c));
  }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& bytes) : bytes_{bytes} {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s;
    s.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.push_back(static_cast<char>(u8()));
    return s;
  }

 private:
  const std::vector<std::byte>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encode_event(Writer& w, const Event& e) {
  w.u32(e.id.publisher);
  w.u32(e.id.seq);
  w.str(e.topic.to_string());
  w.u64(static_cast<std::uint64_t>(e.published_at.us()));
  w.u64(static_cast<std::uint64_t>(e.validity.us()));
  w.u32(e.wire_bytes);
  w.str(e.payload);
}

std::optional<Event> decode_event(Reader& r) {
  Event e;
  e.id.publisher = r.u32();
  e.id.seq = r.u32();
  const std::string topic = r.str();
  if (!r.ok() || !topics::Topic::valid(topic)) return std::nullopt;
  e.topic = topics::Topic::parse(topic);
  e.published_at = SimTime::from_us(static_cast<std::int64_t>(r.u64()));
  e.validity = SimDuration::from_us(static_cast<std::int64_t>(r.u64()));
  e.wire_bytes = r.u32();
  e.payload = r.str();
  if (!r.ok() || e.validity.is_negative()) return std::nullopt;
  return e;
}

}  // namespace

std::vector<std::byte> encode(const Message& message) {
  Writer w;
  if (const auto* hb = std::get_if<Heartbeat>(&message)) {
    w.u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    w.u32(hb->sender);
    w.u32(static_cast<std::uint32_t>(hb->subscriptions.size()));
    for (const auto& topic : hb->subscriptions.topics()) {
      w.str(topic.to_string());
    }
    w.u8(hb->speed_mps.has_value() ? 1 : 0);
    if (hb->speed_mps) w.f64(*hb->speed_mps);
  } else if (const auto* ids = std::get_if<EventIdList>(&message)) {
    w.u8(static_cast<std::uint8_t>(Tag::kEventIdList));
    w.u32(ids->sender);
    w.u32(static_cast<std::uint32_t>(ids->ids.size()));
    for (EventId id : ids->ids) {
      w.u32(id.publisher);
      w.u32(id.seq);
    }
  } else {
    const auto& bundle = std::get<EventBundle>(message);
    w.u8(static_cast<std::uint8_t>(Tag::kEventBundle));
    w.u32(bundle.sender);
    w.u32(static_cast<std::uint32_t>(bundle.events.size()));
    for (const Event& e : bundle.events) encode_event(w, e);
    w.u32(static_cast<std::uint32_t>(bundle.presumed_receivers.size()));
    for (NodeId n : bundle.presumed_receivers) w.u32(n);
  }
  return w.take();
}

std::optional<Message> decode(const std::vector<std::byte>& bytes) {
  Reader r{bytes};
  const auto tag = r.u8();
  if (!r.ok()) return std::nullopt;

  // Collection lengths are validated against the remaining input implicitly:
  // every element read checks bounds, so an absurd length fails fast instead
  // of allocating.
  switch (static_cast<Tag>(tag)) {
    case Tag::kHeartbeat: {
      Heartbeat hb;
      hb.sender = r.u32();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        const std::string topic = r.str();
        if (!r.ok() || !topics::Topic::valid(topic)) return std::nullopt;
        hb.subscriptions.add(topics::Topic::parse(topic));
      }
      const std::uint8_t has_speed = r.u8();
      if (has_speed > 1) return std::nullopt;
      if (has_speed == 1) hb.speed_mps = r.f64();
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return Message{std::move(hb)};
    }
    case Tag::kEventIdList: {
      EventIdList list;
      list.sender = r.u32();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        EventId id;
        id.publisher = r.u32();
        id.seq = r.u32();
        list.ids.push_back(id);
      }
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return Message{std::move(list)};
    }
    case Tag::kEventBundle: {
      EventBundle bundle;
      bundle.sender = r.u32();
      const std::uint32_t n_events = r.u32();
      for (std::uint32_t i = 0; i < n_events && r.ok(); ++i) {
        auto event = decode_event(r);
        if (!event) return std::nullopt;
        bundle.events.push_back(std::move(*event));
      }
      const std::uint32_t n_receivers = r.u32();
      for (std::uint32_t i = 0; i < n_receivers && r.ok(); ++i) {
        bundle.presumed_receivers.push_back(r.u32());
      }
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return Message{std::move(bundle)};
    }
  }
  return std::nullopt;
}

}  // namespace frugal::core
