#include "core/flooding.hpp"

#include <algorithm>
#include <vector>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace frugal::core {

namespace {
SimDuration phase_for(NodeId id, SimDuration period) {
  std::uint64_t state = 0xD1B54A32D192ED03ULL ^ id;
  const std::uint64_t h = splitmix64(state);
  return SimDuration::from_us(static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(std::max<std::int64_t>(period.us(), 1))));
}
}  // namespace

FloodingNode::FloodingNode(NodeId id, sim::Scheduler& scheduler,
                           net::Medium& medium, FloodingConfig config)
    : id_{id},
      scheduler_{scheduler},
      medium_{medium},
      config_{config},
      ticker_{scheduler, config.period, [this] { tick(); }} {
  FRUGAL_EXPECT(config.period.us() > 0);
  FRUGAL_EXPECT(config.store_capacity > 0);
  medium_.attach(id_, this);
  ticker_.start(phase_for(id_, config_.period));
  if (config_.variant == FloodingVariant::kNeighborInterest) {
    heartbeat_ = std::make_unique<sim::PeriodicTask>(
        scheduler_, config_.hb_period, [this] { send_heartbeat(); });
    heartbeat_->start(phase_for(id_ ^ 0x5555u, config_.hb_period));
  }
}

void FloodingNode::subscribe(const topics::Topic& topic) {
  subscriptions_.add(topic);
}

void FloodingNode::unsubscribe(const topics::Topic& topic) {
  subscriptions_.remove(topic);
}

void FloodingNode::publish(Event event) {
  const SimTime now = scheduler_.now();
  event.id = EventId{id_, next_seq_++};
  event.published_at = now;
  FRUGAL_EXPECT(event.validity.us() > 0);
  maybe_store(event);
  if (subscriptions_.covers(event.topic)) deliver(event);
  // Initial broadcast; the ticker takes over.
  transmit_event(event, DisseminationPhase::kPublish);
}

void FloodingNode::tick() {
  const SimTime now = scheduler_.now();
  store_.erase_if([&](const auto& kv) { return !kv.second.valid_at(now); });
  if (prune_slack_.has_value()) metrics_.prune_deliveries(now, *prune_slack_);
  if (config_.variant == FloodingVariant::kNeighborInterest) {
    neighbors_.erase_if([&](const auto& kv) {
      return kv.second.heard_at + config_.neighbor_ttl < now;
    });
  }

  // Ascending-id order for reproducibility (the store's key is the id).
  std::vector<const Event*> events;
  events.reserve(store_.size());
  store_.for_each_sorted(
      [&](const EventId&, const Event& event) { events.push_back(&event); });

  for (const Event* event : events) {
    transmit_event(*event, DisseminationPhase::kFloodForward);
  }
}

void FloodingNode::transmit_event(const Event& event,
                                  DisseminationPhase phase) {
  const auto send_once = [&] {
    EventBundle bundle;
    bundle.sender = id_;
    bundle.events = {event};
    metrics_.events_sent += 1;
    const std::uint32_t size = wire_size(bundle);
    const std::uint64_t frame_id = medium_.broadcast(
        id_, size, std::make_shared<const Message>(std::move(bundle)));
    if (annotator_ != nullptr) {
      annotator_->annotate(frame_id, id_, phase, {event.id});
    }
  };

  switch (config_.variant) {
    case FloodingVariant::kSimple:
      send_once();
      return;
    case FloodingVariant::kInterestAware:
      // Only a process interested in the event retransmits it. (The store
      // only ever holds such events for this variant, but publish() can put
      // a non-subscribed publisher's own event on the air once.)
      send_once();
      return;
    case FloodingVariant::kNeighborInterest: {
      // One transmission per currently-known interested neighbor: the sender
      // addresses each neighbor separately (no multicast below us), which is
      // what makes this variant the most bandwidth-hungry. Ascending-id
      // order; the frames are identical, so only the *count* is observable,
      // but the jitter draws pair up with neighbors reproducibly this way.
      neighbors_.for_each_sorted([&](NodeId, const Neighbor& neighbor) {
        if (neighbor.subscriptions.covers(event.topic)) send_once();
      });
      return;
    }
  }
}

void FloodingNode::send_heartbeat() {
  Heartbeat hb;
  hb.sender = id_;
  hb.subscriptions = subscriptions_;
  const std::uint32_t size = wire_size(hb);
  medium_.broadcast(id_, size,
                    std::make_shared<const Message>(Message{std::move(hb)}));
}

void FloodingNode::on_heartbeat(const Heartbeat& heartbeat) {
  if (config_.variant != FloodingVariant::kNeighborInterest) return;
  neighbors_[heartbeat.sender] =
      Neighbor{heartbeat.subscriptions, scheduler_.now()};
}

void FloodingNode::maybe_store(const Event& event) {
  if (store_.contains(event.id)) return;
  // Simple flooding stores everything; the interest-aware variants only what
  // the process itself subscribed to — except a publisher always keeps its
  // own events so it can keep retransmitting them.
  const bool keep = config_.variant == FloodingVariant::kSimple ||
                    subscriptions_.covers(event.topic) ||
                    event.id.publisher == id_;
  if (!keep) return;
  if (store_.size() >= config_.store_capacity) return;  // memory full: drop
  store_.emplace(event.id, event);
}

void FloodingNode::on_event_bundle(const EventBundle& bundle) {
  const SimTime now = scheduler_.now();
  for (const Event& event : bundle.events) {
    if (!subscriptions_.covers(event.topic)) {
      metrics_.parasites += 1;  // every parasite reception is counted
      if (event.valid_at(now)) maybe_store(event);  // simple flooding relays
      continue;
    }
    if (metrics_.delivered(event.id)) {
      metrics_.duplicates += 1;
      continue;
    }
    if (!event.valid_at(now)) continue;
    maybe_store(event);
    deliver(event);
  }
}

void FloodingNode::deliver(const Event& event) {
  const SimTime now = scheduler_.now();
  const bool fresh = metrics_.deliveries
                         .try_emplace(event.id,
                                      DeliveryRecord{now, event.expiry()})
                         .inserted;
  if (!fresh) return;
  if (delivery_callback_) delivery_callback_(event, now);
}

void FloodingNode::on_frame(const net::Frame& frame) {
  const auto message =
      std::any_cast<std::shared_ptr<const Message>>(&frame.payload);
  if (message == nullptr || *message == nullptr) return;
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Heartbeat>) {
          on_heartbeat(m);
        } else if constexpr (std::is_same_v<T, EventBundle>) {
          on_event_bundle(m);
        } else {
          // EventIdList: flooding variants do not exchange ids; ignore.
        }
      },
      **message);
}

}  // namespace frugal::core
