// The event table (paper §4.1 Fig. 3, GC in §4.4 Fig. 10 / Equation 1).
//
// Bounded storage for received/published events, each with its forward
// counter (the logical "age"). When an insert finds the table full, one
// victim is collected: an expired event if any exists, otherwise the event
// with the lowest GC score
//
//     gc(e) = val(e) / (fwd(e) + val(e))
//
// so long-lived events that have already been propagated many times make way
// for fresh, rarely-forwarded ones (paper Equation 1; validity is measured in
// seconds). The paper's Fig. 10 pseudo-code inverts the expiry comparison
// (`val(e) > currentTime` selects a *valid* event); we implement the stated
// intent — evict expired events first.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/event.hpp"
#include "topics/subscription_set.hpp"
#include "topics/topic_tree.hpp"
#include "util/time.hpp"

namespace frugal::core {

struct StoredEvent {
  Event event;
  std::uint32_t forward_count = 0;  ///< fwd(e)
  SimTime stored_at;
};

/// GC score of Equation 1; lower scores are collected first.
[[nodiscard]] inline double gc_score(const Event& event,
                                     std::uint32_t forward_count) {
  const double val = event.validity.seconds();
  return val / (static_cast<double>(forward_count) + val);
}

/// Victim-selection policy when the table is full. Expired events are always
/// collected first under every policy; the policy decides among valid ones.
/// kPaperScore is the paper's Equation 1; the others exist for the GC
/// ablation (bench_ablations) and as baselines.
enum class GcPolicy : std::uint8_t {
  kPaperScore,     ///< lowest val/(fwd+val) — the paper's Equation 1
  kFifo,           ///< oldest stored_at
  kMostForwarded,  ///< highest fwd(e), ignoring validity
};

class EventTable {
 public:
  /// `capacity` > 0: maximum number of stored events (the paper's limited
  /// memory). An insert into a full table garbage collects exactly one
  /// victim first.
  explicit EventTable(std::size_t capacity,
                      GcPolicy policy = GcPolicy::kPaperScore);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return events_.size() >= capacity_; }
  [[nodiscard]] bool contains(EventId id) const {
    return events_.contains(id);
  }

  /// Inserts an event, garbage collecting one victim when full. Returns the
  /// id of the collected victim, if any. Inserting an already-present id is
  /// a programming error (callers check contains() first — receiving a known
  /// event counts as a duplicate, not a store).
  std::optional<EventId> insert(Event event, SimTime now);

  [[nodiscard]] const StoredEvent* find(EventId id) const;

  /// Increments fwd(e); no-op when the event was collected meanwhile.
  void increment_forward_count(EventId id);

  /// Ids of stored events that are still valid at `now` and whose topic is
  /// covered by `interests` (GETEVENTSIDS — what we advertise to a neighbor
  /// with those interests).
  [[nodiscard]] std::vector<EventId> ids_matching(
      const topics::SubscriptionSet& interests, SimTime now) const;

  /// All stored events, ascending id order (reproducible iteration).
  [[nodiscard]] std::vector<const StoredEvent*> events_by_id() const;

  /// Drops every expired event (not part of the paper's lazy scheme; used by
  /// tests and the memory-pressure ablation).
  std::size_t drop_expired(SimTime now);

  /// The stored events arranged by the topic hierarchy, as in the paper's
  /// Fig. 3 (introspection for applications and tooling).
  [[nodiscard]] topics::TopicTree<EventId> topic_tree() const;

 private:
  /// Picks the victim per Fig. 10: any expired event first, otherwise by
  /// the configured policy (ties: smaller id, for determinism).
  [[nodiscard]] EventId pick_victim(SimTime now) const;

  std::size_t capacity_;
  GcPolicy policy_;
  std::unordered_map<EventId, StoredEvent, EventIdHash> events_;
};

}  // namespace frugal::core
