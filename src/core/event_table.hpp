// The event table (paper §4.1 Fig. 3, GC in §4.4 Fig. 10 / Equation 1).
//
// Bounded storage for received/published events, each with its forward
// counter (the logical "age"). When an insert finds the table full, one
// victim is collected: an expired event if any exists, otherwise the event
// with the lowest GC score
//
//     gc(e) = val(e) / (fwd(e) + val(e))
//
// so long-lived events that have already been propagated many times make way
// for fresh, rarely-forwarded ones (paper Equation 1; validity is measured in
// seconds). The incoming event competes in the selection (Fig. 3's GC
// collects the globally worst candidate): when the newcomer is *strictly*
// worst — in practice, expired on arrival, since a fresh event's key is
// maximal under every policy — it is not stored at all; exact ties evict
// the incumbent, so a node's own fresh publication is never lost. The
// paper's Fig. 10 pseudo-code inverts the expiry comparison
// (`val(e) > currentTime` selects a *valid* event); we implement the stated
// intent — evict expired events first.
//
// Storage is topic-indexed, as in the paper's Fig. 3 ("according to the
// topic hierarchy"): a persistent TopicTree over the stored ids is
// maintained incrementally on insert/evict/expire, so the covering queries
// (ids_matching, has_match) resolve in O(matching subtree) instead of
// scanning every stored event against every subscription.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/event.hpp"
#include "topics/subscription_set.hpp"
#include "topics/topic_tree.hpp"
#include "util/stable_map.hpp"
#include "util/time.hpp"

namespace frugal::core {

struct StoredEvent {
  Event event;
  std::uint32_t forward_count = 0;  ///< fwd(e)
  SimTime stored_at;
};

/// One topic-index entry: the id plus the event's expiry, denormalized so
/// covering queries filter validity while walking the tree, without a
/// per-id hash lookup.
struct IndexedEvent {
  EventId id;
  SimTime expires_at;

  friend bool operator==(const IndexedEvent&, const IndexedEvent&) = default;
};

/// GC score of Equation 1; lower scores are collected first.
[[nodiscard]] inline double gc_score(const Event& event,
                                     std::uint32_t forward_count) {
  const double val = event.validity.seconds();
  return val / (static_cast<double>(forward_count) + val);
}

/// Victim-selection policy when the table is full. Expired events are always
/// collected first under every policy; the policy decides among valid ones.
/// kPaperScore is the paper's Equation 1; the others exist for the GC
/// ablation (bench_ablations) and as baselines.
enum class GcPolicy : std::uint8_t {
  kPaperScore,     ///< lowest val/(fwd+val) — the paper's Equation 1
  kFifo,           ///< oldest stored_at
  kMostForwarded,  ///< highest fwd(e), ignoring validity
};

class EventTable {
 public:
  /// `capacity` > 0: maximum number of stored events (the paper's limited
  /// memory). An insert into a full table garbage collects exactly one
  /// victim first.
  explicit EventTable(std::size_t capacity,
                      GcPolicy policy = GcPolicy::kPaperScore);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return events_.size() >= capacity_; }
  [[nodiscard]] bool contains(EventId id) const {
    return events_.contains(id);
  }

  /// Inserts an event, garbage collecting one victim when full. The incoming
  /// event competes in victim selection: the returned id is the collected
  /// victim, which may be the incoming event's own id — in that case nothing
  /// was stored. Returns nullopt when the table had room. Inserting an
  /// already-present id is a programming error (callers check contains()
  /// first — receiving a known event counts as a duplicate, not a store).
  std::optional<EventId> insert(Event event, SimTime now);

  [[nodiscard]] const StoredEvent* find(EventId id) const;

  /// Increments fwd(e); no-op when the event was collected meanwhile.
  void increment_forward_count(EventId id);

  /// Ids of stored events that are still valid at `now` and whose topic is
  /// covered by `interests` (GETEVENTSIDS — what we advertise to a neighbor
  /// with those interests). Resolved per subscription over the topic index:
  /// O(matching subtree + log), not O(events x subscriptions). Ascending id
  /// order.
  [[nodiscard]] std::vector<EventId> ids_matching(
      const topics::SubscriptionSet& interests, SimTime now) const;

  /// True when ids_matching(interests, now) would be non-empty; short-
  /// circuits on the first valid covered event (the heartbeat admission
  /// test).
  [[nodiscard]] bool has_match(const topics::SubscriptionSet& interests,
                               SimTime now) const;

  /// All stored events, ascending id order (reproducible iteration).
  [[nodiscard]] std::vector<const StoredEvent*> events_by_id() const;

  /// Drops every expired event (not part of the paper's lazy scheme; used by
  /// tests and the memory-pressure ablation).
  std::size_t drop_expired(SimTime now);

  /// The stored events arranged by the topic hierarchy, as in the paper's
  /// Fig. 3 — the persistent incremental index itself, maintained on every
  /// insert/evict/expire (no rebuild).
  [[nodiscard]] const topics::TopicTree<IndexedEvent>& topic_tree() const {
    return index_;
  }

 private:
  /// Picks the victim per Fig. 10 among the stored events *and* `incoming`
  /// (as if stored at `now` with fwd = 0): any expired event first,
  /// otherwise by the configured policy (stored ties: smaller id, for
  /// determinism; the newcomer only loses when strictly worse).
  [[nodiscard]] EventId pick_victim(const Event& incoming, SimTime now) const;

  std::size_t capacity_;
  GcPolicy policy_;
  det::hash_map<EventId, StoredEvent, EventIdHash> events_;
  /// Stored ids filed under their event's topic; always consistent with
  /// events_ (the class invariant the property tests assert).
  topics::TopicTree<IndexedEvent> index_;
};

}  // namespace frugal::core
