#include "runner/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/pool.hpp"
#include "util/expect.hpp"

namespace frugal::runner {

namespace {

/// Exact round-trip formatting: 17 significant digits reproduce any IEEE
/// double bit-for-bit through strtod, so a merged aggregation consumes the
/// very values the shard computed (%.10g — the sink's display format —
/// would not).
std::string number17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Serialized names land between bare quotes (no escape support on either
/// side); project-controlled identifiers never need more.
const std::string& checked_name(const std::string& name) {
  FRUGAL_EXPECT(name.find_first_of("\"\\\n") == std::string::npos);
  return name;
}

// --- strict cursor-based reader -------------------------------------------
// Both ends of the artifact are this project, so the parser accepts exactly
// the serialized layout and aborts on anything else (shard_test's death
// tests pin that contract).

struct Cursor {
  const char* at;
};

void expect_literal(Cursor& cursor, const char* literal) {
  const std::size_t length = std::strlen(literal);
  FRUGAL_EXPECT(std::strncmp(cursor.at, literal, length) == 0 &&
                "malformed shard artifact");
  cursor.at += length;
}

std::string parse_name(Cursor& cursor) {
  const char* end = cursor.at;
  while (*end != '\0' && *end != '"' && *end != '\\' && *end != '\n') ++end;
  FRUGAL_EXPECT(*end == '"' && "malformed shard artifact");
  std::string name{cursor.at, end};
  cursor.at = end;
  return name;
}

double parse_double(Cursor& cursor) {
  char* end = nullptr;
  const double value = std::strtod(cursor.at, &end);
  FRUGAL_EXPECT(end != cursor.at && "malformed shard artifact");
  cursor.at = end;
  return value;
}

std::uint64_t parse_u64(Cursor& cursor) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(cursor.at, &end, 10);
  FRUGAL_EXPECT(end != cursor.at && *cursor.at != '-' &&
                "malformed shard artifact");
  cursor.at = end;
  return value;
}

int parse_int(Cursor& cursor) {
  const std::uint64_t value = parse_u64(cursor);
  FRUGAL_EXPECT(value <= 1000000);
  return static_cast<int>(value);
}

}  // namespace

ShardArtifact run_sweep_shard(const ScenarioSpec& spec,
                              const SweepOptions& options) {
  // Time-series / Perfetto artifacts describe one simulation and belong to
  // single-box single-job sweeps, not to shard slices.
  FRUGAL_EXPECT(options.timeseries_path.empty() &&
                options.perfetto_path.empty());
  const SweepPlan plan = plan_sweep(spec, options);
  const JobRange range = shard_range(plan.job_count, options.shard);

  ShardArtifact artifact;
  artifact.scenario = spec.name;
  artifact.shard = options.shard;
  artifact.range = range;
  artifact.job_count = plan.job_count;
  artifact.seeds = plan.seeds;
  artifact.seed_base = plan.seed_base;
  artifact.axes = plan.axes;
  artifact.axis_labels.resize(plan.axes.size());
  for (std::size_t a = 0; a < plan.axes.size(); ++a) {
    if (!plan.axes[a].format) continue;
    for (const double value : plan.axes[a].values) {
      artifact.axis_labels[a].push_back(plan.axes[a].format(value));
    }
  }
  for (const MetricSpec& metric : spec.metrics) {
    artifact.metrics.push_back(metric.name);
  }

  // Honor --telemetry in shard mode too: every job streams through a
  // bounded hub, and merge_shards must still reproduce the legacy bytes
  // (telemetry_test pins a 3-shard merge against the single-box CSV).
  std::optional<telemetry::TelemetryConfig> hub_config;
  if (options.telemetry) hub_config = telemetry_config_for(spec, options);
  // Specs with needs_dissem metrics get their per-job tracer in shard mode
  // too (stats-only — the dissem-trace artifact is single-box only, like
  // the time-series/Perfetto paths this mode already ignores), so a merged
  // shard set reproduces the single-box columns byte-for-byte.
  SweepOptions stats_only = options;
  stats_only.dissem_trace_path.clear();
  const std::optional<telemetry::TracerConfig> dissem_config =
      dissem_config_for(spec, stats_only);

  artifact.values.resize(range.size());
  parallel_for(range.begin, range.end, resolve_jobs(options.jobs),
               [&](std::size_t job) {
                 artifact.values[job - range.begin] =
                     run_sweep_job_instrumented(
                         spec, plan, job,
                         hub_config.has_value() ? &*hub_config : nullptr,
                         /*profiler=*/nullptr,
                         dissem_config.has_value() ? &*dissem_config
                                                   : nullptr);
               });
  return artifact;
}

std::string serialize_shard(const ShardArtifact& artifact) {
  FRUGAL_EXPECT(artifact.values.size() == artifact.range.size());
  std::string out = "{\"frugal_shard_artifact\":1,\"scenario\":\"";
  out += checked_name(artifact.scenario);
  out += "\",\"shard\":{\"index\":";
  out += std::to_string(artifact.shard.index);
  out += ",\"count\":";
  out += std::to_string(artifact.shard.count);
  out += "},\"jobs\":{\"begin\":";
  out += std::to_string(artifact.range.begin);
  out += ",\"end\":";
  out += std::to_string(artifact.range.end);
  out += ",\"total\":";
  out += std::to_string(artifact.job_count);
  out += "},\"seeds\":";
  out += std::to_string(artifact.seeds);
  out += ",\"seed_base\":";
  out += std::to_string(artifact.seed_base);
  out += ",\"axes\":[";
  FRUGAL_EXPECT(artifact.axis_labels.empty() ||
                artifact.axis_labels.size() == artifact.axes.size());
  for (std::size_t a = 0; a < artifact.axes.size(); ++a) {
    if (a > 0) out += ',';
    out += "{\"name\":\"";
    out += checked_name(artifact.axes[a].name);
    out += "\",\"values\":[";
    for (std::size_t v = 0; v < artifact.axes[a].values.size(); ++v) {
      if (v > 0) out += ',';
      out += number17(artifact.axes[a].values[v]);
    }
    out += ']';
    if (a < artifact.axis_labels.size() && !artifact.axis_labels[a].empty()) {
      // Labeled axes also round-trip their identity by name: the merge
      // resolves labels back through the spec (registry) and aborts on a
      // label nobody registered.
      FRUGAL_EXPECT(artifact.axis_labels[a].size() ==
                    artifact.axes[a].values.size());
      out += ",\"labels\":[";
      for (std::size_t v = 0; v < artifact.axis_labels[a].size(); ++v) {
        if (v > 0) out += ',';
        out += '"';
        out += checked_name(artifact.axis_labels[a][v]);
        out += '"';
      }
      out += ']';
    }
    out += '}';
  }
  out += "],\"metrics\":[";
  for (std::size_t m = 0; m < artifact.metrics.size(); ++m) {
    if (m > 0) out += ',';
    out += '"';
    out += checked_name(artifact.metrics[m]);
    out += '"';
  }
  out += "]}\n";

  for (std::size_t i = 0; i < artifact.values.size(); ++i) {
    FRUGAL_EXPECT(artifact.values[i].size() == artifact.metrics.size());
    out += "{\"job\":";
    out += std::to_string(artifact.range.begin + i);
    out += ",\"values\":[";
    for (std::size_t m = 0; m < artifact.values[i].size(); ++m) {
      if (m > 0) out += ',';
      out += number17(artifact.values[i][m]);
    }
    out += "]}\n";
  }
  return out;
}

ShardArtifact parse_shard(const std::string& text) {
  Cursor cursor{text.c_str()};
  ShardArtifact artifact;

  expect_literal(cursor, "{\"frugal_shard_artifact\":1,\"scenario\":\"");
  artifact.scenario = parse_name(cursor);
  expect_literal(cursor, "\",\"shard\":{\"index\":");
  artifact.shard.index = parse_int(cursor);
  expect_literal(cursor, ",\"count\":");
  artifact.shard.count = parse_int(cursor);
  expect_literal(cursor, "},\"jobs\":{\"begin\":");
  artifact.range.begin = parse_u64(cursor);
  expect_literal(cursor, ",\"end\":");
  artifact.range.end = parse_u64(cursor);
  expect_literal(cursor, ",\"total\":");
  artifact.job_count = parse_u64(cursor);
  expect_literal(cursor, "},\"seeds\":");
  artifact.seeds = parse_int(cursor);
  expect_literal(cursor, ",\"seed_base\":");
  artifact.seed_base = parse_u64(cursor);
  expect_literal(cursor, ",\"axes\":[");
  while (*cursor.at == '{') {
    Axis axis;
    std::vector<std::string> labels;
    expect_literal(cursor, "{\"name\":\"");
    axis.name = parse_name(cursor);
    expect_literal(cursor, "\",\"values\":[");
    for (;;) {
      axis.values.push_back(parse_double(cursor));
      if (*cursor.at != ',') break;
      ++cursor.at;
    }
    expect_literal(cursor, "]");
    if (std::strncmp(cursor.at, ",\"labels\":[", 11) == 0) {
      expect_literal(cursor, ",\"labels\":[");
      while (*cursor.at == '"') {
        ++cursor.at;
        labels.push_back(parse_name(cursor));
        expect_literal(cursor, "\"");
        if (*cursor.at == ',') ++cursor.at;
      }
      expect_literal(cursor, "]");
      FRUGAL_EXPECT(labels.size() == axis.values.size() &&
                    "malformed shard artifact");
    }
    expect_literal(cursor, "}");
    artifact.axes.push_back(std::move(axis));
    artifact.axis_labels.push_back(std::move(labels));
    if (*cursor.at == ',') ++cursor.at;
  }
  expect_literal(cursor, "],\"metrics\":[");
  while (*cursor.at == '"') {
    ++cursor.at;
    artifact.metrics.push_back(parse_name(cursor));
    expect_literal(cursor, "\"");
    if (*cursor.at == ',') ++cursor.at;
  }
  expect_literal(cursor, "]}\n");

  FRUGAL_EXPECT(artifact.range.begin <= artifact.range.end);
  FRUGAL_EXPECT(artifact.range.end <= artifact.job_count);
  FRUGAL_EXPECT(!artifact.metrics.empty());
  artifact.values.reserve(artifact.range.size());
  for (std::size_t i = 0; i < artifact.range.size(); ++i) {
    expect_literal(cursor, "{\"job\":");
    const std::uint64_t job = parse_u64(cursor);
    FRUGAL_EXPECT(job == artifact.range.begin + i &&
                  "shard artifact job lines out of order");
    expect_literal(cursor, ",\"values\":[");
    std::vector<double> values;
    values.reserve(artifact.metrics.size());
    for (;;) {
      values.push_back(parse_double(cursor));
      if (*cursor.at != ',') break;
      ++cursor.at;
    }
    FRUGAL_EXPECT(values.size() == artifact.metrics.size());
    expect_literal(cursor, "]}\n");
    artifact.values.push_back(std::move(values));
  }
  FRUGAL_EXPECT(*cursor.at == '\0' && "trailing data in shard artifact");
  return artifact;
}

SweepResult merge_shards(const ScenarioSpec& spec,
                         std::vector<ShardArtifact> artifacts) {
  FRUGAL_EXPECT(!artifacts.empty());
  std::sort(artifacts.begin(), artifacts.end(),
            [](const ShardArtifact& a, const ShardArtifact& b) {
              return a.shard.index < b.shard.index;
            });
  const ShardArtifact& first = artifacts.front();
  FRUGAL_EXPECT(first.scenario == spec.name);
  FRUGAL_EXPECT(first.shard.count >= 1);
  FRUGAL_EXPECT(artifacts.size() == static_cast<std::size_t>(first.shard.count) &&
                "incomplete or oversized shard set");
  FRUGAL_EXPECT(first.metrics.size() == spec.metrics.size());
  for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
    FRUGAL_EXPECT(first.metrics[m] == spec.metrics[m].name);
  }

  // Every artifact must describe the same sweep, and the sorted indices
  // must be exactly 0..N-1 (duplicates/misses surface here) with each
  // shard's range matching the canonical partition of the job order.
  for (std::size_t k = 0; k < artifacts.size(); ++k) {
    const ShardArtifact& shard = artifacts[k];
    FRUGAL_EXPECT(shard.shard.index == static_cast<int>(k) &&
                  "duplicate or missing shard in merge set");
    FRUGAL_EXPECT(shard.shard.count == first.shard.count);
    FRUGAL_EXPECT(shard.scenario == first.scenario);
    FRUGAL_EXPECT(shard.job_count == first.job_count);
    FRUGAL_EXPECT(shard.seeds == first.seeds);
    FRUGAL_EXPECT(shard.seed_base == first.seed_base &&
                  "shards ran with different seed bases");
    FRUGAL_EXPECT(shard.axes.size() == first.axes.size() &&
                  "shards ran different grids");
    for (std::size_t a = 0; a < shard.axes.size(); ++a) {
      FRUGAL_EXPECT(shard.axes[a].name == first.axes[a].name &&
                    "shards ran different grids");
      FRUGAL_EXPECT(shard.axes[a].values == first.axes[a].values &&
                    "shards ran different grids");
    }
    FRUGAL_EXPECT(shard.axis_labels == first.axis_labels &&
                  "shards ran different grids");
    FRUGAL_EXPECT(shard.metrics == first.metrics);
    FRUGAL_EXPECT(shard.range ==
                  shard_range(first.job_count, shard.shard));
    FRUGAL_EXPECT(shard.values.size() == shard.range.size());
  }

  // Rebuild the plan the shards executed: grid values come from the header
  // (so the merge needs no --grid/--full flags); rendering metadata
  // (formatter, aggregate flag) comes from the spec by axis name.
  std::vector<Axis> resolved;
  resolved.reserve(first.axes.size());
  FRUGAL_EXPECT(first.axes.size() == spec.axes.size() &&
                "artifact axes do not match the scenario spec");
  for (std::size_t a = 0; a < first.axes.size(); ++a) {
    FRUGAL_EXPECT(first.axes[a].name == spec.axes[a].name &&
                  "artifact axes do not match the scenario spec");
    Axis axis = spec.axes[a];
    axis.values = first.axes[a].values;
    // Labels are authoritative over the serialized numbers: resolve each one
    // back through the spec's parser (the protocol registry, for the
    // protocol axis), so an artifact naming an unregistered protocol aborts
    // here instead of silently running whatever its ordinal now means.
    if (a < first.axis_labels.size() && !first.axis_labels[a].empty()) {
      FRUGAL_EXPECT(axis.parse &&
                    "artifact carries labels for an axis without a parser");
      for (std::size_t v = 0; v < first.axis_labels[a].size(); ++v) {
        const std::optional<double> value =
            axis.parse(first.axis_labels[a][v]);
        if (!value.has_value()) {
          std::fprintf(stderr,
                       "shard artifact: unknown label \"%s\" for axis "
                       "\"%s\"\n",
                       first.axis_labels[a][v].c_str(), axis.name.c_str());
          std::abort();
        }
        axis.values[v] = *value;
      }
    }
    axis.full_values.clear();
    resolved.push_back(std::move(axis));
  }
  const SweepPlan plan =
      make_plan(std::move(resolved), first.seeds, first.seed_base);
  FRUGAL_EXPECT(plan.job_count == first.job_count &&
                "artifact job count does not match its grid");

  // Reassemble the canonical job order (the ranges tile [0, job_count) by
  // the checks above) and replay the single-box aggregation.
  std::vector<std::vector<double>> job_metrics;
  job_metrics.reserve(plan.job_count);
  for (ShardArtifact& shard : artifacts) {
    FRUGAL_EXPECT(shard.range.begin == job_metrics.size());
    for (std::vector<double>& values : shard.values) {
      job_metrics.push_back(std::move(values));
    }
  }
  FRUGAL_EXPECT(job_metrics.size() == plan.job_count);

  SweepResult sweep = aggregate_jobs(spec, plan, job_metrics);
  sweep.jobs = 0;  // no local workers produced this result
  sweep.merged_from = first.shard.count;
  return sweep;
}

}  // namespace frugal::runner
