// Work-stealing-free deterministic worker pool.
//
// parallel_for runs fn(0..count-1) on up to `jobs` threads. Work items are
// handed out through one atomic counter, so the *assignment* of items to
// threads is racy — but each item writes only to its own output slot, so as
// long as fn(i) is a pure function of i the results are independent of
// thread count and scheduling. The sweep runner builds on exactly that
// property to make parallel sweeps byte-identical to serial ones.
#pragma once

#include <cstddef>
#include <functional>

namespace frugal::runner {

/// Resolves a worker count: `requested` when > 0, else FRUGAL_JOBS when set
/// and > 0, else std::thread::hardware_concurrency (at least 1).
[[nodiscard]] int resolve_jobs(int requested);

/// Runs fn(i) for every i in [0, count) using at most `jobs` worker threads
/// (clamped to count; jobs <= 1 runs inline on the calling thread). The
/// first exception thrown by any fn is rethrown on the calling thread after
/// all workers finish.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

/// Range overload: runs fn(i) for every i in [begin, end) — how a sweep
/// shard executes its slice of the global job order without renumbering the
/// indices its outputs are keyed by.
void parallel_for(std::size_t begin, std::size_t end, int jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace frugal::runner
