// The scenario registry: every named experiment the project can run.
//
// Built-in scenarios (the paper's figures plus the exploratory workloads)
// are defined in scenarios.cpp and registered on first lookup; tests and
// downstream tools may register additional specs at runtime. Lookup is by
// the spec's unique name; listing is sorted by name so every consumer
// enumerates scenarios in the same order.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "runner/scenario.hpp"

namespace frugal::runner {

class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  /// Registers a spec; aborts on a duplicate name or a malformed spec
  /// (empty name, no make_config, no metrics, duplicate axis names).
  void add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
  /// All registered specs, sorted by name. Pointers stay valid for the
  /// process lifetime (specs are never removed).
  [[nodiscard]] std::vector<const ScenarioSpec*> all() const;

 private:
  Registry() = default;
  /// deque: growth never invalidates the spec pointers handed out.
  std::deque<ScenarioSpec> specs_;
};

/// Defined in scenarios.cpp: registers every built-in scenario (idempotent).
void register_builtin_scenarios();

/// Convenience lookups that make sure the built-ins are registered first.
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);
[[nodiscard]] std::vector<const ScenarioSpec*> all_scenarios();

/// Human-readable description of one spec — what `experiment_cli --list`
/// prints per scenario: name, figure and description, every axis with its
/// quick (and, when different, full) value set rendered through the axis
/// formatter, the metric names, and the seed defaults. New families are
/// discoverable without reading scenarios.cpp.
[[nodiscard]] std::string describe(const ScenarioSpec& spec);

/// Machine-readable description of one spec, as a single-line JSON object:
/// name, figure, title, description, seed defaults, every axis (values,
/// full_values, aggregate flag, formatted labels when the axis carries a
/// formatter) and every metric (name, precision, probe_validity_s when the
/// metric is a reliability probe). What `experiment_cli --describe-json`
/// emits — the stable contract scripts discover scenarios through.
[[nodiscard]] std::string describe_json(const ScenarioSpec& spec);

/// Every registered scenario as a JSON array of describe_json objects, one
/// per line, sorted by name.
[[nodiscard]] std::string scenarios_json();

}  // namespace frugal::runner
