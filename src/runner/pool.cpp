#include "runner/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/expect.hpp"

namespace frugal::runner {

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const auto from_env = static_cast<int>(env_int("FRUGAL_JOBS", 0));
  if (from_env > 0) return from_env;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  FRUGAL_EXPECT(fn != nullptr);
  if (count == 0) return;

  const auto worker_count = static_cast<std::size_t>(
      std::clamp<std::size_t>(jobs > 0 ? static_cast<std::size_t>(jobs) : 1,
                              1, count));
  if (worker_count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
        // Keep draining: other items may be mid-flight and the caller
        // expects every worker to have stopped touching shared state.
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(worker_count);
  for (std::size_t t = 0; t < worker_count; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  FRUGAL_EXPECT(begin <= end);
  FRUGAL_EXPECT(fn != nullptr);
  parallel_for(end - begin, jobs,
               [&](std::size_t i) { fn(begin + i); });
}

}  // namespace frugal::runner
