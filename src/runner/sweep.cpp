#include "runner/sweep.hpp"

#include <chrono>

#include "runner/pool.hpp"
#include "util/env.hpp"
#include "util/expect.hpp"

namespace frugal::runner {

namespace {

/// Per-axis sizes of the expanded grid.
std::vector<std::size_t> grid_dims(const std::vector<Axis>& axes, bool full) {
  std::vector<std::size_t> dims;
  dims.reserve(axes.size());
  for (const Axis& axis : axes) dims.push_back(axis.values_for(full).size());
  return dims;
}

}  // namespace

SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& options) {
  FRUGAL_EXPECT(spec.make_config != nullptr);
  FRUGAL_EXPECT(!spec.metrics.empty());

  const std::vector<Axis> axes = apply_overrides(spec.axes, options.overrides);
  const bool full = options.full;
  const int default_seeds = full && spec.full_seeds > 0 ? spec.full_seeds
                                                        : spec.default_seeds;
  const int seeds =
      options.seeds > 0
          ? options.seeds
          : static_cast<int>(env_int("FRUGAL_SEEDS", default_seeds));
  FRUGAL_EXPECT(seeds > 0);

  const std::vector<ParamPoint> grid = expand_grid(axes, full);
  const std::vector<std::size_t> dims = grid_dims(axes, full);

  // Map every full-grid point to its output row: the mixed-radix index over
  // the non-aggregate axes only (aggregate axes fold into the same row).
  std::vector<Axis> output_axes;
  for (const Axis& axis : axes) {
    if (!axis.aggregate) output_axes.push_back(axis);
  }
  std::size_t output_count = 1;
  for (const Axis& axis : output_axes) {
    output_count *= axis.values_for(full).size();
  }
  std::vector<std::size_t> output_index(grid.size());
  for (std::size_t flat = 0; flat < grid.size(); ++flat) {
    std::size_t rest = flat;
    std::vector<std::size_t> coords(axes.size());
    for (std::size_t a = axes.size(); a-- > 0;) {
      coords[a] = rest % dims[a];
      rest /= dims[a];
    }
    std::size_t out = 0;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      if (axes[a].aggregate) continue;
      out = out * dims[a] + coords[a];
    }
    output_index[flat] = out;
  }

  // Execute the job grid: job = point-major, seed-minor. Every job writes
  // only its own metric slot, keyed by job index — the one invariant the
  // whole byte-identical-output guarantee rests on.
  const std::size_t job_count = grid.size() * static_cast<std::size_t>(seeds);
  const int jobs = resolve_jobs(options.jobs);
  std::vector<std::vector<double>> job_metrics(job_count);

  const auto started = std::chrono::steady_clock::now();
  parallel_for(job_count, jobs, [&](std::size_t job) {
    const std::size_t point_index = job / static_cast<std::size_t>(seeds);
    const int seed_index = static_cast<int>(job % static_cast<std::size_t>(seeds));
    const ParamPoint& point = grid[point_index];
    const core::ExperimentConfig config =
        spec.make_config(point, job_seed(options.seed_base, seed_index));
    const core::RunResult result = core::run_experiment(config);
    std::vector<double>& values = job_metrics[job];
    values.reserve(spec.metrics.size());
    for (const MetricSpec& metric : spec.metrics) {
      values.push_back(metric.extract(result, point));
    }
  });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  // Serial aggregation in canonical job order: identical summation order —
  // hence bit-identical floating-point results — at every thread count.
  SweepResult sweep;
  sweep.spec = &spec;
  sweep.axes = output_axes;
  sweep.seeds = seeds;
  sweep.jobs = jobs;
  sweep.job_count = job_count;
  sweep.wall_seconds = elapsed.count();
  sweep.points.resize(output_count);

  const std::vector<ParamPoint> output_grid = expand_grid(output_axes, full);
  FRUGAL_ASSERT(output_grid.size() == output_count);
  for (std::size_t out = 0; out < output_count; ++out) {
    sweep.points[out].point = output_grid[out];
    sweep.points[out].metrics.resize(spec.metrics.size());
  }
  for (std::size_t job = 0; job < job_count; ++job) {
    const std::size_t point_index = job / static_cast<std::size_t>(seeds);
    PointResult& row = sweep.points[output_index[point_index]];
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      row.metrics[m].add(job_metrics[job][m]);
    }
  }
  return sweep;
}

std::vector<core::RunResult> run_parallel(
    const std::vector<core::ExperimentConfig>& configs, int jobs) {
  std::vector<core::RunResult> results(configs.size());
  parallel_for(configs.size(), resolve_jobs(jobs), [&](std::size_t i) {
    results[i] = core::run_experiment(configs[i]);
  });
  return results;
}

}  // namespace frugal::runner
