#include "runner/sweep.hpp"

#include <chrono>
#include <cstdlib>

#include "runner/pool.hpp"
#include "util/env.hpp"
#include "util/expect.hpp"

namespace frugal::runner {

std::optional<ShardSpec> try_parse_shard_spec(const std::string& text) {
  const char* cursor = text.c_str();
  char* end = nullptr;
  const long index = std::strtol(cursor, &end, 10);
  if (end == cursor || *end != '/') return std::nullopt;
  cursor = end + 1;
  const long count = std::strtol(cursor, &end, 10);
  if (end == cursor || *end != '\0') return std::nullopt;
  if (count < 1 || count > 100000) return std::nullopt;
  if (index < 0 || index >= count) return std::nullopt;
  return ShardSpec{static_cast<int>(index), static_cast<int>(count)};
}

ShardSpec parse_shard_spec(const std::string& text) {
  const std::optional<ShardSpec> shard = try_parse_shard_spec(text);
  FRUGAL_EXPECT(shard.has_value() && "shard spec must be i/N with 0 <= i < N");
  return *shard;
}

JobRange shard_range(std::size_t job_count, const ShardSpec& shard) {
  FRUGAL_EXPECT(shard.count >= 1);
  FRUGAL_EXPECT(shard.index >= 0 && shard.index < shard.count);
  const auto count = static_cast<std::size_t>(shard.count);
  const auto index = static_cast<std::size_t>(shard.index);
  return JobRange{job_count * index / count,
                  job_count * (index + 1) / count};
}

SweepPlan make_plan(std::vector<Axis> resolved_axes, int seeds,
                    std::uint64_t seed_base) {
  FRUGAL_EXPECT(seeds > 0);
  SweepPlan plan;
  plan.seeds = seeds;
  plan.seed_base = seed_base;
  plan.axes = std::move(resolved_axes);

  std::vector<std::size_t> dims;
  dims.reserve(plan.axes.size());
  for (const Axis& axis : plan.axes) {
    FRUGAL_EXPECT(!axis.values.empty());
    dims.push_back(axis.values.size());
  }

  plan.grid = expand_grid(plan.axes, /*full=*/false);

  // Map every full-grid point to its output row: the mixed-radix index over
  // the non-aggregate axes only (aggregate axes fold into the same row).
  for (const Axis& axis : plan.axes) {
    if (!axis.aggregate) plan.output_axes.push_back(axis);
  }
  plan.output_count = 1;
  for (const Axis& axis : plan.output_axes) {
    plan.output_count *= axis.values.size();
  }
  plan.output_index.resize(plan.grid.size());
  for (std::size_t flat = 0; flat < plan.grid.size(); ++flat) {
    std::size_t rest = flat;
    std::vector<std::size_t> coords(plan.axes.size());
    for (std::size_t a = plan.axes.size(); a-- > 0;) {
      coords[a] = rest % dims[a];
      rest /= dims[a];
    }
    std::size_t out = 0;
    for (std::size_t a = 0; a < plan.axes.size(); ++a) {
      if (plan.axes[a].aggregate) continue;
      out = out * dims[a] + coords[a];
    }
    plan.output_index[flat] = out;
  }

  plan.job_count = plan.grid.size() * static_cast<std::size_t>(seeds);
  return plan;
}

SweepPlan plan_sweep(const ScenarioSpec& spec, const SweepOptions& options) {
  FRUGAL_EXPECT(spec.make_config != nullptr);
  FRUGAL_EXPECT(!spec.metrics.empty());

  std::vector<Axis> axes = apply_overrides(spec.axes, options.overrides);
  // Resolve the quick/full selection into `values` so the plan (and every
  // shard header serialized from it) is unambiguous about the grid it ran.
  for (Axis& axis : axes) {
    axis.values = axis.values_for(options.full);
    axis.full_values.clear();
  }

  const int default_seeds = options.full && spec.full_seeds > 0
                                ? spec.full_seeds
                                : spec.default_seeds;
  const int seeds =
      options.seeds > 0
          ? options.seeds
          : static_cast<int>(env_int("FRUGAL_SEEDS", default_seeds));
  return make_plan(std::move(axes), seeds, options.seed_base);
}

std::vector<double> run_sweep_job(const ScenarioSpec& spec,
                                  const SweepPlan& plan, std::size_t job) {
  return run_sweep_job_instrumented(spec, plan, job,
                                    /*telemetry_config=*/nullptr,
                                    /*profiler=*/nullptr);
}

telemetry::TelemetryConfig telemetry_config_for(const ScenarioSpec& spec,
                                                const SweepOptions& options) {
  telemetry::TelemetryConfig config;
  config.bounded_memory = options.telemetry;
  config.window_s = options.window_s;
  config.timeseries_path = options.timeseries_path;
  config.perfetto_path = options.perfetto_path;
  for (const MetricSpec& metric : spec.metrics) {
    if (!metric.probe_validity_s.has_value()) continue;
    bool seen = false;
    for (const double v : config.probe_validities_s) {
      seen = seen || v == *metric.probe_validity_s;
    }
    if (!seen) config.probe_validities_s.push_back(*metric.probe_validity_s);
  }
  return config;
}

std::optional<telemetry::TracerConfig> dissem_config_for(
    const ScenarioSpec& spec, const SweepOptions& options) {
  bool needed = !options.dissem_trace_path.empty();
  for (const MetricSpec& metric : spec.metrics) {
    needed = needed || metric.needs_dissem;
  }
  if (!needed) return std::nullopt;
  telemetry::TracerConfig config;
  config.trace_path = options.dissem_trace_path;
  config.bounded = options.dissem_bounded;
  return config;
}

std::vector<double> run_sweep_job_instrumented(
    const ScenarioSpec& spec, const SweepPlan& plan, std::size_t job,
    const telemetry::TelemetryConfig* telemetry_config,
    sim::Profiler* profiler,
    const telemetry::TracerConfig* dissem_config) {
  FRUGAL_EXPECT(job < plan.job_count);
  const auto seeds = static_cast<std::size_t>(plan.seeds);
  const ParamPoint& point = plan.grid[job / seeds];
  const int seed_index = static_cast<int>(job % seeds);
  core::ExperimentConfig config =
      spec.make_config(point, job_seed(plan.seed_base, seed_index));
  std::optional<telemetry::RunTelemetry> hub;
  if (telemetry_config != nullptr) {
    hub.emplace(*telemetry_config);
    config.telemetry = &*hub;
  }
  std::optional<telemetry::DisseminationTracer> tracer;
  if (dissem_config != nullptr) {
    tracer.emplace(*dissem_config);
    config.dissem_tracer = &*tracer;
  }
  config.profiler = profiler;
  const core::RunResult result = core::run_experiment(config);
  std::vector<double> values;
  values.reserve(spec.metrics.size());
  for (const MetricSpec& metric : spec.metrics) {
    values.push_back(metric.extract(result, point));
  }
  return values;
}

SweepResult aggregate_jobs(
    const ScenarioSpec& spec, const SweepPlan& plan,
    const std::vector<std::vector<double>>& job_metrics) {
  FRUGAL_EXPECT(job_metrics.size() == plan.job_count);

  SweepResult sweep;
  sweep.spec = &spec;
  sweep.axes = plan.output_axes;
  sweep.seeds = plan.seeds;
  sweep.job_count = plan.job_count;
  sweep.points.resize(plan.output_count);

  const std::vector<ParamPoint> output_grid =
      expand_grid(plan.output_axes, /*full=*/false);
  FRUGAL_ASSERT(output_grid.size() == plan.output_count);
  for (std::size_t out = 0; out < plan.output_count; ++out) {
    sweep.points[out].point = output_grid[out];
    sweep.points[out].metrics.resize(spec.metrics.size());
  }
  const auto seeds = static_cast<std::size_t>(plan.seeds);
  for (std::size_t job = 0; job < plan.job_count; ++job) {
    FRUGAL_EXPECT(job_metrics[job].size() == spec.metrics.size());
    PointResult& row = sweep.points[plan.output_index[job / seeds]];
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      row.metrics[m].add(job_metrics[job][m]);
    }
  }
  return sweep;
}

SweepResult run_sweep(const ScenarioSpec& spec, const SweepOptions& options) {
  // A sharded slice cannot aggregate to a complete result; run it through
  // run_sweep_shard (shard.hpp) and merge the artifact set instead.
  FRUGAL_EXPECT(!options.shard.active());

  const SweepPlan plan = plan_sweep(spec, options);

  const bool artifacts =
      !options.timeseries_path.empty() || !options.perfetto_path.empty();
  // A time-series / Perfetto / dissem-trace artifact describes ONE
  // simulation; demand a single-job sweep rather than let the grid silently
  // overwrite it.
  FRUGAL_EXPECT(!artifacts || plan.job_count == 1);
  FRUGAL_EXPECT(options.dissem_trace_path.empty() || plan.job_count == 1);
  std::optional<telemetry::TelemetryConfig> hub_config;
  if (options.telemetry || artifacts) {
    hub_config = telemetry_config_for(spec, options);
  }
  const std::optional<telemetry::TracerConfig> dissem_config =
      dissem_config_for(spec, options);

  // Execute the job grid: job = point-major, seed-minor. Every job writes
  // only its own metric slot, keyed by job index — the one invariant the
  // whole byte-identical-output guarantee rests on. Profilers follow the
  // same discipline: one per job, merged serially after the pool drains,
  // so the merged section order is deterministic too.
  const int jobs = resolve_jobs(options.jobs);
  std::vector<std::vector<double>> job_metrics(plan.job_count);
  std::vector<sim::Profiler> job_profiles(options.profile ? plan.job_count
                                                          : 0);

  const auto started = std::chrono::steady_clock::now();
  parallel_for(plan.job_count, jobs, [&](std::size_t job) {
    job_metrics[job] = run_sweep_job_instrumented(
        spec, plan, job,
        hub_config.has_value() ? &*hub_config : nullptr,
        options.profile ? &job_profiles[job] : nullptr,
        dissem_config.has_value() ? &*dissem_config : nullptr);
  });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  SweepResult sweep = aggregate_jobs(spec, plan, job_metrics);
  sweep.jobs = jobs;
  sweep.wall_seconds = elapsed.count();
  for (const sim::Profiler& job_profile : job_profiles) {
    sweep.profile.merge(job_profile);
  }
  return sweep;
}

std::vector<core::RunResult> run_parallel(
    const std::vector<core::ExperimentConfig>& configs, int jobs) {
  std::vector<core::RunResult> results(configs.size());
  parallel_for(configs.size(), resolve_jobs(jobs), [&](std::size_t i) {
    results[i] = core::run_experiment(configs[i]);
  });
  return results;
}

}  // namespace frugal::runner
