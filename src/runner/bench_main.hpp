// The whole figure-bench harness in one call: every bench binary is a
// scenario name away from the registry + sweep runner + sink.
//
// Environment knobs (all optional):
//   FRUGAL_SEEDS    seeded runs per grid point (default: the spec's)
//   FRUGAL_FULL     1 -> paper-strength parameter grids
//   FRUGAL_JOBS     worker threads (default: hardware concurrency)
//   FRUGAL_CSV_DIR  also write the canonical long CSV there
//   FRUGAL_SHARD    "i/N" -> run only that slice of the job grid and print
//                   the partial shard artifact instead of the table (merge
//                   with experiment_cli --merge / scripts/merge_shards.py)
#pragma once

#include <string_view>

namespace frugal::runner {

/// Runs the named registered scenario with env-configured options and
/// prints the table rendering. Returns a process exit code.
[[nodiscard]] int figure_bench_main(std::string_view scenario_name);

}  // namespace frugal::runner
