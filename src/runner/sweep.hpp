// Deterministic parallel sweep execution.
//
// run_sweep expands a ScenarioSpec into a job grid (grid point x seed),
// executes every job on a worker pool, and aggregates per-point metric
// summaries in the canonical grid order. Each job is a pure function of its
// (point, seed) coordinates — run_experiment is deterministic in
// config.seed and jobs share nothing — and aggregation happens serially
// after the pool drains, so the result (and every sink rendering of it) is
// byte-identical whatever FRUGAL_JOBS says.
//
// The same plan/job/aggregate decomposition powers sharded execution
// (shard.hpp): a shard runs a contiguous slice of the flattened job index
// range with unchanged per-job seeds, and merging a complete shard set
// replays the identical serial aggregation — hence byte-identical output.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runner/scenario.hpp"
#include "sim/profiler.hpp"
#include "stats/summary.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"

namespace frugal::runner {

/// One shard of a sweep's flattened job range: `index` of `count`. The
/// default (0 of 1) is the whole sweep.
struct ShardSpec {
  int index = 0;
  int count = 1;

  [[nodiscard]] bool active() const { return count > 1; }
};

/// Parses "i/N" (e.g. "0/3", the CLI's --shard / FRUGAL_SHARD syntax);
/// nullopt on malformed text, N < 1 or i outside [0, N) — the user-facing
/// front-ends turn that into a usage error.
[[nodiscard]] std::optional<ShardSpec> try_parse_shard_spec(
    const std::string& text);

/// try_parse_shard_spec for trusted (programmatic) input: aborts instead of
/// returning nullopt.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& text);

/// A contiguous half-open job index range.
struct JobRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const JobRange&, const JobRange&) = default;
};

/// The balanced contiguous partition: shard i of N over J jobs is
/// [J*i/N, J*(i+1)/N). Shards are disjoint, cover [0, J) and differ in size
/// by at most one job — the properties runner_determinism_test asserts.
[[nodiscard]] JobRange shard_range(std::size_t job_count,
                                   const ShardSpec& shard);

struct SweepOptions {
  int jobs = 0;   ///< worker threads; <= 0: FRUGAL_JOBS, else hardware
  int seeds = 0;  ///< seeded runs per grid point; <= 0: spec.default_seeds
  bool full = false;           ///< use the paper-strength grids
  std::uint64_t seed_base = 1;  ///< job s runs with seed job_seed(base, s)
  std::vector<Axis> overrides;  ///< --grid axis replacements, by name
  /// Restrict execution to this shard of the job range (run_sweep_shard
  /// only; run_sweep rejects an active shard — a single box runs it all).
  ShardSpec shard;
  /// Run every job through the streaming telemetry hub in bounded-memory
  /// mode: per-event delivery records are never materialized and every
  /// metric is answered from the streamed aggregates — bit-equal to the
  /// legacy fold (telemetry_test pins this with byte-compared sink output).
  bool telemetry = false;
  /// Attach a simulator self-profiler to every job; the per-job profiles
  /// merge serially (in job order) into SweepResult::profile.
  bool profile = false;
  /// Tumbling-window width for the time-series operators, seconds.
  double window_s = 10.0;
  /// When non-empty, stream a windowed time-series JSONL artifact /
  /// Perfetto trace from the run. Artifacts describe ONE simulation, so
  /// both require a single-job sweep (one grid point, one seed) — run_sweep
  /// aborts otherwise. Either implies a (non-bounded unless `telemetry` is
  /// also set) hub.
  std::string timeseries_path;
  std::string perfetto_path;
  /// When non-empty, write the causal dissemination trace (JSONL, one
  /// record per published event's propagation DAG) here. Same
  /// one-simulation rule as the artifacts above. Independently of the path,
  /// a stats-only tracer attaches whenever any spec metric declares
  /// needs_dissem — metric columns are byte-identical with and without the
  /// artifact.
  std::string dissem_trace_path;
  /// Bounded-memory dissemination tracing: free each event's DAG at its
  /// validity expiry instead of keeping it for post-run introspection
  /// (stats and JSONL rows are identical either way).
  bool dissem_bounded = false;
};

/// One output row: a point of the *output* grid (aggregate axes collapsed)
/// plus one summary per spec metric, accumulated over seeds and aggregate
/// axis points in canonical order.
struct PointResult {
  ParamPoint point;
  std::vector<stats::Summary> metrics;
};

struct SweepResult {
  const ScenarioSpec* spec = nullptr;
  std::vector<Axis> axes;  ///< effective output axes (non-aggregate)
  std::vector<PointResult> points;  ///< canonical grid order
  int seeds = 0;
  int jobs = 1;             ///< workers actually used; 0 for merged results
  std::size_t job_count = 0;  ///< simulations executed
  double wall_seconds = 0;  ///< never part of canonical CSV/JSONL output
  /// Shard count this result was merged from (merge_shards); 0 for a
  /// single-box run. Like jobs/wall_seconds, never in canonical output.
  int merged_from = 0;
  /// Merged per-subsystem self-profile of every job, populated when the
  /// sweep ran with SweepOptions::profile. Wall-clock observability only —
  /// like wall_seconds, never part of canonical CSV/JSONL output.
  sim::Profiler profile;
};

/// The per-job seed derivation: deterministic in (base, index) and
/// independent of grid position, so every grid point sees the same seed
/// sequence (the paper's paired-comparison setup) and thread scheduling
/// cannot influence it.
[[nodiscard]] constexpr std::uint64_t job_seed(std::uint64_t base,
                                               int seed_index) {
  return base + static_cast<std::uint64_t>(seed_index);
}

/// The resolved execution plan every run mode (single-box, shard, merge)
/// shares. Axes are *resolved*: values hold the effective grid (overrides
/// applied, quick/full selection done, full_values cleared), so the plan is
/// self-contained and two boxes resolving the same sweep agree exactly.
struct SweepPlan {
  std::vector<Axis> axes;         ///< resolved effective axes
  std::vector<Axis> output_axes;  ///< the non-aggregate subset
  std::vector<ParamPoint> grid;   ///< canonical full-grid order
  std::vector<std::size_t> output_index;  ///< grid point -> output row
  std::size_t output_count = 0;
  int seeds = 0;
  std::uint64_t seed_base = 1;
  std::size_t job_count = 0;  ///< grid.size() * seeds; job = point-major
};

/// Resolves spec + options (grid overrides, full mode, FRUGAL_SEEDS) into
/// the canonical plan.
[[nodiscard]] SweepPlan plan_sweep(const ScenarioSpec& spec,
                                   const SweepOptions& options);

/// Builds a plan from already-resolved axes (merge_shards reconstructs the
/// plan from a shard header this way). Aborts on empty axis values.
[[nodiscard]] SweepPlan make_plan(std::vector<Axis> resolved_axes, int seeds,
                                  std::uint64_t seed_base);

/// Executes one job of the plan — point index job / seeds, seed index
/// job % seeds — and returns the spec's metric values for that simulation.
[[nodiscard]] std::vector<double> run_sweep_job(const ScenarioSpec& spec,
                                                const SweepPlan& plan,
                                                std::size_t job);

/// The telemetry hub configuration a sweep's options resolve to: bounded
/// memory iff options.telemetry, the spec's declared reliability-probe
/// validities (deduplicated), the window width and the artifact paths.
[[nodiscard]] telemetry::TelemetryConfig telemetry_config_for(
    const ScenarioSpec& spec, const SweepOptions& options);

/// The dissemination-tracer configuration a sweep's options resolve to:
/// engaged when the options name a dissem-trace artifact or any spec metric
/// declares needs_dissem; nullopt otherwise (no tracer attached).
[[nodiscard]] std::optional<telemetry::TracerConfig> dissem_config_for(
    const ScenarioSpec& spec, const SweepOptions& options);

/// run_sweep_job with observability attached: when `telemetry_config` is
/// non-null the job runs through a fresh RunTelemetry hub built from it,
/// when `dissem_config` is non-null through a fresh DisseminationTracer,
/// and when `profiler` is non-null the job's self-profile accumulates
/// there. All null degrades to exactly run_sweep_job.
[[nodiscard]] std::vector<double> run_sweep_job_instrumented(
    const ScenarioSpec& spec, const SweepPlan& plan, std::size_t job,
    const telemetry::TelemetryConfig* telemetry_config,
    sim::Profiler* profiler,
    const telemetry::TracerConfig* dissem_config = nullptr);

/// Serial aggregation of per-job metric vectors in canonical job order:
/// identical summation order — hence bit-identical floating-point results —
/// whether the values came from one box's pool or a merged shard set.
/// `job_metrics` must hold plan.job_count rows of spec.metrics.size() each.
[[nodiscard]] SweepResult aggregate_jobs(
    const ScenarioSpec& spec, const SweepPlan& plan,
    const std::vector<std::vector<double>>& job_metrics);

[[nodiscard]] SweepResult run_sweep(const ScenarioSpec& spec,
                                    const SweepOptions& options = {});

/// Lower-level: runs every config on the pool and returns results in input
/// order. Configs may carry per-config trace recorders (each job writes only
/// its own); the golden-trace determinism test drives the runner through
/// this entry point.
[[nodiscard]] std::vector<core::RunResult> run_parallel(
    const std::vector<core::ExperimentConfig>& configs, int jobs);

}  // namespace frugal::runner
