// Deterministic parallel sweep execution.
//
// run_sweep expands a ScenarioSpec into a job grid (grid point x seed),
// executes every job on a worker pool, and aggregates per-point metric
// summaries in the canonical grid order. Each job is a pure function of its
// (point, seed) coordinates — run_experiment is deterministic in
// config.seed and jobs share nothing — and aggregation happens serially
// after the pool drains, so the result (and every sink rendering of it) is
// byte-identical whatever FRUGAL_JOBS says.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/scenario.hpp"
#include "stats/summary.hpp"

namespace frugal::runner {

struct SweepOptions {
  int jobs = 0;   ///< worker threads; <= 0: FRUGAL_JOBS, else hardware
  int seeds = 0;  ///< seeded runs per grid point; <= 0: spec.default_seeds
  bool full = false;           ///< use the paper-strength grids
  std::uint64_t seed_base = 1;  ///< job s runs with seed job_seed(base, s)
  std::vector<Axis> overrides;  ///< --grid axis replacements, by name
};

/// One output row: a point of the *output* grid (aggregate axes collapsed)
/// plus one summary per spec metric, accumulated over seeds and aggregate
/// axis points in canonical order.
struct PointResult {
  ParamPoint point;
  std::vector<stats::Summary> metrics;
};

struct SweepResult {
  const ScenarioSpec* spec = nullptr;
  std::vector<Axis> axes;  ///< effective output axes (non-aggregate)
  std::vector<PointResult> points;  ///< canonical grid order
  int seeds = 0;
  int jobs = 1;             ///< workers actually used
  std::size_t job_count = 0;  ///< simulations executed
  double wall_seconds = 0;  ///< never part of canonical CSV/JSONL output
};

/// The per-job seed derivation: deterministic in (base, index) and
/// independent of grid position, so every grid point sees the same seed
/// sequence (the paper's paired-comparison setup) and thread scheduling
/// cannot influence it.
[[nodiscard]] constexpr std::uint64_t job_seed(std::uint64_t base,
                                               int seed_index) {
  return base + static_cast<std::uint64_t>(seed_index);
}

[[nodiscard]] SweepResult run_sweep(const ScenarioSpec& spec,
                                    const SweepOptions& options = {});

/// Lower-level: runs every config on the pool and returns results in input
/// order. Configs may carry per-config trace recorders (each job writes only
/// its own); the golden-trace determinism test drives the runner through
/// this entry point.
[[nodiscard]] std::vector<core::RunResult> run_parallel(
    const std::vector<core::ExperimentConfig>& configs, int jobs);

}  // namespace frugal::runner
