// Declarative experiment scenarios.
//
// A ScenarioSpec describes one named experiment — the worlds it runs in, the
// parameter axes it sweeps, how a grid point plus a seed becomes an
// ExperimentConfig, and which metrics it reports — without saying anything
// about *how* it is executed. The sweep runner (sweep.hpp) expands a spec
// into a job grid and runs it on a worker pool; the sink (sink.hpp) renders
// the aggregated result. Adding a figure or a new workload is a ~20-line
// spec in scenarios.cpp instead of a new bench binary.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "stats/table.hpp"

namespace frugal::runner {

struct SweepResult;  // sweep.hpp; specs may carry a post-processing hook

/// One swept parameter. `values` is the default (quick) grid; `full_values`,
/// when non-empty, is the paper-strength grid selected by FRUGAL_FULL /
/// --full. An *aggregate* axis is expanded into jobs like any other but its
/// points are averaged into one output row (e.g. the city figures run every
/// publisher in turn and report the mean over publishers and seeds).
struct Axis {
  std::string name;
  std::vector<double> values;
  std::vector<double> full_values;
  bool aggregate = false;
  /// Optional pretty-printer for values (e.g. protocol index -> name). Used
  /// by every sink format, so axis cells stay stable across formats.
  std::function<std::string(double)> format;
  /// Optional inverse of `format`: resolves a label token (e.g. a protocol
  /// name in --grid or a shard artifact) to the axis value it stands for;
  /// returns nullopt for an unknown label. Axes without a parser accept
  /// only numeric tokens.
  std::function<std::optional<double>(std::string_view)> parse;

  [[nodiscard]] const std::vector<double>& values_for(bool full) const {
    return full && !full_values.empty() ? full_values : values;
  }
  [[nodiscard]] std::string cell(double value) const;
};

/// One point of the expanded grid: the axis values, in spec axis order.
struct ParamPoint {
  std::vector<std::string> names;
  std::vector<double> values;

  /// Value of the named axis; aborts if the axis does not exist.
  [[nodiscard]] double get(std::string_view name) const;
  [[nodiscard]] double get_or(std::string_view name, double fallback) const;
};

/// One reported metric: a name plus an extractor from a finished run. The
/// extractor also sees the grid point so probe-style metrics can depend on
/// swept parameters.
struct MetricSpec {
  std::string name;
  int precision = 3;  ///< decimals in the human-readable table
  std::function<double(const core::RunResult&, const ParamPoint&)> extract;
  /// Reliability-probe validity (seconds) the extractor reads via
  /// reliability_within, if any. Telemetry-backed (bounded-memory) sweeps
  /// register every declared probe with the hub before the run — the only
  /// validities the streamed aggregates can answer.
  std::optional<double> probe_validity_s = std::nullopt;
  /// True when the extractor reads RunResult::dissem (hop counts, redundancy
  /// ratio, phase-latency decomposition): the sweep runner attaches a
  /// stats-only DisseminationTracer to every job whenever any declared
  /// metric needs one, so the column never depends on whether the
  /// dissem-trace artifact was also requested.
  bool needs_dissem = false;
};

struct ScenarioSpec {
  std::string name;         ///< registry key, e.g. "fig11_rwp_reliability"
  std::string figure;       ///< paper figure ("Figure 11"), empty if none
  std::string title;        ///< table heading
  std::string description;  ///< one-liner for --list
  std::vector<Axis> axes;
  int default_seeds = 3;  ///< overridden by FRUGAL_SEEDS / --seeds
  /// Seed default in full-grid mode; 0 means same as default_seeds. (The
  /// frugality figures run fewer seeds on the quick grid than on the
  /// paper-strength one.)
  int full_seeds = 0;
  std::function<core::ExperimentConfig(const ParamPoint&, std::uint64_t seed)>
      make_config;
  std::vector<MetricSpec> metrics;
  /// Printed after the table: the qualitative shape the paper reports.
  std::string expected_shape;
  /// Scenarios whose point grid is only an intermediate (e.g. Fig. 15's
  /// per-publisher runs) can suppress the default per-point table; the CSV /
  /// JSONL outputs always carry the full grid.
  bool suppress_point_table = false;
  /// Optional derived tables computed from the aggregated sweep (Fig. 15's
  /// publisher spread, the headline's savings factors).
  std::function<std::vector<stats::Table>(const SweepResult&)> post;
};

/// Expands axes into the canonical grid order: first axis slowest, last axis
/// fastest — the order every sink emits rows in, independent of how jobs are
/// scheduled.
[[nodiscard]] std::vector<ParamPoint> expand_grid(
    const std::vector<Axis>& axes, bool full);

/// Replaces the values of axes named in `overrides` (the CLI's --grid).
/// Aborts on an override that names no axis of the spec.
[[nodiscard]] std::vector<Axis> apply_overrides(
    std::vector<Axis> axes, const std::vector<Axis>& overrides);

}  // namespace frugal::runner
